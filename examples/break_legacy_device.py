#!/usr/bin/env python
"""The §IV-D proof of concept: break a discontinued L3 device.

Reproduces CVE-2021-0639 end to end on the simulated Nexus 5
(Android 6.0.1, Widevine L3, CDM 3.1.0, last update 2016):

1. scan the DRM process's memory for the keybox structure and invert
   the whitebox mask  →  the 128-bit AES **device key** (the RoT);
2. decrypt the provisioned **device RSA key** from persistent storage
   (its storage key derives from the device key);
3. capture a license at the ``_oecc`` boundary and replay the key
   ladder offline  →  the **content keys**;
4. download the title with no account, CENC-decrypt it, and play the
   reconstruction — capped, as in the paper, at 960x540 (qHD).

    python examples/break_legacy_device.py [service]
"""

import sys

from repro.core.keyladder_attack import KeyLadderAttack
from repro.core.media_recovery import MediaRecoveryPipeline
from repro.core.study import WideLeakStudy
from repro.media.player import probe_track
from repro.ott.app import OttApp
from repro.ott.registry import ALL_PROFILES, profile_by_name


def main() -> None:
    target = sys.argv[1] if len(sys.argv) > 1 else "Showtime"
    study = WideLeakStudy.with_default_apps()
    device = study.legacy_device
    profile = profile_by_name(target)
    backend = study.backends[profile.service]

    print(f"Target device: {device.spec.model}, Android "
          f"{device.spec.android_version}, Widevine "
          f"{device.widevine_security_level}, CDM {device.spec.cdm_version}, "
          f"last security update {device.spec.security_patch}")
    print(f"Target app:    {profile.name}\n")

    attack = KeyLadderAttack(device)

    print("--- Step 1: keybox recovery (CWE-922 / CVE-2021-0639) ---")
    keybox = attack.recover_keybox()
    if keybox is None:
        print("  keybox not found — is this an L1 device?")
        return
    print(f"  device id:  {keybox.device_id.hex()[:24]}…")
    print(f"  device key: {keybox.device_key.hex()}  (the root of trust)")
    matches_truth = keybox.device_key == device.keybox.device_key
    print(f"  matches factory ground truth: {matches_truth}")

    print("\n--- Steps 2–3: trigger playback, capture the license, walk the ladder ---")
    app = OttApp(profile, device, backend)
    result = attack.run(app)
    print(f"  playback delivered content: {result.playback.ok}")
    print(f"  licenses captured at the _oecc boundary: {result.licenses_observed}")
    print(f"  device RSA key recovered: {result.rsa_recovered}")
    print(f"  content keys recovered:   {len(result.content_keys)}")
    for kid, key in result.content_keys.items():
        print(f"    kid={kid.hex()[:16]}…  key={key.hex()}")
    if not result.succeeded:
        print(f"  attack failed: {result.notes}")
        return

    print("\n--- Step 4: DRM-free reconstruction (no account) ---")
    title_id = next(iter(backend.catalog)).title_id
    packaged = backend.packaged[title_id]
    mpd_url = f"https://{profile.cdn_host}{packaged.mpd_path}"
    recovered = MediaRecoveryPipeline(study.network).recover(
        profile.service, mpd_url, result.content_keys
    )
    for track in recovered.tracks:
        detail = f"{track.height}p" if track.height else (track.language or "")
        status = "PLAYABLE" if track.playable else f"not recovered ({track.note})"
        print(f"  {track.kind:6s} {track.rep_id:6s} {detail:6s} -> {status}")
    print(f"\n  best DRM-free quality: {recovered.best_video_height}p "
          "(qHD — HD keys are never issued to L3)")

    # "play it on another device (i.e., personal computer)"
    video = next(t for t in recovered.tracks if t.kind == "video" and t.playable)
    probe = probe_track(video.clear_init, video.clear_segments)
    print(f"  reference player verdict on the reconstruction: {probe.status.value}")


if __name__ == "__main__":
    main()
