#!/usr/bin/env python
"""Deep-dive audit of one app: Netflix.

Walks the full §IV-B methodology against the Netflix model:

1. static analysis of the decompiled APK;
2. monitored playback with the ``_oecc`` hooks installed;
3. SSL-repinning + interception to recover asset URIs — including the
   manifest that Netflix ships only through the Widevine non-DASH
   secure channel;
4. account-less downloads and player probes per track;
5. key-usage classification.

    python examples/audit_netflix.py
"""

from repro.core.content_audit import ContentAuditor
from repro.core.key_usage import KeyUsageAnalyzer
from repro.core.static_analysis import analyze_apk
from repro.core.study import WideLeakStudy
from repro.ott.app import OttApp
from repro.ott.registry import profile_by_name


def main() -> None:
    study = WideLeakStudy.with_default_apps()
    profile = profile_by_name("Netflix")
    backend = study.backends[profile.service]
    app = OttApp(profile, study.l1_device, backend)

    print(f"=== {profile.name} ({profile.installs_millions}M+ installs) ===\n")

    print("--- 1. Static analysis of the APK ---")
    static = analyze_apk(app.apk)
    print(f"  uses MediaDrm:    {static.uses_media_drm}")
    print(f"  uses MediaCrypto: {static.uses_media_crypto}")
    print(f"  uses ExoPlayer:   {static.uses_exoplayer}  (Netflix ships its own player)")
    for cls, ref in static.drm_call_sites[:4]:
        print(f"    call site: {cls} -> {ref}")

    print("\n--- 2–4. Monitored, intercepted playback + downloads ---")
    audit = ContentAuditor(study.l1_device, study.network).audit(app)
    observation = audit.observation
    print(f"  playback ok:          {audit.playback.ok}")
    print(f"  Widevine used:        {observation.widevine_used}")
    print(f"  security level:       {observation.security_level}")
    print(f"  _oecc calls observed: {observation.oecc_call_count}")
    print(
        "  manifest URI recovered from generic-decrypt output: "
        f"{audit.secure_channel_manifest_recovered}"
    )
    print(f"  manifest URL: {audit.mpd_url}")

    print("\n  Per-track protection status (account-less downloads):")
    for track in audit.tracks:
        extra = ""
        if track.height:
            extra = f" {track.height}p"
        if track.language:
            extra += f" [{track.language}]"
        print(f"    {track.kind:6s} {track.rep_id:6s}{extra:12s} -> {track.status.value}")
    print(f"\n  Aggregate: video={audit.status_for('video').value}, "
          f"audio={audit.status_for('audio').value}, "
          f"subtitles={audit.status_for('text').value}")
    print("  >>> Netflix delivers audio and subtitles in clear — the paper's")
    print("  >>> headline Q2 finding, confirmed via responsible disclosure.")

    print("\n--- 5. Key usage (Q3) ---")
    usage = KeyUsageAnalyzer().analyze(app, audit.mpd_bytes)
    print(f"  classification: {usage.classification.value if usage.classification else '-'}")
    print(f"  audio in clear: {usage.audio_clear}")
    print(
        "  video keys distinct per resolution: "
        f"{usage.video_keys_distinct_per_resolution}"
    )
    for rep_id, kid in sorted(usage.video_kids.items()):
        print(f"    {rep_id}: kid={kid.hex()[:16]}…")


if __name__ == "__main__":
    main()
