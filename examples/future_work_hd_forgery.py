#!/usr/bin/env python
"""§V-C future work, implemented: HD keys from an L3-only device.

"The Github project netflix-1080p explains how to get HD quality on L3
by just modifying the profiles to be sent to the CDN … An interesting
future work is to adapt this exploit to Android in order to get the
license keys of HD contents without breaking into the Widevine L1."

The adaptation: once the §IV-D key ladder yields the device RSA key,
the attacker forges license requests *claiming* L1 and signs them with
the stolen key. A license server that cross-checks the claim against
its provisioning records stops this cold; one that trusts the client
(the netflix-1080p situation) hands over the 720p/1080p keys — and the
qHD ceiling of the original PoC disappears.

    python examples/future_work_hd_forgery.py
"""

from repro.android.device import nexus_5
from repro.core.hd_forgery import HdForgeryAttack
from repro.core.media_recovery import MediaRecoveryPipeline
from repro.license_server.policy import AudioProtection
from repro.license_server.provisioning import KeyboxAuthority
from repro.net.network import Network
from repro.ott.app import OttApp
from repro.ott.backend import OttBackend
from repro.ott.profile import OttProfile


def _attempt(verifies_client_level: bool) -> None:
    profile = OttProfile(
        name="DemoFlix",
        service=f"demo{int(verifies_client_level)}",
        package="com.demoflix.app",
        installs_millions=1,
        audio_protection=AudioProtection.SHARED_KEY,
        enforces_revocation=False,
        verifies_client_level=verifies_client_level,
    )
    network = Network()
    authority = KeyboxAuthority()
    backend = OttBackend(profile, network, authority)
    device = nexus_5(network, authority)
    device.rooted = True
    app = OttApp(profile, device, backend)

    stance = "verifies" if verifies_client_level else "TRUSTS"
    print(f"--- license server {stance} the claimed security level ---")
    result = HdForgeryAttack(device, network).run(app)
    print(f"  forged L1 request accepted: {result.request_accepted}")
    if result.server_error:
        print(f"  server said: {result.server_error}")
    print(f"  HD keys obtained: {len(result.hd_key_ids)}")

    if result.succeeded:
        title_id = next(iter(backend.catalog)).title_id
        packaged = backend.packaged[title_id]
        mpd_url = f"https://{profile.cdn_host}{packaged.mpd_path}"
        recovered = MediaRecoveryPipeline(network).recover(
            profile.service, mpd_url, result.content_keys
        )
        print(
            f"  DRM-free recovery from the L3 device: best "
            f"{recovered.best_video_height}p (the qHD ceiling is gone)"
        )
    print()


def main() -> None:
    _attempt(verifies_client_level=True)
    _attempt(verifies_client_level=False)


if __name__ == "__main__":
    main()
