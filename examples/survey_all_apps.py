#!/usr/bin/env python
"""The complete survey: Table I plus the §IV-D sweep over all ten apps.

    python examples/survey_all_apps.py
"""

from repro.core.study import WideLeakStudy


def main() -> None:
    study = WideLeakStudy.with_default_apps()

    print("=== Table I ===")
    result = study.run()
    print(result.table.render())
    match = "exact match" if result.table.matches_paper else "DIVERGES"
    print(f"\nvs published table: {match}")

    print("\n=== Insights (§IV-C) ===")
    for name, app in result.apps.items():
        audit = app.audit
        notes = []
        if audit.secure_channel_manifest_recovered:
            notes.append("URIs via Widevine secure channel (recovered anyway)")
        if app.key_usage.classification is None:
            notes.append("key usage unattributable (regional restriction)")
        if app.legacy.outcome.value == "provisioning-failed":
            notes.append("revokes discontinued devices")
        print(f"  {name:22s} {'; '.join(notes) if notes else '—'}")

    print("\n=== §IV-D: key-ladder attack on the discontinued Nexus 5 ===")
    attacks = study.run_all_attacks()
    broken = []
    for name, outcome in attacks.items():
        recovered = outcome.recovered
        if recovered is not None and recovered.succeeded:
            broken.append(name)
            print(f"  {name:22s} BROKEN  (best quality {recovered.best_video_height}p)")
        else:
            reason = outcome.attack.notes[-1] if outcome.attack.notes else "resisted"
            print(f"  {name:22s} resisted — {reason}")
    print(f"\nDRM-free content recovered from {len(broken)} apps: "
          f"{', '.join(broken)}")
    print("(the paper: six apps, including Netflix, Hulu and Showtime)")


if __name__ == "__main__":
    main()
