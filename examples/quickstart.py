#!/usr/bin/env python
"""Quickstart: run the WideLeak study and regenerate Table I.

Builds the whole simulated world — ten OTT services, a current L1
device, a discontinued Nexus 5 — runs the four research questions per
app, and prints the resulting table next to the published one.

    python examples/quickstart.py
"""

from repro import WideLeakStudy
from repro.core.report import EXPECTED_PAPER_TABLE, TableOne


def main() -> None:
    print("Building the study world (10 services, 2 devices)…")
    study = WideLeakStudy.with_default_apps()

    print("Running Q1–Q4 for every app…\n")
    result = study.run()

    print("=== Table I, regenerated from measurements ===")
    print(result.table.render())

    print("\n=== Table I, as published (DSN 2022) ===")
    print(TableOne(rows=list(EXPECTED_PAPER_TABLE.values())).render())

    diffs = result.table.diff_against_paper()
    if diffs:
        print("\nDifferences from the paper:")
        for diff in diffs:
            print(f"  - {diff}")
    else:
        print("\nCell-for-cell match with the published table.")


if __name__ == "__main__":
    main()
