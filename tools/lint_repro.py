#!/usr/bin/env python3
"""Run the repo invariant linter (repro.analysis.lint) over a tree.

    python tools/lint_repro.py [--fix-preview] [PATH ...]

Defaults to ``src/repro`` relative to the repository root. Exits 0 when
clean, 1 when any violation is found (this is what the CI lint job
gates on), 2 on usage errors. ``--fix-preview`` prints the
ready-to-apply unified-diff patch next to each REG001/LRU004 violation
that carries one. Patches are diffed against the original file, so a
file with several violations needs them applied one at a time with a
re-lint (regenerating the remaining patches) in between.
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.analysis.lint import lint_paths_report  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    fix_preview = "--fix-preview" in argv
    argv = [arg for arg in argv if arg != "--fix-preview"]
    paths = [Path(p) for p in argv] or [_REPO_ROOT / "src" / "repro"]
    for path in paths:
        if not path.exists():
            print(f"lint_repro: no such path: {path}", file=sys.stderr)
            return 2
    report = lint_paths_report(list(paths))
    for violation in report.violations:
        print(violation)
        if fix_preview and violation.patch:
            print(violation.patch.rstrip("\n"))
    for suppressed in report.suppressed:
        print(suppressed)
    if report.violations:
        print(f"{len(report.violations)} violation(s)")
        return 1
    if report.suppressed:
        print(f"lint_repro: clean ({len(report.suppressed)} suppression(s))")
    else:
        print("lint_repro: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
