#!/usr/bin/env python3
"""CI smoke for the fleet scheduler: kill, resume, warm-resubmit gate.

    python tools/fleet_smoke.py [--apps N] [--warm-budget-pct P]

Exercises the crash-recovery and incremental-rerun contracts end to end
against a real ``python -m repro fleet submit`` subprocess:

1. **Kill.** Submit a three-app campaign as a child process and
   SIGKILL it as soon as the first checkpoint (done marker) lands —
   the hardest interruption the scheduler claims to survive.
2. **Resume.** ``FleetScheduler.resume`` must carry the interrupted
   campaign to completion and assemble a ``StudyResult`` byte-identical
   to an uninterrupted in-process sequential run.
3. **Warm gate.** A cold submit of the same campaign into a fresh root
   is timed against a warm resubmit; the resubmit must compute zero
   cells and finish in under ``--warm-budget-pct`` (default 20%) of the
   cold wall time.

Exits 0 when every contract holds, 1 on any violation, and prints the
measured timings either way so the CI log shows the margin.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.core.study import WideLeakStudy  # noqa: E402
from repro.fleet import Campaign, FleetScheduler  # noqa: E402
from repro.ott.registry import ALL_PROFILES  # noqa: E402


def _fail(message: str) -> int:
    print(f"fleet_smoke: FAIL — {message}", file=sys.stderr)
    return 1


def _kill_and_resume(profiles, expected_json: str, root: Path) -> int:
    """SIGKILL a live ``repro fleet submit`` and resume it to the same
    artifact. Returns 0 on success."""
    apps = [p.name for p in profiles]
    env = dict(os.environ, PYTHONPATH=str(_REPO_ROOT / "src"))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "submit",
         "--root", str(root), "--apps", *apps],
        cwd=_REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    campaign_id = Campaign(profiles=profiles).campaign_id
    done_dir = root / "campaigns" / campaign_id / "done"
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if len(list(done_dir.glob("*.json"))) >= 1:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.005)
        else:
            return _fail("submit never produced a done marker")
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    if proc.returncode != -signal.SIGKILL:
        return _fail(
            f"campaign finished (rc={proc.returncode}) before the kill "
            "landed; the window is too narrow for this machine"
        )

    scheduler = FleetScheduler(root)
    status = {row["campaign_id"]: row for row in scheduler.status()}
    state = status.get(campaign_id, {}).get("state")
    if state != "interrupted":
        return _fail(f"expected an interrupted checkpoint, found {state!r}")
    resumed = scheduler.resume(campaign_id)
    if resumed.result.to_json() != expected_json:
        return _fail("resumed artifact differs from the sequential run")
    status = {row["campaign_id"]: row for row in scheduler.status()}
    if status[campaign_id]["state"] != "complete":
        return _fail("checkpoint did not read complete after resume")
    markers = len(list(done_dir.glob("*.json")))
    print(
        f"fleet_smoke: kill/resume OK — killed mid-campaign, resumed to a "
        f"byte-identical artifact ({markers} done markers)"
    )
    return 0


def _warm_gate(profiles, expected_json: str, root: Path, budget_pct: float) -> int:
    """Cold vs. warm submit into a fresh root; gate the warm time."""
    scheduler = FleetScheduler(root)
    campaign = Campaign(profiles=profiles)

    start = time.perf_counter()
    cold = scheduler.submit(campaign)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = scheduler.submit(campaign)
    warm_s = time.perf_counter() - start

    pct = warm_s / cold_s * 100.0
    print(
        f"fleet_smoke: cold {cold_s:.3f}s, warm {warm_s:.3f}s "
        f"({pct:.1f}% of cold, budget {budget_pct:.0f}%) — "
        f"warm computed {warm.stats['computed']} of {warm.stats['cells']} cells"
    )
    if cold.result.to_json() != expected_json:
        return _fail("cold fleet artifact differs from the sequential run")
    if warm.result.to_json() != expected_json:
        return _fail("warm fleet artifact differs from the sequential run")
    if warm.stats["computed"] != 0:
        return _fail(f"warm resubmit recomputed {warm.stats['computed']} cells")
    if warm_s >= cold_s * budget_pct / 100.0:
        return _fail(
            f"warm resubmit took {pct:.1f}% of cold (budget {budget_pct:.0f}%)"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", type=int, default=3,
                        help="number of apps in the campaign (default 3)")
    parser.add_argument("--warm-budget-pct", type=float, default=20.0,
                        help="warm resubmit budget as %% of cold (default 20)")
    args = parser.parse_args(argv)

    profiles = ALL_PROFILES[: args.apps]
    expected_json = WideLeakStudy(profiles=profiles).run().to_json()

    with tempfile.TemporaryDirectory(prefix="fleet-smoke-") as tmp:
        tmp_path = Path(tmp)
        rc = _kill_and_resume(profiles, expected_json, tmp_path / "killed")
        if rc:
            return rc
        rc = _warm_gate(
            profiles, expected_json, tmp_path / "gated", args.warm_budget_pct
        )
        if rc:
            return rc
    print("fleet_smoke: all contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
