"""W3C ClearKey: a second DRM system for the Android HAL (see
:mod:`repro.clearkey.cdm`)."""

from repro.clearkey.cdm import (
    CLEARKEY_SYSTEM_ID,
    ClearKeyCdm,
    ClearKeyHalPlugin,
    jwk_key_set,
)

__all__ = [
    "CLEARKEY_SYSTEM_ID",
    "ClearKeyCdm",
    "ClearKeyHalPlugin",
    "jwk_key_set",
]
