"""W3C ClearKey — a second DRM system behind the Android HAL.

§II-B: "This framework supports many DRM systems; which DRM a device
supports varies regarding the device manufacturer." ClearKey is the
W3C's mandatory-to-implement EME key system: content keys travel as a
JSON Web Key set, with no device identity, no provisioning and no
hardware backing — the simplest real key system there is.

Having a second plugin exercises the HAL's multi-DRM dispatch and gives
the Q1 monitor a true negative: a ClearKey playback drives the DRM
framework without a single ``_oecc`` call, so the WideLeak classifier
reports "no Widevine" exactly as it does for Amazon's embedded DRM.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field

from repro.bmff.boxes import SencEntry, SubsampleRange
from repro.bmff.cenc import CencSample, decrypt_sample, decrypt_sample_cbcs
from repro.widevine.oemcrypto import DecryptResult, KeyNotLoadedError

__all__ = ["CLEARKEY_SYSTEM_ID", "ClearKeyCdm", "ClearKeyHalPlugin", "jwk_key_set"]

# The W3C Common PSSH box system id used for ClearKey.
CLEARKEY_SYSTEM_ID = bytes.fromhex("1077efecc0b24d02ace33c1e52e2fb4b")


def _b64url(raw: bytes) -> str:
    return base64.urlsafe_b64encode(raw).rstrip(b"=").decode()


def _unb64url(raw: str) -> bytes:
    padded = raw + "=" * (-len(raw) % 4)
    return base64.urlsafe_b64decode(padded)


def jwk_key_set(keys: dict[bytes, bytes]) -> bytes:
    """Serialize kid→key pairs as an EME-style JWK set."""
    return json.dumps(
        {
            "keys": [
                {"kty": "oct", "kid": _b64url(kid), "k": _b64url(key)}
                for kid, key in sorted(keys.items())
            ],
            "type": "temporary",
        }
    ).encode()


@dataclass
class _ClearKeySession:
    session_id: bytes
    origin: str
    keys: dict[bytes, bytes] = field(default_factory=dict)


class ClearKeyCdm:
    """The ClearKey content decryption module.

    Duck-typed to the same surface :class:`repro.android.mediadrm.MediaDrm`
    drives on the Widevine CDM — sessions, key requests/responses,
    decryption — minus everything ClearKey doesn't have (provisioning,
    generic crypto, secure output).
    """

    VENDOR = "W3C"

    def __init__(self) -> None:
        self._sessions: dict[bytes, _ClearKeySession] = {}
        self._next_session = 1

    @property
    def security_level(self) -> str:
        return "L3"  # software-only by definition

    @property
    def cdm_version(self) -> str:
        return "1.0.0"

    def is_provisioned(self, origin: str) -> bool:
        return True  # no device identity, nothing to provision

    def open_session(self, origin: str) -> bytes:
        session_id = (0xCE000000 + self._next_session).to_bytes(4, "big")
        self._next_session += 1
        self._sessions[session_id] = _ClearKeySession(
            session_id=session_id, origin=origin
        )
        return session_id

    def close_session(self, session_id: bytes) -> None:
        self._sessions.pop(session_id, None)

    def _session(self, session_id: bytes) -> _ClearKeySession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise ValueError(f"unknown ClearKey session {session_id.hex()}") from None

    def get_key_request(self, session_id: bytes, init_data: bytes) -> bytes:
        """EME license request: the wanted kids, base64url-encoded."""
        self._session(session_id)
        from repro.bmff.pssh import WidevinePsshData

        # Reuse the TLV init-data format; only the kids matter here.
        try:
            kids = WidevinePsshData.parse(init_data).key_ids
        except ValueError:
            kids = []
        return json.dumps(
            {"kids": [_b64url(k) for k in kids], "type": "temporary"}
        ).encode()

    def provide_key_response(self, session_id: bytes, response: bytes) -> list[bytes]:
        """Load a JWK set."""
        session = self._session(session_id)
        try:
            payload = json.loads(response.decode())
            entries = payload["keys"]
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            raise ValueError(f"bad JWK set: {exc}") from exc
        loaded = []
        for entry in entries:
            kid = _unb64url(entry["kid"])
            key = _unb64url(entry["k"])
            if len(key) != 16:
                raise ValueError("JWK key must be 16 bytes")
            session.keys[kid] = key
            loaded.append(kid)
        return loaded

    def decrypt(
        self,
        session_id: bytes,
        key_id: bytes,
        data: bytes,
        iv: bytes,
        subsamples: list[tuple[int, int]] | None = None,
        *,
        mode: str = "cenc",
    ) -> DecryptResult:
        session = self._session(session_id)
        key = session.keys.get(key_id)
        if key is None:
            raise KeyNotLoadedError(f"ClearKey {key_id.hex()} not loaded")
        entry = SencEntry(
            iv=iv,
            subsamples=[SubsampleRange(c, p) for c, p in (subsamples or [])],
        )
        sample = CencSample(data=data, entry=entry)
        if mode == "cenc":
            clear = decrypt_sample(sample, key)
        elif mode == "cbcs":
            clear = decrypt_sample_cbcs(sample, key)
        else:
            raise ValueError(f"unsupported protection scheme {mode!r}")
        return DecryptResult(secure=False, data=clear)


class ClearKeyHalPlugin:
    """HAL registration shim for ClearKey."""

    uuid = CLEARKEY_SYSTEM_ID

    def __init__(self) -> None:
        self.cdm = ClearKeyCdm()
        self.security_level = self.cdm.security_level

    def properties(self) -> dict[str, str]:
        return {
            "vendor": ClearKeyCdm.VENDOR,
            "version": self.cdm.cdm_version,
            "description": "ClearKey CDM (simulated)",
            "securityLevel": self.security_level,
            "systemId": self.uuid.hex(),
        }
