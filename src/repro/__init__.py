"""WideLeak reproduction: how over-the-top platforms fail in Android.

A full simulation-based reproduction of the DSN 2022 study by Patat,
Sabt and Fouque. The package provides:

- the study methodology itself (:mod:`repro.core`): DRM API monitoring,
  content-protection auditing, key-usage analysis, legacy-device
  probing, and the key-ladder attack of §IV-D (CVE-2021-0639);
- every substrate the study runs on, built from scratch: crypto
  primitives, ISO-BMFF/CENC, DASH, a network stack with TLS pinning and
  an intercepting proxy, license/provisioning servers, an Android DRM
  stack (MediaDrm / MediaCrypto / MediaCodec / HAL), a Widevine-like
  CDM with L1/L3 backends, Frida-like instrumentation, and ten OTT app
  models.

Quickstart::

    from repro import WideLeakStudy
    study = WideLeakStudy.with_default_apps()
    table = study.run()
    print(table.render())
"""

__version__ = "1.0.0"

__all__ = ["WideLeakStudy", "TableOne", "__version__"]


def __getattr__(name: str):
    # Lazy imports keep substrate packages importable on their own and
    # avoid paying the full dependency graph for `import repro`.
    if name == "WideLeakStudy":
        from repro.core.study import WideLeakStudy

        return WideLeakStudy
    if name == "TableOne":
        from repro.core.report import TableOne

        return TableOne
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
