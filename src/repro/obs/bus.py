"""The observability bus: one hook point, many consumers.

Every observation channel the reproduction used to keep separately —
Figure 1 flow arrows (``FlowTrace``), OEMCrypto hook buffer dumps,
proxy captures, DRM API observations — now emits through one
:class:`ObservabilityBus`:

- ``bus.span(name, **attrs)`` opens a timed, hierarchical span;
- ``bus.event(name, **attrs)`` attaches a point event to the current
  span;
- ``bus.flow(source, target, label)`` draws a Figure 1 arrow — fanned
  out to registered flow consumers (the device's ``FlowTrace`` is one)
  and, when the bus is enabled, recorded on the timeline too;
- ``bus.count`` / ``bus.observe`` feed the metrics registry.

Context is propagated *explicitly*: a bus travels with the worker that
owns it (the study's bus sequentially; one fresh bus per
``DeviceSession`` under ``ParallelStudyRunner``), and crosses the
client/server seam as ``HttpRequest.obs``. There are no thread-locals,
so nothing can leak between workers; per-worker buses are merged into
the study's in profile order with :meth:`absorb`, keeping every
artifact byte-identical to the sequential run.

A disabled bus (``ObservabilityBus(enabled=False)``) is a no-op: spans
return the shared :data:`~repro.obs.span.NULL_SPAN`, events and metrics
vanish, and only flow arrows still reach their consumers (that is the
pre-bus ``FlowTrace`` contract, which Figure 1 regeneration relies on).

A **sampled** bus (``ObservabilityBus(sampler=TraceSampler(4))``) sits
between those extremes: when a root span opens, the sampler makes one
deterministic keep/drop decision and the whole tree inherits it —
dropped trees still time their spans (histograms stay exact) and still
count (counters stay exact), but their span records are never stored.
The kept/dropped tally is exported via :meth:`sampling_snapshot` so a
truncated trace is never silent about it.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import TraceSampler
from repro.obs.span import NULL_SPAN, Span, SpanPoint, structural_tree

__all__ = ["ObservabilityBus", "NULL_BUS", "FlowConsumer"]

FlowConsumer = Callable[[str, str, str], None]


class ObservabilityBus:
    """Collects spans, events, flow arrows and metrics for one run."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: Callable[[], int] | None = None,
        sampler: TraceSampler | None = None,
    ):
        self.enabled = enabled
        # Head-based sampler, shared (not copied) by every worker bus so
        # all buses compute identical per-root decisions. None = record
        # every tree.
        self.sampler = sampler
        # Span timing is wall-clock by design: traces measure where real
        # time goes. Determinism holds structurally — tests compare span
        # trees and counters, never timestamps.
        self._clock = clock if clock is not None else time.perf_counter_ns  # lint: allow(CLK003) spans time real execution; determinism compares structure, not timestamps
        self._lock = threading.RLock()
        self._spans: list[Span] = []
        self._stack: list[Span] = []
        self._events: list[SpanPoint] = []
        self._flow_consumers: list[FlowConsumer] = []
        self._next_id = 1
        self._sampled_roots = 0
        self._dropped_roots = 0
        self._dropped_spans = 0
        self.metrics = MetricsRegistry()

    # -- spans -------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span nested under the currently open one.

        Returns a context manager; the returned span doubles as a
        handle for attaching attributes and point events.
        """
        if not self.enabled:
            return NULL_SPAN
        now = self._clock()
        with self._lock:
            parent = self._stack[-1] if self._stack else None
            if parent is None:
                track = str(attrs.get("app", name))
                # The head-based decision: made exactly once, here, and
                # inherited by every descendant — a tree is recorded
                # whole or not at all.
                sampled = self.sampler is None or self.sampler.keep(name, attrs)
                if sampled:
                    self._sampled_roots += 1
                else:
                    self._dropped_roots += 1
            else:
                track = parent.track
                sampled = parent.sampled
            span = Span(
                name=name,
                # Dropped spans are never stored, so only kept spans
                # consume ids — exported ids stay dense at any rate.
                span_id=self._next_id if sampled else 0,
                parent_id=None if parent is None else parent.span_id,
                track=track,
                start_ns=now,
                attrs=dict(attrs),
                sampled=sampled,
            )
            span._bus = self
            if sampled:
                self._next_id += 1
                self._spans.append(span)
            else:
                self._dropped_spans += 1
            self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        now = self._clock()
        with self._lock:
            if span.end_ns is None:
                span.end_ns = now
            if any(entry is span for entry in self._stack):
                # Close everything opened after (and including) this
                # span: an exception may unwind several levels at once.
                while self._stack:
                    top = self._stack.pop()
                    if top.end_ns is None:
                        top.end_ns = now
                    if top is span:
                        break
        # Dropped spans still observe their duration — sampling trades
        # away span *records*, never histogram or counter exactness —
        # but only recorded spans donate exemplars, so the span-id link
        # in the metrics table can always be followed into the trace.
        self.metrics.observe(
            f"span.{span.name}",
            span.duration_ns,
            exemplar=span.span_id if span.sampled else None,
        )

    def _point(self, span: Span, name: str, attrs: dict[str, Any]) -> None:
        if not self.enabled:
            return
        point = SpanPoint(name=name, ts_ns=self._clock(), attrs=dict(attrs))
        with self._lock:
            span.points.append(point)

    def current_span(self) -> Span | None:
        with self._lock:
            return self._stack[-1] if self._stack else None

    # -- point events ------------------------------------------------------

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous event on the current span (or the
        bus root when no span is open)."""
        if not self.enabled:
            return
        point = SpanPoint(name=name, ts_ns=self._clock(), attrs=dict(attrs))
        with self._lock:
            if self._stack:
                self._stack[-1].points.append(point)
            else:
                self._events.append(point)

    # -- flow arrows -------------------------------------------------------

    def add_flow_consumer(self, consumer: FlowConsumer) -> None:
        """Register a ``(source, target, label)`` sink; the device's
        :class:`~repro.android.trace.FlowTrace` is the canonical one."""
        with self._lock:
            self._flow_consumers.append(consumer)

    def flow(self, source: str, target: str, label: str) -> None:
        """Draw one Figure 1 arrow."""
        for consumer in self._flow_consumers:
            consumer(source, target, label)
        if self.enabled:
            self.metrics.count("flow.arrows")
            self.event("flow", source=source, target=target, label=label)

    # -- metrics shorthands ------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        if self.enabled:
            self.metrics.count(name, value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.observe(name, value)

    # -- reading -----------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Snapshot of recorded spans, in open order."""
        with self._lock:
            return list(self._spans)

    @property
    def events(self) -> list[SpanPoint]:
        """Snapshot of root-level (orphan) point events."""
        with self._lock:
            return list(self._events)

    def span_names(self) -> list[str]:
        return [s.name for s in self.spans]

    def trees(self) -> list[tuple]:
        """Timestamp-free structural projection (see
        :func:`~repro.obs.span.structural_tree`)."""
        return structural_tree(self.spans)

    def sampling_snapshot(self) -> dict[str, Any]:
        """What head-based sampling kept and dropped — embedded in both
        exporters so trace truncation is never silent."""
        with self._lock:
            return {
                "rate": "1/1" if self.sampler is None else self.sampler.rate,
                "seed": 0 if self.sampler is None else self.sampler.seed,
                "sampled_roots": self._sampled_roots,
                "dropped_roots": self._dropped_roots,
                "dropped_spans": self._dropped_spans,
                "recorded_spans": len(self._spans),
            }

    # -- lifecycle ---------------------------------------------------------

    def clear(self) -> None:
        """Drop all recorded data (flow consumers stay registered)."""
        with self._lock:
            self._spans.clear()
            self._stack.clear()
            self._events.clear()
            self._next_id = 1
            self._sampled_roots = 0
            self._dropped_roots = 0
            self._dropped_spans = 0
        self.metrics = MetricsRegistry()

    def absorb(self, other: "ObservabilityBus") -> None:
        """Fold a finished worker bus into this one.

        Span ids are remapped past this bus's id space so trees stay
        intact; called in profile order by the parallel runner, which
        keeps the merged artifact deterministic. Histogram exemplars
        are shifted by the same offset, and the worker's sampling tally
        is added so the merged export still reports every dropped span.
        """
        if other is self:
            return
        with other._lock:
            spans = list(other._spans)
            events = list(other._events)
            id_span = other._next_id
            sampled_roots = other._sampled_roots
            dropped_roots = other._dropped_roots
            dropped_spans = other._dropped_spans
        with self._lock:
            offset = self._next_id - 1
            for span in spans:
                span.span_id += offset
                if span.parent_id is not None:
                    span.parent_id += offset
                span._bus = self
            self._spans.extend(spans)
            self._events.extend(events)
            self._next_id = id_span + offset
            self._sampled_roots += sampled_roots
            self._dropped_roots += dropped_roots
            self._dropped_spans += dropped_spans
        self.metrics.merge(other.metrics, exemplar_offset=offset)


NULL_BUS = ObservabilityBus(enabled=False)
"""Shared disabled bus for components constructed without one."""
