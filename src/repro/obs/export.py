"""Exporters: turn one bus's recordings into shareable artifacts.

Three output formats, one per consumer class:

- :func:`to_jsonl` — a JSON-lines event log (one span or event per
  line), the greppable archive format;
- :func:`to_chrome_trace` — the Chrome ``trace_event`` JSON object
  format, loadable in ``chrome://tracing`` / Perfetto: complete
  (``"ph": "X"``) events per span, instant events per span point, and
  thread-name metadata per track so per-app trees render as lanes;
- :func:`render_metrics_table` — the aggregate counters/histograms as
  a fixed-width table for study summaries and reports.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.bus import ObservabilityBus
from repro.obs.span import Span

__all__ = [
    "to_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_metrics_table",
]

_TRACE_PID = 1


def to_jsonl(bus: ObservabilityBus) -> str:
    """One JSON object per line: spans in open order, then root events,
    then the metrics snapshot, then the sampling record (what
    head-based sampling kept and dropped — truncation is never
    silent)."""
    def dump(payload: dict[str, Any]) -> str:
        return json.dumps(payload, sort_keys=True, default=_json_safe)

    lines: list[str] = []
    for span in bus.spans:
        lines.append(dump({"type": "span", **span.to_dict()}))
    for event in bus.events:
        lines.append(dump({"type": "event", **event.to_dict()}))
    lines.append(dump({"type": "metrics", **bus.metrics.snapshot()}))
    lines.append(dump({"type": "sampling", **bus.sampling_snapshot()}))
    return "\n".join(lines) + "\n"


def _track_ids(spans: list[Span]) -> dict[str, int]:
    """Stable track → tid mapping, in order of first appearance."""
    tids: dict[str, int] = {}
    for span in spans:
        if span.track not in tids:
            tids[span.track] = len(tids) + 1
    return tids


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    return repr(value)


def to_chrome_trace(bus: ObservabilityBus) -> dict[str, Any]:
    """The ``trace_event`` JSON object format (timestamps in µs)."""
    spans = bus.spans
    tids = _track_ids(spans)
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _TRACE_PID,
            "tid": 0,
            "args": {"name": "wideleak-study"},
        },
        # The sampling record rides along as metadata, so a truncated
        # trace opened in Perfetto still says how much it dropped.
        {
            "name": "sampling",
            "ph": "M",
            "pid": _TRACE_PID,
            "tid": 0,
            "args": bus.sampling_snapshot(),
        },
    ]
    for track, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _TRACE_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in spans:
        tid = tids[span.track]
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "pid": _TRACE_PID,
                "tid": tid,
                "ts": span.start_ns / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "args": {k: _json_safe(v) for k, v in span.attrs.items()},
            }
        )
        for point in span.points:
            events.append(
                {
                    "name": point.name,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "pid": _TRACE_PID,
                    "tid": tid,
                    "ts": point.ts_ns / 1000.0,
                    "args": {k: _json_safe(v) for k, v in point.attrs.items()},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(bus: ObservabilityBus, path: str | Path) -> Path:
    """Serialize :func:`to_chrome_trace` to *path*; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(bus), indent=2) + "\n")
    return path


def render_metrics_table(bus: ObservabilityBus) -> str:
    """Counters and span-duration aggregates as a fixed-width table."""
    lines: list[str] = []
    counters = bus.metrics.counters()
    if counters:
        width = max(len(name) for name in counters)
        lines.append(f"{'counter'.ljust(width)}  value")
        lines.append(f"{'-' * width}  -----")
        for name, value in counters.items():
            lines.append(f"{name.ljust(width)}  {value}")
    histograms = bus.metrics.histograms()
    if histograms:
        if lines:
            lines.append("")
        width = max(len(name) for name in histograms)
        lines.append(
            f"{'histogram'.ljust(width)}  {'count':>7s}  {'p50':>10s}"
            f"  {'p95':>10s}  {'p99':>10s}  {'total':>12s}  exemplar"
        )
        lines.append(
            f"{'-' * width}  {'-' * 7}  {'-' * 10}  {'-' * 10}"
            f"  {'-' * 10}  {'-' * 12}  --------"
        )
        for name, stat in histograms.items():
            if name.startswith("span."):
                fmt = lambda v: f"{v / 1e6:.3f}ms"  # noqa: E731
            else:
                fmt = lambda v: f"{v:.1f}"  # noqa: E731
            exemplar = stat.max_exemplar()
            # The exemplar links the stream's worst outlier to its span
            # in the recorded trace (only sampled spans donate one).
            exemplar_cell = "-" if exemplar is None else f"span:{exemplar[1]}"
            lines.append(
                f"{name.ljust(width)}  {stat.count:>7d}"
                f"  {fmt(stat.percentile(50)):>10s}"
                f"  {fmt(stat.percentile(95)):>10s}"
                f"  {fmt(stat.percentile(99)):>10s}"
                f"  {fmt(stat.total):>12s}  {exemplar_cell}"
            )
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)
