"""Head-based trace sampling for the observability bus.

At study scale (the ROADMAP's millions-of-users north star) recording
every span is too much: a full ten-app run already produces hundreds of
spans, and the bus is on every request path. :class:`TraceSampler`
implements the standard production answer — **head-based sampling per
root span**: the keep/drop decision is made once, when a root span
opens, and the whole tree under that root inherits it. An app's trace
is either recorded whole or not at all; a tree is never split.

Three properties make the sampler safe inside this repo's
byte-identity contract:

- **Deterministic.** The decision is a pure function of
  ``(seed, rate, root identity)`` — a SHA-256 of the root span's name
  and sorted attributes — never of arrival order or a shared counter.
  Re-running the study with the same seed and rate keeps the *same*
  app trees; so does fanning it out over workers, because every
  worker's bus computes the identical decision for the identical root.
- **Exactness-preserving.** Sampling drops *span records*, nothing
  else: counters still count, histograms still observe every closed
  span's duration (dropped or kept), flow arrows still reach their
  consumers. ``StudyResult.to_json()`` is byte-identical at any rate.
- **Never silent.** The bus tallies kept/dropped roots and dropped
  spans; both exporters embed that record
  (:meth:`~repro.obs.bus.ObservabilityBus.sampling_snapshot`) so a
  truncated trace always says it is one.
"""

from __future__ import annotations

import hashlib

__all__ = ["TraceSampler", "parse_rate"]


def parse_rate(text: str) -> int:
    """Parse a ``1/N`` (or bare ``N``) sampling-rate spec into the
    denominator N. ``1/1`` means keep everything."""
    spec = text.strip()
    if "/" in spec:
        numerator, _, denominator = spec.partition("/")
        if numerator.strip() != "1":
            raise ValueError(f"sampling rate must be 1/N, got {text!r}")
        spec = denominator
    try:
        value = int(spec)
    except ValueError:
        raise ValueError(f"sampling rate must be 1/N, got {text!r}") from None
    if value < 1:
        raise ValueError(f"sampling denominator must be >= 1, got {text!r}")
    return value


class TraceSampler:
    """Deterministic keep-1-in-N decision maker for root spans.

    Instances are immutable and shareable: the study's bus and every
    per-worker bus hold the *same* sampler, which is what makes the
    parallel merge reproduce the sequential run's kept set exactly.
    """

    __slots__ = ("denominator", "seed")

    def __init__(self, denominator: int, *, seed: int = 0):
        if denominator < 1:
            raise ValueError(f"denominator must be >= 1, got {denominator}")
        self.denominator = denominator
        self.seed = seed

    @classmethod
    def from_rate(cls, rate: str, *, seed: int = 0) -> "TraceSampler":
        """Build a sampler from a ``1/N`` spec (see :func:`parse_rate`)."""
        return cls(parse_rate(rate), seed=seed)

    @property
    def rate(self) -> str:
        return f"1/{self.denominator}"

    def root_key(self, name: str, attrs: dict) -> str:
        """The identity a root span is sampled by: its name plus its
        sorted attributes (``study.app`` roots differ per app)."""
        rendered = ",".join(f"{k}={v!r}" for k, v in sorted(attrs.items()))
        return f"{name}|{rendered}"

    def keep(self, name: str, attrs: dict) -> bool:
        """Decide, once, whether the tree under this root is recorded."""
        if self.denominator == 1:
            return True
        key = f"{self.seed}:{self.root_key(name, attrs)}"
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.denominator == 0

    def to_dict(self) -> dict:
        return {"rate": self.rate, "seed": self.seed}

    def __repr__(self) -> str:  # pragma: no cover
        return f"TraceSampler(rate={self.rate!r}, seed={self.seed})"
