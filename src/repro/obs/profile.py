"""Trace analytics over recorded observability buses.

The paper's methodology is trace analysis — WideLeak's findings come
from reading hooked ``_oecc*`` call sequences and timing the
CDM/license/CDN pipeline. This module applies the same discipline to
the reproduction's *own* traces: where does a study spend its time,
and which app's license path regressed?

Four tools, all pure functions of a span list:

- :func:`critical_path` — per app root span, the chain of child spans
  that bounds wall time (at every level, the longest child);
- :func:`self_time_profile` — total-time / self-time aggregation by
  span name (self = duration minus children), rendered as a top-N
  table by :func:`render_profile`;
- :func:`to_collapsed_stacks` — the Brendan Gregg collapsed-stack
  format (``root;child;leaf weight``, weight = self time in ns), which
  ``flamegraph.pl`` and `speedscope <https://speedscope.app>`_ load
  directly;
- :func:`diff_traces` — per-span-name count/duration deltas between
  two recorded traces (JSONL or Chrome ``trace_event`` files, or the
  ``BENCH_study.json`` trajectory), with a regression threshold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.bus import ObservabilityBus
from repro.obs.span import Span

__all__ = [
    "critical_path",
    "critical_paths",
    "self_time_profile",
    "SelfTimeStat",
    "render_profile",
    "to_collapsed_stacks",
    "write_flame_graph",
    "SpanAggregate",
    "load_trace_profile",
    "DiffRow",
    "TraceDiff",
    "diff_traces",
]

# Roots the study orchestrator opens; profile output leads with these.
_STUDY_ROOT_PREFIX = "study."


def _children_by_parent(spans: list[Span]) -> dict[int | None, list[Span]]:
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    return children


def critical_path(spans: list[Span], root: Span) -> list[Span]:
    """The chain of spans bounding *root*'s wall time: from the root,
    repeatedly descend into the longest child (ties: earliest start,
    then lowest id — deterministic for the fake-clock test buses)."""
    children = _children_by_parent(spans)
    path = [root]
    current = root
    while True:
        kids = children.get(current.span_id, [])
        if not kids:
            return path
        current = max(
            kids, key=lambda s: (s.duration_ns, -s.start_ns, -s.span_id)
        )
        path.append(current)


def critical_paths(spans: list[Span]) -> list[list[Span]]:
    """One critical path per root span, study roots (``study.*``)
    first, otherwise in recording order."""
    roots = [s for s in spans if s.parent_id is None]
    study_roots = [r for r in roots if r.name.startswith(_STUDY_ROOT_PREFIX)]
    chosen = study_roots if study_roots else roots
    return [critical_path(spans, root) for root in chosen]


@dataclass
class SelfTimeStat:
    """Per-span-name aggregate of a recorded trace."""

    name: str
    count: int = 0
    total_ns: int = 0
    self_ns: int = 0

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0


def self_time_profile(spans: list[Span]) -> dict[str, SelfTimeStat]:
    """Aggregate count / total time / self time by span name.

    Self time is a span's duration minus its children's durations,
    clamped at zero (clock skew between open and close can otherwise
    produce negative slivers)."""
    children = _children_by_parent(spans)
    stats: dict[str, SelfTimeStat] = {}
    for span in spans:
        child_ns = sum(c.duration_ns for c in children.get(span.span_id, []))
        stat = stats.get(span.name)
        if stat is None:
            stat = stats[span.name] = SelfTimeStat(name=span.name)
        stat.count += 1
        stat.total_ns += span.duration_ns
        stat.self_ns += max(span.duration_ns - child_ns, 0)
    return stats


def _ms(ns: float) -> str:
    return f"{ns / 1e6:.3f}ms"


def render_profile(bus: ObservabilityBus, *, top: int = 15) -> str:
    """Critical paths plus the top-N self-time table, as plain text."""
    spans = bus.spans
    if not spans:
        return "(no spans recorded)"
    lines: list[str] = []
    for path in critical_paths(spans):
        root = path[0]
        app = root.attrs.get("app", root.track)
        lines.append(f"critical path — {app} ({root.name} {_ms(root.duration_ns)})")
        for depth, span in enumerate(path):
            prefix = "  " * depth + ("└─ " if depth else "")
            lines.append(f"  {prefix}{span.name:<{max(38 - 2 * depth, 8)}s} {_ms(span.duration_ns):>12s}")
        lines.append("")

    stats = sorted(
        self_time_profile(spans).values(),
        key=lambda s: (-s.self_ns, s.name),
    )
    wall_ns = sum(s.self_ns for s in stats) or 1
    shown = stats[:top]
    width = max([len(s.name) for s in shown] + [len("span")])
    lines.append(
        f"{'span'.ljust(width)}  {'count':>7s}  {'total':>12s}  {'self':>12s}  {'self%':>6s}"
    )
    lines.append(f"{'-' * width}  {'-' * 7}  {'-' * 12}  {'-' * 12}  {'-' * 6}")
    for stat in shown:
        share = 100.0 * stat.self_ns / wall_ns
        lines.append(
            f"{stat.name.ljust(width)}  {stat.count:>7d}  {_ms(stat.total_ns):>12s}"
            f"  {_ms(stat.self_ns):>12s}  {share:>5.1f}%"
        )
    if len(stats) > top:
        lines.append(f"({len(stats) - top} more span names below the top {top})")
    return "\n".join(lines)


# -- flame-graph export ----------------------------------------------------


def to_collapsed_stacks(bus: ObservabilityBus) -> str:
    """The collapsed-stack flame-graph format: one ``a;b;c weight``
    line per distinct stack, weight = aggregate self time in
    nanoseconds. Loadable by ``flamegraph.pl`` and speedscope."""
    spans = bus.spans
    by_id = {s.span_id: s for s in spans}
    children = _children_by_parent(spans)
    weights: dict[str, int] = {}
    for span in spans:
        frames = [span.name]
        parent_id = span.parent_id
        while parent_id is not None:
            parent = by_id.get(parent_id)
            if parent is None:  # orphaned by a partial merge; root here
                break
            frames.append(parent.name)
            parent_id = parent.parent_id
        stack = ";".join(reversed(frames))
        child_ns = sum(c.duration_ns for c in children.get(span.span_id, []))
        self_ns = max(span.duration_ns - child_ns, 0)
        weights[stack] = weights.get(stack, 0) + self_ns
    lines = [
        f"{stack} {weight}"
        for stack, weight in sorted(weights.items())
        if weight > 0
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_flame_graph(bus: ObservabilityBus, path: str | Path) -> Path:
    """Serialize :func:`to_collapsed_stacks` to *path*; returns it."""
    path = Path(path)
    path.write_text(to_collapsed_stacks(bus))
    return path


# -- trace diff ------------------------------------------------------------


@dataclass
class SpanAggregate:
    """Per-span-name totals loaded from one trace file."""

    count: int = 0
    total_ns: float = 0.0

    def add(self, duration_ns: float) -> None:
        self.count += 1
        self.total_ns += duration_ns


def _profile_from_jsonl(text: str) -> dict[str, SpanAggregate]:
    profile: dict[str, SpanAggregate] = {}
    starts: list[float] = []
    ends: list[float] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") != "span":
            continue
        profile.setdefault(record["name"], SpanAggregate()).add(
            record.get("duration_ns") or 0
        )
        if record.get("start_ns") is not None:
            starts.append(record["start_ns"])
        if record.get("end_ns") is not None:
            ends.append(record["end_ns"])
    if starts and ends:
        wall = SpanAggregate()
        wall.add(max(ends) - min(starts))
        profile["study.total"] = wall
    return profile


def _profile_from_chrome(doc: dict[str, Any]) -> dict[str, SpanAggregate]:
    profile: dict[str, SpanAggregate] = {}
    starts: list[float] = []
    ends: list[float] = []
    for event in doc.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        duration_ns = float(event.get("dur", 0)) * 1000.0
        profile.setdefault(event["name"], SpanAggregate()).add(duration_ns)
        ts_ns = float(event.get("ts", 0)) * 1000.0
        starts.append(ts_ns)
        ends.append(ts_ns + duration_ns)
    if starts and ends:
        wall = SpanAggregate()
        wall.add(max(ends) - min(starts))
        profile["study.total"] = wall
    return profile


def _profile_from_bench(doc: dict[str, Any]) -> dict[str, SpanAggregate]:
    """``BENCH_study.json`` as a pseudo-trace: one row per trajectory
    phase, plus ``study.total`` from the traced full-study wall time so
    a real trace can be compared against the benchmarked baseline."""
    profile: dict[str, SpanAggregate] = {}
    for point in doc.get("trajectory", []):
        entry = SpanAggregate()
        entry.add(float(point["seconds"]) * 1e9)
        profile[point["phase"]] = entry
    observability = doc.get("observability", {})
    traced = observability.get("traced_seconds")
    if traced is not None:
        total = SpanAggregate()
        total.add(float(traced) * 1e9)
        profile["study.total"] = total
    return profile


def load_trace_profile(path: str | Path) -> dict[str, SpanAggregate]:
    """Load per-span-name aggregates from a trace file.

    Accepts all three artifact shapes this repo produces: the JSONL
    event log, the Chrome ``trace_event`` JSON, and the
    ``BENCH_study.json`` trajectory. Every loaded profile carries a
    synthetic ``study.total`` row (the trace's wall-clock extent) so
    traces and benchmarks share at least one comparable name."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict):
            if "traceEvents" in doc:
                return _profile_from_chrome(doc)
            if "trajectory" in doc:
                return _profile_from_bench(doc)
    return _profile_from_jsonl(text)


@dataclass
class DiffRow:
    """One span name's movement between two traces."""

    name: str
    old_count: int
    new_count: int
    old_ns: float
    new_ns: float

    @property
    def ratio(self) -> float | None:
        """new/old total duration; None when the old side is absent."""
        if self.old_ns <= 0:
            return None
        return self.new_ns / self.old_ns

    def regressed(self, threshold: float) -> bool:
        """Did the total duration grow past ``old * (1 + threshold)``?"""
        ratio = self.ratio
        return (
            self.old_count > 0
            and self.new_count > 0
            and ratio is not None
            and ratio > 1.0 + threshold
        )


@dataclass
class TraceDiff:
    """Per-span-name deltas between an old and a new trace."""

    rows: list[DiffRow] = field(default_factory=list)
    threshold: float = 0.25

    def regressions(self) -> list[DiffRow]:
        return [row for row in self.rows if row.regressed(self.threshold)]

    def render(self) -> str:
        if not self.rows:
            return "(no comparable spans)"
        width = max(len(row.name) for row in self.rows)
        lines = [
            f"{'span'.ljust(width)}  {'count':>11s}  {'total old':>12s}"
            f"  {'total new':>12s}  {'Δ':>8s}",
            f"{'-' * width}  {'-' * 11}  {'-' * 12}  {'-' * 12}  {'-' * 8}",
        ]
        ordered = sorted(
            self.rows,
            key=lambda r: (-abs(r.new_ns - r.old_ns), r.name),
        )
        for row in ordered:
            counts = f"{row.old_count}→{row.new_count}"
            ratio = row.ratio
            if ratio is None:
                delta = "new" if row.new_count else "-"
            else:
                delta = f"{(ratio - 1.0) * 100.0:+.1f}%"
            flag = "  REGRESSED" if row.regressed(self.threshold) else ""
            lines.append(
                f"{row.name.ljust(width)}  {counts:>11s}  {_ms(row.old_ns):>12s}"
                f"  {_ms(row.new_ns):>12s}  {delta:>8s}{flag}"
            )
        regressed = self.regressions()
        lines.append("")
        if regressed:
            lines.append(
                f"{len(regressed)} span(s) regressed past "
                f"+{self.threshold * 100.0:.0f}%: "
                + ", ".join(row.name for row in regressed)
            )
        else:
            lines.append(
                f"no span regressed past +{self.threshold * 100.0:.0f}%"
            )
        return "\n".join(lines)


def diff_traces(
    old: dict[str, SpanAggregate],
    new: dict[str, SpanAggregate],
    *,
    threshold: float = 0.25,
) -> TraceDiff:
    """Compare two loaded trace profiles name-by-name."""
    rows = [
        DiffRow(
            name=name,
            old_count=old[name].count if name in old else 0,
            new_count=new[name].count if name in new else 0,
            old_ns=old[name].total_ns if name in old else 0.0,
            new_ns=new[name].total_ns if name in new else 0.0,
        )
        for name in sorted(set(old) | set(new))
    ]
    return TraceDiff(rows=rows, threshold=threshold)
