"""Metrics registry of the observability bus.

Two instrument kinds cover what the study needs:

- **counters** — monotonically increasing integers (requests issued,
  bytes moved, licenses granted, flow arrows drawn). Counter values are
  a deterministic function of the pipeline, so a stable subset is wired
  into ``StudyResult.summary()`` and must come out byte-identical across
  sequential, parallel, cold and warm runs — the benchmarks assert it.
- **histograms** — value distributions (span durations in nanoseconds,
  payload sizes). Durations are real time and therefore *excluded* from
  the study artifact; they feed the metrics table and the exporters.

Registries are lock-guarded (the parallel runner's per-worker buses are
merged through :meth:`MetricsRegistry.merge`, and a server handler runs
on whatever worker thread carried the request in).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

__all__ = ["HistogramStat", "MetricsRegistry"]


@dataclass
class HistogramStat:
    """Aggregated distribution of one named value stream."""

    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "HistogramStat") -> None:
        self.count += other.count
        self.total += other.total
        for bound in (other.minimum, other.maximum):
            if bound is None:
                continue
            self.minimum = bound if self.minimum is None else min(self.minimum, bound)
            self.maximum = bound if self.maximum is None else max(self.maximum, bound)

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }


class MetricsRegistry:
    """Named counters and histograms, safe for concurrent emission."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, HistogramStat] = {}

    # -- emission ----------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            stat = self._histograms.get(name)
            if stat is None:
                stat = HistogramStat()
                self._histograms[name] = stat
            stat.observe(value)

    # -- reading -----------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Sorted copy of every counter."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def histograms(self) -> dict[str, HistogramStat]:
        with self._lock:
            return dict(sorted(self._histograms.items()))

    def snapshot(self) -> dict[str, Any]:
        return {
            "counters": self.counters(),
            "histograms": {
                name: stat.to_dict() for name, stat in self.histograms().items()
            },
        }

    # -- merging -----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry (a finished worker's) into this one."""
        with other._lock:
            counters = dict(other._counters)
            histograms = {
                name: (stat.count, stat.total, stat.minimum, stat.maximum)
                for name, stat in other._histograms.items()
            }
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, (count, total, minimum, maximum) in histograms.items():
                stat = self._histograms.get(name)
                if stat is None:
                    stat = HistogramStat()
                    self._histograms[name] = stat
                stat.merge(
                    HistogramStat(
                        count=count, total=total, minimum=minimum, maximum=maximum
                    )
                )
