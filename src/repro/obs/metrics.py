"""Metrics registry of the observability bus.

Two instrument kinds cover what the study needs:

- **counters** — monotonically increasing integers (requests issued,
  bytes moved, licenses granted, flow arrows drawn). Counter values are
  a deterministic function of the pipeline, so a stable subset is wired
  into ``StudyResult.summary()`` and must come out byte-identical across
  sequential, parallel, cold, warm — and sampled — runs; the benchmarks
  assert it.
- **histograms** — value distributions (span durations in nanoseconds,
  payload sizes). Durations are real time and therefore *excluded* from
  the study artifact; they feed the metrics table and the exporters.

Histograms bucket every observation against **fixed power-of-two
boundaries** (bucket *i* holds values in ``(2^(i-1), 2^i]``; bucket 0
holds values ``<= 1``). Fixed boundaries make the merge exact and
order-independent — bucket counts simply add — so p50/p95/p99 computed
after a parallel merge equal the sequential run's, whatever order the
worker registries were folded in. Buckets can carry an **exemplar**: the
span id of the largest observation that landed in them, linking a
latency outlier in the metrics table straight to its span in the
recorded trace (only sampled spans donate exemplars, so the link never
dangles).

Registries are lock-guarded (the parallel runner's per-worker buses are
merged through :meth:`MetricsRegistry.merge`, and a server handler runs
on whatever worker thread carried the request in).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any

__all__ = ["HistogramStat", "MetricsRegistry", "bucket_index", "bucket_bounds"]

# Bucket index of the catch-all overflow bucket: 2^64 ns is ~584 years,
# far above any duration or payload size this repo observes.
_OVERFLOW_BUCKET = 64


def bucket_index(value: float) -> int:
    """The fixed bucket a value falls into: smallest ``i`` with
    ``value <= 2^i`` (0 for values <= 1, capped at the overflow)."""
    if value <= 1:
        return 0
    mantissa, exponent = math.frexp(value)  # value = mantissa * 2^exponent
    if mantissa == 0.5:  # exact power of two sits in its own bucket
        exponent -= 1
    return min(exponent, _OVERFLOW_BUCKET)


def bucket_bounds(index: int) -> tuple[float, float]:
    """``(lower, upper]`` boundaries of one fixed bucket."""
    if index <= 0:
        return (0.0, 1.0)
    return (float(2 ** (index - 1)), float(2**index))


@dataclass
class HistogramStat:
    """Aggregated distribution of one named value stream."""

    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None
    # bucket index -> observation count; sparse, fixed boundaries.
    buckets: dict[int, int] = field(default_factory=dict)
    # bucket index -> (value, span_id) of the largest exemplar-bearing
    # observation in that bucket. Merge keeps the max value (ties: the
    # lower span id), which is commutative and associative.
    exemplars: dict[int, tuple[float, int]] = field(default_factory=dict)

    def observe(self, value: float, *, exemplar: int | None = None) -> None:
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        if exemplar is not None:
            self._offer_exemplar(index, value, exemplar)

    def _offer_exemplar(self, index: int, value: float, span_id: int) -> None:
        current = self.exemplars.get(index)
        if (
            current is None
            or value > current[0]
            or (value == current[0] and span_id < current[1])
        ):
            self.exemplars[index] = (value, span_id)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-estimated q-th percentile (0 < q <= 100).

        Walks the cumulative bucket counts to the target rank, then
        interpolates linearly inside the bucket; clamped to the exact
        observed [min, max]. Deterministic and merge-exact: the same
        bucket counts give the same answer regardless of observation
        or merge order.
        """
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            in_bucket = self.buckets[index]
            if cumulative + in_bucket >= target:
                lower, upper = bucket_bounds(index)
                fraction = (target - cumulative) / in_bucket
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self.minimum or 0.0), self.maximum or estimate)
            cumulative += in_bucket
        return self.maximum or 0.0

    def max_exemplar(self) -> tuple[float, int] | None:
        """The ``(value, span_id)`` exemplar of the highest populated
        bucket — the trace link for this stream's worst outlier."""
        for index in sorted(self.exemplars, reverse=True):
            return self.exemplars[index]
        return None

    def merge(self, other: "HistogramStat") -> None:
        self.count += other.count
        self.total += other.total
        for bound in (other.minimum, other.maximum):
            if bound is None:
                continue
            self.minimum = bound if self.minimum is None else min(self.minimum, bound)
            self.maximum = bound if self.maximum is None else max(self.maximum, bound)
        for index, in_bucket in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + in_bucket
        for index, (value, span_id) in other.exemplars.items():
            self._offer_exemplar(index, value, span_id)

    def copy(self) -> "HistogramStat":
        return HistogramStat(
            count=self.count,
            total=self.total,
            minimum=self.minimum,
            maximum=self.maximum,
            buckets=dict(self.buckets),
            exemplars=dict(self.exemplars),
        )

    def shift_exemplars(self, offset: int) -> None:
        """Remap exemplar span ids by *offset* (the bus merge remaps
        worker span ids the same way, so trace links stay valid)."""
        if offset:
            self.exemplars = {
                index: (value, span_id + offset)
                for index, (value, span_id) in self.exemplars.items()
            }

    def to_dict(self) -> dict[str, Any]:
        exemplar = self.max_exemplar()
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": [
                [bucket_bounds(index)[1], self.buckets[index]]
                for index in sorted(self.buckets)
            ],
            "exemplar_span_id": None if exemplar is None else exemplar[1],
        }


class MetricsRegistry:
    """Named counters and histograms, safe for concurrent emission."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, HistogramStat] = {}

    # -- emission ----------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: float, *, exemplar: int | None = None) -> None:
        with self._lock:
            stat = self._histograms.get(name)
            if stat is None:
                stat = HistogramStat()
                self._histograms[name] = stat
            stat.observe(value, exemplar=exemplar)

    # -- reading -----------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Sorted copy of every counter."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def histograms(self) -> dict[str, HistogramStat]:
        with self._lock:
            return dict(sorted(self._histograms.items()))

    def snapshot(self) -> dict[str, Any]:
        return {
            "counters": self.counters(),
            "histograms": {
                name: stat.to_dict() for name, stat in self.histograms().items()
            },
        }

    # -- merging -----------------------------------------------------------

    def merge(self, other: "MetricsRegistry", *, exemplar_offset: int = 0) -> None:
        """Fold another registry (a finished worker's) into this one.

        ``exemplar_offset`` is the span-id offset the bus merge applied
        to the worker's spans; exemplars are shifted by the same amount
        so they keep pointing at the remapped span records.
        """
        with other._lock:
            counters = dict(other._counters)
            histograms = {
                name: stat.copy() for name, stat in other._histograms.items()
            }
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, incoming in histograms.items():
                incoming.shift_exemplars(exemplar_offset)
                stat = self._histograms.get(name)
                if stat is None:
                    self._histograms[name] = incoming
                else:
                    stat.merge(incoming)
