"""Span model of the observability bus.

A :class:`Span` is one timed, named unit of work — a license exchange,
an HTTP request, a playback — with attributes, point events and a
parent link. Spans form per-app trees rooted by the study orchestrator;
the tree shape is deterministic (a pure function of the pipeline run),
while the timestamps are real wall-clock nanoseconds, which is what the
exporters turn into Chrome ``trace_event`` timelines.

Code paths that may run without a bus use :data:`NULL_SPAN`, a shared
do-nothing span handle, so instrumentation is branch-free at the call
site and literally free when observation is off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Span", "SpanPoint", "NULL_SPAN", "structural_tree"]


@dataclass(frozen=True)
class SpanPoint:
    """One instantaneous event attached to a span (or the bus root)."""

    name: str
    ts_ns: int
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "ts_ns": self.ts_ns, "attrs": dict(self.attrs)}


@dataclass
class Span:
    """One finished (or in-flight) unit of work."""

    name: str
    span_id: int
    parent_id: int | None
    track: str
    start_ns: int
    end_ns: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    points: list[SpanPoint] = field(default_factory=list)
    # Head-based sampling verdict, inherited from the root: a dropped
    # span still times its work (histograms stay exact) but is never
    # recorded, so a tree is either exported whole or not at all.
    sampled: bool = field(default=True, compare=False)

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    # -- handle protocol ---------------------------------------------------
    #
    # Spans double as the handle returned by ``bus.span(...)``; the bus
    # sets ``_bus`` on open. The context-manager protocol lives on the
    # bus (`ObservabilityBus._close`) so all list mutation stays behind
    # the bus lock.

    _bus: Any = field(default=None, repr=False, compare=False)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._bus is not None:
            self._bus._close(self)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to an open span."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a point event to this span."""
        if self._bus is not None:
            self._bus._point(self, name, attrs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "track": self.track,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
            "points": [p.to_dict() for p in self.points],
        }


class _NullSpan:
    """The disabled-bus span handle: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


def structural_tree(spans: list[Span]) -> list[tuple]:
    """The timestamp-free projection of a span list: nested
    ``(name, sorted-attrs, children)`` tuples in start order.

    Two runs of the same pipeline — sequential or fanned out over
    workers — must produce equal structural trees per app; the
    equivalence tests compare exactly this.
    """
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)

    def build(span: Span) -> tuple:
        kids = children.get(span.span_id, [])
        return (
            span.name,
            tuple(sorted((k, repr(v)) for k, v in span.attrs.items())),
            tuple(build(k) for k in kids),
        )

    return [build(root) for root in children.get(None, [])]
