"""``repro.obs`` — the structured observability bus.

The paper's methodology *is* observability: Frida hooks on the
``_oecc`` surface, SSL-unpinned proxy captures and the Figure 1
message-flow diagram are three views of one playback. This package
gives the reproduction a single spine for all of them:

- :mod:`repro.obs.span` — hierarchical spans with attributes and point
  events;
- :mod:`repro.obs.metrics` — counters and fixed-bucket histograms
  (p50/p95/p99 with exemplar span ids), merge-safe;
- :mod:`repro.obs.bus` — the :class:`ObservabilityBus` every layer
  emits through (explicitly propagated, one per worker, no
  thread-locals);
- :mod:`repro.obs.sampling` — deterministic head-based sampling per
  root span (keep 1-in-N app trees whole; counters stay exact);
- :mod:`repro.obs.profile` — trace analytics: critical paths,
  self-time profiles, collapsed-stack flame graphs, trace diff;
- :mod:`repro.obs.export` — JSON-lines, Chrome ``trace_event``
  (``chrome://tracing`` / Perfetto) and metrics-table exporters.
"""

from repro.obs.bus import NULL_BUS, ObservabilityBus
from repro.obs.export import (
    render_metrics_table,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
)
from repro.obs.metrics import HistogramStat, MetricsRegistry
from repro.obs.profile import (
    TraceDiff,
    critical_path,
    critical_paths,
    diff_traces,
    load_trace_profile,
    render_profile,
    self_time_profile,
    to_collapsed_stacks,
    write_flame_graph,
)
from repro.obs.sampling import TraceSampler, parse_rate
from repro.obs.span import NULL_SPAN, Span, SpanPoint, structural_tree

__all__ = [
    "ObservabilityBus",
    "NULL_BUS",
    "Span",
    "SpanPoint",
    "NULL_SPAN",
    "structural_tree",
    "MetricsRegistry",
    "HistogramStat",
    "TraceSampler",
    "parse_rate",
    "critical_path",
    "critical_paths",
    "self_time_profile",
    "render_profile",
    "to_collapsed_stacks",
    "write_flame_graph",
    "TraceDiff",
    "diff_traces",
    "load_trace_profile",
    "to_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_metrics_table",
]
