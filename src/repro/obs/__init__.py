"""``repro.obs`` — the structured observability bus.

The paper's methodology *is* observability: Frida hooks on the
``_oecc`` surface, SSL-unpinned proxy captures and the Figure 1
message-flow diagram are three views of one playback. This package
gives the reproduction a single spine for all of them:

- :mod:`repro.obs.span` — hierarchical spans with attributes and point
  events;
- :mod:`repro.obs.metrics` — counters and histograms, merge-safe;
- :mod:`repro.obs.bus` — the :class:`ObservabilityBus` every layer
  emits through (explicitly propagated, one per worker, no
  thread-locals);
- :mod:`repro.obs.export` — JSON-lines, Chrome ``trace_event``
  (``chrome://tracing`` / Perfetto) and metrics-table exporters.
"""

from repro.obs.bus import NULL_BUS, ObservabilityBus
from repro.obs.export import (
    render_metrics_table,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
)
from repro.obs.metrics import HistogramStat, MetricsRegistry
from repro.obs.span import NULL_SPAN, Span, SpanPoint, structural_tree

__all__ = [
    "ObservabilityBus",
    "NULL_BUS",
    "Span",
    "SpanPoint",
    "NULL_SPAN",
    "structural_tree",
    "MetricsRegistry",
    "HistogramStat",
    "to_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_metrics_table",
]
