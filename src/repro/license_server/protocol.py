"""Wire formats of the (simulated) Widevine provisioning and license
protocols.

Real Widevine uses protobuf messages; we use canonical JSON with hex
fields so intercepted buffers are debuggable, while keeping the exact
cryptographic structure the paper reverse-engineered (§IV-D):

- the **keybox device key** authenticates provisioning and protects
  delivery of the **device RSA key**;
- the device RSA key signs license requests (RSASSA-PSS) and receives
  the **session key** (RSAES-OAEP);
- session keys derive MAC/encryption keys (AES-CMAC KDF, context =
  serialized request) that wrap the **content keys**.

Every message round-trips through bytes, so hooks and the proxy observe
real serialized buffers.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any

__all__ = [
    "ProtocolError",
    "ProvisionRequest",
    "ProvisionResponse",
    "LicenseRequest",
    "WrappedKey",
    "KeyControl",
    "LicenseResponse",
    "canonical_bytes",
]


class ProtocolError(ValueError):
    """Malformed or unverifiable protocol message."""


def canonical_bytes(payload: dict[str, Any]) -> bytes:
    """Canonical serialization used for MACs and signatures."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def _require(payload: dict[str, Any], key: str) -> Any:
    try:
        return payload[key]
    except KeyError:
        raise ProtocolError(f"missing field {key!r}") from None


def _hex(value: bytes) -> str:
    return value.hex()


def _unhex(value: str, name: str) -> bytes:
    try:
        return bytes.fromhex(value)
    except (ValueError, TypeError):
        raise ProtocolError(f"field {name!r} is not valid hex") from None


@dataclass
class ProvisionRequest:
    """CDM → provisioning server.

    Authenticated by an AES-CMAC under a key derived from the keybox
    device key, proving the request comes from a device holding a valid
    keybox.
    """

    device_id: bytes
    nonce: bytes
    cdm_version: str
    security_level: str
    mac: bytes = b""

    def signing_payload(self) -> bytes:
        return canonical_bytes(
            {
                "type": "provision_request",
                "device_id": _hex(self.device_id),
                "nonce": _hex(self.nonce),
                "cdm_version": self.cdm_version,
                "security_level": self.security_level,
            }
        )

    def serialize(self) -> bytes:
        return canonical_bytes(
            {
                "type": "provision_request",
                "device_id": _hex(self.device_id),
                "nonce": _hex(self.nonce),
                "cdm_version": self.cdm_version,
                "security_level": self.security_level,
                "mac": _hex(self.mac),
            }
        )

    @classmethod
    def parse(cls, data: bytes) -> "ProvisionRequest":
        payload = _load_json(data, expected_type="provision_request")
        return cls(
            device_id=_unhex(_require(payload, "device_id"), "device_id"),
            nonce=_unhex(_require(payload, "nonce"), "nonce"),
            cdm_version=_require(payload, "cdm_version"),
            security_level=_require(payload, "security_level"),
            mac=_unhex(_require(payload, "mac"), "mac"),
        )


@dataclass
class ProvisionResponse:
    """Provisioning server → CDM: the wrapped device RSA key.

    ``wrapped_rsa_key`` is AES-CBC under a provisioning key derived from
    the keybox device key and the request nonce — "the installation
    process is protected by the keybox" (§IV-D).
    """

    device_id: bytes
    iv: bytes
    wrapped_rsa_key: bytes
    mac: bytes = b""

    def signing_payload(self) -> bytes:
        return canonical_bytes(
            {
                "type": "provision_response",
                "device_id": _hex(self.device_id),
                "iv": _hex(self.iv),
                "wrapped_rsa_key": _hex(self.wrapped_rsa_key),
            }
        )

    def serialize(self) -> bytes:
        return canonical_bytes(
            {
                "type": "provision_response",
                "device_id": _hex(self.device_id),
                "iv": _hex(self.iv),
                "wrapped_rsa_key": _hex(self.wrapped_rsa_key),
                "mac": _hex(self.mac),
            }
        )

    @classmethod
    def parse(cls, data: bytes) -> "ProvisionResponse":
        payload = _load_json(data, expected_type="provision_response")
        return cls(
            device_id=_unhex(_require(payload, "device_id"), "device_id"),
            iv=_unhex(_require(payload, "iv"), "iv"),
            wrapped_rsa_key=_unhex(
                _require(payload, "wrapped_rsa_key"), "wrapped_rsa_key"
            ),
            mac=_unhex(_require(payload, "mac"), "mac"),
        )


@dataclass
class LicenseRequest:
    """CDM → license server, signed with the device RSA key."""

    session_id: bytes
    device_id: bytes
    rsa_fingerprint: bytes
    pssh_data: bytes
    nonce: bytes
    cdm_version: str
    security_level: str
    device_model: str
    signature: bytes = b""

    def signing_payload(self) -> bytes:
        return canonical_bytes(
            {
                "type": "license_request",
                "session_id": _hex(self.session_id),
                "device_id": _hex(self.device_id),
                "rsa_fingerprint": _hex(self.rsa_fingerprint),
                "pssh_data": _hex(self.pssh_data),
                "nonce": _hex(self.nonce),
                "cdm_version": self.cdm_version,
                "security_level": self.security_level,
                "device_model": self.device_model,
            }
        )

    def serialize(self) -> bytes:
        return canonical_bytes(
            {
                "type": "license_request",
                "session_id": _hex(self.session_id),
                "device_id": _hex(self.device_id),
                "rsa_fingerprint": _hex(self.rsa_fingerprint),
                "pssh_data": _hex(self.pssh_data),
                "nonce": _hex(self.nonce),
                "cdm_version": self.cdm_version,
                "security_level": self.security_level,
                "device_model": self.device_model,
                "signature": _hex(self.signature),
            }
        )

    @classmethod
    def parse(cls, data: bytes) -> "LicenseRequest":
        payload = _load_json(data, expected_type="license_request")
        return cls(
            session_id=_unhex(_require(payload, "session_id"), "session_id"),
            device_id=_unhex(_require(payload, "device_id"), "device_id"),
            rsa_fingerprint=_unhex(
                _require(payload, "rsa_fingerprint"), "rsa_fingerprint"
            ),
            pssh_data=_unhex(_require(payload, "pssh_data"), "pssh_data"),
            nonce=_unhex(_require(payload, "nonce"), "nonce"),
            cdm_version=_require(payload, "cdm_version"),
            security_level=_require(payload, "security_level"),
            device_model=_require(payload, "device_model"),
            signature=_unhex(_require(payload, "signature"), "signature"),
        )


@dataclass(frozen=True)
class KeyControl:
    """Usage constraints attached to one content key."""

    max_height: int | None = None  # resolution cap (None = unlimited)
    require_security_level: str | None = None
    license_duration_s: int | None = None  # None = unbounded

    def to_json(self) -> dict[str, Any]:
        return {
            "max_height": self.max_height,
            "require_security_level": self.require_security_level,
            "license_duration_s": self.license_duration_s,
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "KeyControl":
        return cls(
            max_height=payload.get("max_height"),
            require_security_level=payload.get("require_security_level"),
            license_duration_s=payload.get("license_duration_s"),
        )


@dataclass
class WrappedKey:
    """One content key, AES-CBC-wrapped under the session encryption key."""

    key_id: bytes
    iv: bytes
    wrapped_key: bytes
    control: KeyControl = field(default_factory=KeyControl)

    def to_json(self) -> dict[str, Any]:
        return {
            "key_id": _hex(self.key_id),
            "iv": _hex(self.iv),
            "wrapped_key": _hex(self.wrapped_key),
            "control": self.control.to_json(),
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "WrappedKey":
        return cls(
            key_id=_unhex(_require(payload, "key_id"), "key_id"),
            iv=_unhex(_require(payload, "iv"), "iv"),
            wrapped_key=_unhex(_require(payload, "wrapped_key"), "wrapped_key"),
            control=KeyControl.from_json(payload.get("control", {})),
        )


@dataclass
class LicenseResponse:
    """License server → CDM.

    ``wrapped_session_key`` is RSAES-OAEP to the device RSA key;
    ``derivation_context`` tells the CDM what to feed the CMAC KDF
    (the serialized request's signing payload); the MAC is HMAC-SHA256
    under the derived server MAC key.
    """

    session_id: bytes
    wrapped_session_key: bytes
    derivation_context: bytes
    keys: list[WrappedKey] = field(default_factory=list)
    mac: bytes = b""

    def signing_payload(self) -> bytes:
        return canonical_bytes(
            {
                "type": "license",
                "session_id": _hex(self.session_id),
                "wrapped_session_key": _hex(self.wrapped_session_key),
                "derivation_context": _hex(self.derivation_context),
                "keys": [k.to_json() for k in self.keys],
            }
        )

    def serialize(self) -> bytes:
        return canonical_bytes(
            {
                "type": "license",
                "session_id": _hex(self.session_id),
                "wrapped_session_key": _hex(self.wrapped_session_key),
                "derivation_context": _hex(self.derivation_context),
                "keys": [k.to_json() for k in self.keys],
                "mac": _hex(self.mac),
            }
        )

    @classmethod
    def parse(cls, data: bytes) -> "LicenseResponse":
        payload = _load_json(data, expected_type="license")
        return cls(
            session_id=_unhex(_require(payload, "session_id"), "session_id"),
            wrapped_session_key=_unhex(
                _require(payload, "wrapped_session_key"), "wrapped_session_key"
            ),
            derivation_context=_unhex(
                _require(payload, "derivation_context"), "derivation_context"
            ),
            keys=[WrappedKey.from_json(k) for k in _require(payload, "keys")],
            mac=_unhex(_require(payload, "mac"), "mac"),
        )


def _load_json(data: bytes, *, expected_type: str) -> dict[str, Any]:
    try:
        payload = json.loads(data.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"not a protocol message: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("protocol message must be a JSON object")
    if payload.get("type") != expected_type:
        raise ProtocolError(
            f"expected message type {expected_type!r}, got {payload.get('type')!r}"
        )
    return payload
