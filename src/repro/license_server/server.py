"""The Widevine license server of one streaming service.

Verifies RSA-signed license requests from provisioned devices, applies
the service's revocation and resolution policies, and returns content
keys wrapped under a fresh session key — the server half of the key
ladder of §IV-D.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
from dataclasses import dataclass, field, replace

from repro.bmff.pssh import WidevinePsshData
from repro.crypto.kdf import SessionKeys, derive_session_keys
from repro.crypto.modes import cbc_encrypt
from repro.crypto.rng import derive_rng
from repro.crypto.rsa import oaep_encrypt, pss_verify
from repro.dash.packager import PackagedTitle
from repro.license_server.policy import RevocationPolicy, ServicePolicy
from repro.license_server.protocol import (
    KeyControl,
    LicenseRequest,
    LicenseResponse,
    ProtocolError,
    WrappedKey,
)
from repro.license_server.provisioning import ProvisioningRecords
from repro.media.content import Title, TrackKind
from repro.net.http import HttpRequest, HttpResponse
from repro.net.server import VirtualServer
from repro.obs.bus import NULL_BUS

__all__ = ["LicenseServer", "RegisteredKey", "SessionRecord"]


@dataclass(frozen=True)
class RegisteredKey:
    """One content key known to the license service."""

    key_id: bytes
    key: bytes
    control: KeyControl


@dataclass
class SessionRecord:
    """Server-side record of an issued license session.

    Services using the generic (non-DASH) secure channel — Netflix's URI
    protection — derive the same generic keys from this record.
    """

    session_id: bytes
    session_key: bytes
    derivation_context: bytes
    derived: SessionKeys = field(init=False)

    def __post_init__(self) -> None:
        self.derived = derive_session_keys(self.session_key, self.derivation_context)


class LicenseServer(VirtualServer):
    """A service's license endpoint (``POST /license``)."""

    def __init__(
        self,
        hostname: str,
        policy: ServicePolicy,
        records: ProvisioningRecords,
        *,
        revocation: RevocationPolicy | None = None,
    ):
        super().__init__(hostname)
        self.policy = policy
        self._records = records
        self._revocation = revocation or policy.revocation
        self._keys: dict[bytes, RegisteredKey] = {}
        self._rng = derive_rng(f"license-server/{hostname}")
        self.sessions: dict[bytes, SessionRecord] = {}
        self.denied_requests: list[str] = []
        self.route("/license", self._handle_license)

    # -- key registration -------------------------------------------------

    def register_packaged_title(self, packaged: PackagedTitle, title: Title) -> None:
        """Register every content key of a packaged title, attaching
        resolution controls: HD keys demand L1."""
        for rep in title.representations:
            kid = packaged.kid_by_rep.get(rep.rep_id)
            if kid is None:
                continue
            key = packaged.content_keys[kid]
            if rep.kind is TrackKind.VIDEO and rep.resolution is not None:
                height = rep.resolution.height
                control = KeyControl(
                    max_height=height,
                    require_security_level=(
                        "L1" if height > self.policy.l3_max_height else None
                    ),
                )
            else:
                control = KeyControl()
            existing = self._keys.get(kid)
            if existing is not None and existing.key != key:
                raise ValueError(f"conflicting key material for kid {kid.hex()}")
            # Shared audio/video keys keep the *least* restrictive
            # control so the shared key stays usable on L3 — matching
            # the real-world "minimal" behaviour.
            if existing is None or existing.control.require_security_level:
                self._keys[kid] = RegisteredKey(key_id=kid, key=key, control=control)

    def register_key(self, key_id: bytes, key: bytes, control: KeyControl) -> None:
        """Register one standalone key (e.g. a secure-channel bootstrap
        key that belongs to no packaged title)."""
        self._keys[key_id] = RegisteredKey(key_id=key_id, key=key, control=control)

    def known_key_ids(self) -> set[bytes]:
        return set(self._keys)

    # -- license issuing -----------------------------------------------------

    def _handle_license(self, request: HttpRequest) -> HttpResponse:
        bus = request.obs if request.obs is not None else NULL_BUS
        with bus.span("license.issue", host=self.hostname) as span:
            response = self._issue_license(request)
            span.set(status=response.status)
            bus.count("license.issued" if response.ok else "license.denied")
            return response

    def _issue_license(self, request: HttpRequest) -> HttpResponse:
        try:
            lic_request = LicenseRequest.parse(request.body)
        except ProtocolError as exc:
            return HttpResponse.bad_request(str(exc))

        public = self._records.public_key(lic_request.rsa_fingerprint)
        if public is None:
            self.denied_requests.append("unknown device certificate")
            return HttpResponse.forbidden("unknown device certificate")
        if not pss_verify(
            public, lic_request.signing_payload(), lic_request.signature
        ):
            self.denied_requests.append("bad request signature")
            return HttpResponse.forbidden("bad request signature")

        if not self._revocation.allows(lic_request.cdm_version):
            self.denied_requests.append(
                f"revoked CDM {lic_request.cdm_version}"
            )
            return HttpResponse.forbidden(
                f"device revoked: CDM {lic_request.cdm_version}"
            )

        # §V-C: the netflix-1080p lesson. A careful service verifies the
        # claimed security level against the provisioning record; one
        # that trusts the client's claim hands HD keys to L3 forgers.
        attested_level = self._records.security_level(lic_request.rsa_fingerprint)
        if self.policy.verifies_client_level and attested_level is not None:
            if lic_request.security_level != attested_level:
                self.denied_requests.append(
                    f"claimed {lic_request.security_level}, attested "
                    f"{attested_level}"
                )
                return HttpResponse.forbidden(
                    "security level claim does not match provisioning record"
                )

        try:
            pssh = WidevinePsshData.parse(lic_request.pssh_data)
        except ValueError as exc:
            return HttpResponse.bad_request(f"bad pssh data: {exc}")

        session_key = self._rng.generate(16)
        context = lic_request.signing_payload()
        derived = derive_session_keys(session_key, context)

        wrapped_keys: list[WrappedKey] = []
        for kid in pssh.key_ids:
            registered = self._keys.get(kid)
            if registered is None:
                continue
            requires_l1 = registered.control.require_security_level == "L1"
            if requires_l1 and lic_request.security_level != "L1":
                # Resolution gating: no HD keys for software-only CDMs.
                continue
            control = registered.control
            if (
                self.policy.license_duration_s is not None
                and control.license_duration_s is None
            ):
                control = replace(
                    control, license_duration_s=self.policy.license_duration_s
                )
            iv = self._rng.generate(16)
            wrapped_keys.append(
                WrappedKey(
                    key_id=kid,
                    iv=iv,
                    wrapped_key=cbc_encrypt(derived.encryption, iv, registered.key),
                    control=control,
                )
            )

        if not wrapped_keys:
            self.denied_requests.append("no grantable keys")
            return HttpResponse.forbidden("no grantable keys for this request")

        response = LicenseResponse(
            session_id=lic_request.session_id,
            wrapped_session_key=oaep_encrypt(public, session_key, rng=self._rng),
            derivation_context=context,
            keys=wrapped_keys,
        )
        response.mac = hmac_mod.new(
            derived.mac_server, response.signing_payload(), hashlib.sha256
        ).digest()

        self.sessions[lic_request.session_id] = SessionRecord(
            session_id=lic_request.session_id,
            session_key=session_key,
            derivation_context=context,
        )
        return HttpResponse(status=200, body=response.serialize())
