"""Service-side key and revocation policies — the study's subject.

Q3 distinguishes two key-usage regimes (Table I):

- **Recommended** — every video resolution gets its own key *and* audio
  gets keys distinct from any video key (Widevine/EME guidance);
- **Minimal** — audio is either delivered in clear or encrypted under
  the *same* key as the video of the corresponding resolution.

Q4 distinguishes services that enforce Widevine's device revocation
(refusing provisioning/licenses to discontinued CDMs) from those that
favour reach and serve everyone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.rng import derive_rng
from repro.dash.packager import TrackCrypto
from repro.media.content import Title, TrackKind
from repro.widevine.versions import CdmVersion

__all__ = [
    "KeyUsagePolicy",
    "AudioProtection",
    "RevocationPolicy",
    "ServicePolicy",
    "assign_track_crypto",
]


class AudioProtection(enum.Enum):
    """How a service protects audio tracks (the Q2/Q3 axis)."""

    CLEAR = "clear"  # audio delivered unencrypted (Netflix, myCanal, Salto)
    SHARED_KEY = "shared-key"  # audio reuses a video key (most services)
    DISTINCT_KEY = "distinct-key"  # audio gets its own keys (Amazon only)


class KeyUsagePolicy(enum.Enum):
    """Table I's "Widevine Key Usage" column values."""

    MINIMUM = "Minimum"
    RECOMMENDED = "Recommended"


@dataclass(frozen=True)
class RevocationPolicy:
    """Whether a service serves discontinued devices.

    ``min_cdm_version`` is the floor a client must meet; ``None`` means
    the service ignores revocation entirely (reach over security).
    """

    min_cdm_version: CdmVersion | None = None

    @property
    def enforced(self) -> bool:
        return self.min_cdm_version is not None

    def allows(self, cdm_version: str) -> bool:
        if self.min_cdm_version is None:
            return True
        return CdmVersion.parse(cdm_version) >= self.min_cdm_version


@dataclass(frozen=True)
class ServicePolicy:
    """Everything a service decided about protection."""

    service: str
    audio_protection: AudioProtection
    revocation: RevocationPolicy
    # Resolution ceiling for software-only (L3) clients; HD needs L1.
    l3_max_height: int = 540
    # Keys identical for all subscribers (what §IV-D observed everywhere).
    per_account_keys: bool = False
    # Cross-check the security level a license request *claims* against
    # the level the provisioning records attest. Services that skip this
    # are open to the netflix-1080p profile-spoofing exploit (§V-C):
    # an L3 client claiming "L1" receives HD keys.
    verifies_client_level: bool = True
    # Streaming-license lifetime in seconds; None = unbounded.
    license_duration_s: int | None = None

    @property
    def key_usage(self) -> KeyUsagePolicy:
        if self.audio_protection is AudioProtection.DISTINCT_KEY:
            return KeyUsagePolicy.RECOMMENDED
        return KeyUsagePolicy.MINIMUM


def _content_key(service: str, title_id: str, group: str, account: str | None) -> bytes:
    label = f"content-key/{service}/{title_id}/{group}"
    if account is not None:
        label += f"/{account}"
    return derive_rng(label).generate(16)


def _key_id(service: str, title_id: str, group: str) -> bytes:
    return derive_rng(f"key-id/{service}/{title_id}/{group}").generate(16)


def assign_track_crypto(
    policy: ServicePolicy,
    title: Title,
    *,
    account: str | None = None,
) -> dict[str, TrackCrypto]:
    """Produce the per-representation key assignment for *title*.

    Video is always encrypted, one key per resolution (every service the
    paper measured does this). Audio follows the policy. Subtitles are
    always clear — there is no Android DRM API for them.
    """
    account_part = account if policy.per_account_keys else None
    assignment: dict[str, TrackCrypto] = {}
    video_group_by_height: dict[int, str] = {}

    for rep in title.representations:
        if rep.kind is TrackKind.VIDEO:
            assert rep.resolution is not None
            group = f"video-{rep.resolution.height}"
            video_group_by_height[rep.resolution.height] = group
            assignment[rep.rep_id] = TrackCrypto(
                key_id=_key_id(policy.service, title.title_id, group),
                key=_content_key(
                    policy.service, title.title_id, group, account_part
                ),
            )

    default_video_group = (
        video_group_by_height[min(video_group_by_height)]
        if video_group_by_height
        else None
    )

    for rep in title.representations:
        if rep.kind is TrackKind.VIDEO:
            continue
        if rep.kind is TrackKind.TEXT:
            assignment[rep.rep_id] = TrackCrypto(key_id=None, key=None)
            continue
        # Audio.
        if policy.audio_protection is AudioProtection.CLEAR:
            assignment[rep.rep_id] = TrackCrypto(key_id=None, key=None)
        elif policy.audio_protection is AudioProtection.SHARED_KEY:
            if default_video_group is None:
                raise ValueError("shared-key audio requires a video track")
            group = default_video_group
            assignment[rep.rep_id] = TrackCrypto(
                key_id=_key_id(policy.service, title.title_id, group),
                key=_content_key(
                    policy.service, title.title_id, group, account_part
                ),
            )
        else:  # DISTINCT_KEY
            group = f"audio-{rep.language}"
            assignment[rep.rep_id] = TrackCrypto(
                key_id=_key_id(policy.service, title.title_id, group),
                key=_content_key(
                    policy.service, title.title_id, group, account_part
                ),
            )
    return assignment
