"""Provisioning infrastructure: keybox authority and provisioning server.

The :class:`KeyboxAuthority` models the factory-side keybox database
(every legitimate device's keybox is known to the provisioning side —
that is what makes the keybox a *shared-secret* root of trust). The
:class:`ProvisioningServer` installs per-device RSA keys, protected by
the keybox, and is the point where revocation-enforcing services turn
discontinued devices away (Table I's G# entries fail exactly here).
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
import threading

from repro.crypto.kdf import derive_key, derive_session_keys
from repro.crypto.modes import cbc_encrypt
from repro.crypto.rng import derive_rng
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.license_server.policy import RevocationPolicy
from repro.license_server.protocol import (
    ProtocolError,
    ProvisionRequest,
    ProvisionResponse,
)
from repro.net.http import HttpRequest, HttpResponse
from repro.net.server import VirtualServer
from repro.obs.bus import NULL_BUS
from repro.widevine.keybox import Keybox
from repro.widevine.oemcrypto import LABEL_PROV_MAC, LABEL_PROVISIONING

__all__ = ["KeyboxAuthority", "ProvisioningRecords", "ProvisioningServer"]


class KeyboxAuthority:
    """Factory-side registry: device_id → keybox (+ attested level).

    The factory knows each device's true Widevine capability: an L1
    keybox is burned into a TEE, an L3 one ships in software. That
    attested level — not whatever a client later *claims* — is what a
    careful license service checks HD entitlements against (see the
    netflix-1080p episode, §V-C).

    The registry is shared study-wide while the parallel runner boots
    per-worker device sessions concurrently, so access is serialised
    behind a lock. Registration is last-writer-wins, which is exactly
    what re-booting a device with the same serial (same factory keybox)
    needs.
    """

    def __init__(self) -> None:
        self._keyboxes: dict[bytes, Keybox] = {}
        self._levels: dict[bytes, str] = {}
        self._lock = threading.Lock()

    def register(self, keybox: Keybox, *, security_level: str = "L3") -> None:
        with self._lock:
            self._keyboxes[keybox.device_id] = keybox
            self._levels[keybox.device_id] = security_level

    def device_key_for(self, device_id: bytes) -> bytes:
        with self._lock:
            try:
                return self._keyboxes[device_id].device_key
            except KeyError:
                raise LookupError(
                    f"unknown device id {device_id.hex()[:16]}…"
                ) from None

    def attested_level_for(self, device_id: bytes) -> str:
        with self._lock:
            try:
                return self._levels[device_id]
            except KeyError:
                raise LookupError(
                    f"unknown device id {device_id.hex()[:16]}…"
                ) from None

    def knows(self, device_id: bytes) -> bool:
        with self._lock:
            return device_id in self._keyboxes


class ProvisioningRecords:
    """Provisioned device RSA public keys, consulted by license servers."""

    def __init__(self) -> None:
        self._by_fingerprint: dict[bytes, RsaPublicKey] = {}
        self._level_by_fingerprint: dict[bytes, str] = {}

    def record(self, public: RsaPublicKey, security_level: str) -> None:
        self._by_fingerprint[public.fingerprint()] = public
        self._level_by_fingerprint[public.fingerprint()] = security_level

    def public_key(self, fingerprint: bytes) -> RsaPublicKey | None:
        return self._by_fingerprint.get(fingerprint)

    def security_level(self, fingerprint: bytes) -> str | None:
        return self._level_by_fingerprint.get(fingerprint)


def device_rsa_key(device_id: bytes) -> RsaPrivateKey:
    """The RSA key the provisioning side mints for a device.

    Deterministic per device id (and cached), so re-provisioning gives
    the same key — and so the study's attack can be validated end to
    end against ground truth.
    """
    return generate_keypair(2048, label=f"device-rsa/{device_id.hex()}")


class ProvisioningServer(VirtualServer):
    """A service's provisioning endpoint (``POST /provision``)."""

    def __init__(
        self,
        hostname: str,
        authority: KeyboxAuthority,
        records: ProvisioningRecords,
        *,
        revocation: RevocationPolicy | None = None,
    ):
        super().__init__(hostname)
        self._authority = authority
        self._records = records
        self._revocation = revocation or RevocationPolicy()
        self._rng = derive_rng(f"prov-server/{hostname}")
        self.route("/provision", self._handle_provision)

    def _handle_provision(self, request: HttpRequest) -> HttpResponse:
        bus = request.obs if request.obs is not None else NULL_BUS
        with bus.span("provision.issue", host=self.hostname) as span:
            response = self._issue_provision(request)
            span.set(status=response.status)
            bus.count(
                "provision.issued" if response.ok else "provision.denied"
            )
            return response

    def _issue_provision(self, request: HttpRequest) -> HttpResponse:
        try:
            prov_request = ProvisionRequest.parse(request.body)
        except ProtocolError as exc:
            return HttpResponse.bad_request(str(exc))

        if not self._authority.knows(prov_request.device_id):
            return HttpResponse.forbidden("unknown device")
        device_key = self._authority.device_key_for(prov_request.device_id)

        # Verify the keybox-rooted MAC: the CDM derived session keys from
        # the device key with the request payload as context and signed
        # with the client MAC key.
        payload = prov_request.signing_payload()
        derived = derive_session_keys(device_key, payload)
        expected = hmac_mod.new(derived.mac_client, payload, hashlib.sha256).digest()
        if not hmac_mod.compare_digest(expected, prov_request.mac):
            return HttpResponse.forbidden("provisioning MAC mismatch")

        # Revocation: the G# failure mode of Table I. A discontinued CDM
        # is refused before any key material is delivered.
        if not self._revocation.allows(prov_request.cdm_version):
            return HttpResponse(
                status=403,
                body=(
                    f"device revoked: CDM {prov_request.cdm_version} below "
                    f"required {self._revocation.min_cdm_version}"
                ).encode(),
            )

        rsa = device_rsa_key(prov_request.device_id)
        prov_key = derive_key(device_key, LABEL_PROVISIONING, prov_request.nonce, 128)
        iv = self._rng.generate(16)
        response = ProvisionResponse(
            device_id=prov_request.device_id,
            iv=iv,
            wrapped_rsa_key=cbc_encrypt(prov_key, iv, rsa.export_secret()),
        )
        mac_key = derive_key(device_key, LABEL_PROV_MAC, prov_request.device_id, 256)
        response.mac = hmac_mod.new(
            mac_key, response.signing_payload(), hashlib.sha256
        ).digest()

        # Record the *factory-attested* level, never the claimed one: a
        # software client asserting "L1" must not upgrade its record.
        attested = self._authority.attested_level_for(prov_request.device_id)
        self._records.record(rsa.public, attested)
        return HttpResponse(status=200, body=response.serialize())
