"""License infrastructure: protocol messages, service policies, the
provisioning server (keybox authority) and the license server."""

from repro.license_server.policy import (
    AudioProtection,
    KeyUsagePolicy,
    RevocationPolicy,
    ServicePolicy,
    assign_track_crypto,
)
from repro.license_server.protocol import (
    KeyControl,
    LicenseRequest,
    LicenseResponse,
    ProtocolError,
    ProvisionRequest,
    ProvisionResponse,
    WrappedKey,
    canonical_bytes,
)
from repro.license_server.provisioning import (
    KeyboxAuthority,
    ProvisioningRecords,
    ProvisioningServer,
    device_rsa_key,
)
from repro.license_server.server import LicenseServer, RegisteredKey, SessionRecord

__all__ = [
    "AudioProtection",
    "KeyUsagePolicy",
    "RevocationPolicy",
    "ServicePolicy",
    "assign_track_crypto",
    "KeyControl",
    "LicenseRequest",
    "LicenseResponse",
    "ProtocolError",
    "ProvisionRequest",
    "ProvisionResponse",
    "WrappedKey",
    "canonical_bytes",
    "KeyboxAuthority",
    "ProvisioningRecords",
    "ProvisioningServer",
    "device_rsa_key",
    "LicenseServer",
    "RegisteredKey",
    "SessionRecord",
]
