"""Content-addressed result store for fleet cells.

Each cell's artifact is persisted as canonical JSON under its cache
key: ``objects/<key[:2]>/<key>.json``. The key is a SHA-256 over every
input the cell depends on (see :mod:`repro.fleet.job`), so the store
never needs invalidation logic — a changed input is a different key.

Durability model
----------------

- **Atomic writes.** Every object lands via a same-directory temp file
  and ``os.replace``, so a reader (or a concurrent writer of the same
  key) only ever sees a complete JSON document. Two writers racing on
  one key both write the same bytes (the key fixes the content), so
  last-replace-wins is harmless.
- **Objects are ground truth.** The ``manifest.json`` index (sizes +
  LRU sequence numbers) is a cache of the objects directory, rewritten
  atomically read-modify-write under a thread lock *and* an
  inter-process ``flock`` on ``manifest.lock`` — the scheduler runs N
  worker processes against one store root, and without the file lock
  concurrent rewrites would silently drop each other's hit/seq
  updates and evict against stale totals. After a crash the manifest
  is still reconciled against the directory scan on the next open, so
  a stale index can never lose stored results (and on platforms
  without ``fcntl`` the store degrades to exactly that: best-effort
  counters, objects intact).
- **LRU bound.** With ``max_bytes`` set, inserts evict the
  least-recently-used objects (lowest sequence number; ``get`` bumps
  recency) until the store fits. Eviction only ever costs recompute,
  never correctness: the scheduler treats a missing key as a cold cell.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path

try:
    import fcntl
except ImportError:  # non-POSIX: counters/bound become best-effort
    fcntl = None

__all__ = ["ResultStore"]

_MANIFEST = "manifest.json"
_MANIFEST_LOCK = "manifest.lock"
_OBJECTS = "objects"

# Unique-per-write temp suffixes: the counter disambiguates writers in
# one process (several store instances may share one root), the pid and
# thread id disambiguate across processes and threads.
_TMP_IDS = itertools.count()


class ResultStore:
    """Content-addressed, LRU-bounded JSON store keyed by cell cache key."""

    def __init__(self, root: str | Path, *, max_bytes: int | None = None):
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        (self.root / _OBJECTS).mkdir(parents=True, exist_ok=True)
        with self._locked():
            self._reconcile_locked()

    @contextmanager
    def _locked(self):
        """Serialise manifest read-modify-write across threads *and*
        processes: a thread lock for this instance, then an exclusive
        ``flock`` on a sidecar lock file (never on ``manifest.json``
        itself — ``os.replace`` swaps that inode on every save). Other
        instances in the same process hold different fds, so the flock
        excludes them too."""
        with self._lock:
            if fcntl is None:
                yield
                return
            with open(self.root / _MANIFEST_LOCK, "ab") as lock_file:
                fcntl.flock(lock_file, fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(lock_file, fcntl.LOCK_UN)

    # -- paths -------------------------------------------------------------

    def _object_path(self, key: str) -> Path:
        return self.root / _OBJECTS / key[:2] / f"{key}.json"

    @property
    def _manifest_path(self) -> Path:
        return self.root / _MANIFEST

    # -- manifest ----------------------------------------------------------

    def _load_manifest_locked(self) -> dict:
        try:
            manifest = json.loads(self._manifest_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            manifest = {}
        manifest.setdefault("entries", {})
        manifest.setdefault("next_seq", 1)
        manifest.setdefault("hits", 0)
        manifest.setdefault("misses", 0)
        manifest.setdefault("evictions", 0)
        return manifest

    def _write_atomic(self, path: Path, payload: bytes) -> None:
        """Same-directory temp + ``os.replace``: readers never see a
        torn file, concurrent writers settle last-replace-wins."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (
            f".tmp-{os.getpid()}-{threading.get_ident()}-{next(_TMP_IDS)}"
        )
        tmp.write_bytes(payload)
        os.replace(tmp, path)

    def _save_manifest_locked(self, manifest: dict) -> None:
        self._write_atomic(
            self._manifest_path,
            json.dumps(manifest, sort_keys=True).encode("utf-8"),
        )

    def _reconcile_locked(self) -> dict:
        """Make the manifest agree with the objects directory.

        Objects present on disk but unknown to the manifest (a crash
        between object write and index write, or a concurrent writer's
        lost manifest update) are adopted with fresh recency; manifest
        entries whose object vanished (eviction by another process) are
        dropped.
        """
        manifest = self._load_manifest_locked()
        entries = manifest["entries"]
        on_disk: dict[str, int] = {}
        objects_root = self.root / _OBJECTS
        for shard in sorted(objects_root.iterdir()) if objects_root.is_dir() else []:
            if not shard.is_dir():
                continue
            for obj in sorted(shard.glob("*.json")):
                try:
                    on_disk[obj.stem] = obj.stat().st_size
                except FileNotFoundError:
                    continue  # evicted mid-scan by another process
        changed = False
        for key in list(entries):
            if key not in on_disk:
                del entries[key]
                changed = True
        for key, size in on_disk.items():
            entry = entries.get(key)
            if entry is None:
                entries[key] = {"size": size, "seq": manifest["next_seq"]}
                manifest["next_seq"] += 1
                changed = True
            elif entry["size"] != size:
                entry["size"] = size
                changed = True
        if changed:
            self._save_manifest_locked(manifest)
        return manifest

    # -- public API --------------------------------------------------------

    def put(self, key: str, payload: dict) -> None:
        """Persist one cell result under its cache key, atomically."""
        blob = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        with self._locked():
            self._write_atomic(self._object_path(key), blob)
            manifest = self._load_manifest_locked()
            manifest["entries"][key] = {
                "size": len(blob),
                "seq": manifest["next_seq"],
            }
            manifest["next_seq"] += 1
            if self.max_bytes is not None:
                self._evict_locked(manifest, self.max_bytes, protect=key)
            self._save_manifest_locked(manifest)

    def get(self, key: str) -> dict | None:
        """Fetch one cell result; ``None`` on miss. Hits bump recency."""
        path = self._object_path(key)
        try:
            payload = json.loads(path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            with self._locked():
                manifest = self._load_manifest_locked()
                manifest["misses"] += 1
                manifest["entries"].pop(key, None)
                self._save_manifest_locked(manifest)
            return None
        with self._locked():
            manifest = self._load_manifest_locked()
            manifest["hits"] += 1
            entry = manifest["entries"].setdefault(
                key, {"size": path.stat().st_size if path.exists() else 0, "seq": 0}
            )
            entry["seq"] = manifest["next_seq"]
            manifest["next_seq"] += 1
            self._save_manifest_locked(manifest)
        return payload

    def contains(self, key: str) -> bool:
        return self._object_path(key).is_file()

    def delete(self, key: str) -> bool:
        with self._locked():
            manifest = self._load_manifest_locked()
            existed = manifest["entries"].pop(key, None) is not None
            try:
                os.unlink(self._object_path(key))
                existed = True
            except FileNotFoundError:
                pass
            self._save_manifest_locked(manifest)
        return existed

    def keys(self) -> tuple[str, ...]:
        with self._locked():
            manifest = self._reconcile_locked()
        return tuple(sorted(manifest["entries"]))

    def stats(self) -> dict[str, int]:
        with self._locked():
            manifest = self._reconcile_locked()
        entries = manifest["entries"]
        return {
            "objects": len(entries),
            "bytes": sum(entry["size"] for entry in entries.values()),
            "hits": manifest["hits"],
            "misses": manifest["misses"],
            "evictions": manifest["evictions"],
        }

    def gc(self, max_bytes: int | None = None) -> int:
        """Evict LRU objects until the store fits ``max_bytes`` (defaults
        to the configured bound). Returns the number evicted."""
        bound = max_bytes if max_bytes is not None else self.max_bytes
        if bound is None:
            return 0
        with self._locked():
            manifest = self._reconcile_locked()
            evicted = self._evict_locked(manifest, bound)
            if evicted:
                self._save_manifest_locked(manifest)
        return evicted

    # -- eviction ----------------------------------------------------------

    def _evict_locked(
        self, manifest: dict, bound: int, *, protect: str | None = None
    ) -> int:
        """Drop lowest-seq objects until total size <= bound."""
        entries = manifest["entries"]
        total = sum(entry["size"] for entry in entries.values())
        evicted = 0
        for key in sorted(entries, key=lambda k: entries[k]["seq"]):
            if total <= bound:
                break
            if key == protect:
                continue
            total -= entries[key]["size"]
            del entries[key]
            try:
                os.unlink(self._object_path(key))
            except FileNotFoundError:
                pass
            manifest["evictions"] += 1
            evicted += 1
        return evicted
