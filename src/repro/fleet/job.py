"""The fleet job model: a campaign decomposed into cacheable cells.

A *campaign* is one submission of the WideLeak study — a profile set,
a seed, optionally the §IV-D attack sweep. The scheduler never executes
a campaign wholesale; it decomposes it into **cells**, the atomic units
of work and of caching:

- one ``world`` cell — the deterministic counters world construction
  emits (packaging, provisioning registration), captured once so a
  warm re-submission never has to rebuild ten backends just to get the
  construction half of the artifact's counter totals;
- one ``audit`` cell per app — the Q1–Q4 pipeline
  (:meth:`~repro.core.study.WideLeakStudy.study_app`) against the
  app's backend with a fresh per-cell device session;
- optionally one ``attack`` cell per app — the §IV-D key-ladder PoC
  (:meth:`~repro.core.study.WideLeakStudy.run_attack`).

Every cell carries a deterministic **cache key**: the SHA-256 of the
profile fingerprint (a canonical hash of everything the
:class:`~repro.ott.profile.OttProfile` decides, including its APK
model), the identities of the devices the cell touches (model, serial
and CDM version — a CDM upgrade invalidates exactly the cells that ran
on that device), the campaign seed and a schema version. Identical
inputs → identical key → the result store already has the answer and
the cell is never recomputed; any changed input produces a new key and
invalidates exactly the affected cells.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from functools import lru_cache

from repro.ott.profile import OttProfile
from repro.ott.registry import profile_by_name

__all__ = [
    "CELL_SCHEMA_VERSION",
    "QUESTION_ATTACK",
    "QUESTION_AUDIT",
    "QUESTION_WORLD",
    "Campaign",
    "CellSpec",
    "default_device_identities",
    "profile_fingerprint",
]

# Bump when the cell payload layout or the pipeline semantics change:
# every existing cache entry is invalidated by construction (the key
# changes), never by deletion.
CELL_SCHEMA_VERSION = 1

QUESTION_WORLD = "world"
QUESTION_AUDIT = "audit"
QUESTION_ATTACK = "attack"


def _digest(payload: dict) -> str:
    """Canonical SHA-256 of a JSON-able payload."""
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def profile_fingerprint(profile: OttProfile) -> str:
    """Deterministic hash of everything one profile decides.

    Recursively serializes the frozen dataclass (including the extra
    APK classes the analysis pipeline sees), so any configuration
    change — a new telemetry class, a flipped hardening flag —
    invalidates exactly that app's cells.
    """
    return _digest(dataclasses.asdict(profile))


@lru_cache(maxsize=1)
def default_device_identities() -> tuple[dict, dict]:
    """The study's fixed device pair as cache-key identities.

    Boots one throwaway Pixel 6 / Nexus 5 pair against a private
    network to read the factory specs — model, serial and CDM version —
    without constructing any backend. Cached for the process lifetime;
    the identities are static facts.
    """
    from repro.android.device import nexus_5, pixel_6
    from repro.license_server.provisioning import KeyboxAuthority
    from repro.net.network import Network
    from repro.obs.bus import ObservabilityBus

    network = Network()
    authority = KeyboxAuthority()
    bus = ObservabilityBus(enabled=False)
    l1 = pixel_6(network, authority, obs=bus)
    legacy = nexus_5(network, authority, obs=bus)

    def identity(device) -> dict:
        return {
            "model": device.spec.model,
            "serial": device.serial,
            "cdm_version": device.spec.cdm_version,
        }

    return identity(l1), identity(legacy)


@dataclass(frozen=True)
class CellSpec:
    """One schedulable, cacheable unit of campaign work."""

    cell_id: str  # "world", "audit-<service>", "attack-<service>"
    question: str  # QUESTION_WORLD | QUESTION_AUDIT | QUESTION_ATTACK
    app: str | None  # profile display name; None for the world cell
    key: str  # content address in the ResultStore


@dataclass
class Campaign:
    """One submission of the study, decomposed into cells."""

    profiles: tuple[OttProfile, ...]
    seed: int = 0
    include_attacks: bool = False
    # Test hook: cell_id -> number of attempts on which the executing
    # worker dies (kill -9 style). Drives the retry-with-backoff tests.
    faults: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.profiles = tuple(self.profiles)
        if not self.profiles:
            raise ValueError("a campaign needs at least one profile")
        self._cells_cache: tuple[CellSpec, ...] | None = None

    # -- cells -------------------------------------------------------------

    def cells(self) -> tuple[CellSpec, ...]:
        """World cell first, then audits in profile order, then attacks."""
        if self._cells_cache is not None:
            return self._cells_cache
        l1, legacy = default_device_identities()
        fingerprints = [profile_fingerprint(p) for p in self.profiles]
        base = {
            "schema": CELL_SCHEMA_VERSION,
            "seed": self.seed,
            "l1": l1,
            "legacy": legacy,
        }
        specs = [
            CellSpec(
                cell_id="world",
                question=QUESTION_WORLD,
                app=None,
                key=_digest(
                    {**base, "question": QUESTION_WORLD, "profiles": fingerprints}
                ),
            )
        ]
        for profile, fingerprint in zip(self.profiles, fingerprints):
            specs.append(
                CellSpec(
                    cell_id=f"audit-{profile.service}",
                    question=QUESTION_AUDIT,
                    app=profile.name,
                    key=_digest(
                        {**base, "question": QUESTION_AUDIT, "profile": fingerprint}
                    ),
                )
            )
        if self.include_attacks:
            for profile, fingerprint in zip(self.profiles, fingerprints):
                specs.append(
                    CellSpec(
                        cell_id=f"attack-{profile.service}",
                        question=QUESTION_ATTACK,
                        app=profile.name,
                        key=_digest(
                            {
                                "schema": CELL_SCHEMA_VERSION,
                                "seed": self.seed,
                                "legacy": legacy,
                                "question": QUESTION_ATTACK,
                                "profile": fingerprint,
                            }
                        ),
                    )
                )
        self._cells_cache = tuple(specs)
        return self._cells_cache

    def cell_by_id(self, cell_id: str) -> CellSpec:
        for cell in self.cells():
            if cell.cell_id == cell_id:
                return cell
        raise KeyError(f"no cell {cell_id!r} in campaign {self.campaign_id}")

    def profile_for(self, cell: CellSpec) -> OttProfile:
        for profile in self.profiles:
            if profile.name == cell.app:
                return profile
        raise KeyError(f"no profile {cell.app!r} in campaign {self.campaign_id}")

    # -- identity ----------------------------------------------------------

    @property
    def campaign_id(self) -> str:
        """Deterministic id: the digest of every cell key. Resubmitting
        an unchanged campaign lands in the same campaign directory."""
        return _digest({"cells": [cell.key for cell in self.cells()]})[:16]

    # -- persistence -------------------------------------------------------

    def to_manifest(self) -> dict:
        return {
            "version": CELL_SCHEMA_VERSION,
            "campaign_id": self.campaign_id,
            "profiles": [profile.name for profile in self.profiles],
            "seed": self.seed,
            "include_attacks": self.include_attacks,
            "faults": dict(self.faults),
            "cells": [dataclasses.asdict(cell) for cell in self.cells()],
        }

    @classmethod
    def from_manifest(cls, manifest: dict) -> "Campaign":
        """Rebuild a campaign from its persisted manifest. Profiles are
        resolved through the registry; campaigns over ad-hoc profiles
        must be resubmitted as objects instead."""
        return cls(
            profiles=tuple(
                profile_by_name(name) for name in manifest["profiles"]
            ),
            seed=manifest.get("seed", 0),
            include_attacks=manifest.get("include_attacks", False),
            faults=dict(manifest.get("faults", {})),
        )
