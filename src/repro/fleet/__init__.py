"""`repro.fleet` — persistent study scheduler with incremental re-runs.

The service layer over the one-shot study: campaigns decompose into
content-addressed cells (:mod:`repro.fleet.job`), cell results persist
in an LRU-bounded store (:mod:`repro.fleet.store`), and a crash-safe
filesystem scheduler with work-stealing worker processes
(:mod:`repro.fleet.scheduler`) computes only the cells whose inputs
changed — assembling a ``StudyResult`` byte-identical to a cold
sequential run.
"""

from repro.fleet.job import Campaign, CellSpec, profile_fingerprint
from repro.fleet.scheduler import FleetError, FleetOutcome, FleetScheduler
from repro.fleet.store import ResultStore

__all__ = [
    "Campaign",
    "CellSpec",
    "FleetError",
    "FleetOutcome",
    "FleetScheduler",
    "ResultStore",
    "profile_fingerprint",
]
