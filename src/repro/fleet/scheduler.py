"""The fleet scheduler: persistent queue, worker processes, resume.

Everything the scheduler knows lives on the filesystem, under
``<root>/campaigns/<campaign_id>/``::

    campaign.json          the campaign manifest (rebuildable Campaign)
    queue/w<i>/NNNN-<cell>.json   pending tickets, per assigned worker
    claimed/w<i>/<cell>.json      tickets a worker is executing
    done/<cell>.json       completion markers (the checkpoint log)
    result.json            the assembled StudyResult artifact

State transitions are single atomic ``os.rename``/``os.replace`` calls,
so a ``kill -9`` at any instant leaves the campaign in a state
:meth:`FleetScheduler.resume` can reconcile: *done* cells stay done,
*claimed* tickets of dead workers are re-queued with one more attempt
and an exponential backoff, *queued* tickets are untouched. Temp files
never carry a ``.json`` suffix, so the ``*.json`` scans (claims,
steals, done counts, status) cannot observe a half-written ticket; any
debris a crash left behind is swept on the next submit/resume.

Workers are **processes**, not threads (``--jobs N``): each one builds
its own :class:`~repro.core.study.WideLeakStudy` world and a fresh
:class:`~repro.core.parallel.DeviceSession` per cell — the same
isolation model the parallel runner uses, pushed across process
boundaries. A worker whose own queue runs dry **steals** from the tail
of the deepest sibling queue; claims are renames, so two thieves can
never hold the same ticket.

Byte-identity contract
----------------------

The assembled :class:`~repro.core.study.StudyResult` must equal —
byte-for-byte — what ``WideLeakStudy(profiles).run().to_json()``
produces, whether every cell was computed cold, served from the store,
or recovered across a crash. Two rules make this hold:

- the **world cell** persists the deterministic counters world
  construction emits (packaging, provisioning); every audit cell
  persists its own :class:`~repro.core.parallel.DeviceSession` bus
  counters. Their sum is exactly the sequential run's counter totals
  (the same additivity the parallel runner's byte-identity rests on);
- assembly replays those counters onto a **fresh** bus and builds the
  result from the persisted artifacts. Fleet telemetry (spans, steal /
  retry / cache-hit counters) lives on a *separate* bus exposed via
  :attr:`FleetOutcome.obs`, so ``repro profile`` and ``repro trace``
  work on fleet runs without ever contaminating the artifact.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.parallel import DeviceSession
from repro.core.report import TableOne
from repro.core.study import (
    AppCellArtifact,
    AttackCellArtifact,
    StudyResult,
    WideLeakStudy,
)
from repro.fleet.job import (
    QUESTION_ATTACK,
    QUESTION_AUDIT,
    QUESTION_WORLD,
    Campaign,
    CellSpec,
)
from repro.fleet.store import ResultStore
from repro.obs.bus import ObservabilityBus
from repro.ott.registry import profile_by_name

__all__ = ["FleetError", "FleetOutcome", "FleetScheduler"]

# A cell may be attempted this many times (first try + retries) before
# the campaign is declared failed.
MAX_ATTEMPTS = 4

# A worker with nothing claimable for this long assumes the campaign is
# wedged elsewhere and exits; the monitor (or a resume) recovers.
_IDLE_TIMEOUT_S = 60.0

_FAULT_EXIT_CODE = 23


class FleetError(RuntimeError):
    """A campaign cannot make progress (cell out of retries, lost data)."""


class _InjectedCrash(Exception):
    """In-process stand-in for a worker death (inline ``jobs=1`` mode)."""

    def __init__(self, claimed_path: Path, ticket: dict):
        super().__init__(f"injected crash on {ticket['cell_id']}")
        self.claimed_path = claimed_path
        self.ticket = ticket


def _backoff(attempt: int) -> float:
    """Exponential backoff before re-running a cell whose worker died."""
    return min(1.0, 0.05 * 2 ** max(0, attempt - 1))


# Disambiguates several writes to the same target from one process
# (controller + inline worker share a pid).
_TMP_SEQ = itertools.count()


def _write_text_atomic(path: Path, text: str) -> None:
    # The temp name must NOT end in ".json": every queue/claimed/done
    # scan globs "*.json", and a kill -9 between write and replace must
    # leave only debris those scans (and ticket-name parsing, steal
    # renames, done counts) never see. _sweep_tmp clears it on resume.
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{path.name}.tmp-{os.getpid()}-{next(_TMP_SEQ)}"
    tmp.write_text(text)
    os.replace(tmp, path)


def _write_json_atomic(path: Path, payload: dict) -> None:
    _write_text_atomic(path, json.dumps(payload, sort_keys=True))


def _sweep_tmp(campaign_dir: Path) -> None:
    """Delete temp-file debris a kill -9 mid-write left behind.

    Runs while the controller is the only process touching the
    campaign (before workers spawn). Both the current naming scheme
    (``<name>.tmp-<pid>-<n>``) and the dot-prefixed one of earlier
    revisions (``.tmp-<pid>-<name>``) are swept.
    """
    for pattern in ("*.tmp-*", ".tmp-*"):
        for stale in campaign_dir.rglob(pattern):
            stale.unlink(missing_ok=True)


def _read_json(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError):
        return None


# ---------------------------------------------------------------------------
# Cell execution (runs inside a worker, inline or in a child process)
# ---------------------------------------------------------------------------


class _CellExecutor:
    """Builds the study world lazily, runs one cell at a time.

    The world — network, authority, ten backends, shared devices — is
    built once per worker and reused across its cells; each audit or
    attack cell still gets a fresh :class:`DeviceSession`, exactly the
    parallel runner's isolation model. The deterministic counters world
    construction emits are captured immediately, before any cell runs,
    so the ``world`` cell's payload is identical no matter which worker
    happens to execute it.
    """

    def __init__(self, campaign: Campaign):
        self.campaign = campaign
        self._study: WideLeakStudy | None = None
        self._world_counters: dict[str, int] | None = None

    def _ensure_world(self) -> WideLeakStudy:
        if self._study is None:
            study = WideLeakStudy(profiles=self.campaign.profiles)
            self._world_counters = dict(study.obs.metrics.counters())
            self._study = study
        return self._study

    def compute(self, cell: CellSpec) -> dict:
        study = self._ensure_world()
        if cell.question == QUESTION_WORLD:
            return {"question": QUESTION_WORLD, "counters": self._world_counters}
        profile = self.campaign.profile_for(cell)
        session = DeviceSession(study)
        if cell.question == QUESTION_AUDIT:
            result = study.study_app(
                profile,
                l1_device=session.l1_device,
                legacy_device=session.legacy_device,
            )
            return {
                "question": QUESTION_AUDIT,
                "artifact": AppCellArtifact.from_result(result).to_dict(),
                "counters": dict(session.obs.metrics.counters()),
            }
        if cell.question == QUESTION_ATTACK:
            outcome = study.run_attack(
                profile, legacy_device=session.legacy_device
            )
            return {
                "question": QUESTION_ATTACK,
                "artifact": AttackCellArtifact.from_result(outcome).to_dict(),
            }
        raise FleetError(f"unknown cell question {cell.question!r}")


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------


class _Worker:
    """One queue consumer: claim → execute → checkpoint, stealing when dry."""

    def __init__(
        self,
        campaign: Campaign,
        store: ResultStore,
        campaign_dir: Path,
        worker_id: str,
        *,
        inline: bool = False,
    ):
        self.campaign = campaign
        self.store = store
        self.dir = campaign_dir
        self.worker_id = worker_id
        self.inline = inline
        self.total = len(campaign.cells())
        self.executor = _CellExecutor(campaign)
        self.claimed_dir = campaign_dir / "claimed" / worker_id
        self.claimed_dir.mkdir(parents=True, exist_ok=True)

    # -- filesystem views --------------------------------------------------

    def _done_count(self) -> int:
        return len(list((self.dir / "done").glob("*.json")))

    def _queue_dirs(self) -> list[Path]:
        return sorted(
            d for d in (self.dir / "queue").iterdir() if d.is_dir()
        )

    # -- claiming ----------------------------------------------------------

    def _try_claim(
        self, ticket_path: Path, *, steal: bool
    ) -> tuple[Path, dict] | None:
        ticket = _read_json(ticket_path)
        if ticket is None:
            return None
        # lint: allow(CLK003) backoff deadline is scheduling state, never artifact data
        if ticket.get("not_before", 0.0) > time.time():
            return None
        target = self.claimed_dir / f"{ticket['cell_id']}.json"
        try:
            os.rename(ticket_path, target)
        except FileNotFoundError:
            return None  # another worker won the rename race
        if steal:
            ticket["stolen"] = True
        ticket["owner"] = self.worker_id
        _write_json_atomic(target, ticket)
        return target, ticket

    def _claim(self) -> tuple[Path, dict] | None:
        own = self.dir / "queue" / self.worker_id
        if own.is_dir():
            for ticket_path in sorted(own.glob("*.json")):
                claim = self._try_claim(ticket_path, steal=False)
                if claim is not None:
                    return claim
        # Own queue dry: steal from the tail of the deepest sibling queue.
        victims = sorted(
            (d for d in self._queue_dirs() if d.name != self.worker_id),
            key=lambda d: len(list(d.glob("*.json"))),
            reverse=True,
        )
        for victim in victims:
            for ticket_path in sorted(victim.glob("*.json"), reverse=True):
                claim = self._try_claim(ticket_path, steal=True)
                if claim is not None:
                    return claim
        return None

    # -- execution ---------------------------------------------------------

    def _execute(self, claimed_path: Path, ticket: dict) -> None:
        cell = self.campaign.cell_by_id(ticket["cell_id"])
        done_path = self.dir / "done" / f"{cell.cell_id}.json"
        if done_path.exists():  # raced with a spurious requeue
            os.unlink(claimed_path)
            return
        attempt = int(ticket.get("attempt", 1))
        if attempt <= self.campaign.faults.get(cell.cell_id, 0):
            # Test hook: die exactly like a kill -9 mid-cell.
            if self.inline:
                raise _InjectedCrash(claimed_path, ticket)
            os._exit(_FAULT_EXIT_CODE)
        # lint: allow(CLK003) per-cell wall time is fleet telemetry, never artifact data
        started = time.perf_counter()
        payload = self.store.get(cell.key)
        computed = payload is None
        if computed:
            payload = self.executor.compute(cell)
            self.store.put(cell.key, payload)
        _write_json_atomic(
            done_path,
            {
                "cell_id": cell.cell_id,
                "key": cell.key,
                "computed": computed,
                "cache_hit": not computed,
                "stolen": bool(ticket.get("stolen", False)),
                "attempt": attempt,
                "worker": self.worker_id,
                # lint: allow(CLK003) same telemetry stopwatch as above
                "seconds": time.perf_counter() - started,
            },
        )
        os.unlink(claimed_path)

    def run(self) -> int:
        """Consume until every cell is done; 3 on idle timeout."""
        # lint: allow(CLK003) idle-timeout watchdog for wedged campaigns
        last_progress = time.monotonic()
        while True:
            if self._done_count() >= self.total:
                return 0
            claim = self._claim()
            if claim is None:
                # lint: allow(CLK003) idle-timeout watchdog read
                if time.monotonic() - last_progress > _IDLE_TIMEOUT_S:
                    return 3
                time.sleep(0.02)
                continue
            self._execute(*claim)
            # lint: allow(CLK003) idle-timeout watchdog reset
            last_progress = time.monotonic()


def _worker_entry(
    root: str, campaign_id: str, worker_id: str, max_store_bytes: int | None
) -> None:
    """Child-process entry point: rebuild state from disk and consume."""
    scheduler = FleetScheduler(root, max_store_bytes=max_store_bytes)
    campaign = scheduler.load_campaign(campaign_id)
    worker = _Worker(
        campaign,
        scheduler.store,
        scheduler.campaign_dir(campaign),
        worker_id,
    )
    sys.exit(worker.run())


# ---------------------------------------------------------------------------
# Controller
# ---------------------------------------------------------------------------


@dataclass
class FleetOutcome:
    """What one submit/resume produced."""

    result: StudyResult
    attacks: dict[str, AttackCellArtifact]
    stats: dict[str, int]
    campaign_dir: Path
    # Fleet telemetry bus (spans + steal/retry/cache counters) — kept
    # separate from result.obs so the artifact stays byte-identical.
    obs: ObservabilityBus = field(repr=False)


class FleetScheduler:
    """Persistent campaign scheduler over a content-addressed store."""

    def __init__(self, root: str | Path, *, max_store_bytes: int | None = None):
        self.root = Path(root)
        self.store = ResultStore(self.root / "store", max_bytes=max_store_bytes)
        (self.root / "campaigns").mkdir(parents=True, exist_ok=True)

    # -- layout ------------------------------------------------------------

    def campaign_dir(self, campaign: Campaign | str) -> Path:
        campaign_id = (
            campaign if isinstance(campaign, str) else campaign.campaign_id
        )
        return self.root / "campaigns" / campaign_id

    def load_campaign(self, campaign_id: str) -> Campaign:
        manifest = _read_json(self.campaign_dir(campaign_id) / "campaign.json")
        if manifest is None:
            raise FleetError(f"no campaign {campaign_id!r} under {self.root}")
        return Campaign.from_manifest(manifest)

    # -- submit ------------------------------------------------------------

    def submit(
        self,
        campaign: Campaign,
        *,
        jobs: int = 1,
        obs: ObservabilityBus | None = None,
    ) -> FleetOutcome:
        """Run (or re-run) a campaign and assemble its artifact.

        Warm resubmits reconcile every cell against the store and the
        done log first, so an unchanged campaign computes nothing and
        assembly is pure store reads.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if jobs > 1:
            self._require_registry_profiles(campaign)
        telemetry = obs if obs is not None else ObservabilityBus()
        campaign_dir = self.campaign_dir(campaign)
        for sub in ("queue", "claimed", "done"):
            (campaign_dir / sub).mkdir(parents=True, exist_ok=True)
        _sweep_tmp(campaign_dir)
        _write_json_atomic(
            campaign_dir / "campaign.json", campaign.to_manifest()
        )
        with telemetry.span(
            "fleet.campaign", campaign=campaign.campaign_id, jobs=jobs
        ):
            # An eviction racing between a cell's done marker and
            # assembly re-opens exactly that cell; one extra round
            # recomputes it.
            for round_ in range(2):
                with telemetry.span("fleet.reconcile"):
                    pending = self._reconcile(
                        campaign,
                        campaign_dir,
                        jobs,
                        refresh_markers=round_ == 0,
                    )
                if pending:
                    with telemetry.span("fleet.execute", pending=pending):
                        self._execute(campaign, campaign_dir, jobs)
                missing = self._missing_keys(campaign, campaign_dir)
                if not missing:
                    break
                for cell in missing:
                    (campaign_dir / "done" / f"{cell.cell_id}.json").unlink(
                        missing_ok=True
                    )
            else:
                raise FleetError(
                    "store keeps evicting campaign cells before assembly; "
                    "raise the store bound (repro fleet gc --max-bytes)"
                )
            stats = self._stats(campaign, campaign_dir, jobs)
            for name in ("computed", "cache_hits", "steals", "retries"):
                telemetry.count(f"fleet.{name}", stats[name])
            telemetry.count("fleet.cells.total", stats["cells"])
            with telemetry.span("fleet.assemble"):
                outcome = self._assemble(
                    campaign, campaign_dir, stats, telemetry
                )
        return outcome

    def resume(
        self,
        campaign_id: str | None = None,
        *,
        jobs: int = 1,
        obs: ObservabilityBus | None = None,
    ) -> FleetOutcome:
        """Pick an interrupted campaign back up from its checkpoint."""
        if campaign_id is None:
            open_ids = [
                entry["campaign_id"]
                for entry in self.status()
                if entry["state"] != "complete"
            ]
            if not open_ids:
                raise FleetError("no interrupted campaign to resume")
            if len(open_ids) > 1:
                raise FleetError(
                    "multiple interrupted campaigns: "
                    + ", ".join(open_ids)
                    + " — pass --campaign"
                )
            campaign_id = open_ids[0]
        return self.submit(self.load_campaign(campaign_id), jobs=jobs, obs=obs)

    # -- status / gc -------------------------------------------------------

    def status(self) -> list[dict[str, object]]:
        """One row per known campaign, from the on-disk checkpoint."""
        rows: list[dict[str, object]] = []
        for campaign_dir in sorted((self.root / "campaigns").iterdir()):
            manifest = _read_json(campaign_dir / "campaign.json")
            if manifest is None:
                continue
            total = len(manifest.get("cells", []))
            done = len(list((campaign_dir / "done").glob("*.json")))
            queued = len(list((campaign_dir / "queue").glob("w*/*.json")))
            claimed = len(list((campaign_dir / "claimed").glob("w*/*.json")))
            rows.append(
                {
                    "campaign_id": manifest.get(
                        "campaign_id", campaign_dir.name
                    ),
                    "apps": manifest.get("profiles", []),
                    "cells": total,
                    "done": done,
                    "queued": queued,
                    "claimed": claimed,
                    "state": "complete" if done >= total else "interrupted",
                    "has_result": (campaign_dir / "result.json").is_file(),
                }
            )
        return rows

    def gc(self, max_bytes: int | None = None) -> dict[str, int]:
        """Evict LRU store objects down to the bound; report store stats."""
        evicted = self.store.gc(max_bytes)
        return {"evicted": evicted, **self.store.stats()}

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _require_registry_profiles(campaign: Campaign) -> None:
        # Child processes rebuild the campaign from its manifest, which
        # names profiles; ad-hoc profile objects can't cross that
        # boundary, so multiprocess mode insists on registry profiles.
        for profile in campaign.profiles:
            try:
                profile_by_name(profile.name)
            except KeyError:
                raise FleetError(
                    f"profile {profile.name!r} is not in the registry; "
                    "multiprocess campaigns (--jobs > 1) need registry "
                    "profiles — use jobs=1 for ad-hoc profiles"
                ) from None

    def _reconcile(
        self,
        campaign: Campaign,
        campaign_dir: Path,
        jobs: int,
        *,
        refresh_markers: bool = False,
    ) -> int:
        """Bring queue/claimed/done into agreement with the store.

        Returns how many cells still need a worker. With
        ``refresh_markers`` (the first round of a submission), done
        markers inherited from earlier runs are rewritten as cache
        hits, so stats report what *this* invocation computed.
        """
        done_dir = campaign_dir / "done"
        queued_ids = {
            _stem_cell_id(p)
            for p in (campaign_dir / "queue").glob("w*/*.json")
        }
        next_ticket = 1 + max(
            (
                int(p.name.split("-", 1)[0])
                for p in (campaign_dir / "queue").glob("w*/*.json")
            ),
            default=0,
        )
        pending = 0
        lane = 0
        for cell in campaign.cells():
            done_path = done_dir / f"{cell.cell_id}.json"
            marker = _read_json(done_path)
            if marker is not None and self.store.contains(marker["key"]):
                # Done and still stored: nothing to do; drop any stale
                # claimed file a crash left behind next to the marker.
                for stale in (campaign_dir / "claimed").glob(
                    f"w*/{cell.cell_id}.json"
                ):
                    stale.unlink(missing_ok=True)
                if refresh_markers:
                    _write_json_atomic(
                        done_path, _cache_hit_marker(cell)
                    )
                continue
            if marker is not None:
                done_path.unlink(missing_ok=True)  # store evicted it
            claimed = sorted(
                (campaign_dir / "claimed").glob(f"w*/{cell.cell_id}.json")
            )
            if claimed:
                # A dead (or previous-process) worker held it: requeue
                # with one more attempt and a backoff window.
                ticket = _read_json(claimed[0]) or {"attempt": 1}
                for path in claimed:
                    path.unlink(missing_ok=True)
                self._requeue(
                    campaign_dir,
                    cell,
                    attempt=int(ticket.get("attempt", 1)) + 1,
                    seq=next_ticket,
                    lane=f"w{lane % jobs}",
                )
                next_ticket += 1
                lane += 1
                pending += 1
                continue
            if cell.cell_id in queued_ids:
                pending += 1
                continue
            if self.store.contains(cell.key):
                # Warm cell: checkpoint it directly, no worker round-trip.
                _write_json_atomic(done_path, _cache_hit_marker(cell))
                continue
            self._enqueue(
                campaign_dir,
                cell,
                attempt=1,
                seq=next_ticket,
                lane=f"w{lane % jobs}",
            )
            next_ticket += 1
            lane += 1
            pending += 1
        return pending

    def _enqueue(
        self,
        campaign_dir: Path,
        cell: CellSpec,
        *,
        attempt: int,
        seq: int,
        lane: str,
        not_before: float = 0.0,
    ) -> None:
        _write_json_atomic(
            campaign_dir / "queue" / lane / f"{seq:04d}-{cell.cell_id}.json",
            {
                "cell_id": cell.cell_id,
                "attempt": attempt,
                "not_before": not_before,
                "stolen": False,
            },
        )

    def _requeue(
        self,
        campaign_dir: Path,
        cell: CellSpec,
        *,
        attempt: int,
        seq: int,
        lane: str,
    ) -> None:
        if attempt > MAX_ATTEMPTS:
            raise FleetError(
                f"cell {cell.cell_id!r} failed {MAX_ATTEMPTS} attempts; "
                "giving up on the campaign"
            )
        self._enqueue(
            campaign_dir,
            cell,
            attempt=attempt,
            seq=seq,
            lane=lane,
            # lint: allow(CLK003) retry backoff deadline is scheduling state, never artifact data
            not_before=time.time() + _backoff(attempt),
        )

    def _execute(
        self, campaign: Campaign, campaign_dir: Path, jobs: int
    ) -> None:
        if jobs == 1:
            self._execute_inline(campaign, campaign_dir)
        else:
            self._execute_processes(campaign, campaign_dir, jobs)

    def _execute_inline(self, campaign: Campaign, campaign_dir: Path) -> None:
        worker = _Worker(
            campaign, self.store, campaign_dir, "w0", inline=True
        )
        next_ticket = 9000  # requeue tickets sort after initial ones
        while True:
            try:
                code = worker.run()
            except _InjectedCrash as crash:
                crash.claimed_path.unlink(missing_ok=True)
                cell = campaign.cell_by_id(crash.ticket["cell_id"])
                self._requeue(
                    campaign_dir,
                    cell,
                    attempt=int(crash.ticket.get("attempt", 1)) + 1,
                    seq=next_ticket,
                    lane="w0",
                )
                next_ticket += 1
                time.sleep(_backoff(int(crash.ticket.get("attempt", 1)) + 1))
                continue
            if code != 0:
                raise FleetError(
                    f"inline worker gave up (exit {code}) with cells pending"
                )
            return

    def _execute_processes(
        self, campaign: Campaign, campaign_dir: Path, jobs: int
    ) -> None:
        ctx = multiprocessing.get_context()
        total = len(campaign.cells())
        done_dir = campaign_dir / "done"

        def spawn(worker_id: str):
            proc = ctx.Process(
                target=_worker_entry,
                args=(
                    str(self.root),
                    campaign.campaign_id,
                    worker_id,
                    self.store.max_bytes,
                ),
                name=f"fleet-{worker_id}",
            )
            proc.start()
            return proc

        procs = {f"w{i}": spawn(f"w{i}") for i in range(jobs)}
        try:
            next_ticket = 9000
            while len(list(done_dir.glob("*.json"))) < total:
                for worker_id, proc in list(procs.items()):
                    if proc.is_alive():
                        continue
                    # Dead worker: put its claimed cells back on the
                    # queue with a retry, then give it a fresh process.
                    claimed_dir = campaign_dir / "claimed" / worker_id
                    for claimed in sorted(claimed_dir.glob("*.json")):
                        ticket = _read_json(claimed) or {"attempt": 1}
                        claimed.unlink(missing_ok=True)
                        cell_id = claimed.stem
                        if (done_dir / f"{cell_id}.json").exists():
                            continue
                        self._requeue(
                            campaign_dir,
                            campaign.cell_by_id(cell_id),
                            attempt=int(ticket.get("attempt", 1)) + 1,
                            seq=next_ticket,
                            lane=worker_id,
                        )
                        next_ticket += 1
                    if len(list(done_dir.glob("*.json"))) < total:
                        procs[worker_id] = spawn(worker_id)
                time.sleep(0.02)
        finally:
            for proc in procs.values():
                proc.join(timeout=_IDLE_TIMEOUT_S)
                if proc.is_alive():
                    proc.terminate()
                    proc.join()

    def _missing_keys(
        self, campaign: Campaign, campaign_dir: Path
    ) -> list[CellSpec]:
        return [
            cell
            for cell in campaign.cells()
            if not self.store.contains(cell.key)
        ]

    def _stats(
        self, campaign: Campaign, campaign_dir: Path, jobs: int
    ) -> dict[str, int]:
        markers = [
            _read_json(path)
            for path in sorted((campaign_dir / "done").glob("*.json"))
        ]
        markers = [m for m in markers if m is not None]
        return {
            "cells": len(campaign.cells()),
            "computed": sum(1 for m in markers if m["computed"]),
            "cache_hits": sum(1 for m in markers if m["cache_hit"]),
            "steals": sum(1 for m in markers if m.get("stolen")),
            "retries": sum(max(0, m.get("attempt", 1) - 1) for m in markers),
            "workers": jobs,
        }

    def _assemble(
        self,
        campaign: Campaign,
        campaign_dir: Path,
        stats: dict[str, int],
        telemetry: ObservabilityBus,
    ) -> FleetOutcome:
        """Rebuild the StudyResult from stored cells, byte-identically.

        A fresh bus receives exactly the counters the sequential run's
        bus would hold (world construction + every app's session, in
        profile order); the table and per-app sections come from the
        persisted artifact projections — the same code path a live
        ``StudyResult`` serializes through.
        """
        cells = {cell.cell_id: cell for cell in campaign.cells()}
        bus = ObservabilityBus()

        def fetch(cell: CellSpec) -> dict:
            payload = self.store.get(cell.key)
            if payload is None:
                raise FleetError(
                    f"cell {cell.cell_id!r} vanished from the store "
                    "during assembly"
                )
            return payload

        for name, value in fetch(cells["world"])["counters"].items():
            bus.count(name, value)
        table = TableOne()
        artifacts: dict[str, AppCellArtifact] = {}
        for profile in campaign.profiles:
            payload = fetch(cells[f"audit-{profile.service}"])
            artifact = AppCellArtifact.from_dict(payload["artifact"])
            for name, value in payload["counters"].items():
                bus.count(name, value)
            artifacts[profile.name] = artifact
            table.add(artifact.table_row())
        result = StudyResult(table=table, obs=bus, cells=artifacts)

        attacks: dict[str, AttackCellArtifact] = {}
        if campaign.include_attacks:
            for profile in campaign.profiles:
                payload = fetch(cells[f"attack-{profile.service}"])
                attacks[profile.name] = AttackCellArtifact.from_dict(
                    payload["artifact"]
                )

        _write_text_atomic(campaign_dir / "result.json", result.to_json())
        if attacks:
            _write_json_atomic(
                campaign_dir / "attacks.json",
                {name: a.to_dict() for name, a in attacks.items()},
            )
        return FleetOutcome(
            result=result,
            attacks=attacks,
            stats=stats,
            campaign_dir=campaign_dir,
            obs=telemetry,
        )


def _stem_cell_id(ticket_path: Path) -> str:
    """``NNNN-<cell_id>.json`` → ``<cell_id>``."""
    return ticket_path.stem.split("-", 1)[1]


def _cache_hit_marker(cell: CellSpec) -> dict:
    return {
        "cell_id": cell.cell_id,
        "key": cell.key,
        "computed": False,
        "cache_hit": True,
        "stolen": False,
        "attempt": 1,
        "worker": "reconcile",
        "seconds": 0.0,
    }
