"""Command-line interface for the WideLeak reproduction.

    wideleak table1              regenerate Table I and diff vs the paper
    wideleak figure1             capture and print the Figure 1 sequence
    wideleak audit <app>         run the Q1–Q4 pipeline for one app
    wideleak analyze <app>       call-graph + taint analysis, cross-checked
    wideleak lint [paths...]     AST lint of the repo's own invariants
    wideleak attack <app>        run the §IV-D key-ladder attack
    wideleak attack-all          the full §IV-D sweep
    wideleak trace [--app <app>] record a run and export a Chrome trace
    wideleak trace --diff A B    per-span-name deltas between two traces
    wideleak profile             critical paths, self-time, flame graph
    wideleak fleet submit        run a campaign through the fleet scheduler
    wideleak fleet status        show known campaigns and their progress
    wideleak fleet resume        pick an interrupted campaign back up
    wideleak fleet gc            bound the content-addressed result store
    wideleak list-apps           show the evaluated services

Also runnable as ``python -m repro <command>``.

Every subcommand taking an app resolves it through :func:`resolve_app`:
an unknown name exits 2 with one line on stderr naming the valid apps.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.report import EXPECTED_PAPER_TABLE, TableOne
from repro.core.study import WideLeakStudy
from repro.ott.profile import OttProfile
from repro.ott.registry import ALL_PROFILES, profile_by_name

__all__ = ["main", "build_parser", "resolve_app"]


def resolve_app(name: str) -> OttProfile | None:
    """Shared app lookup for every subcommand; on a miss, print one
    line on stderr naming the valid apps (the caller exits code 2)."""
    try:
        return profile_by_name(name)
    except KeyError:
        valid = ", ".join(profile.name for profile in ALL_PROFILES)
        print(f"unknown app {name!r} — valid apps: {valid}", file=sys.stderr)
        return None


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="wideleak",
        description="Reproduction of the DSN 2022 WideLeak study.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    jobs_help = (
        "worker threads for the per-app fan-out (default 1: the fully "
        "sequential, reproducible reference path; any value produces "
        "byte-identical results)"
    )
    table1 = sub.add_parser("table1", help="regenerate Table I and diff vs the paper")
    table1.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N", help=jobs_help
    )
    sub.add_parser("figure1", help="capture the Figure 1 message sequence")
    sub.add_parser("list-apps", help="list the evaluated OTT services")
    attack_all = sub.add_parser(
        "attack-all", help="run the §IV-D sweep over all apps"
    )
    attack_all.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N", help=jobs_help
    )

    audit = sub.add_parser("audit", help="run Q1–Q4 for one app")
    audit.add_argument("app", help='display name, e.g. "Netflix" or "Hulu"')

    analyze = sub.add_parser(
        "analyze",
        help="static call-graph/taint analysis for one app (or --all), "
        "cross-checked against a monitored playback",
    )
    analyze.add_argument(
        "app", nargs="?", help='display name, e.g. "Netflix"'
    )
    analyze.add_argument(
        "--all", action="store_true", help="analyze every evaluated app"
    )

    lint = sub.add_parser(
        "lint", help="check the repo's own concurrency/determinism invariants"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--fix-preview",
        action="store_true",
        help="print the ready-to-apply unified-diff patch next to each "
        "REG001/LRU004 violation that has one (patches are diffed "
        "against the original file: apply one per file, then re-lint "
        "to regenerate the rest)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="persistent campaign scheduler: content-addressed cell "
        "cache, worker processes, crash-safe resume",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    root_help = "fleet state directory (default: .fleet)"
    submit = fleet_sub.add_parser(
        "submit", help="run a campaign, computing only cold cells"
    )
    submit.add_argument(
        "--apps",
        nargs="*",
        metavar="APP",
        help="apps to study (default: all ten evaluated services)",
    )
    submit.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes (default 1: inline, single process)",
    )
    submit.add_argument("--root", default=".fleet", metavar="DIR", help=root_help)
    submit.add_argument("--seed", type=int, default=0, help="campaign seed")
    submit.add_argument(
        "--attacks", action="store_true", help="include §IV-D attack cells"
    )
    submit.add_argument(
        "--trace-out",
        metavar="PATH",
        help="export the fleet telemetry spans as a Chrome trace",
    )
    status = fleet_sub.add_parser(
        "status", help="show known campaigns and their checkpoints"
    )
    status.add_argument("--root", default=".fleet", metavar="DIR", help=root_help)
    resume = fleet_sub.add_parser(
        "resume", help="reconcile and finish an interrupted campaign"
    )
    resume.add_argument("--root", default=".fleet", metavar="DIR", help=root_help)
    resume.add_argument(
        "--campaign",
        metavar="ID",
        help="campaign id (default: the single interrupted campaign)",
    )
    resume.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes (default 1)",
    )
    gc = fleet_sub.add_parser(
        "gc", help="evict least-recently-used store objects to a bound"
    )
    gc.add_argument("--root", default=".fleet", metavar="DIR", help=root_help)
    gc.add_argument(
        "--max-bytes",
        type=int,
        metavar="N",
        help="evict LRU objects until the store fits N bytes",
    )

    attack = sub.add_parser("attack", help="run the key-ladder attack on one app")
    attack.add_argument("app", help='display name, e.g. "Showtime"')

    rate_help = (
        "head-based sampling rate 1/N: keep 1-in-N app span trees whole "
        "(default 1/1: record everything; counters stay exact at any rate)"
    )
    seed_help = "sampling seed (default 0); same seed + rate = same kept trees"

    trace = sub.add_parser(
        "trace",
        help="run the study with the observability bus recording and "
        "export a Chrome trace_event JSON (chrome://tracing / Perfetto); "
        "--diff compares two recorded traces instead",
    )
    trace.add_argument(
        "--app",
        help='trace a single app, e.g. "netflix" (default: the full study)',
    )
    trace.add_argument(
        "--out",
        "-o",
        default="trace.json",
        metavar="PATH",
        help="output path for the Chrome trace (default: trace.json)",
    )
    trace.add_argument("--rate", default="1/1", metavar="1/N", help=rate_help)
    trace.add_argument("--seed", type=int, default=0, help=seed_help)
    trace.add_argument(
        "--diff",
        nargs=2,
        metavar=("OLD", "NEW"),
        help="compare two trace files (JSONL, Chrome trace_event, or "
        "BENCH_study.json) and report per-span count/duration deltas; "
        "exits 1 when a delta exceeds the regression threshold",
    )
    trace.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="regression threshold for --diff as a fraction "
        "(default 0.25 = flag spans that got more than 25%% slower)",
    )

    profile = sub.add_parser(
        "profile",
        help="run the study and print its trace analytics: per-app "
        "critical paths, a self-time top-N table, and (with --flame) a "
        "collapsed-stack flame graph for flamegraph.pl / speedscope",
    )
    profile.add_argument(
        "--app",
        help='profile a single app, e.g. "netflix" (default: the full study)',
    )
    profile.add_argument("--rate", default="1/1", metavar="1/N", help=rate_help)
    profile.add_argument("--seed", type=int, default=0, help=seed_help)
    profile.add_argument(
        "--flame",
        metavar="OUT",
        help="write the collapsed-stack flame graph to this path",
    )
    profile.add_argument(
        "--top",
        type=_positive_int,
        default=15,
        metavar="N",
        help="rows in the self-time table (default 15)",
    )
    profile.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N", help=jobs_help
    )

    return parser


def _cmd_table1(jobs: int = 1) -> int:
    from repro.core.parallel import ParallelStudyRunner

    result = ParallelStudyRunner(WideLeakStudy.with_default_apps(), jobs=jobs).run()
    print(result.table.render())
    print("\nStatic-vs-dynamic cross-check (§IV-B):")
    print(result.crosscheck_table().render())
    diffs = result.table.diff_against_paper()
    if diffs:
        print("\nDIVERGES from the published table:")
        for diff in diffs:
            print(f"  - {diff}")
        return 1
    print("\nCell-for-cell match with the published Table I.")
    return 0


def _cmd_figure1() -> int:
    from repro.ott.app import OttApp

    study = WideLeakStudy.with_default_apps()
    profile = profile_by_name("OCS")
    app = OttApp(profile, study.l1_device, study.backends[profile.service])
    app.play()
    study.l1_device.trace.clear()
    result = app.play()
    if not result.ok:
        print(f"playback failed: {result.error}")
        return 1
    from repro.core.figures import collapse_decode_loop

    for source, target, label in collapse_decode_loop(
        study.l1_device.trace.labels()
    ):
        print(f"{source} -> {target}: {label}")
    return 0


def _cmd_list_apps() -> int:
    print(f"{'app':22s} {'installs':>9s}  {'audio':12s} {'revokes':8s} notes")
    for profile in ALL_PROFILES:
        notes = []
        if profile.uri_protection != "plain":
            notes.append("secure-channel URIs")
        if profile.custom_drm_on_l3:
            notes.append("custom DRM on L3")
        if not profile.subtitles_listed:
            notes.append("subs unlisted")
        if not profile.key_metadata_available:
            notes.append("key metadata geo-blocked")
        print(
            f"{profile.name:22s} {profile.installs_millions:>7d}M+ "
            f" {profile.audio_protection.value:12s} "
            f"{str(profile.enforces_revocation):8s} {', '.join(notes)}"
        )
    return 0


def _cmd_audit(app_name: str) -> int:
    profile = resolve_app(app_name)
    if profile is None:
        return 2
    study = WideLeakStudy.with_default_apps()
    app_result = study.study_app(profile)
    row = WideLeakStudy._to_row(app_result)
    table = TableOne(rows=[row])
    print(table.render())
    expected = EXPECTED_PAPER_TABLE.get(profile.name)
    if expected is not None:
        print(f"\npaper row:    {'  '.join(expected.cells())}")
        print(f"measured row: {'  '.join(row.cells())}")
        print("match" if expected == row else "MISMATCH")
    return 0


def _analyze_one(study: WideLeakStudy, profile) -> None:
    from repro.analysis import CONFIRMED, analyze, cross_check
    from repro.core.content_audit import ContentAuditor
    from repro.ott.app import OttApp

    app = OttApp(profile, study.l1_device, study.backends[profile.service])
    report = analyze(app.apk)
    print(f"== {profile.name} ==")
    print(report.render())
    audit = ContentAuditor(study.l1_device, study.network).audit(app)
    check = cross_check(profile.package, report.call_sites, audit.observation)
    print("cross-check vs monitored playback:")
    for classified in check.sites:
        flag = "+" if classified.verdict == CONFIRMED else "-"
        print(
            f"  [{flag}] {classified.site.caller} -> "
            f"{classified.site.callee}: {classified.note}"
        )
    if check.dynamic_only:
        print(
            "  dynamic-only OEMCrypto activity (no static site): "
            + ", ".join(check.dynamic_only)
        )
    counts = check.counts()
    print(
        f"  {counts['confirmed']} confirmed, {counts['dead_code']} dead-code, "
        f"{counts['static_only'] - counts['dead_code']} unobserved, "
        f"{counts['dynamic_only']} dynamic-only"
    )


def _cmd_analyze(app_name: str | None, all_apps: bool) -> int:
    if not all_apps and app_name is None:
        print("analyze: name an app or pass --all", file=sys.stderr)
        return 2
    if all_apps:
        profiles = ALL_PROFILES
    else:
        profile = resolve_app(app_name)
        if profile is None:
            return 2
        profiles = (profile,)
    study = WideLeakStudy.with_default_apps()
    for index, profile in enumerate(profiles):
        if index:
            print()
        _analyze_one(study, profile)
    return 0


def _cmd_lint(paths: list[str], fix_preview: bool = False) -> int:
    from repro.analysis.lint import lint_paths_report

    report = lint_paths_report(paths)
    for violation in report.violations:
        print(violation)
        if fix_preview and violation.patch:
            print(violation.patch.rstrip("\n"))
    for suppressed in report.suppressed:
        print(suppressed)
    if report.violations:
        print(f"{len(report.violations)} violation(s)")
        return 1
    if report.suppressed:
        print(f"clean: repo invariants hold ({len(report.suppressed)} suppression(s))")
    else:
        print("clean: repo invariants hold")
    return 0


def _describe_sampling(snapshot: dict) -> str:
    roots = snapshot["sampled_roots"] + snapshot["dropped_roots"]
    return (
        f"sampling {snapshot['rate']} (seed {snapshot['seed']}): kept "
        f"{snapshot['sampled_roots']} of {roots} root span trees, dropped "
        f"{snapshot['dropped_spans']} spans, recorded "
        f"{snapshot['recorded_spans']}"
    )


def _cmd_trace_diff(old: str, new: str, threshold: float) -> int:
    from repro.obs.profile import diff_traces, load_trace_profile

    try:
        old_profile = load_trace_profile(old)
        new_profile = load_trace_profile(new)
    except (OSError, ValueError) as exc:
        print(f"trace --diff: {exc}", file=sys.stderr)
        return 2
    diff = diff_traces(old_profile, new_profile, threshold=threshold)
    print(f"trace diff: {old} -> {new}")
    print(diff.render())
    return 1 if diff.regressions() else 0


def _sampler_or_none(rate: str, seed: int):
    from repro.obs.sampling import TraceSampler

    try:
        return TraceSampler.from_rate(rate, seed=seed)
    except ValueError as exc:
        print(f"--rate: {exc}", file=sys.stderr)
        return None


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import render_metrics_table, write_chrome_trace

    if args.diff is not None:
        return _cmd_trace_diff(args.diff[0], args.diff[1], args.threshold)

    sampler = _sampler_or_none(args.rate, args.seed)
    if sampler is None:
        return 2
    study = WideLeakStudy.with_default_apps(sampler=sampler)
    if args.app is None:
        study.run()
    else:
        profile = resolve_app(args.app)
        if profile is None:
            return 2
        study.study_app(profile)
    path = write_chrome_trace(study.obs, args.out)
    spans = len(study.obs.spans)
    print(f"wrote {path} ({spans} spans) — load in chrome://tracing or Perfetto")
    print(_describe_sampling(study.obs.sampling_snapshot()))
    print()
    print(render_metrics_table(study.obs))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.parallel import ParallelStudyRunner
    from repro.obs.profile import render_profile, write_flame_graph

    sampler = _sampler_or_none(args.rate, args.seed)
    if sampler is None:
        return 2
    study = WideLeakStudy.with_default_apps(sampler=sampler)
    if args.app is None:
        ParallelStudyRunner(study, jobs=args.jobs).run()
    else:
        profile = resolve_app(args.app)
        if profile is None:
            return 2
        study.study_app(profile)
    print(render_profile(study.obs, top=args.top))
    print()
    print(_describe_sampling(study.obs.sampling_snapshot()))
    if args.flame is not None:
        path = write_flame_graph(study.obs, args.flame)
        print(
            f"wrote {path} (collapsed stacks) — feed to flamegraph.pl or "
            "drop onto https://speedscope.app"
        )
    return 0


def _cmd_attack(app_name: str) -> int:
    profile = resolve_app(app_name)
    if profile is None:
        return 2
    study = WideLeakStudy.with_default_apps()
    outcome = study.run_attack(profile)
    attack, recovered = outcome.attack, outcome.recovered
    print(f"target: {profile.name} on {attack.device_model}")
    print(f"keybox recovered:     {attack.keybox_recovered}")
    print(f"device RSA recovered: {attack.rsa_recovered}")
    print(f"content keys:         {len(attack.content_keys)}")
    for note in attack.notes:
        print(f"note: {note}")
    if recovered is not None and recovered.succeeded:
        print(f"DRM-free recovery:    yes, best {recovered.best_video_height}p")
        return 0
    print("DRM-free recovery:    no")
    return 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import Campaign, FleetError, FleetScheduler
    from repro.obs.export import render_metrics_table

    scheduler = FleetScheduler(args.root)

    if args.fleet_command == "status":
        rows = scheduler.status()
        if not rows:
            print(f"no campaigns under {args.root}")
            return 0
        print(f"{'campaign':18s} {'state':12s} {'done':>9s} "
              f"{'queued':>6s} {'claimed':>7s} apps")
        for row in rows:
            print(
                f"{row['campaign_id']:18s} {row['state']:12s} "
                f"{row['done']:>4d}/{row['cells']:<4d} "
                f"{row['queued']:>6d} {row['claimed']:>7d} "
                f"{', '.join(row['apps'])}"
            )
        return 0

    if args.fleet_command == "gc":
        stats = scheduler.gc(args.max_bytes)
        print(
            f"evicted {stats['evicted']} object(s); store holds "
            f"{stats['objects']} object(s), {stats['bytes']} bytes "
            f"({stats['hits']} hits / {stats['misses']} misses lifetime)"
        )
        return 0

    try:
        if args.fleet_command == "submit":
            if args.apps:
                profiles = []
                for name in args.apps:
                    profile = resolve_app(name)
                    if profile is None:
                        return 2
                    profiles.append(profile)
                profiles = tuple(profiles)
            else:
                profiles = ALL_PROFILES
            campaign = Campaign(
                profiles=profiles,
                seed=args.seed,
                include_attacks=args.attacks,
            )
            outcome = scheduler.submit(campaign, jobs=args.jobs)
        else:  # resume
            outcome = scheduler.resume(args.campaign, jobs=args.jobs)
    except FleetError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2

    stats = outcome.stats
    print(outcome.result.table.render())
    print(
        f"\ncampaign {outcome.campaign_dir.name}: {stats['cells']} cells — "
        f"{stats['computed']} computed, {stats['cache_hits']} cache hits, "
        f"{stats['steals']} steals, {stats['retries']} retries "
        f"({stats['workers']} worker(s))"
    )
    print(f"artifact: {outcome.campaign_dir / 'result.json'}")
    if outcome.attacks:
        broken = sorted(
            name
            for name, attack in outcome.attacks.items()
            if attack.recovery_succeeded
        )
        print(f"attacks: {len(broken)} apps yield DRM-free content: "
              + ", ".join(broken))
    print()
    print(render_metrics_table(outcome.obs))
    if getattr(args, "trace_out", None):
        from repro.obs.export import write_chrome_trace

        path = write_chrome_trace(outcome.obs, args.trace_out)
        print(f"wrote fleet telemetry trace to {path}")
    return 0


def _cmd_attack_all(jobs: int = 1) -> int:
    from repro.core.parallel import ParallelStudyRunner

    runner = ParallelStudyRunner(WideLeakStudy.with_default_apps(), jobs=jobs)
    broken = []
    for name, outcome in runner.run_all_attacks().items():
        ok = outcome.recovered is not None and outcome.recovered.succeeded
        best = outcome.recovered.best_video_height if ok else "-"
        print(f"{name:22s} {'BROKEN' if ok else 'resisted':9s} best={best}")
        if ok:
            broken.append(name)
    print(f"\n{len(broken)} apps yield DRM-free content: {', '.join(broken)}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1(args.jobs)
    if args.command == "figure1":
        return _cmd_figure1()
    if args.command == "list-apps":
        return _cmd_list_apps()
    if args.command == "audit":
        return _cmd_audit(args.app)
    if args.command == "analyze":
        return _cmd_analyze(args.app, args.all)
    if args.command == "lint":
        return _cmd_lint(args.paths, args.fix_preview)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "attack":
        return _cmd_attack(args.app)
    if args.command == "attack-all":
        return _cmd_attack_all(args.jobs)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
