"""Fragmented-MP4 building and inspection.

Builds DASH-style init and media segments — clear or CENC-protected —
and parses them back. The box grammar is the library's own (see
:mod:`repro.bmff.boxes`): sample entries are modelled as containers
holding a ``codc`` codec-info leaf plus, when protected, the standard
``sinf``/``frma``/``schm``/``schi``/``tenc`` chain, which is exactly the
structure the content-protection audit walks to classify assets.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.bmff import boxes as bx
from repro.bmff.boxes import (
    Box,
    BoxParseError,
    FrmaBox,
    SaioBox,
    SaizBox,
    SchmBox,
    SencBox,
    SencEntry,
    TencBox,
    find_boxes,
    find_first,
    parse_boxes,
    serialize_boxes,
)
from repro.bmff.cenc import CencSample

__all__ = [
    "TrackInfo",
    "build_init_segment",
    "build_media_segment",
    "read_track_info",
    "read_samples",
    "read_pssh_boxes",
]

# Sample-entry fourccs by track kind: (clear, protected).
_SAMPLE_ENTRIES = {
    "video": (b"avc1", b"encv"),
    "audio": (b"mp4a", b"enca"),
    "text": (b"wvtt", b"enct"),
}
_KIND_BY_ENTRY = {}
for _kind, (_clear, _enc) in _SAMPLE_ENTRIES.items():
    _KIND_BY_ENTRY[_clear] = (_kind, False)
    _KIND_BY_ENTRY[_enc] = (_kind, True)

# Extend the container grammar with stsd and the sample entries.
bx.CONTAINER_TYPES.update(
    {b"stsd", b"avc1", b"encv", b"mp4a", b"enca", b"wvtt", b"enct"}
)


@dataclass(frozen=True)
class TrackInfo:
    """What an init segment declares about its single track."""

    kind: str
    codec: str
    protected: bool
    default_kid: bytes | None
    iv_size: int
    track_id: int
    scheme: str = "cenc"  # protection scheme fourcc ("cenc" | "cbcs")


def _codec_box(codec: str, kind: str) -> Box:
    return Box(box_type=b"codc", payload=f"{kind}:{codec}".encode())


def build_init_segment(
    *,
    kind: str,
    codec: str,
    track_id: int = 1,
    default_kid: bytes | None = None,
    iv_size: int = 8,
    scheme: str = "cenc",
    pssh: list[Box] | None = None,
) -> bytes:
    """Build a single-track init segment.

    If *default_kid* is given the track is marked protected: the sample
    entry becomes ``encv``/``enca``/``enct`` with a ``sinf`` chain and a
    ``tenc`` declaring the KID, and any *pssh* boxes are placed in
    ``moov`` — mirroring how packagers emit protected DASH content.
    """
    if kind not in _SAMPLE_ENTRIES:
        raise ValueError(f"unknown track kind {kind!r}")
    clear_fourcc, enc_fourcc = _SAMPLE_ENTRIES[kind]
    protected = default_kid is not None

    entry_children: list[Box] = [_codec_box(codec, kind)]
    if protected:
        assert default_kid is not None
        entry_children.append(
            Box(
                box_type=b"sinf",
                children=[
                    FrmaBox(box_type=b"frma", original_format=clear_fourcc),
                    SchmBox(box_type=b"schm", scheme_type=scheme.encode()),
                    Box(
                        box_type=b"schi",
                        children=[
                            TencBox(
                                box_type=b"tenc",
                                is_protected=True,
                                iv_size=iv_size,
                                default_kid=default_kid,
                            )
                        ],
                    ),
                ],
            )
        )
    sample_entry = Box(
        box_type=enc_fourcc if protected else clear_fourcc,
        children=entry_children,
    )
    tkhd = Box(box_type=b"tkhd", payload=struct.pack(">I", track_id))
    trak = Box(
        box_type=b"trak",
        children=[
            tkhd,
            Box(
                box_type=b"mdia",
                children=[
                    Box(
                        box_type=b"minf",
                        children=[
                            Box(
                                box_type=b"stbl",
                                children=[
                                    Box(box_type=b"stsd", children=[sample_entry])
                                ],
                            )
                        ],
                    )
                ],
            ),
        ],
    )
    moov_children: list[Box] = [trak]
    if pssh:
        moov_children.extend(pssh)
    ftyp = Box(box_type=b"ftyp", payload=b"iso6dash")
    moov = Box(box_type=b"moov", children=moov_children)
    return serialize_boxes([ftyp, moov])


def build_media_segment(
    sequence_number: int,
    samples: list[CencSample] | list[bytes],
    *,
    track_id: int = 1,
    iv_size: int = 8,
) -> bytes:
    """Build one media segment (``styp moof mdat``).

    Pass :class:`CencSample` items for protected content (their ``senc``
    entries are emitted with ``saiz``/``saio``) or raw ``bytes`` for
    clear content.
    """
    if not samples:
        raise ValueError("a media segment needs at least one sample")
    protected = isinstance(samples[0], CencSample)

    sample_bytes: list[bytes] = []
    senc_entries: list[SencEntry] = []
    for sample in samples:
        if protected:
            if not isinstance(sample, CencSample):
                raise TypeError("cannot mix clear and protected samples")
            sample_bytes.append(sample.data)
            senc_entries.append(sample.entry)
        else:
            if isinstance(sample, CencSample):
                raise TypeError("cannot mix clear and protected samples")
            sample_bytes.append(sample)

    mfhd = Box(box_type=b"mfhd", payload=struct.pack(">I", sequence_number))
    tfhd = Box(box_type=b"tfhd", payload=struct.pack(">I", track_id))
    trun_payload = bytearray(struct.pack(">I", len(sample_bytes)))
    for blob in sample_bytes:
        trun_payload.extend(struct.pack(">I", len(blob)))
    trun = Box(box_type=b"trun", payload=bytes(trun_payload))

    traf_children: list[Box] = [tfhd, trun]
    if protected:
        senc = SencBox(box_type=b"senc", entries=senc_entries, iv_size=iv_size)
        aux_sizes = [
            iv_size + (2 + 6 * len(e.subsamples) if e.subsamples else 0)
            for e in senc_entries
        ]
        traf_children.append(senc)
        traf_children.append(SaizBox(box_type=b"saiz", sample_sizes=aux_sizes))
        traf_children.append(SaioBox(box_type=b"saio", offsets=[0]))

    moof = Box(
        box_type=b"moof",
        children=[mfhd, Box(box_type=b"traf", children=traf_children)],
    )
    styp = Box(box_type=b"styp", payload=b"msdh")
    mdat = Box(box_type=b"mdat", payload=b"".join(sample_bytes))
    return serialize_boxes([styp, moof, mdat])


def read_track_info(init_segment: bytes) -> TrackInfo:
    """Parse an init segment and report the track's protection status."""
    tree = parse_boxes(init_segment)
    stsd = find_first(tree, b"moov", b"trak", b"mdia", b"minf", b"stbl", b"stsd")
    if stsd is None or not stsd.children:
        raise BoxParseError("init segment has no sample description")
    entry = stsd.children[0]
    known = _KIND_BY_ENTRY.get(entry.box_type)
    if known is None:
        raise BoxParseError(f"unknown sample entry {entry.fourcc!r}")
    kind, protected = known

    codec = "unknown"
    codc = find_first(entry.children, b"codc")
    if codc is not None:
        codec = codc.payload.decode().split(":", 1)[-1]

    default_kid: bytes | None = None
    iv_size = 8
    scheme = "cenc"
    if protected:
        tenc = find_first(entry.children, b"sinf", b"schi", b"tenc")
        if tenc is None or not isinstance(tenc, TencBox):
            raise BoxParseError("protected entry lacks a tenc box")
        default_kid = tenc.default_kid
        iv_size = tenc.iv_size
        schm = find_first(entry.children, b"sinf", b"schm")
        if isinstance(schm, SchmBox):
            scheme = schm.scheme_type.decode("latin-1")

    track_id = 1
    tkhd = find_first(tree, b"moov", b"trak", b"tkhd")
    if tkhd is not None and len(tkhd.payload) >= 4:
        (track_id,) = struct.unpack(">I", tkhd.payload[:4])

    return TrackInfo(
        kind=kind,
        codec=codec,
        protected=protected,
        default_kid=default_kid,
        iv_size=iv_size,
        track_id=track_id,
        scheme=scheme,
    )


def read_samples(
    segment: bytes, *, iv_size: int = 8
) -> tuple[list[CencSample], bool]:
    """Extract the samples of one media segment.

    Returns ``(samples, protected)``. For clear segments the samples
    carry empty ``senc`` entries.
    """
    tree = parse_boxes(segment, iv_size_hint=iv_size)
    trun = find_first(tree, b"moof", b"traf", b"trun")
    mdat = find_first(tree, b"mdat")
    if trun is None or mdat is None:
        raise BoxParseError("media segment lacks trun or mdat")
    (count,) = struct.unpack(">I", trun.payload[:4])
    sizes = [
        struct.unpack(">I", trun.payload[4 + 4 * i : 8 + 4 * i])[0]
        for i in range(count)
    ]
    if sum(sizes) != len(mdat.payload):
        raise BoxParseError("trun sizes do not cover mdat")

    senc = find_first(tree, b"moof", b"traf", b"senc")
    protected = senc is not None
    entries: list[SencEntry]
    if protected:
        assert isinstance(senc, SencBox)
        entries = senc.entries
        if len(entries) != count:
            raise BoxParseError("senc entry count mismatch")
    else:
        entries = [SencEntry(iv=bytes(iv_size)) for _ in range(count)]

    samples: list[CencSample] = []
    offset = 0
    for size, entry in zip(sizes, entries):
        samples.append(
            CencSample(data=mdat.payload[offset : offset + size], entry=entry)
        )
        offset += size
    return samples, protected


def read_pssh_boxes(init_segment: bytes) -> list[Box]:
    """All PSSH boxes found in an init segment's moov."""
    return find_boxes(parse_boxes(init_segment), b"moov", b"pssh")
