"""Widevine PSSH init data.

Real Widevine embeds a protobuf (``WidevinePsshData``) in the PSSH box;
this module implements an equivalent self-describing TLV encoding with
the same fields (key IDs, provider, content id, protection scheme), so
the CDM, the license server and the audit pipeline all exchange real
bytes rather than Python objects.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.bmff.boxes import PsshBox

__all__ = [
    "WIDEVINE_SYSTEM_ID",
    "PLAYREADY_SYSTEM_ID",
    "WidevinePsshData",
    "build_widevine_pssh",
    "parse_widevine_pssh",
]

# The real, well-known Widevine DRM system UUID.
WIDEVINE_SYSTEM_ID = bytes.fromhex("edef8ba979d64acea3c827dcd51d21ed")
# Microsoft PlayReady, used in tests as "some other DRM".
PLAYREADY_SYSTEM_ID = bytes.fromhex("9a04f07998404286ab92e65be0885f95")

_TAG_KEY_ID = 1
_TAG_PROVIDER = 2
_TAG_CONTENT_ID = 3
_TAG_SCHEME = 4


@dataclass
class WidevinePsshData:
    """DRM-specific init data carried in a Widevine PSSH box."""

    key_ids: list[bytes] = field(default_factory=list)
    provider: str = ""
    content_id: bytes = b""
    protection_scheme: str = "cenc"

    def serialize(self) -> bytes:
        out = bytearray()

        def emit(tag: int, value: bytes) -> None:
            out.extend(struct.pack(">BH", tag, len(value)))
            out.extend(value)

        for kid in self.key_ids:
            if len(kid) != 16:
                raise ValueError("key id must be 16 bytes")
            emit(_TAG_KEY_ID, kid)
        if self.provider:
            emit(_TAG_PROVIDER, self.provider.encode())
        if self.content_id:
            emit(_TAG_CONTENT_ID, self.content_id)
        emit(_TAG_SCHEME, self.protection_scheme.encode())
        return bytes(out)

    @classmethod
    def parse(cls, data: bytes) -> "WidevinePsshData":
        result = cls(protection_scheme="")
        offset = 0
        while offset < len(data):
            if offset + 3 > len(data):
                raise ValueError("truncated pssh data TLV")
            tag, length = struct.unpack(">BH", data[offset : offset + 3])
            offset += 3
            value = data[offset : offset + length]
            if len(value) != length:
                raise ValueError("truncated pssh data value")
            offset += length
            if tag == _TAG_KEY_ID:
                result.key_ids.append(value)
            elif tag == _TAG_PROVIDER:
                result.provider = value.decode()
            elif tag == _TAG_CONTENT_ID:
                result.content_id = value
            elif tag == _TAG_SCHEME:
                result.protection_scheme = value.decode()
            # Unknown tags are skipped for forward compatibility.
        if not result.protection_scheme:
            result.protection_scheme = "cenc"
        return result


def build_widevine_pssh(
    key_ids: list[bytes],
    *,
    provider: str = "",
    content_id: bytes = b"",
) -> PsshBox:
    """Build a version-1 Widevine PSSH box covering *key_ids*."""
    data = WidevinePsshData(
        key_ids=list(key_ids), provider=provider, content_id=content_id
    )
    return PsshBox(
        box_type=b"pssh",
        system_id=WIDEVINE_SYSTEM_ID,
        key_ids=list(key_ids),
        data=data.serialize(),
    )


def parse_widevine_pssh(box: PsshBox) -> WidevinePsshData:
    """Decode the Widevine init data from a PSSH box."""
    if box.system_id != WIDEVINE_SYSTEM_ID:
        raise ValueError(
            f"not a Widevine pssh (system id {box.system_id.hex()})"
        )
    return WidevinePsshData.parse(box.data)
