"""ISO Base Media File Format (ISO/IEC 14496-12) box model.

Implements the subset of MP4 boxes the study needs to build, parse and
inspect protected DASH segments:

- plain containers (``moov``, ``trak``, ``mdia``, ``minf``, ``stbl``,
  ``moof``, ``traf``, ``sinf``, ``schi`` …);
- leaf boxes carried opaquely (``mdat``, ``ftyp`` payloads …);
- typed full boxes needed by CENC (``tenc``, ``senc``, ``saiz``,
  ``saio``, ``pssh``, ``frma``, ``schm``).

The model is deliberately round-trip faithful: ``parse(serialize(x))``
reproduces the tree, and the content-protection audit in
:mod:`repro.core.content_audit` decides "is this asset encrypted?" by
parsing these structures, exactly as the paper inspects downloaded
assets rather than trusting any metadata.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

__all__ = [
    "Box",
    "FullBox",
    "TencBox",
    "SencBox",
    "SencEntry",
    "SubsampleRange",
    "PsshBox",
    "SaizBox",
    "SaioBox",
    "FrmaBox",
    "SchmBox",
    "parse_boxes",
    "serialize_boxes",
    "find_boxes",
    "find_first",
    "BoxParseError",
]

# Box types that contain child boxes rather than raw payload.
CONTAINER_TYPES = {
    b"moov",
    b"trak",
    b"mdia",
    b"minf",
    b"stbl",
    b"moof",
    b"traf",
    b"mvex",
    b"sinf",
    b"schi",
    b"edts",
    b"dinf",
    b"udta",
}


class BoxParseError(ValueError):
    """Raised when a byte stream is not well-formed ISO-BMFF."""


@dataclass
class Box:
    """A generic MP4 box: 4-char type plus payload and/or children."""

    box_type: bytes
    payload: bytes = b""
    children: list["Box"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.box_type) != 4:
            raise ValueError(f"box type must be 4 bytes, got {self.box_type!r}")

    @property
    def fourcc(self) -> str:
        return self.box_type.decode("latin-1")

    def body(self) -> bytes:
        """Payload followed by serialized children."""
        return self.payload + b"".join(c.serialize() for c in self.children)

    def serialize(self) -> bytes:
        body = self.body()
        return struct.pack(">I", 8 + len(body)) + self.box_type + body

    def find(self, *path: bytes) -> list["Box"]:
        """All descendant boxes matching a type path, e.g.
        ``segment.find(b"moof", b"traf", b"senc")``."""
        if not path:
            return [self]
        matches: list[Box] = []
        for child in self.children:
            if child.box_type == path[0]:
                matches.extend(child.find(*path[1:]))
        return matches


@dataclass
class FullBox(Box):
    """Box with a version byte and 24-bit flags."""

    version: int = 0
    flags: int = 0

    def body(self) -> bytes:
        header = struct.pack(">B", self.version) + self.flags.to_bytes(3, "big")
        return header + self.payload + b"".join(c.serialize() for c in self.children)


@dataclass
class TencBox(FullBox):
    """Track Encryption box (ISO/IEC 23001-7 §8.2).

    Declares the default protection parameters for a track: whether
    samples are protected, the per-sample IV size, and the default KID
    the license must cover.
    """

    is_protected: bool = True
    iv_size: int = 8
    default_kid: bytes = bytes(16)

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.default_kid) != 16:
            raise ValueError("default_kid must be 16 bytes")
        if self.iv_size not in (0, 8, 16):
            raise ValueError("iv_size must be 0, 8 or 16")

    def body(self) -> bytes:
        self.payload = struct.pack(
            ">BBB", 0, 1 if self.is_protected else 0, self.iv_size
        ) + self.default_kid
        return super().body()

    @classmethod
    def parse_payload(cls, version: int, flags: int, payload: bytes) -> "TencBox":
        if len(payload) < 19:
            raise BoxParseError("tenc payload too short")
        __, protected, iv_size = struct.unpack(">BBB", payload[:3])
        return cls(
            box_type=b"tenc",
            version=version,
            flags=flags,
            is_protected=bool(protected),
            iv_size=iv_size,
            default_kid=payload[3:19],
        )


@dataclass
class SubsampleRange:
    """One (clear, protected) byte-range pair inside a sample."""

    clear_bytes: int
    protected_bytes: int


@dataclass
class SencEntry:
    """Per-sample encryption data: IV plus optional subsample map."""

    iv: bytes
    subsamples: list[SubsampleRange] = field(default_factory=list)


@dataclass
class SencBox(FullBox):
    """Sample Encryption box (ISO/IEC 23001-7 §7.2).

    flag 0x2 signals the presence of subsample ranges.
    """

    entries: list[SencEntry] = field(default_factory=list)
    iv_size: int = 8

    def body(self) -> bytes:
        has_subsamples = any(e.subsamples for e in self.entries)
        self.flags = 0x2 if has_subsamples else 0x0
        out = bytearray(struct.pack(">I", len(self.entries)))
        for entry in self.entries:
            if len(entry.iv) != self.iv_size:
                raise ValueError(
                    f"IV length {len(entry.iv)} != declared iv_size {self.iv_size}"
                )
            out.extend(entry.iv)
            if has_subsamples:
                out.extend(struct.pack(">H", len(entry.subsamples)))
                for sub in entry.subsamples:
                    out.extend(struct.pack(">HI", sub.clear_bytes, sub.protected_bytes))
        self.payload = bytes(out)
        return super().body()

    @classmethod
    def parse_payload(
        cls, version: int, flags: int, payload: bytes, iv_size: int = 8
    ) -> "SencBox":
        if len(payload) < 4:
            raise BoxParseError("senc payload too short")
        (count,) = struct.unpack(">I", payload[:4])
        offset = 4
        entries: list[SencEntry] = []
        for _ in range(count):
            iv = payload[offset : offset + iv_size]
            if len(iv) != iv_size:
                raise BoxParseError("senc truncated IV")
            offset += iv_size
            subsamples: list[SubsampleRange] = []
            if flags & 0x2:
                (sub_count,) = struct.unpack(">H", payload[offset : offset + 2])
                offset += 2
                for _ in range(sub_count):
                    clear, protected = struct.unpack(
                        ">HI", payload[offset : offset + 6]
                    )
                    offset += 6
                    subsamples.append(SubsampleRange(clear, protected))
            entries.append(SencEntry(iv=iv, subsamples=subsamples))
        return cls(
            box_type=b"senc",
            version=version,
            flags=flags,
            entries=entries,
            iv_size=iv_size,
        )


@dataclass
class PsshBox(FullBox):
    """Protection System Specific Header (ISO/IEC 23001-7 §8.1).

    Version 1 carries the key IDs in the box itself; ``data`` holds the
    DRM-specific init data (for Widevine, the serialized request blob).
    """

    system_id: bytes = bytes(16)
    key_ids: list[bytes] = field(default_factory=list)
    data: bytes = b""

    def __post_init__(self) -> None:
        super().__post_init__()
        if len(self.system_id) != 16:
            raise ValueError("system_id must be 16 bytes")

    def body(self) -> bytes:
        self.version = 1 if self.key_ids else 0
        out = bytearray(self.system_id)
        if self.version == 1:
            out.extend(struct.pack(">I", len(self.key_ids)))
            for kid in self.key_ids:
                if len(kid) != 16:
                    raise ValueError("key id must be 16 bytes")
                out.extend(kid)
        out.extend(struct.pack(">I", len(self.data)))
        out.extend(self.data)
        self.payload = bytes(out)
        return super().body()

    @classmethod
    def parse_payload(cls, version: int, flags: int, payload: bytes) -> "PsshBox":
        if len(payload) < 20:
            raise BoxParseError("pssh payload too short")
        system_id = payload[:16]
        offset = 16
        key_ids: list[bytes] = []
        if version >= 1:
            (count,) = struct.unpack(">I", payload[offset : offset + 4])
            offset += 4
            for _ in range(count):
                key_ids.append(payload[offset : offset + 16])
                offset += 16
        (data_len,) = struct.unpack(">I", payload[offset : offset + 4])
        offset += 4
        data = payload[offset : offset + data_len]
        if len(data) != data_len:
            raise BoxParseError("pssh truncated data")
        return cls(
            box_type=b"pssh",
            version=version,
            flags=flags,
            system_id=system_id,
            key_ids=key_ids,
            data=data,
        )


@dataclass
class SaizBox(FullBox):
    """Sample Auxiliary Information Sizes box."""

    sample_sizes: list[int] = field(default_factory=list)

    def body(self) -> bytes:
        uniform = len(set(self.sample_sizes)) == 1 if self.sample_sizes else True
        default_size = self.sample_sizes[0] if uniform and self.sample_sizes else 0
        out = bytearray(struct.pack(">BI", default_size, len(self.sample_sizes)))
        if not uniform:
            out[0:1] = b"\x00"
            out.extend(bytes(self.sample_sizes))
        self.payload = bytes(out)
        return super().body()

    @classmethod
    def parse_payload(cls, version: int, flags: int, payload: bytes) -> "SaizBox":
        default_size, count = struct.unpack(">BI", payload[:5])
        if default_size:
            sizes = [default_size] * count
        else:
            sizes = list(payload[5 : 5 + count])
        return cls(box_type=b"saiz", version=version, flags=flags, sample_sizes=sizes)


@dataclass
class SaioBox(FullBox):
    """Sample Auxiliary Information Offsets box."""

    offsets: list[int] = field(default_factory=list)

    def body(self) -> bytes:
        out = bytearray(struct.pack(">I", len(self.offsets)))
        for off in self.offsets:
            out.extend(struct.pack(">I", off))
        self.payload = bytes(out)
        return super().body()

    @classmethod
    def parse_payload(cls, version: int, flags: int, payload: bytes) -> "SaioBox":
        (count,) = struct.unpack(">I", payload[:4])
        offsets = [
            struct.unpack(">I", payload[4 + 4 * i : 8 + 4 * i])[0]
            for i in range(count)
        ]
        return cls(box_type=b"saio", version=version, flags=flags, offsets=offsets)


@dataclass
class FrmaBox(Box):
    """Original Format box: the pre-encryption sample-entry fourcc."""

    original_format: bytes = b"mp4v"

    def body(self) -> bytes:
        self.payload = self.original_format
        return super().body()

    @classmethod
    def parse_payload(cls, payload: bytes) -> "FrmaBox":
        return cls(box_type=b"frma", original_format=payload[:4])


@dataclass
class SchmBox(FullBox):
    """Scheme Type box: which protection scheme applies (``cenc``…)."""

    scheme_type: bytes = b"cenc"
    scheme_version: int = 0x00010000

    def body(self) -> bytes:
        self.payload = self.scheme_type + struct.pack(">I", self.scheme_version)
        return super().body()

    @classmethod
    def parse_payload(cls, version: int, flags: int, payload: bytes) -> "SchmBox":
        return cls(
            box_type=b"schm",
            version=version,
            flags=flags,
            scheme_type=payload[:4],
            scheme_version=struct.unpack(">I", payload[4:8])[0],
        )


_FULLBOX_TYPES = {b"tenc", b"senc", b"pssh", b"saiz", b"saio", b"schm"}


def _parse_one(data: bytes, offset: int, *, iv_size_hint: int = 8) -> tuple[Box, int]:
    if offset + 8 > len(data):
        raise BoxParseError("truncated box header")
    (size,) = struct.unpack(">I", data[offset : offset + 4])
    box_type = data[offset + 4 : offset + 8]
    if size < 8 or offset + size > len(data):
        raise BoxParseError(f"bad box size {size} for {box_type!r}")
    body = data[offset + 8 : offset + size]

    if box_type in CONTAINER_TYPES:
        children = parse_boxes(body, iv_size_hint=iv_size_hint)
        return Box(box_type=box_type, children=children), offset + size

    if box_type in _FULLBOX_TYPES:
        if len(body) < 4:
            raise BoxParseError(f"truncated fullbox {box_type!r}")
        version = body[0]
        flags = int.from_bytes(body[1:4], "big")
        payload = body[4:]
        if box_type == b"tenc":
            return TencBox.parse_payload(version, flags, payload), offset + size
        if box_type == b"senc":
            return (
                SencBox.parse_payload(version, flags, payload, iv_size=iv_size_hint),
                offset + size,
            )
        if box_type == b"pssh":
            return PsshBox.parse_payload(version, flags, payload), offset + size
        if box_type == b"saiz":
            return SaizBox.parse_payload(version, flags, payload), offset + size
        if box_type == b"saio":
            return SaioBox.parse_payload(version, flags, payload), offset + size
        if box_type == b"schm":
            return SchmBox.parse_payload(version, flags, payload), offset + size

    if box_type == b"frma":
        return FrmaBox.parse_payload(body), offset + size

    return Box(box_type=box_type, payload=body), offset + size


def parse_boxes(data: bytes, *, iv_size_hint: int = 8) -> list[Box]:
    """Parse a byte string into a list of top-level boxes.

    ``iv_size_hint`` resolves the one genuine ambiguity of the format:
    ``senc`` cannot be parsed without knowing the track's IV size from
    ``tenc``. Callers inspecting full files should pass the value read
    from the init segment; the default (8) matches this library's
    builder output.
    """
    boxes: list[Box] = []
    offset = 0
    while offset < len(data):
        box, offset = _parse_one(data, offset, iv_size_hint=iv_size_hint)
        boxes.append(box)
    return boxes


def serialize_boxes(boxes: list[Box]) -> bytes:
    """Serialize a list of boxes back to bytes."""
    return b"".join(box.serialize() for box in boxes)


def find_boxes(boxes: list[Box], *path: bytes) -> list[Box]:
    """Search a box forest for all boxes matching the type path."""
    matches: list[Box] = []
    for box in boxes:
        if box.box_type == path[0]:
            matches.extend(box.find(*path[1:]))
    return matches


def find_first(boxes: list[Box], *path: bytes) -> Box | None:
    """First match of :func:`find_boxes`, or None."""
    found = find_boxes(boxes, *path)
    return found[0] if found else None
