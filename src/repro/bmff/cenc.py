"""CENC (ISO/IEC 23001-7) ``cenc`` scheme encryption and decryption.

Implements AES-CTR subsample encryption over fragmented-MP4 samples:
each sample gets a per-sample IV recorded in ``senc``; a subsample map
splits the sample into clear (headers) and protected (payload) ranges,
with the CTR keystream running continuously across the protected ranges
of one sample — the detail real decryptors must get right, and the one
this module is property-tested on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bmff.boxes import SencEntry, SubsampleRange
from repro.crypto.aes import BLOCK_SIZE, cipher_for
from repro.crypto.modes import ctr_keystream, xor_bytes
from repro.crypto.rng import HmacDrbg

__all__ = [
    "CencSample",
    "encrypt_sample",
    "decrypt_sample",
    "encrypt_sample_cbcs",
    "decrypt_sample_cbcs",
    "DEFAULT_CBCS_PATTERN",
    "iv_sequence",
    "CencDecryptError",
]


class CencDecryptError(ValueError):
    """Raised when sample decryption fails structurally."""


@dataclass
class CencSample:
    """One encrypted sample plus its ``senc`` entry."""

    data: bytes
    entry: SencEntry = field(
        default_factory=lambda: SencEntry(iv=bytes(8), subsamples=[])
    )


def _ctr_keystream(key: bytes, iv: bytes, length: int) -> bytes:
    """CENC counter mode keystream: 8-byte IV in the top half of the
    counter block, 64-bit big-endian block counter in the bottom half
    (16-byte IVs are used directly as the initial counter).

    Delegates to the process-wide cached keystream in
    :func:`repro.crypto.modes.ctr_keystream`: packaging and audit
    decryption derive identical runs, so the second side is a cache hit.
    """
    if len(iv) not in (8, 16):
        raise ValueError("CENC IV must be 8 or 16 bytes")
    return ctr_keystream(key, iv, length)


def _protected_length(sample_len: int, subsamples: list[SubsampleRange]) -> int:
    if not subsamples:
        return sample_len
    total = sum(s.clear_bytes + s.protected_bytes for s in subsamples)
    if total != sample_len:
        raise CencDecryptError(
            f"subsample map covers {total} bytes, sample has {sample_len}"
        )
    return sum(s.protected_bytes for s in subsamples)


def _transform(
    data: bytes, key: bytes, entry: SencEntry
) -> bytes:
    """Apply the continuous CTR keystream to the protected ranges."""
    protected_len = _protected_length(len(data), entry.subsamples)
    keystream = _ctr_keystream(key, entry.iv, protected_len)
    if not entry.subsamples:
        return xor_bytes(data, keystream)
    out = bytearray()
    consumed = 0
    offset = 0
    for sub in entry.subsamples:
        out.extend(data[offset : offset + sub.clear_bytes])
        offset += sub.clear_bytes
        chunk = data[offset : offset + sub.protected_bytes]
        ks = keystream[consumed : consumed + sub.protected_bytes]
        out.extend(xor_bytes(chunk, ks))
        offset += sub.protected_bytes
        consumed += sub.protected_bytes
    return bytes(out)


def encrypt_sample(
    sample: bytes,
    key: bytes,
    iv: bytes,
    *,
    clear_header: int = 0,
) -> CencSample:
    """Encrypt one sample under the ``cenc`` scheme.

    ``clear_header`` bytes at the front stay in the clear (modelling
    NAL/frame headers that decoders must read before decryption), and
    are recorded as a subsample range.
    """
    if clear_header < 0 or clear_header > len(sample):
        raise ValueError("clear_header out of range")
    subsamples: list[SubsampleRange] = []
    if clear_header:
        subsamples = [SubsampleRange(clear_header, len(sample) - clear_header)]
    entry = SencEntry(iv=bytes(iv), subsamples=subsamples)
    return CencSample(data=_transform(sample, key, entry), entry=entry)


def decrypt_sample(sample: CencSample, key: bytes) -> bytes:
    """Decrypt one sample; the inverse of :func:`encrypt_sample`."""
    return _transform(sample.data, key, sample.entry)


def iv_sequence(seed: bytes, count: int, *, iv_size: int = 8) -> list[bytes]:
    """Deterministic per-sample IV sequence derived from *seed*."""
    rng = HmacDrbg(b"cenc-iv/" + seed)
    return [rng.generate(iv_size) for _ in range(count)]


# -- the 'cbcs' pattern-encryption scheme (ISO/IEC 23001-7 §9.6) -------------
#
# cbcs encrypts runs of `crypt_blocks` AES-CBC blocks separated by
# `skip_blocks` clear blocks (the common pattern is 1:9), with the IV
# resetting at each subsample and any partial trailing block left
# clear. It is the scheme HLS/FairPlay-compatible packaging uses; DASH
# services in this study use 'cenc', but the container substrate
# supports both.

DEFAULT_CBCS_PATTERN = (1, 9)


def _cbcs_transform_range(
    data: bytes,
    key: bytes,
    iv: bytes,
    pattern: tuple[int, int],
    *,
    encrypt: bool,
) -> bytes:
    crypt_blocks, skip_blocks = pattern
    if crypt_blocks < 1 or skip_blocks < 0:
        raise ValueError(f"bad cbcs pattern {pattern}")
    if len(iv) != BLOCK_SIZE:
        raise ValueError("cbcs IV must be 16 bytes")
    cipher = cipher_for(key)
    out = bytearray()
    previous = iv
    offset = 0
    while offset + BLOCK_SIZE <= len(data):
        for _ in range(crypt_blocks):
            if offset + BLOCK_SIZE > len(data):
                break
            chunk = data[offset : offset + BLOCK_SIZE]
            if encrypt:
                block = cipher.encrypt_block(xor_bytes(chunk, previous))
                previous = block
            else:
                block = xor_bytes(cipher.decrypt_block(chunk), previous)
                previous = chunk
            out.extend(block)
            offset += BLOCK_SIZE
        skip_bytes = min(skip_blocks * BLOCK_SIZE, len(data) - offset)
        out.extend(data[offset : offset + skip_bytes])
        offset += skip_bytes
    out.extend(data[offset:])  # partial trailing block stays clear
    return bytes(out)


def encrypt_sample_cbcs(
    sample: bytes,
    key: bytes,
    iv: bytes,
    *,
    clear_header: int = 0,
    pattern: tuple[int, int] = DEFAULT_CBCS_PATTERN,
) -> CencSample:
    """Encrypt one sample under the ``cbcs`` scheme (constant IV)."""
    if clear_header < 0 or clear_header > len(sample):
        raise ValueError("clear_header out of range")
    subsamples: list[SubsampleRange] = []
    if clear_header:
        subsamples = [SubsampleRange(clear_header, len(sample) - clear_header)]
    entry = SencEntry(iv=bytes(iv), subsamples=subsamples)
    data = _apply_cbcs(sample, key, entry, pattern, encrypt=True)
    return CencSample(data=data, entry=entry)


def decrypt_sample_cbcs(
    sample: CencSample,
    key: bytes,
    *,
    pattern: tuple[int, int] = DEFAULT_CBCS_PATTERN,
) -> bytes:
    """Inverse of :func:`encrypt_sample_cbcs`."""
    return _apply_cbcs(sample.data, key, sample.entry, pattern, encrypt=False)


def _apply_cbcs(
    data: bytes,
    key: bytes,
    entry: SencEntry,
    pattern: tuple[int, int],
    *,
    encrypt: bool,
) -> bytes:
    if not entry.subsamples:
        return _cbcs_transform_range(data, key, entry.iv, pattern, encrypt=encrypt)
    _protected_length(len(data), entry.subsamples)  # validates coverage
    out = bytearray()
    offset = 0
    for sub in entry.subsamples:
        out.extend(data[offset : offset + sub.clear_bytes])
        offset += sub.clear_bytes
        chunk = data[offset : offset + sub.protected_bytes]
        # The IV resets per subsample in cbcs.
        out.extend(
            _cbcs_transform_range(chunk, key, entry.iv, pattern, encrypt=encrypt)
        )
        offset += sub.protected_bytes
    return bytes(out)
