"""RSA key generation and padded operations (OAEP, PSS).

The Widevine protocol uses a per-device 2048-bit RSA key installed
during provisioning: license requests are signed with RSASSA-PSS and
the license server wraps session material with RSAES-OAEP. Both are
implemented here from the PKCS#1 v2.2 definitions over pure-Python
big integers.

Key generation is deterministic given a DRBG, which lets the
provisioning server mint reproducible per-device keys and lets the test
suite cache expensive keys by seed.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass

from repro.crypto.rng import HmacDrbg, derive_rng

__all__ = [
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_keypair",
    "oaep_encrypt",
    "oaep_decrypt",
    "pss_sign",
    "pss_verify",
]

_SMALL_PRIMES: list[int] = []


def _sieve(limit: int = 2000) -> list[int]:
    flags = bytearray([1]) * (limit + 1)
    flags[0:2] = b"\x00\x00"
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = b"\x00" * len(flags[i * i :: i])
    return [i for i, f in enumerate(flags) if f]


def _is_probable_prime(candidate: int, rng: HmacDrbg, rounds: int = 24) -> bool:
    if candidate < 2:
        return False
    global _SMALL_PRIMES
    if not _SMALL_PRIMES:
        _SMALL_PRIMES = _sieve()
    for p in _SMALL_PRIMES:
        if candidate == p:
            return True
        if candidate % p == 0:
            return False
    # Miller-Rabin.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + rng.randint_below(candidate - 3)
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: HmacDrbg) -> int:
    while True:
        candidate = rng.rand_odd(bits)
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def raw_encrypt(self, m: int) -> int:
        if not 0 <= m < self.n:
            raise ValueError("message representative out of range")
        return pow(m, self.e, self.n)

    def fingerprint(self) -> bytes:
        """SHA-256 of the public modulus (used as a device key id)."""
        return hashlib.sha256(
            self.n.to_bytes(self.byte_length, "big")
        ).digest()


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key with CRT parameters."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def raw_decrypt(self, c: int) -> int:
        if not 0 <= c < self.n:
            raise ValueError("ciphertext representative out of range")
        # CRT for a ~4x speedup over pow(c, d, n).
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        qinv = pow(self.q, -1, self.p)
        m1 = pow(c, dp, self.p)
        m2 = pow(c, dq, self.q)
        h = (qinv * (m1 - m2)) % self.p
        return m2 + h * self.q

    def export_secret(self) -> bytes:
        """Serialized private material, as stored by the CDM after
        provisioning (length-prefixed n, e, d, p, q)."""
        parts = [self.n, self.e, self.d, self.p, self.q]
        out = bytearray(b"RSA1")
        for value in parts:
            blob = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
            out.extend(len(blob).to_bytes(4, "big"))
            out.extend(blob)
        return bytes(out)

    @classmethod
    def import_secret(cls, blob: bytes) -> "RsaPrivateKey":
        if blob[:4] != b"RSA1":
            raise ValueError("not an exported RSA key")
        values = []
        offset = 4
        for _ in range(5):
            length = int.from_bytes(blob[offset : offset + 4], "big")
            offset += 4
            values.append(int.from_bytes(blob[offset : offset + length], "big"))
            offset += length
        n, e, d, p, q = values
        return cls(n=n, e=e, d=d, p=p, q=q)


_KEY_CACHE: dict[tuple[bytes, int], RsaPrivateKey] = {}
_KEY_CACHE_LOCK = threading.Lock()
_KEY_CACHE_INFLIGHT: dict[tuple[bytes, int], threading.Event] = {}


def generate_keypair(
    bits: int = 2048, *, rng: HmacDrbg | None = None, label: str = "rsa"
) -> RsaPrivateKey:
    """Generate an RSA key pair deterministically from *rng*.

    Results are cached by (DRBG label seed, bits) when no explicit rng
    is supplied, because 2048-bit generation in pure Python costs
    noticeable wall-clock and the simulation mints many devices.

    The cache is thread-safe with per-label in-flight tracking: when
    parallel study workers provision devices with the same serial
    simultaneously, one thread generates while the rest wait for the
    result instead of duplicating the most expensive computation in the
    whole substrate.
    """
    if rng is None:
        cache_key = (label.encode(), bits)
        while True:
            with _KEY_CACHE_LOCK:
                cached = _KEY_CACHE.get(cache_key)
                if cached is not None:
                    return cached
                pending = _KEY_CACHE_INFLIGHT.get(cache_key)
                if pending is None:
                    _KEY_CACHE_INFLIGHT[cache_key] = threading.Event()
                    break
            # Another thread is generating this exact key; wait for it,
            # then re-check the cache (or take over if it failed).
            pending.wait()
        try:
            key = generate_keypair(bits, rng=derive_rng(label))
            with _KEY_CACHE_LOCK:
                _KEY_CACHE[cache_key] = key
        finally:
            with _KEY_CACHE_LOCK:
                _KEY_CACHE_INFLIGHT.pop(cache_key).set()
        return key
    e = 65537
    while True:
        p = _generate_prime(bits // 2, rng)
        q = _generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        d = pow(e, -1, phi)
        return RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)


# --- PKCS#1 v2.2 encoding ---------------------------------------------

_HASH = hashlib.sha256
_HASH_LEN = 32


def _mgf1(seed: bytes, length: int) -> bytes:
    output = bytearray()
    counter = 0
    while len(output) < length:
        output.extend(_HASH(seed + counter.to_bytes(4, "big")).digest())
        counter += 1
    return bytes(output[:length])


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def oaep_encrypt(
    public: RsaPublicKey,
    message: bytes,
    *,
    label: bytes = b"",
    rng: HmacDrbg | None = None,
) -> bytes:
    """RSAES-OAEP encryption (SHA-256, MGF1-SHA-256)."""
    k = public.byte_length
    max_len = k - 2 * _HASH_LEN - 2
    if len(message) > max_len:
        raise ValueError(f"message too long for OAEP ({len(message)} > {max_len})")
    rng = rng or derive_rng("oaep-seed")
    l_hash = _HASH(label).digest()
    padding = bytes(k - len(message) - 2 * _HASH_LEN - 2)
    data_block = l_hash + padding + b"\x01" + message
    seed = rng.generate(_HASH_LEN)
    masked_db = _xor(data_block, _mgf1(seed, k - _HASH_LEN - 1))
    masked_seed = _xor(seed, _mgf1(masked_db, _HASH_LEN))
    encoded = b"\x00" + masked_seed + masked_db
    c = public.raw_encrypt(int.from_bytes(encoded, "big"))
    return c.to_bytes(k, "big")


def oaep_decrypt(
    private: RsaPrivateKey, ciphertext: bytes, *, label: bytes = b""
) -> bytes:
    """RSAES-OAEP decryption; raises ValueError on any padding failure."""
    k = private.byte_length
    if len(ciphertext) != k:
        raise ValueError("ciphertext has wrong length")
    m = private.raw_decrypt(int.from_bytes(ciphertext, "big"))
    encoded = m.to_bytes(k, "big")
    if encoded[0] != 0:
        raise ValueError("OAEP decoding error")
    masked_seed = encoded[1 : 1 + _HASH_LEN]
    masked_db = encoded[1 + _HASH_LEN :]
    seed = _xor(masked_seed, _mgf1(masked_db, _HASH_LEN))
    data_block = _xor(masked_db, _mgf1(seed, k - _HASH_LEN - 1))
    l_hash = _HASH(label).digest()
    if data_block[:_HASH_LEN] != l_hash:
        raise ValueError("OAEP decoding error")
    rest = data_block[_HASH_LEN:]
    sep = rest.find(b"\x01")
    if sep < 0 or any(rest[:sep]):
        raise ValueError("OAEP decoding error")
    return rest[sep + 1 :]


def pss_sign(
    private: RsaPrivateKey,
    message: bytes,
    *,
    salt_len: int = _HASH_LEN,
    rng: HmacDrbg | None = None,
) -> bytes:
    """RSASSA-PSS signature (SHA-256, MGF1-SHA-256)."""
    rng = rng or derive_rng("pss-salt")
    em_bits = private.n.bit_length() - 1
    em_len = (em_bits + 7) // 8
    m_hash = _HASH(message).digest()
    if em_len < _HASH_LEN + salt_len + 2:
        raise ValueError("encoding error: modulus too small")
    salt = rng.generate(salt_len)
    m_prime = bytes(8) + m_hash + salt
    h = _HASH(m_prime).digest()
    ps = bytes(em_len - salt_len - _HASH_LEN - 2)
    db = ps + b"\x01" + salt
    db_mask = _mgf1(h, em_len - _HASH_LEN - 1)
    masked_db = bytearray(_xor(db, db_mask))
    masked_db[0] &= 0xFF >> (8 * em_len - em_bits)
    em = bytes(masked_db) + h + b"\xbc"
    signature = pow(int.from_bytes(em, "big"), private.d, private.n)
    return signature.to_bytes(private.byte_length, "big")


def pss_verify(
    public: RsaPublicKey,
    message: bytes,
    signature: bytes,
    *,
    salt_len: int = _HASH_LEN,
) -> bool:
    """Verify an RSASSA-PSS signature; returns False on any mismatch."""
    if len(signature) != public.byte_length:
        return False
    em_bits = public.n.bit_length() - 1
    em_len = (em_bits + 7) // 8
    m = pow(int.from_bytes(signature, "big"), public.e, public.n)
    em = m.to_bytes(em_len, "big")
    if em[-1] != 0xBC:
        return False
    masked_db = em[: em_len - _HASH_LEN - 1]
    h = em[em_len - _HASH_LEN - 1 : -1]
    unused_bits = 8 * em_len - em_bits
    if unused_bits and masked_db[0] >> (8 - unused_bits):
        return False
    db = bytearray(_xor(masked_db, _mgf1(h, em_len - _HASH_LEN - 1)))
    db[0] &= 0xFF >> (8 * em_len - em_bits)
    expected_ps = bytes(em_len - salt_len - _HASH_LEN - 2)
    if bytes(db[: len(expected_ps)]) != expected_ps:
        return False
    if db[len(expected_ps)] != 0x01:
        return False
    salt = bytes(db[-salt_len:]) if salt_len else b""
    m_hash = _HASH(message).digest()
    m_prime = bytes(8) + m_hash + salt
    return _HASH(m_prime).digest() == h
