"""Deterministic randomness for the whole simulation.

Every component that needs "random" bytes (key generation, IVs, nonces,
session ids) draws from an :class:`HmacDrbg` seeded with a component-
specific label. This keeps the entire study — Table I, the key-ladder
attack, the benchmarks — bit-for-bit reproducible across runs, which the
paper's artifact also aims for.

The DRBG follows NIST SP 800-90A HMAC_DRBG (SHA-256) without
prediction resistance; it is *not* intended as a secure RNG, only as a
faithful deterministic stand-in.
"""

from __future__ import annotations

import hashlib
import hmac

__all__ = ["HmacDrbg", "derive_rng"]


class HmacDrbg:
    """NIST SP 800-90A HMAC_DRBG over SHA-256."""

    def __init__(self, seed: bytes):
        self._key = b"\x00" * 32
        self._value = b"\x01" * 32
        self._reseed_counter = 1
        self._update(seed)

    def _hmac(self, key: bytes, data: bytes) -> bytes:
        return hmac.new(key, data, hashlib.sha256).digest()

    def _update(self, provided: bytes | None) -> None:
        self._key = self._hmac(self._key, self._value + b"\x00" + (provided or b""))
        self._value = self._hmac(self._key, self._value)
        if provided:
            self._key = self._hmac(self._key, self._value + b"\x01" + provided)
            self._value = self._hmac(self._key, self._value)

    def reseed(self, data: bytes) -> None:
        """Mix additional entropy (used to diversify per-session)."""
        self._update(data)
        self._reseed_counter = 1

    def generate(self, num_bytes: int) -> bytes:
        """Return *num_bytes* of deterministic pseudo-random output."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        output = bytearray()
        while len(output) < num_bytes:
            self._value = self._hmac(self._key, self._value)
            output.extend(self._value)
        self._update(None)
        self._reseed_counter += 1
        return bytes(output[:num_bytes])

    def randint_below(self, upper: int) -> int:
        """Uniform integer in ``[0, upper)`` via rejection sampling."""
        if upper <= 0:
            raise ValueError("upper must be positive")
        nbytes = (upper.bit_length() + 7) // 8
        while True:
            candidate = int.from_bytes(self.generate(nbytes), "big")
            if candidate < (256**nbytes // upper) * upper:
                return candidate % upper

    def rand_odd(self, bits: int) -> int:
        """Random odd integer with exactly *bits* bits (for prime search)."""
        if bits < 2:
            raise ValueError("bits must be >= 2")
        raw = int.from_bytes(self.generate((bits + 7) // 8), "big")
        raw |= 1 << (bits - 1)
        raw |= 1
        return raw & ((1 << bits) - 1)


def derive_rng(label: str, *, seed: bytes = b"wideleak-repro") -> HmacDrbg:
    """Create a DRBG namespaced by *label* from the global seed."""
    return HmacDrbg(seed + b"/" + label.encode())
