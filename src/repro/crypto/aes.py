"""Pure-Python AES block cipher (FIPS 197).

Implements the raw 128-bit block transform for AES-128/192/256. Modes of
operation live in :mod:`repro.crypto.modes`. The implementation is
table-based for reasonable throughput on the synthetic media payloads
used throughout the simulation.

This module is self-contained on purpose: the execution environment has
no third-party crypto packages, and the Widevine key ladder reproduced
in :mod:`repro.widevine.keyladder` needs real AES so that recovered keys
actually decrypt real ciphertext.
"""

from __future__ import annotations

__all__ = ["AES", "BLOCK_SIZE"]

BLOCK_SIZE = 16

# --- S-box generation -------------------------------------------------
#
# The S-box is derived from the multiplicative inverse in GF(2^8)
# followed by the affine transform, rather than pasted as a literal
# table, so the construction is auditable.


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    # Multiplicative inverses via exponentiation by 254 (a^254 = a^-1).
    inverse = [0] * 256
    for value in range(1, 256):
        acc = 1
        base = value
        exp = 254
        while exp:
            if exp & 1:
                acc = _gf_mul(acc, base)
            base = _gf_mul(base, base)
            exp >>= 1
        inverse[value] = acc

    sbox = bytearray(256)
    for value in range(256):
        inv = inverse[value]
        transformed = 0x63
        for shift in (0, 1, 2, 3, 4):
            rotated = ((inv << shift) | (inv >> (8 - shift))) & 0xFF
            transformed ^= rotated
        sbox[value] = transformed

    inv_sbox = bytearray(256)
    for value, substituted in enumerate(sbox):
        inv_sbox[substituted] = value
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()

# Round constants for the key schedule.
_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))

# Precomputed multiplication tables for MixColumns / InvMixColumns.
_MUL2 = bytes(_gf_mul(x, 2) for x in range(256))
_MUL3 = bytes(_gf_mul(x, 3) for x in range(256))
_MUL9 = bytes(_gf_mul(x, 9) for x in range(256))
_MUL11 = bytes(_gf_mul(x, 11) for x in range(256))
_MUL13 = bytes(_gf_mul(x, 13) for x in range(256))
_MUL14 = bytes(_gf_mul(x, 14) for x in range(256))

_ROUNDS_BY_KEY_LEN = {16: 10, 24: 12, 32: 14}


class AES:
    """Raw AES block transform bound to one expanded key.

    >>> cipher = AES(bytes(16))
    >>> cipher.decrypt_block(cipher.encrypt_block(b"sixteen byte msg"))
    b'sixteen byte msg'
    """

    def __init__(self, key: bytes):
        if len(key) not in _ROUNDS_BY_KEY_LEN:
            raise ValueError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
            )
        self._key = bytes(key)
        self._rounds = _ROUNDS_BY_KEY_LEN[len(key)]
        self._round_keys = self._expand_key(self._key)

    @property
    def key(self) -> bytes:
        return self._key

    @property
    def rounds(self) -> int:
        return self._rounds

    def _expand_key(self, key: bytes) -> list[list[int]]:
        """Expand the key into (rounds + 1) 16-byte round keys.

        Round keys are stored as flat lists of 16 ints for fast
        per-block XOR.
        """
        key_words = [list(key[i : i + 4]) for i in range(0, len(key), 4)]
        nk = len(key_words)
        total_words = 4 * (self._rounds + 1)
        words = list(key_words)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for r in range(self._rounds + 1):
            flat: list[int] = []
            for w in words[4 * r : 4 * r + 4]:
                flat.extend(w)
            round_keys.append(flat)
        return round_keys

    # The state is kept as a flat list of 16 bytes in column-major
    # order, matching the FIPS 197 byte numbering: state[r + 4*c].

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        rk = self._round_keys
        s = [block[i] ^ rk[0][i] for i in range(16)]
        for rnd in range(1, self._rounds):
            s = self._encrypt_round(s, rk[rnd])
        return bytes(self._final_round(s, rk[self._rounds]))

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        rk = self._round_keys
        s = [block[i] ^ rk[self._rounds][i] for i in range(16)]
        for rnd in range(self._rounds - 1, 0, -1):
            s = self._decrypt_round(s, rk[rnd])
        # Final: InvShiftRows + InvSubBytes + AddRoundKey.
        out = bytearray(16)
        for c in range(4):
            for r in range(4):
                src = (c - r) % 4
                out[r + 4 * c] = _INV_SBOX[s[r + 4 * src]] ^ rk[0][r + 4 * c]
        return bytes(out)

    @staticmethod
    def _encrypt_round(s: list[int], round_key: list[int]) -> list[int]:
        """One full round: SubBytes, ShiftRows, MixColumns, AddRoundKey."""
        out = [0] * 16
        sbox, mul2, mul3 = _SBOX, _MUL2, _MUL3
        for c in range(4):
            # ShiftRows folded into the source indices.
            b0 = sbox[s[0 + 4 * c]]
            b1 = sbox[s[1 + 4 * ((c + 1) % 4)]]
            b2 = sbox[s[2 + 4 * ((c + 2) % 4)]]
            b3 = sbox[s[3 + 4 * ((c + 3) % 4)]]
            base = 4 * c
            out[base + 0] = mul2[b0] ^ mul3[b1] ^ b2 ^ b3 ^ round_key[base + 0]
            out[base + 1] = b0 ^ mul2[b1] ^ mul3[b2] ^ b3 ^ round_key[base + 1]
            out[base + 2] = b0 ^ b1 ^ mul2[b2] ^ mul3[b3] ^ round_key[base + 2]
            out[base + 3] = mul3[b0] ^ b1 ^ b2 ^ mul2[b3] ^ round_key[base + 3]
        return out

    @staticmethod
    def _final_round(s: list[int], round_key: list[int]) -> bytearray:
        """Last round: SubBytes, ShiftRows, AddRoundKey (no MixColumns)."""
        out = bytearray(16)
        for c in range(4):
            for r in range(4):
                src = (c + r) % 4
                out[r + 4 * c] = _SBOX[s[r + 4 * src]] ^ round_key[r + 4 * c]
        return out

    @staticmethod
    def _decrypt_round(s: list[int], round_key: list[int]) -> list[int]:
        """One inverse round: InvShiftRows, InvSubBytes, AddRoundKey,
        InvMixColumns (equivalent-inverse-cipher ordering)."""
        t = [0] * 16
        for c in range(4):
            for r in range(4):
                src = (c - r) % 4
                t[r + 4 * c] = _INV_SBOX[s[r + 4 * src]] ^ round_key[r + 4 * c]
        out = [0] * 16
        m9, m11, m13, m14 = _MUL9, _MUL11, _MUL13, _MUL14
        for c in range(4):
            base = 4 * c
            b0, b1, b2, b3 = t[base], t[base + 1], t[base + 2], t[base + 3]
            out[base + 0] = m14[b0] ^ m11[b1] ^ m13[b2] ^ m9[b3]
            out[base + 1] = m9[b0] ^ m14[b1] ^ m11[b2] ^ m13[b3]
            out[base + 2] = m13[b0] ^ m9[b1] ^ m14[b2] ^ m11[b3]
            out[base + 3] = m11[b0] ^ m13[b1] ^ m9[b2] ^ m14[b3]
        return out
