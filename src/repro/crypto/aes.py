"""Pure-Python AES block cipher (FIPS 197).

Implements the raw 128-bit block transform for AES-128/192/256. Modes of
operation live in :mod:`repro.crypto.modes`. The implementation is
table-based for reasonable throughput on the synthetic media payloads
used throughout the simulation: the round function operates on four
32-bit column words through fused SubBytes/ShiftRows/MixColumns lookup
tables (the classic "T-table" formulation), which is several times
faster in CPython than a byte-at-a-time state.

This module is self-contained on purpose: the execution environment has
no third-party crypto packages, and the Widevine key ladder reproduced
in :mod:`repro.widevine.keyladder` needs real AES so that recovered keys
actually decrypt real ciphertext.

Because key expansion is itself a measurable cost on the hot paths
(CENC packaging re-keys constantly with a small working set of content
keys), :func:`cipher_for` maintains a process-wide LRU cache of
expanded ciphers. All mode helpers route through it; callers that want
an uncached instance can still construct :class:`AES` directly.
"""

from __future__ import annotations

import struct
from functools import lru_cache

__all__ = ["AES", "BLOCK_SIZE", "cipher_for"]

BLOCK_SIZE = 16

# --- S-box generation -------------------------------------------------
#
# The S-box is derived from the multiplicative inverse in GF(2^8)
# followed by the affine transform, rather than pasted as a literal
# table, so the construction is auditable.


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    # Multiplicative inverses via exponentiation by 254 (a^254 = a^-1).
    inverse = [0] * 256
    for value in range(1, 256):
        acc = 1
        base = value
        exp = 254
        while exp:
            if exp & 1:
                acc = _gf_mul(acc, base)
            base = _gf_mul(base, base)
            exp >>= 1
        inverse[value] = acc

    sbox = bytearray(256)
    for value in range(256):
        inv = inverse[value]
        transformed = 0x63
        for shift in (0, 1, 2, 3, 4):
            rotated = ((inv << shift) | (inv >> (8 - shift))) & 0xFF
            transformed ^= rotated
        sbox[value] = transformed

    inv_sbox = bytearray(256)
    for value, substituted in enumerate(sbox):
        inv_sbox[substituted] = value
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()

# Round constants for the key schedule.
_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))

# Precomputed multiplication tables for MixColumns / InvMixColumns.
_MUL2 = bytes(_gf_mul(x, 2) for x in range(256))
_MUL3 = bytes(_gf_mul(x, 3) for x in range(256))
_MUL9 = bytes(_gf_mul(x, 9) for x in range(256))
_MUL11 = bytes(_gf_mul(x, 11) for x in range(256))
_MUL13 = bytes(_gf_mul(x, 13) for x in range(256))
_MUL14 = bytes(_gf_mul(x, 14) for x in range(256))

# --- fused round tables -----------------------------------------------
#
# State columns are 32-bit big-endian words (row 0 in the MSB). One
# encryption round of column c is then
#
#   T0[b0] ^ T1[b1] ^ T2[b2] ^ T3[b3] ^ round_key_word
#
# where b0..b3 are the ShiftRows-selected source bytes: each T table
# folds SubBytes and the MixColumns contribution of one row position
# into a single lookup.


def _build_enc_tables() -> tuple[tuple[int, ...], ...]:
    t0, t1, t2, t3 = [], [], [], []
    for x in range(256):
        s = _SBOX[x]
        s2, s3 = _MUL2[s], _MUL3[s]
        t0.append((s2 << 24) | (s << 16) | (s << 8) | s3)
        t1.append((s3 << 24) | (s2 << 16) | (s << 8) | s)
        t2.append((s << 24) | (s3 << 16) | (s2 << 8) | s)
        t3.append((s << 24) | (s << 16) | (s3 << 8) | s2)
    return tuple(t0), tuple(t1), tuple(t2), tuple(t3)


def _build_dec_tables() -> tuple[tuple[int, ...], ...]:
    # InvMixColumns on one byte per row position; applied *after* the
    # InvSubBytes/InvShiftRows/AddRoundKey step of the equivalent
    # inverse cipher, so these tables take plain bytes, not S-box
    # outputs.
    u0, u1, u2, u3 = [], [], [], []
    for b in range(256):
        m9, m11, m13, m14 = _MUL9[b], _MUL11[b], _MUL13[b], _MUL14[b]
        u0.append((m14 << 24) | (m9 << 16) | (m13 << 8) | m11)
        u1.append((m11 << 24) | (m14 << 16) | (m9 << 8) | m13)
        u2.append((m13 << 24) | (m11 << 16) | (m14 << 8) | m9)
        u3.append((m9 << 24) | (m13 << 16) | (m11 << 8) | m14)
    return tuple(u0), tuple(u1), tuple(u2), tuple(u3)


_T0, _T1, _T2, _T3 = _build_enc_tables()
_U0, _U1, _U2, _U3 = _build_dec_tables()

_ROUNDS_BY_KEY_LEN = {16: 10, 24: 12, 32: 14}

_PACK4 = struct.Struct(">4I")


class AES:
    """Raw AES block transform bound to one expanded key.

    >>> cipher = AES(bytes(16))
    >>> cipher.decrypt_block(cipher.encrypt_block(b"sixteen byte msg"))
    b'sixteen byte msg'
    """

    def __init__(self, key: bytes):
        if len(key) not in _ROUNDS_BY_KEY_LEN:
            raise ValueError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}"
            )
        self._key = bytes(key)
        self._rounds = _ROUNDS_BY_KEY_LEN[len(key)]
        self._round_keys = self._expand_key(self._key)
        # Column-word form of each round key, for the word-based rounds.
        self._round_key_words: list[tuple[int, int, int, int]] = [
            _PACK4.unpack(bytes(rk)) for rk in self._round_keys
        ]

    @property
    def key(self) -> bytes:
        return self._key

    @property
    def rounds(self) -> int:
        return self._rounds

    def _expand_key(self, key: bytes) -> list[list[int]]:
        """Expand the key into (rounds + 1) 16-byte round keys.

        Round keys are stored as flat lists of 16 ints in column-major
        order (byte ``r + 4*c`` of round key = schedule word ``c``,
        byte ``r``).
        """
        key_words = [list(key[i : i + 4]) for i in range(0, len(key), 4)]
        nk = len(key_words)
        total_words = 4 * (self._rounds + 1)
        words = list(key_words)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for r in range(self._rounds + 1):
            flat: list[int] = []
            for w in words[4 * r : 4 * r + 4]:
                flat.extend(w)
            round_keys.append(flat)
        return round_keys

    # The state is four 32-bit column words w0..w3; word c holds state
    # bytes s[0+4c]..s[3+4c] with row 0 in the most significant byte,
    # matching the FIPS 197 column-major byte numbering.

    def _encrypt_words(
        self, w0: int, w1: int, w2: int, w3: int
    ) -> tuple[int, int, int, int]:
        rk = self._round_key_words
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        k0, k1, k2, k3 = rk[0]
        w0 ^= k0
        w1 ^= k1
        w2 ^= k2
        w3 ^= k3
        for rnd in range(1, self._rounds):
            k0, k1, k2, k3 = rk[rnd]
            n0 = t0[w0 >> 24] ^ t1[(w1 >> 16) & 0xFF] ^ t2[(w2 >> 8) & 0xFF] ^ t3[w3 & 0xFF] ^ k0
            n1 = t0[w1 >> 24] ^ t1[(w2 >> 16) & 0xFF] ^ t2[(w3 >> 8) & 0xFF] ^ t3[w0 & 0xFF] ^ k1
            n2 = t0[w2 >> 24] ^ t1[(w3 >> 16) & 0xFF] ^ t2[(w0 >> 8) & 0xFF] ^ t3[w1 & 0xFF] ^ k2
            n3 = t0[w3 >> 24] ^ t1[(w0 >> 16) & 0xFF] ^ t2[(w1 >> 8) & 0xFF] ^ t3[w2 & 0xFF] ^ k3
            w0, w1, w2, w3 = n0, n1, n2, n3
        # Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        sbox = _SBOX
        k0, k1, k2, k3 = rk[self._rounds]
        return (
            ((sbox[w0 >> 24] << 24) | (sbox[(w1 >> 16) & 0xFF] << 16) | (sbox[(w2 >> 8) & 0xFF] << 8) | sbox[w3 & 0xFF]) ^ k0,
            ((sbox[w1 >> 24] << 24) | (sbox[(w2 >> 16) & 0xFF] << 16) | (sbox[(w3 >> 8) & 0xFF] << 8) | sbox[w0 & 0xFF]) ^ k1,
            ((sbox[w2 >> 24] << 24) | (sbox[(w3 >> 16) & 0xFF] << 16) | (sbox[(w0 >> 8) & 0xFF] << 8) | sbox[w1 & 0xFF]) ^ k2,
            ((sbox[w3 >> 24] << 24) | (sbox[(w0 >> 16) & 0xFF] << 16) | (sbox[(w1 >> 8) & 0xFF] << 8) | sbox[w2 & 0xFF]) ^ k3,
        )

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        return _PACK4.pack(*self._encrypt_words(*_PACK4.unpack(block)))

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        w0, w1, w2, w3 = _PACK4.unpack(block)
        rk = self._round_key_words
        inv = _INV_SBOX
        u0, u1, u2, u3 = _U0, _U1, _U2, _U3
        k0, k1, k2, k3 = rk[self._rounds]
        w0 ^= k0
        w1 ^= k1
        w2 ^= k2
        w3 ^= k3
        for rnd in range(self._rounds - 1, 0, -1):
            # InvShiftRows + InvSubBytes + AddRoundKey...
            k0, k1, k2, k3 = rk[rnd]
            v0 = ((inv[w0 >> 24] << 24) | (inv[(w3 >> 16) & 0xFF] << 16) | (inv[(w2 >> 8) & 0xFF] << 8) | inv[w1 & 0xFF]) ^ k0
            v1 = ((inv[w1 >> 24] << 24) | (inv[(w0 >> 16) & 0xFF] << 16) | (inv[(w3 >> 8) & 0xFF] << 8) | inv[w2 & 0xFF]) ^ k1
            v2 = ((inv[w2 >> 24] << 24) | (inv[(w1 >> 16) & 0xFF] << 16) | (inv[(w0 >> 8) & 0xFF] << 8) | inv[w3 & 0xFF]) ^ k2
            v3 = ((inv[w3 >> 24] << 24) | (inv[(w2 >> 16) & 0xFF] << 16) | (inv[(w1 >> 8) & 0xFF] << 8) | inv[w0 & 0xFF]) ^ k3
            # ...then InvMixColumns (equivalent-inverse-cipher ordering).
            w0 = u0[v0 >> 24] ^ u1[(v0 >> 16) & 0xFF] ^ u2[(v0 >> 8) & 0xFF] ^ u3[v0 & 0xFF]
            w1 = u0[v1 >> 24] ^ u1[(v1 >> 16) & 0xFF] ^ u2[(v1 >> 8) & 0xFF] ^ u3[v1 & 0xFF]
            w2 = u0[v2 >> 24] ^ u1[(v2 >> 16) & 0xFF] ^ u2[(v2 >> 8) & 0xFF] ^ u3[v2 & 0xFF]
            w3 = u0[v3 >> 24] ^ u1[(v3 >> 16) & 0xFF] ^ u2[(v3 >> 8) & 0xFF] ^ u3[v3 & 0xFF]
        # Final: InvShiftRows + InvSubBytes + AddRoundKey.
        k0, k1, k2, k3 = rk[0]
        return _PACK4.pack(
            ((inv[w0 >> 24] << 24) | (inv[(w3 >> 16) & 0xFF] << 16) | (inv[(w2 >> 8) & 0xFF] << 8) | inv[w1 & 0xFF]) ^ k0,
            ((inv[w1 >> 24] << 24) | (inv[(w0 >> 16) & 0xFF] << 16) | (inv[(w3 >> 8) & 0xFF] << 8) | inv[w2 & 0xFF]) ^ k1,
            ((inv[w2 >> 24] << 24) | (inv[(w1 >> 16) & 0xFF] << 16) | (inv[(w0 >> 8) & 0xFF] << 8) | inv[w3 & 0xFF]) ^ k2,
            ((inv[w3 >> 24] << 24) | (inv[(w2 >> 16) & 0xFF] << 16) | (inv[(w1 >> 8) & 0xFF] << 8) | inv[w0 & 0xFF]) ^ k3,
        )

    def keystream(self, counters: "list[int]") -> bytes:
        """Encrypt a run of 128-bit counter-block integers.

        The CTR hot path: one call produces the whole keystream for a
        transform, avoiding per-block method dispatch and bytes
        round-trips. Counter values must already be reduced mod 2^128.
        """
        encrypt = self._encrypt_words
        words: list[int] = []
        extend = words.extend
        mask = 0xFFFFFFFF
        for counter in counters:
            extend(
                encrypt(
                    (counter >> 96) & mask,
                    (counter >> 64) & mask,
                    (counter >> 32) & mask,
                    counter & mask,
                )
            )
        return struct.pack(f">{len(words)}I", *words)


@lru_cache(maxsize=512)
def cipher_for(key: bytes) -> AES:
    """Process-wide LRU cache of expanded ciphers, keyed by key bytes.

    The simulation's working set of AES keys is small (content keys,
    session keys, keybox device keys), while the call sites re-key
    constantly — every CMAC invocation, every CENC sample. Sharing one
    expanded :class:`AES` per key removes the key-schedule cost from
    those paths. ``lru_cache`` serialises cache updates internally, so
    the cache is safe under the parallel study runner; :class:`AES`
    instances themselves are immutable after construction and therefore
    freely shareable across threads.
    """
    return AES(key)
