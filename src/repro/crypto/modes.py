"""Block-cipher modes of operation and padding.

Provides ECB, CBC and CTR over the raw AES transform, plus PKCS#7
padding. CTR is the mode CENC's ``cenc`` protection scheme uses
(ISO/IEC 23001-7), with the 16-byte counter block formed from an 8- or
16-byte IV; the helpers here accept both layouts.

All helpers obtain their cipher through :func:`repro.crypto.aes.cipher_for`,
so repeated calls under the same key skip key expansion, and bulk
keystream XOR runs over whole buffers as wide integers rather than
per-byte Python loops.
"""

from __future__ import annotations

from functools import lru_cache

from repro.crypto.aes import BLOCK_SIZE, cipher_for

__all__ = [
    "pkcs7_pad",
    "pkcs7_unpad",
    "ecb_encrypt",
    "ecb_decrypt",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_transform",
    "ctr_keystream",
    "xor_bytes",
]

_MASK128 = (1 << 128) - 1


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return (
        int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    ).to_bytes(len(a), "big")


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Append PKCS#7 padding up to a multiple of *block_size*."""
    if not 0 < block_size < 256:
        raise ValueError("block_size must be in 1..255")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len

def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding.

    Raises :class:`ValueError` on malformed padding — deliberately, so
    the license-server simulation can reject tampered blobs the way a
    real implementation would.
    """
    if not data or len(data) % block_size:
        raise ValueError("data length is not a multiple of the block size")
    pad_len = data[-1]
    if not 0 < pad_len <= block_size:
        raise ValueError("invalid padding length")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise ValueError("invalid padding bytes")
    return data[:-pad_len]


def ecb_encrypt(key: bytes, plaintext: bytes) -> bytes:
    """AES-ECB over already block-aligned *plaintext* (no padding)."""
    if len(plaintext) % BLOCK_SIZE:
        raise ValueError("ECB input must be block aligned")
    cipher = cipher_for(key)
    return b"".join(
        cipher.encrypt_block(plaintext[i : i + BLOCK_SIZE])
        for i in range(0, len(plaintext), BLOCK_SIZE)
    )


def ecb_decrypt(key: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`ecb_encrypt`."""
    if len(ciphertext) % BLOCK_SIZE:
        raise ValueError("ECB input must be block aligned")
    cipher = cipher_for(key)
    return b"".join(
        cipher.decrypt_block(ciphertext[i : i + BLOCK_SIZE])
        for i in range(0, len(ciphertext), BLOCK_SIZE)
    )


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes, *, pad: bool = True) -> bytes:
    """AES-CBC; pads with PKCS#7 unless ``pad=False``."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("CBC IV must be 16 bytes")
    if pad:
        plaintext = pkcs7_pad(plaintext)
    elif len(plaintext) % BLOCK_SIZE:
        raise ValueError("unpadded CBC input must be block aligned")
    cipher = cipher_for(key)
    encrypt_block = cipher.encrypt_block
    out = bytearray()
    previous = iv
    for i in range(0, len(plaintext), BLOCK_SIZE):
        block = xor_bytes(plaintext[i : i + BLOCK_SIZE], previous)
        previous = encrypt_block(block)
        out.extend(previous)
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes, *, pad: bool = True) -> bytes:
    """Inverse of :func:`cbc_encrypt`."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("CBC IV must be 16 bytes")
    if len(ciphertext) % BLOCK_SIZE:
        raise ValueError("CBC ciphertext must be block aligned")
    cipher = cipher_for(key)
    decrypt_block = cipher.decrypt_block
    out = bytearray()
    previous = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i : i + BLOCK_SIZE]
        out.extend(xor_bytes(decrypt_block(block), previous))
        previous = block
    plaintext = bytes(out)
    return pkcs7_unpad(plaintext) if pad else plaintext


def _counter_block(iv: bytes, block_index: int) -> bytes:
    """Build the CTR counter block for *block_index*.

    A 16-byte IV is treated as a big-endian 128-bit initial counter
    (CENC layout); an 8-byte IV occupies the high half with a 64-bit
    big-endian block counter in the low half.
    """
    if len(iv) == 16:
        counter = (int.from_bytes(iv, "big") + block_index) & _MASK128
        return counter.to_bytes(16, "big")
    if len(iv) == 8:
        return iv + (block_index & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big")
    raise ValueError("CTR IV must be 8 or 16 bytes")


def ctr_counters(iv: bytes, initial_block: int, nblocks: int) -> list[int]:
    """The 128-bit counter-block values for a CTR run.

    Shared with :mod:`repro.bmff.cenc`, which uses the same two counter
    layouts for the ``cenc`` scheme keystream.
    """
    if len(iv) == 16:
        start = int.from_bytes(iv, "big") + initial_block
        return [(start + i) & _MASK128 for i in range(nblocks)]
    if len(iv) == 8:
        prefix = int.from_bytes(iv, "big") << 64
        low_mask = 0xFFFFFFFFFFFFFFFF
        return [
            prefix | ((initial_block + i) & low_mask) for i in range(nblocks)
        ]
    raise ValueError("CTR IV must be 8 or 16 bytes")


@lru_cache(maxsize=4096)
def _keystream_blocks(
    key: bytes, iv: bytes, initial_block: int, nblocks: int
) -> bytes:
    return cipher_for(key).keystream(ctr_counters(iv, initial_block, nblocks))


def ctr_keystream(
    key: bytes, iv: bytes, length: int, *, initial_block: int = 0
) -> bytes:
    """The CTR keystream for *length* bytes, LRU-cached per counter run.

    CTR keystreams are pure functions of ``(key, iv, counter)``, and the
    simulation re-derives identical runs constantly: every CENC segment
    encrypted at packaging time is decrypted with the *same* keystream
    during the playback audits and media recovery, and the deterministic
    world rebuilds in tests and benchmarks repeat the exact derivations.
    Caching the block run turns all of those into a single wide XOR.
    """
    nblocks = (length + BLOCK_SIZE - 1) // BLOCK_SIZE
    return _keystream_blocks(key, iv, initial_block, nblocks)[:length]


def ctr_transform(
    key: bytes, iv: bytes, data: bytes, *, initial_block: int = 0
) -> bytes:
    """AES-CTR keystream XOR (encryption and decryption are identical).

    ``initial_block`` offsets the counter, which CENC subsample
    decryption needs when a sample's protected ranges resume mid-stream.

    The keystream is generated in one pass over the counter run (cached
    — see :func:`ctr_keystream`) and the XOR applied to the whole buffer
    at once via arbitrary-precision integers — the fast path the
    per-segment CENC encryption loop sits on.
    """
    if not data:
        return b""
    size = len(data)
    keystream = ctr_keystream(key, iv, size, initial_block=initial_block)
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(keystream, "big")
    ).to_bytes(size, "big")
