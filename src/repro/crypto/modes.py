"""Block-cipher modes of operation and padding.

Provides ECB, CBC and CTR over the raw AES transform, plus PKCS#7
padding. CTR is the mode CENC's ``cenc`` protection scheme uses
(ISO/IEC 23001-7), with the 16-byte counter block formed from an 8- or
16-byte IV; the helpers here accept both layouts.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE

__all__ = [
    "pkcs7_pad",
    "pkcs7_unpad",
    "ecb_encrypt",
    "ecb_decrypt",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_transform",
    "xor_bytes",
]


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Append PKCS#7 padding up to a multiple of *block_size*."""
    if not 0 < block_size < 256:
        raise ValueError("block_size must be in 1..255")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len

def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding.

    Raises :class:`ValueError` on malformed padding — deliberately, so
    the license-server simulation can reject tampered blobs the way a
    real implementation would.
    """
    if not data or len(data) % block_size:
        raise ValueError("data length is not a multiple of the block size")
    pad_len = data[-1]
    if not 0 < pad_len <= block_size:
        raise ValueError("invalid padding length")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise ValueError("invalid padding bytes")
    return data[:-pad_len]


def ecb_encrypt(key: bytes, plaintext: bytes) -> bytes:
    """AES-ECB over already block-aligned *plaintext* (no padding)."""
    if len(plaintext) % BLOCK_SIZE:
        raise ValueError("ECB input must be block aligned")
    cipher = AES(key)
    return b"".join(
        cipher.encrypt_block(plaintext[i : i + BLOCK_SIZE])
        for i in range(0, len(plaintext), BLOCK_SIZE)
    )


def ecb_decrypt(key: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`ecb_encrypt`."""
    if len(ciphertext) % BLOCK_SIZE:
        raise ValueError("ECB input must be block aligned")
    cipher = AES(key)
    return b"".join(
        cipher.decrypt_block(ciphertext[i : i + BLOCK_SIZE])
        for i in range(0, len(ciphertext), BLOCK_SIZE)
    )


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes, *, pad: bool = True) -> bytes:
    """AES-CBC; pads with PKCS#7 unless ``pad=False``."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("CBC IV must be 16 bytes")
    if pad:
        plaintext = pkcs7_pad(plaintext)
    elif len(plaintext) % BLOCK_SIZE:
        raise ValueError("unpadded CBC input must be block aligned")
    cipher = AES(key)
    out = bytearray()
    previous = iv
    for i in range(0, len(plaintext), BLOCK_SIZE):
        block = xor_bytes(plaintext[i : i + BLOCK_SIZE], previous)
        previous = cipher.encrypt_block(block)
        out.extend(previous)
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes, *, pad: bool = True) -> bytes:
    """Inverse of :func:`cbc_encrypt`."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("CBC IV must be 16 bytes")
    if len(ciphertext) % BLOCK_SIZE:
        raise ValueError("CBC ciphertext must be block aligned")
    cipher = AES(key)
    out = bytearray()
    previous = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i : i + BLOCK_SIZE]
        out.extend(xor_bytes(cipher.decrypt_block(block), previous))
        previous = block
    plaintext = bytes(out)
    return pkcs7_unpad(plaintext) if pad else plaintext


def _counter_block(iv: bytes, block_index: int) -> bytes:
    """Build the CTR counter block for *block_index*.

    A 16-byte IV is treated as a big-endian 128-bit initial counter
    (CENC layout); an 8-byte IV occupies the high half with a 64-bit
    big-endian block counter in the low half.
    """
    if len(iv) == 16:
        counter = (int.from_bytes(iv, "big") + block_index) % (1 << 128)
        return counter.to_bytes(16, "big")
    if len(iv) == 8:
        return iv + (block_index % (1 << 64)).to_bytes(8, "big")
    raise ValueError("CTR IV must be 8 or 16 bytes")


def ctr_transform(
    key: bytes, iv: bytes, data: bytes, *, initial_block: int = 0
) -> bytes:
    """AES-CTR keystream XOR (encryption and decryption are identical).

    ``initial_block`` offsets the counter, which CENC subsample
    decryption needs when a sample's protected ranges resume mid-stream.
    """
    cipher = AES(key)
    out = bytearray(len(data))
    for i in range(0, len(data), BLOCK_SIZE):
        keystream = cipher.encrypt_block(
            _counter_block(iv, initial_block + i // BLOCK_SIZE)
        )
        chunk = data[i : i + BLOCK_SIZE]
        for j, byte in enumerate(chunk):
            out[i + j] = byte ^ keystream[j]
    return bytes(out)
