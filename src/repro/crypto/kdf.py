"""Widevine-style CMAC key derivation.

The Widevine key ladder derives session keys from the device key via
AES-CMAC in counter mode over structured context strings (this is the
NIST SP 800-108 KDF in counter mode with CMAC as the PRF, which is what
OEMCrypto's ``DeriveKeysFromSessionKey``/``GenerateDerivedKeys`` do).

Context layout, mirroring the public OEMCrypto documentation:

    counter(1) || label || 0x00 || context || length_bits(4, BE)

Three derivations hang off each session:

- ``ENCRYPTION`` — 128-bit AES key protecting key material in licenses;
- ``AUTHENTICATION`` — 256-bit (two CMAC blocks) signing key for
  request/response HMACs;
- ``GENERIC`` — keys for the non-DASH generic crypto API (the "secure
  channel" Netflix uses for its URI manifests).
"""

from __future__ import annotations

from functools import lru_cache

from repro.crypto.cmac import aes_cmac

__all__ = [
    "LABEL_ENCRYPTION",
    "LABEL_AUTHENTICATION",
    "LABEL_GENERIC",
    "derive_key",
    "derive_session_keys",
    "SessionKeys",
]

LABEL_ENCRYPTION = b"ENCRYPTION"
LABEL_AUTHENTICATION = b"AUTHENTICATION"
LABEL_GENERIC = b"GENERIC"


@lru_cache(maxsize=4096)
def derive_key(base_key: bytes, label: bytes, context: bytes, bits: int) -> bytes:
    """SP 800-108 counter-mode KDF with AES-CMAC as the PRF.

    Memoized: the derivation is a pure function of its inputs, and the
    deterministic simulation re-derives the same session keys whenever
    a study world is rebuilt (every benchmark round, most tests), so the
    CMAC chain only ever runs once per distinct derivation.
    """
    if bits % 8:
        raise ValueError("bits must be a multiple of 8")
    num_blocks = (bits + 127) // 128
    output = bytearray()
    for counter in range(1, num_blocks + 1):
        message = (
            counter.to_bytes(1, "big")
            + label
            + b"\x00"
            + context
            + bits.to_bytes(4, "big")
        )
        output.extend(aes_cmac(base_key, message))
    return bytes(output[: bits // 8])


class SessionKeys:
    """The derived key set for one CDM session.

    Attributes
    ----------
    encryption:
        16-byte AES key unwrapping content keys inside a license.
    mac_server / mac_client:
        32-byte HMAC keys authenticating license-server responses and
        client requests respectively.
    generic_encryption / generic_signing:
        keys for the generic (non-DASH) crypto API.
    """

    __slots__ = (
        "encryption",
        "mac_server",
        "mac_client",
        "generic_encryption",
        "generic_signing",
    )

    def __init__(
        self,
        encryption: bytes,
        mac_server: bytes,
        mac_client: bytes,
        generic_encryption: bytes,
        generic_signing: bytes,
    ):
        self.encryption = encryption
        self.mac_server = mac_server
        self.mac_client = mac_client
        self.generic_encryption = generic_encryption
        self.generic_signing = generic_signing

    def __repr__(self) -> str:  # avoid leaking key bytes in logs
        return "SessionKeys(<redacted>)"


def derive_session_keys(base_key: bytes, context: bytes) -> SessionKeys:
    """Run the full per-session derivation from *base_key*.

    *context* binds the derivation to the license request (the real
    protocol uses the serialized request message), so two sessions never
    share derived keys even under the same device key.
    """
    auth = derive_key(base_key, LABEL_AUTHENTICATION, context, 512)
    return SessionKeys(
        encryption=derive_key(base_key, LABEL_ENCRYPTION, context, 128),
        mac_server=auth[:32],
        mac_client=auth[32:],
        generic_encryption=derive_key(base_key, LABEL_GENERIC, context + b"enc", 128),
        generic_signing=derive_key(base_key, LABEL_GENERIC, context + b"sig", 256),
    )
