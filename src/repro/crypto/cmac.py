"""AES-CMAC (RFC 4493 / NIST SP 800-38B).

CMAC is the workhorse of the Widevine key ladder: the device key from
the keybox derives session MAC/encryption keys by CMAC-ing structured
context strings (see :mod:`repro.crypto.kdf`). This implementation
matches the RFC 4493 test vectors (exercised in the test suite).
"""

from __future__ import annotations

from functools import lru_cache

from repro.crypto.aes import AES, BLOCK_SIZE, cipher_for
from repro.crypto.modes import xor_bytes

__all__ = ["aes_cmac", "cmac_verify"]

_MSB = 0x80
_RB = 0x87  # x^128 reduction constant


def _left_shift_one(block: bytes) -> bytes:
    value = int.from_bytes(block, "big") << 1
    shifted = value & ((1 << 128) - 1)
    return shifted.to_bytes(16, "big")


def _generate_subkeys(cipher: AES) -> tuple[bytes, bytes]:
    l = cipher.encrypt_block(bytes(BLOCK_SIZE))
    k1 = _left_shift_one(l)
    if l[0] & _MSB:
        k1 = k1[:-1] + bytes([k1[-1] ^ _RB])
    k2 = _left_shift_one(k1)
    if k1[0] & _MSB:
        k2 = k2[:-1] + bytes([k2[-1] ^ _RB])
    return k1, k2


@lru_cache(maxsize=512)
def _subkeys_for(key: bytes) -> tuple[bytes, bytes]:
    # K1/K2 depend only on the key; the Widevine KDF CMACs thousands of
    # short contexts under a handful of device/session keys, so caching
    # the subkey derivation (one block encryption each) is worth it.
    return _generate_subkeys(cipher_for(key))


def aes_cmac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte AES-CMAC tag of *message* under *key*."""
    cipher = cipher_for(key)
    k1, k2 = _subkeys_for(key)

    if message and len(message) % BLOCK_SIZE == 0:
        last = xor_bytes(message[-BLOCK_SIZE:], k1)
        body = message[:-BLOCK_SIZE]
    else:
        remainder = message[len(message) - (len(message) % BLOCK_SIZE) :]
        padded = remainder + b"\x80" + bytes(BLOCK_SIZE - len(remainder) - 1)
        last = xor_bytes(padded, k2)
        body = message[: len(message) - (len(message) % BLOCK_SIZE)]

    state = bytes(BLOCK_SIZE)
    encrypt_block = cipher.encrypt_block
    for i in range(0, len(body), BLOCK_SIZE):
        state = encrypt_block(xor_bytes(state, body[i : i + BLOCK_SIZE]))
    return encrypt_block(xor_bytes(state, last))


def cmac_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time-ish tag comparison (good enough for a simulation)."""
    expected = aes_cmac(key, message)
    if len(tag) != len(expected):
        return False
    diff = 0
    for a, b in zip(expected, tag):
        diff |= a ^ b
    return diff == 0
