"""Cryptographic substrate: AES, modes, CMAC, RSA (OAEP/PSS), KDF, DRBG.

Everything is implemented from primary specifications in pure Python —
the environment ships no third-party crypto — and validated against
published test vectors in the test suite.
"""

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.cmac import aes_cmac, cmac_verify
from repro.crypto.kdf import (
    LABEL_AUTHENTICATION,
    LABEL_ENCRYPTION,
    LABEL_GENERIC,
    SessionKeys,
    derive_key,
    derive_session_keys,
)
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_transform,
    ecb_decrypt,
    ecb_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
    xor_bytes,
)
from repro.crypto.rng import HmacDrbg, derive_rng
from repro.crypto.rsa import (
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
    oaep_decrypt,
    oaep_encrypt,
    pss_sign,
    pss_verify,
)

__all__ = [
    "AES",
    "BLOCK_SIZE",
    "aes_cmac",
    "cmac_verify",
    "LABEL_AUTHENTICATION",
    "LABEL_ENCRYPTION",
    "LABEL_GENERIC",
    "SessionKeys",
    "derive_key",
    "derive_session_keys",
    "cbc_decrypt",
    "cbc_encrypt",
    "ctr_transform",
    "ecb_decrypt",
    "ecb_encrypt",
    "pkcs7_pad",
    "pkcs7_unpad",
    "xor_bytes",
    "HmacDrbg",
    "derive_rng",
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_keypair",
    "oaep_decrypt",
    "oaep_encrypt",
    "pss_sign",
    "pss_verify",
]
