"""The server side of one OTT service.

Stands up everything a service operates: content catalog, packaging
pipeline, CDN, provisioning endpoint, license server and the app-facing
API (auth, playback manifests, key metadata) — all as virtual HTTPS
origins on the simulated network. The per-service behaviours of Table I
are produced here from the profile's policy, never hard-coded.
"""

from __future__ import annotations

import json

from repro.crypto.modes import cbc_encrypt
from repro.crypto.rng import derive_rng
from repro.dash.packager import PackagedTitle, Packager, segment_cache_stats
from repro.license_server.policy import assign_track_crypto
from repro.license_server.protocol import KeyControl
from repro.license_server.provisioning import (
    KeyboxAuthority,
    ProvisioningRecords,
    ProvisioningServer,
)
from repro.license_server.server import LicenseServer
from repro.media.catalog import Catalog
from repro.media.content import Title, make_title
from repro.net.cdn import CdnServer
from repro.net.http import HttpRequest, HttpResponse
from repro.net.network import Network
from repro.net.server import VirtualServer
from repro.obs.bus import ObservabilityBus
from repro.ott.custom_drm import (
    build_embedded_license,
    parse_embedded_license_request,
)
from repro.ott.profile import URI_SECURE_CHANNEL, OttProfile

__all__ = ["OttBackend", "SECURE_CHANNEL_CONTENT_ID"]

# Content id of the secure-channel bootstrap license (Netflix's
# MSL-style key exchange rides a dedicated Widevine session).
SECURE_CHANNEL_CONTENT_ID = b"secure-channel-bootstrap"


class OttBackend:
    """All server-side infrastructure of one service."""

    def __init__(
        self,
        profile: OttProfile,
        network: Network,
        authority: KeyboxAuthority,
        *,
        obs: "ObservabilityBus | None" = None,
    ):
        self.profile = profile
        self.policy = profile.policy()
        self._rng = derive_rng(f"ott-backend/{profile.service}")

        # Accounts: username → token. Two accounts so the study can
        # verify keys are subscriber-independent (§IV-D).
        self.accounts = {
            "alice": self._rng.generate(8).hex(),
            "bob": self._rng.generate(8).hex(),
        }

        # Content. Services with unobtainable subtitle URIs simply do
        # not list text tracks in the manifests our probe account sees.
        subtitle_languages = ("en", "fr") if profile.subtitles_listed else ()
        self.catalog = Catalog(service=profile.service)
        for index in range(profile.title_count):
            self.catalog.add(
                make_title(
                    f"{profile.service[:4]}{index:02d}",
                    f"{profile.name} feature #{index}",
                    subtitle_languages=subtitle_languages,
                )
            )

        # Origins.
        self.cdn = CdnServer(profile.cdn_host)
        self.records = ProvisioningRecords()
        self.provisioning = ProvisioningServer(
            profile.provisioning_host,
            authority,
            self.records,
            revocation=self.policy.revocation,
        )
        self.license_server = LicenseServer(
            profile.license_host, self.policy, self.records
        )
        self.api = VirtualServer(profile.api_host)
        self.api.route("/auth", self._handle_auth)
        self.api.route("/playback", self._handle_playback)
        self.api.route("/keymap", self._handle_keymap)
        if profile.custom_drm_on_l3:
            self.api.route("/embedded-license", self._handle_embedded_license)
        for server in (self.cdn, self.provisioning, self.license_server, self.api):
            network.register(server)

        # Package every title and register its keys. Packaging rides the
        # process-wide segment cache: rebuilding a deterministic world
        # (ten backends per study, one study per benchmark round) hits
        # memoized ciphertext instead of re-encrypting the catalog.
        self.packaged: dict[str, PackagedTitle] = {}
        packager = Packager(
            profile.service,
            self.cdn,
            provider=profile.name,
            publish_key_ids=profile.key_metadata_available,
            obs=obs,
        )
        before = segment_cache_stats()
        for title in self.catalog:
            crypto = assign_track_crypto(self.policy, title)
            packaged = packager.package(title, crypto)
            self.license_server.register_packaged_title(packaged, title)
            self.packaged[title.title_id] = packaged
        after = segment_cache_stats()
        # Packaging-cache observability, summed by the study benchmarks.
        self.packaging_cache_hits = after["hits"] - before["hits"]
        self.packaging_cache_misses = after["misses"] - before["misses"]

        # Secure-channel bootstrap key (Netflix-style): a Widevine
        # license whose session keys the API reuses to encrypt manifest
        # URIs through the generic (non-DASH) API.
        self.secure_channel_kid = derive_rng(
            f"secure-channel-kid/{profile.service}"
        ).generate(16)
        if profile.uri_protection == URI_SECURE_CHANNEL:
            self.license_server.register_key(
                self.secure_channel_kid,
                derive_rng(f"secure-channel-key/{profile.service}").generate(16),
                KeyControl(),
            )

    # -- API handlers --------------------------------------------------------

    def _check_token(self, request: HttpRequest) -> str | None:
        token = request.parsed_url.query.get("token", "")
        for user, expected in self.accounts.items():
            if token == expected:
                return user
        return None

    def _handle_auth(self, request: HttpRequest) -> HttpResponse:
        try:
            credentials = json.loads(request.body.decode())
            username = credentials["username"]
        except (ValueError, KeyError):
            return HttpResponse.bad_request("malformed auth request")
        token = self.accounts.get(username)
        if token is None:
            return HttpResponse.forbidden("unknown account")
        return HttpResponse(status=200, body=json.dumps({"token": token}).encode())

    def _handle_playback(self, request: HttpRequest) -> HttpResponse:
        if self._check_token(request) is None:
            return HttpResponse.forbidden("invalid token")
        title_id = request.parsed_url.query.get("title", "")
        if title_id not in self.catalog:
            return HttpResponse.not_found(f"unknown title {title_id}")
        packaged = self.packaged[title_id]
        manifest = {"mpd_url": f"https://{self.profile.cdn_host}{packaged.mpd_path}"}

        if self.profile.uri_protection != URI_SECURE_CHANNEL:
            return HttpResponse(status=200, body=json.dumps(manifest).encode())

        # Netflix-style: manifest URIs only ever travel encrypted under
        # the generic-crypto keys of an established Widevine session.
        session_hex = request.parsed_url.query.get("session", "")
        record = self.license_server.sessions.get(bytes.fromhex(session_hex or "00"))
        if record is None:
            return HttpResponse.forbidden("no secure channel established")
        iv = self._rng.generate(16)
        protected = cbc_encrypt(
            record.derived.generic_encryption,
            iv,
            json.dumps(manifest).encode(),
        )
        return HttpResponse(
            status=200,
            body=json.dumps(
                {"protected_manifest": protected.hex(), "iv": iv.hex()}
            ).encode(),
        )

    def _handle_keymap(self, request: HttpRequest) -> HttpResponse:
        """OTT-specific key metadata (rep → key id), used by Q3.

        Geo-blocked for services where the paper hit regional
        restrictions — HTTP 451, Unavailable For Legal Reasons.
        """
        if self._check_token(request) is None:
            return HttpResponse.forbidden("invalid token")
        if not self.profile.key_metadata_available:
            return HttpResponse(
                status=451, body=b"content metadata not available in your region"
            )
        title_id = request.parsed_url.query.get("title", "")
        if title_id not in self.catalog:
            return HttpResponse.not_found(f"unknown title {title_id}")
        packaged = self.packaged[title_id]
        keymap = {
            rep_id: (kid.hex() if kid is not None else None)
            for rep_id, kid in packaged.kid_by_rep.items()
        }
        return HttpResponse(status=200, body=json.dumps(keymap).encode())

    def _handle_embedded_license(self, request: HttpRequest) -> HttpResponse:
        if self._check_token(request) is None:
            return HttpResponse.forbidden("invalid token")
        try:
            title_id = parse_embedded_license_request(
                self.profile.service, request.body
            )
        except (ValueError, KeyError) as exc:
            return HttpResponse.bad_request(str(exc))
        if title_id not in self.catalog:
            return HttpResponse.not_found(f"unknown title {title_id}")
        packaged = self.packaged[title_id]
        # The embedded DRM enforces the same L3 resolution ceiling: only
        # sub-HD video keys (plus audio keys) go out on this path.
        title = self.catalog.get(title_id)
        keys: dict[bytes, bytes] = {}
        for rep in title.representations:
            kid = packaged.kid_by_rep.get(rep.rep_id)
            if kid is None:
                continue
            if (
                rep.resolution is not None
                and rep.resolution.height > self.policy.l3_max_height
            ):
                continue
            keys[kid] = packaged.content_keys[kid]
        nonce = self._rng.generate(16)
        return HttpResponse(
            status=200,
            body=build_embedded_license(self.profile.service, keys, nonce=nonce),
        )
