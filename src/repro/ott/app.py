"""The Android OTT application model.

Drives the full Figure 1 playback path against a service backend:
authentication, manifest retrieval (plain, or over Netflix's Widevine
secure channel), per-origin provisioning, license acquisition, and
secure decode through MediaCodec. Also models the app-hardening layer
the paper side-steps: certificate pinning, anti-debugging, SafetyNet.

The app, like a real one, never sees decrypted media buffers — only
frame metadata surfaces from the codec.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.android.device import AndroidDevice
from repro.android.mediacodec import CryptoInfo, MediaCodec
from repro.android.mediacrypto import MediaCrypto
from repro.android.mediadrm import (
    MediaDrm,
    MediaDrmException,
    NotProvisionedException,
)
from repro.android.packages import Apk
from repro.android.safetynet import attest
from repro.bmff.builder import read_samples, read_track_info
from repro.bmff.pssh import WIDEVINE_SYSTEM_ID, WidevinePsshData
from repro.dash.client import MAX_HEIGHT_BY_LEVEL, TrackSelectionError, TrackSelector
from repro.dash.mpd import Mpd, MpdRepresentation
from repro.media.subtitles import parse_webvtt
from repro.net.tls import PinSet
from repro.ott.backend import SECURE_CHANNEL_CONTENT_ID, OttBackend
from repro.ott.custom_drm import EmbeddedCdm
from repro.ott.profile import URI_SECURE_CHANNEL, OttProfile

__all__ = [
    "OttApp",
    "OttError",
    "AppProtectionError",
    "ProvisioningDeniedError",
    "LicenseDeniedError",
    "PlaybackError",
    "TrackPlayback",
    "PlaybackResult",
]


class OttError(Exception):
    """Base class for app-level failures."""


class AppProtectionError(OttError):
    """The app refused to run (anti-debug / SafetyNet tripped)."""


class ProvisioningDeniedError(OttError):
    """The provisioning server refused this device (revocation)."""


class LicenseDeniedError(OttError):
    """The license server refused to deliver keys."""


class PlaybackError(OttError):
    """Any other playback failure."""


@dataclass
class TrackPlayback:
    """Per-track playback statistics."""

    rep_id: str
    kind: str
    encrypted: bool
    frames_total: int = 0
    frames_valid: int = 0

    @property
    def ok(self) -> bool:
        return self.frames_total > 0 and self.frames_valid == self.frames_total


@dataclass
class PlaybackResult:
    """Outcome of one playback attempt."""

    ok: bool
    title_id: str
    error: str | None = None
    used_widevine: bool = False
    used_custom_drm: bool = False
    security_level: str | None = None
    video_height: int | None = None
    provisioning_failed: bool = False
    tracks: list[TrackPlayback] = field(default_factory=list)
    subtitle_ok: bool | None = None  # None = no subtitle track played


class OttApp:
    """One installed OTT app on one device."""

    def __init__(
        self,
        profile: OttProfile,
        device: AndroidDevice,
        backend: OttBackend,
    ):
        self.profile = profile
        self.device = device
        self.backend = backend
        self.apk: Apk = profile.build_apk()
        self.process = device.spawn_app_process(profile.package)
        self.token: str | None = None
        # The paper's "protections bypassed via public Frida scripts"
        # switch — set by instrumentation, checked by _check_protections.
        self.protections_bypassed = False

        # The app ships pins for every first-party host (what the paper's
        # repinning scripts must defeat before interception works).
        pin_set = PinSet()
        for server in (
            backend.api,
            backend.cdn,
            backend.license_server,
            backend.provisioning,
        ):
            pin_set.pin(server.hostname, server.certificate)
        self.http = device.new_http_client(pin_set)

    # -- protections --------------------------------------------------------

    def _check_protections(self) -> None:
        if self.protections_bypassed:
            return
        if self.apk.anti_debug and self.process.attached_instruments:
            raise AppProtectionError(
                f"{self.profile.name}: debugger/instrumentation detected"
            )
        if self.apk.checks_safetynet:
            result = attest(self.device, self.profile.package)
            if not result.basic_integrity:
                raise AppProtectionError(
                    f"{self.profile.name}: SafetyNet attestation failed"
                )

    # -- account -----------------------------------------------------------------

    def login(self, username: str = "alice") -> None:
        response = self.http.post(
            f"https://{self.profile.api_host}/auth",
            json.dumps({"username": username}).encode(),
        )
        if not response.ok:
            raise OttError(f"login failed: {response.body.decode()}")
        self.token = json.loads(response.body.decode())["token"]

    def _require_token(self) -> str:
        if self.token is None:
            self.login()
        assert self.token is not None
        return self.token

    # -- DRM helpers -------------------------------------------------------------------

    def _get_key_request_provisioning(
        self, drm: MediaDrm, session_id: bytes, init_data: bytes
    ) -> bytes:
        """getKeyRequest with Android's provisioning round-trip."""
        try:
            return drm.get_key_request(session_id, init_data).data
        except NotProvisionedException:
            provision_request = drm.get_provision_request()
            response = self.http.post(
                f"https://{self.profile.provisioning_host}/provision",
                provision_request.data,
            )
            if not response.ok:
                raise ProvisioningDeniedError(response.body.decode()) from None
            drm.provide_provision_response(response.body)
            return drm.get_key_request(session_id, init_data).data

    def _acquire_license(
        self, drm: MediaDrm, session_id: bytes, init_data: bytes
    ) -> list[bytes]:
        with self.device.obs.span("license.exchange", app=self.profile.name):
            request = self._get_key_request_provisioning(drm, session_id, init_data)
            self.device.obs.flow("Application", "License Server", "Get License")
            response = self.http.post(
                f"https://{self.profile.license_host}/license", request
            )
            if not response.ok:
                raise LicenseDeniedError(response.body.decode())
            self.device.obs.flow("License Server", "Application", "License")
            try:
                return drm.provide_key_response(session_id, response.body)
            except MediaDrmException as exc:
                raise PlaybackError(f"license load failed: {exc}") from exc

    def _download(self, url: str) -> bytes:
        response = self.http.get(url)
        if not response.ok:
            raise PlaybackError(
                f"download failed ({response.status}): {url}"
            )
        return response.body

    # -- manifest retrieval ---------------------------------------------------------------

    def _fetch_manifest_url(self, drm: MediaDrm, title_id: str) -> str:
        with self.device.obs.span(
            "manifest.fetch", app=self.profile.name, title=title_id
        ) as span:
            url = self._fetch_manifest_url_inner(drm, title_id)
            span.set(
                secure_channel=self.profile.uri_protection == URI_SECURE_CHANNEL
            )
            return url

    def _fetch_manifest_url_inner(self, drm: MediaDrm, title_id: str) -> str:
        token = self._require_token()
        base = (
            f"https://{self.profile.api_host}/playback"
            f"?title={title_id}&token={token}"
        )
        if self.profile.uri_protection != URI_SECURE_CHANNEL:
            response = self.http.get(base)
            if not response.ok:
                raise PlaybackError(f"playback API: {response.body.decode()}")
            return json.loads(response.body.decode())["mpd_url"]

        # Netflix-style secure channel: establish a Widevine session
        # whose generic keys protect the manifest URIs end-to-end.
        session_id = drm.open_session()
        bootstrap = WidevinePsshData(
            key_ids=[self.backend.secure_channel_kid],
            provider=self.profile.name,
            content_id=SECURE_CHANNEL_CONTENT_ID,
        )
        self._acquire_license(drm, session_id, bootstrap.serialize())
        response = self.http.get(base + f"&session={session_id.hex()}")
        if not response.ok:
            raise PlaybackError(f"playback API: {response.body.decode()}")
        envelope = json.loads(response.body.decode())
        clear = drm.generic_decrypt(
            session_id,
            bytes.fromhex(envelope["protected_manifest"]),
            bytes.fromhex(envelope["iv"]),
        )
        drm.close_session(session_id)
        return json.loads(clear.decode())["mpd_url"]

    # -- track playback ------------------------------------------------------------------------

    def _play_track(
        self,
        drm: MediaDrm,
        session_id: bytes,
        rep: MpdRepresentation,
        kind: str,
    ) -> TrackPlayback:
        with self.device.obs.span(
            "playback.track", kind=kind, rep=rep.rep_id
        ) as span:
            stats = self._play_track_inner(drm, session_id, rep, kind)
            span.set(frames=stats.frames_total)
            self.device.obs.count("playback.frames", stats.frames_total)
            return stats

    def _play_track_inner(
        self,
        drm: MediaDrm,
        session_id: bytes,
        rep: MpdRepresentation,
        kind: str,
    ) -> TrackPlayback:
        init = self._download(rep.init_url)
        info = read_track_info(init)
        stats = TrackPlayback(rep_id=rep.rep_id, kind=kind, encrypted=info.protected)

        if info.protected:
            crypto = MediaCrypto(drm, session_id)
            secure = crypto.requires_secure_decoder_component(rep.mime_type)
            codec = MediaCodec.create_decoder(rep.mime_type, secure=secure)
            codec.configure(crypto)
        else:
            codec = MediaCodec.create_decoder(rep.mime_type)

        for url in rep.segment_urls:
            segment = self._download(url)
            samples, protected = read_samples(segment, iv_size=info.iv_size)
            for sample in samples:
                if protected:
                    assert info.default_kid is not None
                    frame = codec.queue_secure_input_buffer(
                        sample.data,
                        CryptoInfo(
                            key_id=info.default_kid,
                            iv=sample.entry.iv,
                            subsamples=tuple(
                                (s.clear_bytes, s.protected_bytes)
                                for s in sample.entry.subsamples
                            ),
                            mode=info.scheme,
                        ),
                    )
                else:
                    frame = codec.queue_input_buffer(sample.data)
                stats.frames_total += 1
                if frame.valid:
                    stats.frames_valid += 1
        return stats

    # -- the headline API ---------------------------------------------------------------------------

    def play(
        self,
        title_id: str | None = None,
        *,
        language: str = "en",
        subtitle_language: str | None = "en",
    ) -> PlaybackResult:
        """Play one title end to end; never raises for server denials —
        those come back in the :class:`PlaybackResult`."""
        self._check_protections()
        if title_id is None:
            title_id = next(iter(self.backend.catalog)).title_id
        level = self.device.widevine_security_level

        if self.profile.custom_drm_on_l3 and level != "L1":
            with self.device.obs.span(
                "playback.session",
                app=self.profile.name,
                title=title_id,
                drm="custom",
            ):
                return self._play_custom(title_id, language, subtitle_language)

        with self.device.obs.span(
            "playback.session",
            app=self.profile.name,
            title=title_id,
            drm="widevine",
        ) as span:
            result = self._play_widevine(title_id, language, subtitle_language)
            span.set(ok=result.ok)
            return result

    def _play_widevine(
        self, title_id: str, language: str, subtitle_language: str | None
    ) -> PlaybackResult:
        level = self.device.widevine_security_level
        result = PlaybackResult(
            ok=False, title_id=title_id, used_widevine=True, security_level=level
        )
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, self.device, origin=self.profile.package)
        try:
            mpd_url = self._fetch_manifest_url(drm, title_id)
            mpd = Mpd.from_xml(self._download(mpd_url))
            selector = TrackSelector(mpd, obs=self.device.obs)

            video_rep = selector.select_video(
                max_height=MAX_HEIGHT_BY_LEVEL.get(level, 540)
            )
            audio_rep = selector.select_audio(language)

            session_id = drm.open_session()
            init_data = selector.init_data_for(video_rep)
            self._acquire_license(drm, session_id, init_data)

            self.device.obs.flow("Application", "CDN", "Get Media")
            self.device.obs.flow("CDN", "Application", "Media")
            result.tracks.append(
                self._play_track(drm, session_id, video_rep, "video")
            )
            result.tracks.append(
                self._play_track(drm, session_id, audio_rep, "audio")
            )
            result.video_height = video_rep.height

            if subtitle_language is not None:
                subtitle_rep = selector.select_text(subtitle_language)
                if subtitle_rep is not None:
                    try:
                        vtt = self._download(subtitle_rep.init_url)
                        result.subtitle_ok = bool(parse_webvtt(vtt))
                    except (ValueError, PlaybackError):
                        result.subtitle_ok = False

            drm.close_session(session_id)
            result.ok = all(t.ok for t in result.tracks)
            if not result.ok:
                result.error = "undecodable frames"
        except ProvisioningDeniedError as exc:
            result.provisioning_failed = True
            result.error = f"provisioning denied: {exc}"
        except (
            LicenseDeniedError,
            PlaybackError,
            TrackSelectionError,
            MediaDrmException,
        ) as exc:
            result.error = str(exc)
        return result

    def _play_custom(
        self, title_id: str, language: str, subtitle_language: str | None
    ) -> PlaybackResult:
        """Amazon-style path: embedded DRM, platform Widevine untouched."""
        result = PlaybackResult(
            ok=False,
            title_id=title_id,
            used_widevine=False,
            used_custom_drm=True,
            security_level=self.device.widevine_security_level,
        )
        try:
            token = self._require_token()
            response = self.http.get(
                f"https://{self.profile.api_host}/playback"
                f"?title={title_id}&token={token}"
            )
            if not response.ok:
                raise PlaybackError(response.body.decode())
            mpd_url = json.loads(response.body.decode())["mpd_url"]
            mpd = Mpd.from_xml(self._download(mpd_url))
            selector = TrackSelector(mpd, obs=self.device.obs)

            cdm = EmbeddedCdm(self.profile.service)
            license_response = self.http.post(
                f"https://{self.profile.api_host}/embedded-license"
                f"?token={token}",
                cdm.build_key_request(title_id),
            )
            if not license_response.ok:
                raise LicenseDeniedError(license_response.body.decode())
            cdm.load_keys(license_response.body)

            video_rep = selector.select_video(max_height=540)
            audio_rep = selector.select_audio(language)
            for rep, kind in ((video_rep, "video"), (audio_rep, "audio")):
                init = self._download(rep.init_url)
                info = read_track_info(init)
                stats = TrackPlayback(
                    rep_id=rep.rep_id, kind=kind, encrypted=info.protected
                )
                codec = MediaCodec.create_decoder(rep.mime_type)
                for url in rep.segment_urls:
                    samples, protected = read_samples(
                        self._download(url), iv_size=info.iv_size
                    )
                    for sample in samples:
                        if protected:
                            assert info.default_kid is not None
                            clear = cdm.decrypt(
                                info.default_kid,
                                sample.data,
                                sample.entry.iv,
                                [
                                    (s.clear_bytes, s.protected_bytes)
                                    for s in sample.entry.subsamples
                                ],
                            )
                        else:
                            clear = sample.data
                        frame = codec.queue_input_buffer(clear)
                        stats.frames_total += 1
                        if frame.valid:
                            stats.frames_valid += 1
                result.tracks.append(stats)
            result.video_height = video_rep.height

            if subtitle_language is not None:
                subtitle_rep = selector.select_text(subtitle_language)
                if subtitle_rep is not None:
                    try:
                        vtt = self._download(subtitle_rep.init_url)
                        result.subtitle_ok = bool(parse_webvtt(vtt))
                    except (ValueError, PlaybackError):
                        result.subtitle_ok = False

            result.ok = all(t.ok for t in result.tracks)
            if not result.ok:
                result.error = "undecodable frames"
        except (LicenseDeniedError, PlaybackError, TrackSelectionError) as exc:
            result.error = str(exc)
        return result
