"""OTT app profiles: the per-service configuration surface.

A profile captures everything a service *decided*: how audio is
protected, whether revocation is enforced, whether manifest URIs ride a
Widevine secure channel, whether a custom DRM replaces Widevine on
L3-only devices, and app-hardening choices (pinning, anti-debug,
SafetyNet). Table I *emerges* from running the audit pipeline against
these behaviours — the profiles encode decisions, never verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.packages import Apk, ApkClass, ApkMethod
from repro.license_server.policy import (
    AudioProtection,
    RevocationPolicy,
    ServicePolicy,
)
from repro.widevine.versions import CdmVersion

__all__ = ["OttProfile", "URI_PLAIN", "URI_SECURE_CHANNEL"]

URI_PLAIN = "plain"
URI_SECURE_CHANNEL = "secure-channel"

# The CDM floor enforced by revocation-abiding services: anything older
# than the previous major release is refused.
_REVOCATION_FLOOR = CdmVersion(14)


@dataclass(frozen=True)
class OttProfile:
    """Static description of one OTT service and its Android app."""

    name: str  # display name, e.g. "Netflix"
    service: str  # slug, e.g. "netflix" (used in hostnames and paths)
    package: str  # Android package name
    installs_millions: int
    audio_protection: AudioProtection
    enforces_revocation: bool
    uri_protection: str = URI_PLAIN
    uses_exoplayer: bool = True
    anti_debug: bool = True
    checks_safetynet: bool = True
    # False models the paper's regional gaps: Hulu/Starz subtitle URIs
    # were unobtainable; Hulu/HBO Max key metadata was geo-blocked.
    subtitles_listed: bool = True
    key_metadata_available: bool = True
    # Amazon: embedded custom DRM when only Widevine L3 is available.
    custom_drm_on_l3: bool = False
    # False models the netflix-1080p class of bug (§V-C): the license
    # server trusts the client's claimed security level for HD gating.
    verifies_client_level: bool = True
    title_count: int = 1
    # Per-service classes the decompiler additionally surfaces (offline
    # caches, telemetry, diagnostics...) — where the taint findings live.
    extra_classes: tuple[ApkClass, ...] = ()
    # Calls appended to MainActivity.onCreate, wiring extra classes into
    # the reachable part of the call graph. Anything not referenced here
    # (or from another reachable method) is measurably dead code.
    extra_launch_calls: tuple[str, ...] = ()

    def policy(self) -> ServicePolicy:
        return ServicePolicy(
            service=self.service,
            audio_protection=self.audio_protection,
            revocation=RevocationPolicy(
                min_cdm_version=_REVOCATION_FLOOR if self.enforces_revocation else None
            ),
            verifies_client_level=self.verifies_client_level,
        )

    # -- hostnames -----------------------------------------------------------

    @property
    def api_host(self) -> str:
        return f"api.{self.service}.example"

    @property
    def cdn_host(self) -> str:
        return f"cdn.{self.service}.example"

    @property
    def license_host(self) -> str:
        return f"license.{self.service}.example"

    @property
    def provisioning_host(self) -> str:
        return f"prov.{self.service}.example"

    def all_hosts(self) -> tuple[str, ...]:
        return (
            self.api_host,
            self.cdn_host,
            self.license_host,
            self.provisioning_host,
        )

    # -- APK model --------------------------------------------------------------

    def build_apk(self) -> Apk:
        """The installable package as static analysis would see it.

        Classes carry per-method bodies (calls, field reads/writes), so
        the :mod:`repro.analysis` call graph can tell a reachable DRM
        call site from shipped-but-dead code, and the taint pass can
        follow key material into whatever the profile's extra classes
        do with it.
        """
        pkg = self.package
        apk = Apk(
            package=pkg,
            version="1.0",
            uses_exoplayer=self.uses_exoplayer,
            pinned_hosts=self.all_hosts(),
            anti_debug=self.anti_debug,
            checks_safetynet=self.checks_safetynet,
            entry_points=(f"{pkg}.MainActivity.onCreate",),
        )

        launch_calls = ["android.app.Activity.onCreate"]
        if self.uses_exoplayer:
            launch_calls.append(f"{pkg}.player.PlayerController.prepare")
            apk.add_class(
                f"{pkg}.player.PlayerController",
                methods=(
                    ApkMethod(
                        "prepare",
                        calls=(
                            "com.google.android.exoplayer2.drm."
                            "FrameworkMediaDrm.newInstance",
                            "com.google.android.exoplayer2.drm."
                            "DefaultDrmSessionManager.acquireSession",
                        ),
                    ),
                ),
            )
            apk.add_class(
                "com.google.android.exoplayer2.drm.FrameworkMediaDrm",
                methods=(
                    ApkMethod(
                        "newInstance", calls=("android.media.MediaDrm.<init>",)
                    ),
                ),
            )
            apk.add_class(
                "com.google.android.exoplayer2.drm.DefaultDrmSessionManager",
                methods=(
                    ApkMethod(
                        "acquireSession",
                        calls=(
                            "android.media.MediaDrm.openSession",
                            "android.media.MediaDrm.getProvisionRequest",
                            "android.media.MediaDrm.provideProvisionResponse",
                            "android.media.MediaDrm.getKeyRequest",
                            "android.media.MediaDrm.provideKeyResponse",
                            "android.media.MediaDrm.closeSession",
                            "android.media.MediaCrypto.<init>",
                        ),
                    ),
                ),
            )
        else:
            launch_calls.append(f"{pkg}.player.DrmEngine.start")
            apk.add_class(
                f"{pkg}.player.DrmEngine",
                methods=(
                    ApkMethod(
                        "start",
                        calls=(
                            "android.media.MediaDrm.<init>",
                            "android.media.MediaDrm.openSession",
                            "android.media.MediaDrm.getProvisionRequest",
                            "android.media.MediaDrm.provideProvisionResponse",
                            "android.media.MediaDrm.getKeyRequest",
                            "android.media.MediaDrm.provideKeyResponse",
                            "android.media.MediaDrm.closeSession",
                            "android.media.MediaCrypto.<init>",
                        ),
                    ),
                ),
            )
        if self.custom_drm_on_l3:
            launch_calls.append(f"{pkg}.drm.PlaybackRouter.route")
            apk.add_class(
                f"{pkg}.drm.PlaybackRouter",
                methods=(
                    ApkMethod(
                        "route",
                        calls=(f"{pkg}.drm.EmbeddedCdm.loadKeys",),
                        field_writes=(f"{pkg}.drm.sessionKeyCache",),
                    ),
                ),
            )
            apk.add_class(
                f"{pkg}.drm.EmbeddedCdm",
                methods=(ApkMethod("loadKeys"),),
            )
        launch_calls.extend(self.extra_launch_calls)
        apk.add_class(
            f"{pkg}.MainActivity",
            methods=(ApkMethod("onCreate", calls=tuple(launch_calls)),),
        )
        # A dash of dead code: the paper notes decompilation alone
        # over-approximates, which is why dynamic monitoring backs it.
        # No reachable method ever calls the shim — the call graph
        # proves it.
        apk.add_class(
            f"{pkg}.legacy.OldPlayerShim",
            methods=(
                ApkMethod(
                    "warmup",
                    calls=("android.media.MediaDrm.getPropertyString",),
                ),
            ),
        )
        for extra in self.extra_classes:
            apk.classes.append(extra)
        return apk
