"""Showtime (5M+ installs).

Table I row: video and audio encrypted (Minimum), subtitles clear;
plays on discontinued phones — one of the six apps §IV-D recovers
DRM-free content from.
"""

from repro.android.packages import ApkClass, ApkMethod
from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

_PKG = "com.showtime.standalone"

# Decompiled app model: license archiving stages the blob in a field,
# then an SD-card writer drains it to external storage — the two-hop
# (field-mediated) CWE-922 flow.
_CLASSES = (
    ApkClass(
        f"{_PKG}.download.LicenseArchiver",
        methods=(
            ApkMethod(
                "archive",
                calls=(
                    "android.media.MediaDrm.provideKeyResponse",
                    f"{_PKG}.download.SdCardWriter.persist",
                ),
                field_writes=(f"{_PKG}.download.licenseBlob",),
            ),
        ),
    ),
    ApkClass(
        f"{_PKG}.download.SdCardWriter",
        methods=(
            ApkMethod(
                "persist",
                calls=("android.os.Environment.getExternalStorageDirectory",),
                field_reads=(f"{_PKG}.download.licenseBlob",),
            ),
        ),
    ),
)

PROFILE = OttProfile(
    name="Showtime",
    service="showtime",
    package=_PKG,
    installs_millions=5,
    audio_protection=AudioProtection.SHARED_KEY,
    enforces_revocation=False,
    extra_classes=_CLASSES,
    extra_launch_calls=(f"{_PKG}.download.LicenseArchiver.archive",),
)
