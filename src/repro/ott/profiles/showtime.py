"""Showtime (5M+ installs).

Table I row: video and audio encrypted (Minimum), subtitles clear;
plays on discontinued phones — one of the six apps §IV-D recovers
DRM-free content from.
"""

from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

PROFILE = OttProfile(
    name="Showtime",
    service="showtime",
    package="com.showtime.standalone",
    installs_millions=5,
    audio_protection=AudioProtection.SHARED_KEY,
    enforces_revocation=False,
)
