"""Amazon Prime Video (100M+ installs).

Table I row: the only service following the Recommended key policy
(distinct audio and video keys), and the only one falling back to an
app-embedded DRM when just Widevine L3 is available (the † entries) —
which is why §IV-D's key-ladder attack recovers media from every app
still serving discontinued devices *except* Amazon.
"""

from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

PROFILE = OttProfile(
    name="Amazon Prime Video",
    service="amazonprime",
    package="com.amazon.avod.thirdpartyclient",
    installs_millions=100,
    audio_protection=AudioProtection.DISTINCT_KEY,
    enforces_revocation=False,
    uses_exoplayer=False,  # in-house player
    custom_drm_on_l3=True,
)
