"""Amazon Prime Video (100M+ installs).

Table I row: the only service following the Recommended key policy
(distinct audio and video keys), and the only one falling back to an
app-embedded DRM when just Widevine L3 is available (the † entries) —
which is why §IV-D's key-ladder attack recovers media from every app
still serving discontinued devices *except* Amazon.
"""

from repro.android.packages import ApkClass, ApkMethod
from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

_PKG = "com.amazon.avod.thirdpartyclient"

# Decompiled app model: the embedded-DRM router (see build_apk) caches
# session keys in a field; the disk cache mirrors that field into
# app-external storage on the L3/discontinued-device path — the
# CWE-922 flow on the one profile that *keeps serving* legacy phones
# through its own DRM.
_CLASSES = (
    ApkClass(
        f"{_PKG}.drm.DiskKeyCache",
        methods=(
            ApkMethod(
                "write",
                calls=("android.content.Context.openFileOutput",),
                field_reads=(f"{_PKG}.drm.sessionKeyCache",),
            ),
        ),
    ),
)

PROFILE = OttProfile(
    name="Amazon Prime Video",
    service="amazonprime",
    package=_PKG,
    installs_millions=100,
    audio_protection=AudioProtection.DISTINCT_KEY,
    enforces_revocation=False,
    uses_exoplayer=False,  # in-house player
    custom_drm_on_l3=True,
    extra_classes=_CLASSES,
    extra_launch_calls=(f"{_PKG}.drm.DiskKeyCache.write",),
)
