"""Disney+ (100M+ installs).

Table I row: Widevine used; video and audio encrypted (same key —
Minimum), subtitles clear; **provisioning fails** on the discontinued
Nexus 5 (revocation enforced, the G# entry).
"""

from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

PROFILE = OttProfile(
    name="Disney+",
    service="disneyplus",
    package="com.disney.disneyplus",
    installs_millions=100,
    audio_protection=AudioProtection.SHARED_KEY,
    enforces_revocation=True,
)
