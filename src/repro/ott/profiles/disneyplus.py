"""Disney+ (100M+ installs).

Table I row: Widevine used; video and audio encrypted (same key —
Minimum), subtitles clear; **provisioning fails** on the discontinued
Nexus 5 (revocation enforced, the G# entry).
"""

from repro.android.packages import ApkClass, ApkMethod
from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

_PKG = "com.disney.disneyplus"

# Decompiled app model: playback telemetry polls key status and writes
# the answer to logcat — the CWE-532 flow.
_CLASSES = (
    ApkClass(
        f"{_PKG}.telemetry.DrmDiagnostics",
        methods=(
            ApkMethod(
                "report",
                calls=(
                    "android.media.MediaDrm.queryKeyStatus",
                    "android.util.Log.d",
                ),
            ),
        ),
    ),
)

PROFILE = OttProfile(
    name="Disney+",
    service="disneyplus",
    package=_PKG,
    installs_millions=100,
    audio_protection=AudioProtection.SHARED_KEY,
    enforces_revocation=True,
    extra_classes=_CLASSES,
    extra_launch_calls=(f"{_PKG}.telemetry.DrmDiagnostics.report",),
)
