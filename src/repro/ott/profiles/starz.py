"""Starz (10M+ installs).

Table I row: video and audio encrypted (Minimum key usage); subtitle
URIs unobtainable ("-"); provisioning fails on the discontinued
Nexus 5 (G#).
"""

from repro.android.packages import ApkClass, ApkMethod
from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

_PKG = "com.bydeluxe.d3.android.program.starz"

# Decompiled app model: session analytics log the license request —
# the CWE-532 flow.
_CLASSES = (
    ApkClass(
        f"{_PKG}.analytics.SessionLogger",
        methods=(
            ApkMethod(
                "logLicense",
                calls=(
                    "android.media.MediaDrm.getKeyRequest",
                    "android.util.Log.i",
                ),
            ),
        ),
    ),
)

PROFILE = OttProfile(
    name="Starz",
    service="starz",
    package=_PKG,
    installs_millions=10,
    audio_protection=AudioProtection.SHARED_KEY,
    enforces_revocation=True,
    subtitles_listed=False,
    extra_classes=_CLASSES,
    extra_launch_calls=(f"{_PKG}.analytics.SessionLogger.logLicense",),
)
