"""Starz (10M+ installs).

Table I row: video and audio encrypted (Minimum key usage); subtitle
URIs unobtainable ("-"); provisioning fails on the discontinued
Nexus 5 (G#).
"""

from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

PROFILE = OttProfile(
    name="Starz",
    service="starz",
    package="com.bydeluxe.d3.android.program.starz",
    installs_millions=10,
    audio_protection=AudioProtection.SHARED_KEY,
    enforces_revocation=True,
    subtitles_listed=False,
)
