"""myCANAL (10M+ installs).

Table I row: video encrypted but audio **clear** (like Netflix and
Salto), subtitles clear, Minimum key usage; plays on discontinued
phones.
"""

from repro.android.packages import ApkClass, ApkMethod
from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

_PKG = "com.canal.android.canal"

# Decompiled app model: the download manager saves the raw license
# next to the media via openFileOutput — the CWE-922 flow.
_CLASSES = (
    ApkClass(
        f"{_PKG}.offline.DownloadManager",
        methods=(
            ApkMethod(
                "saveLicense",
                calls=(
                    "android.media.MediaDrm.provideKeyResponse",
                    "android.content.Context.openFileOutput",
                ),
            ),
        ),
    ),
)

PROFILE = OttProfile(
    name="myCanal",
    service="mycanal",
    package=_PKG,
    installs_millions=10,
    audio_protection=AudioProtection.CLEAR,
    enforces_revocation=False,
    extra_classes=_CLASSES,
    extra_launch_calls=(f"{_PKG}.offline.DownloadManager.saveLicense",),
)
