"""myCANAL (10M+ installs).

Table I row: video encrypted but audio **clear** (like Netflix and
Salto), subtitles clear, Minimum key usage; plays on discontinued
phones.
"""

from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

PROFILE = OttProfile(
    name="myCanal",
    service="mycanal",
    package="com.canal.android.canal",
    installs_millions=10,
    audio_protection=AudioProtection.CLEAR,
    enforces_revocation=False,
)
