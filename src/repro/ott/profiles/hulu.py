"""Hulu (50M+ installs).

Table I row: video and audio encrypted; subtitle URIs unobtainable and
key-usage metadata geo-blocked (the two "-" cells: "we were
unfortunately not able to conclude our analyses due to some regional
restrictions"); plays on discontinued phones.
"""

from repro.android.packages import ApkClass, ApkMethod
from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

_PKG = "com.hulu.plus"

# Decompiled app model: QoS telemetry snapshots the license exchange
# into a field and ships it over cleartext HTTP — the CWE-319 flow.
_CLASSES = (
    ApkClass(
        f"{_PKG}.metrics.TelemetryCollector",
        methods=(
            ApkMethod(
                "collect",
                calls=(
                    "android.media.MediaDrm.getKeyRequest",
                    f"{_PKG}.metrics.BeaconSender.send",
                ),
                field_writes=(f"{_PKG}.metrics.drmTelemetry",),
            ),
        ),
    ),
    ApkClass(
        f"{_PKG}.metrics.BeaconSender",
        methods=(
            ApkMethod(
                "send",
                calls=("java.net.HttpURLConnection.connect",),
                field_reads=(f"{_PKG}.metrics.drmTelemetry",),
            ),
        ),
    ),
)

PROFILE = OttProfile(
    name="Hulu",
    service="hulu",
    package=_PKG,
    installs_millions=50,
    audio_protection=AudioProtection.SHARED_KEY,
    enforces_revocation=False,
    subtitles_listed=False,
    key_metadata_available=False,
    extra_classes=_CLASSES,
    extra_launch_calls=(f"{_PKG}.metrics.TelemetryCollector.collect",),
)
