"""Hulu (50M+ installs).

Table I row: video and audio encrypted; subtitle URIs unobtainable and
key-usage metadata geo-blocked (the two "-" cells: "we were
unfortunately not able to conclude our analyses due to some regional
restrictions"); plays on discontinued phones.
"""

from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

PROFILE = OttProfile(
    name="Hulu",
    service="hulu",
    package="com.hulu.plus",
    installs_millions=50,
    audio_protection=AudioProtection.SHARED_KEY,
    enforces_revocation=False,
    subtitles_listed=False,
    key_metadata_available=False,
)
