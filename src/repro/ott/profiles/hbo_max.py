"""HBO Max (10M+ installs).

Table I row: video and audio encrypted, subtitles clear; key usage
unconcluded (regional restriction); provisioning fails on the
discontinued Nexus 5 (G#).
"""

from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

PROFILE = OttProfile(
    name="HBO Max",
    service="hbomax",
    package="com.hbo.hbonow",
    installs_millions=10,
    audio_protection=AudioProtection.SHARED_KEY,
    enforces_revocation=True,
    key_metadata_available=False,
)
