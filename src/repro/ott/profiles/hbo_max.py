"""HBO Max (10M+ installs).

Table I row: video and audio encrypted, subtitles clear; key usage
unconcluded (regional restriction); provisioning fails on the
discontinued Nexus 5 (G#).
"""

from repro.android.packages import ApkClass, ApkMethod
from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

_PKG = "com.hbo.hbonow"

# Decompiled app model: a leftover debug dumper logs the raw license
# payload — but nothing calls it. The flow is real in the bytecode and
# dead at runtime: the analyzer must report it with reachable=False
# (the paper's static over-approximation, in taint form).
_CLASSES = (
    ApkClass(
        f"{_PKG}.debug.KeyDumper",
        methods=(
            ApkMethod(
                "dump",
                calls=(
                    "android.media.MediaDrm.provideKeyResponse",
                    "android.util.Log.d",
                ),
            ),
        ),
    ),
)

PROFILE = OttProfile(
    name="HBO Max",
    service="hbomax",
    package=_PKG,
    installs_millions=10,
    audio_protection=AudioProtection.SHARED_KEY,
    enforces_revocation=True,
    key_metadata_available=False,
    extra_classes=_CLASSES,
    # deliberately NOT wired into extra_launch_calls: dead code
)
