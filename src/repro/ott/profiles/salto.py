"""Salto (1M+ installs).

Table I row: video encrypted but audio **clear**, subtitles clear,
Minimum key usage; plays on discontinued phones.
"""

from repro.android.packages import ApkClass, ApkMethod
from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

_PKG = "fr.salto.app"

# Decompiled app model: the keyset exporter writes license bytes
# straight to a file stream — the CWE-922 flow.
_CLASSES = (
    ApkClass(
        f"{_PKG}.cache.KeysetExporter",
        methods=(
            ApkMethod(
                "export",
                calls=(
                    "android.media.MediaDrm.provideKeyResponse",
                    "java.io.FileOutputStream.<init>",
                ),
            ),
        ),
    ),
)

PROFILE = OttProfile(
    name="Salto",
    service="salto",
    package=_PKG,
    installs_millions=1,
    audio_protection=AudioProtection.CLEAR,
    enforces_revocation=False,
    extra_classes=_CLASSES,
    extra_launch_calls=(f"{_PKG}.cache.KeysetExporter.export",),
)
