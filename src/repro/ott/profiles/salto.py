"""Salto (1M+ installs).

Table I row: video encrypted but audio **clear**, subtitles clear,
Minimum key usage; plays on discontinued phones.
"""

from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

PROFILE = OttProfile(
    name="Salto",
    service="salto",
    package="fr.salto.app",
    installs_millions=1,
    audio_protection=AudioProtection.CLEAR,
    enforces_revocation=False,
)
