"""OCS (1M+ installs).

Table I row: video and audio encrypted (Minimum), subtitles clear;
plays on discontinued phones.
"""

from repro.android.packages import ApkClass, ApkMethod
from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

_PKG = "com.orange.ocsgo"

# Decompiled app model: verbose support logging traces key status —
# the CWE-532 flow.
_CLASSES = (
    ApkClass(
        f"{_PKG}.support.DebugLogger",
        methods=(
            ApkMethod(
                "trace",
                calls=(
                    "android.media.MediaDrm.queryKeyStatus",
                    "android.util.Log.v",
                ),
            ),
        ),
    ),
)

PROFILE = OttProfile(
    name="OCS",
    service="ocs",
    package=_PKG,
    installs_millions=1,
    audio_protection=AudioProtection.SHARED_KEY,
    enforces_revocation=False,
    extra_classes=_CLASSES,
    extra_launch_calls=(f"{_PKG}.support.DebugLogger.trace",),
)
