"""OCS (1M+ installs).

Table I row: video and audio encrypted (Minimum), subtitles clear;
plays on discontinued phones.
"""

from repro.license_server.policy import AudioProtection
from repro.ott.profile import OttProfile

PROFILE = OttProfile(
    name="OCS",
    service="ocs",
    package="com.orange.ocsgo",
    installs_millions=1,
    audio_protection=AudioProtection.SHARED_KEY,
    enforces_revocation=False,
)
