"""Netflix (1,000M+ installs).

Table I row: Widevine used; video encrypted, audio **clear**, subtitles
clear; key usage Minimum; plays on discontinued L3 phones. Netflix is
also the one service that protects its manifest URIs through the
Widevine non-DASH secure channel (§IV-C Q2) — and, per the paper's
responsible disclosure, believed that channel made audio encryption
unnecessary.
"""

from repro.android.packages import ApkClass, ApkMethod
from repro.license_server.policy import AudioProtection
from repro.ott.profile import URI_SECURE_CHANNEL, OttProfile

_PKG = "com.netflix.mediaclient"

# Decompiled app model: the offline-viewing stack caches the raw
# license payload, then mirrors it onto external storage — the CWE-922
# flow the taint pass must find. The secure-channel generic-crypto
# calls are *absent* here (they live in the obfuscated native player),
# which is exactly what makes them show up as dynamic-only in the
# static/dynamic cross-check.
_CLASSES = (
    ApkClass(
        f"{_PKG}.offline.OfflineLicenseManager",
        methods=(
            ApkMethod(
                "persistLicense",
                calls=(
                    "android.media.MediaDrm.provideKeyResponse",
                    f"{_PKG}.offline.ExternalLicenseCache.flush",
                ),
                field_writes=(f"{_PKG}.offline.cachedLicense",),
            ),
        ),
    ),
    ApkClass(
        f"{_PKG}.offline.ExternalLicenseCache",
        methods=(
            ApkMethod(
                "flush",
                calls=("java.io.FileOutputStream.<init>",),
                field_reads=(f"{_PKG}.offline.cachedLicense",),
            ),
        ),
    ),
)

PROFILE = OttProfile(
    name="Netflix",
    service="netflix",
    package=_PKG,
    installs_millions=1000,
    audio_protection=AudioProtection.CLEAR,
    enforces_revocation=False,
    uri_protection=URI_SECURE_CHANNEL,
    uses_exoplayer=False,  # in-house player
    extra_classes=_CLASSES,
    extra_launch_calls=(
        f"{_PKG}.offline.OfflineLicenseManager.persistLicense",
    ),
)
