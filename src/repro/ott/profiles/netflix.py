"""Netflix (1,000M+ installs).

Table I row: Widevine used; video encrypted, audio **clear**, subtitles
clear; key usage Minimum; plays on discontinued L3 phones. Netflix is
also the one service that protects its manifest URIs through the
Widevine non-DASH secure channel (§IV-C Q2) — and, per the paper's
responsible disclosure, believed that channel made audio encryption
unnecessary.
"""

from repro.license_server.policy import AudioProtection
from repro.ott.profile import URI_SECURE_CHANNEL, OttProfile

PROFILE = OttProfile(
    name="Netflix",
    service="netflix",
    package="com.netflix.mediaclient",
    installs_millions=1000,
    audio_protection=AudioProtection.CLEAR,
    enforces_revocation=False,
    uri_protection=URI_SECURE_CHANNEL,
    uses_exoplayer=False,  # in-house player
)
