"""One module per evaluated OTT service (Table I order in the registry)."""
