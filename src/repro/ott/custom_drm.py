"""App-embedded custom DRM (the Amazon Prime Video fallback).

§IV-C Q1: "One exception is Amazon Prime Video using an embedded
Widevine library when just the L3 software-only mode is available"
(Table I footnote: "using custom DRM if only Widevine L3 is
available"). The decisive property for the study is that this DRM runs
*inside the app's own process* and never touches the platform CDM: the
``_oecc`` monitor in ``mediadrmserver`` sees nothing, and the platform
keybox key ladder — the §IV-D attack — does not apply to it.

The embedded scheme itself is a straightforward shared-secret design:
the app ships a per-service secret; key requests are HMAC-authenticated
and content keys come back AES-CBC-wrapped under a derived key.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
import json

from repro.bmff.boxes import SencEntry, SubsampleRange
from repro.bmff.cenc import CencSample, decrypt_sample
from repro.crypto.kdf import derive_key
from repro.crypto.modes import cbc_decrypt, cbc_encrypt
from repro.crypto.rng import derive_rng

__all__ = [
    "embedded_app_secret",
    "EmbeddedCdm",
    "build_embedded_license",
    "parse_embedded_license_request",
]

_LABEL_WRAP = b"EMBEDDED-WRAP"
_LABEL_AUTH = b"EMBEDDED-AUTH"


def embedded_app_secret(service: str) -> bytes:
    """The secret compiled into the app binary (and known server-side)."""
    return derive_rng(f"embedded-drm/{service}").generate(16)


class EmbeddedCdm:
    """The in-app content decryption module."""

    def __init__(self, service: str):
        self.service = service
        self._secret = embedded_app_secret(service)
        self._keys: dict[bytes, bytes] = {}

    # -- client side ------------------------------------------------------

    def build_key_request(self, title_id: str) -> bytes:
        payload = json.dumps(
            {"type": "embedded_license_request", "title": title_id},
            sort_keys=True,
            separators=(",", ":"),
        ).encode()
        auth_key = derive_key(self._secret, _LABEL_AUTH, title_id.encode(), 256)
        mac = hmac_mod.new(auth_key, payload, hashlib.sha256).hexdigest()
        return json.dumps({"payload": payload.decode(), "mac": mac}).encode()

    def load_keys(self, response: bytes) -> list[bytes]:
        """Unwrap content keys from an embedded-license response."""
        message = json.loads(response.decode())
        wrap_key = derive_key(
            self._secret, _LABEL_WRAP, bytes.fromhex(message["nonce"]), 128
        )
        loaded = []
        for entry in message["keys"]:
            kid = bytes.fromhex(entry["key_id"])
            wrapped = bytes.fromhex(entry["wrapped_key"])
            iv = bytes.fromhex(entry["iv"])
            self._keys[kid] = cbc_decrypt(wrap_key, iv, wrapped)
            loaded.append(kid)
        return loaded

    def decrypt(
        self,
        key_id: bytes,
        data: bytes,
        iv: bytes,
        subsamples: list[tuple[int, int]],
    ) -> bytes:
        try:
            key = self._keys[key_id]
        except KeyError:
            raise KeyError(f"embedded key {key_id.hex()} not loaded") from None
        entry = SencEntry(
            iv=iv, subsamples=[SubsampleRange(c, p) for c, p in subsamples]
        )
        return decrypt_sample(CencSample(data=data, entry=entry), key)


# -- server side ------------------------------------------------------------


def parse_embedded_license_request(service: str, body: bytes) -> str:
    """Verify an embedded-license request; returns the title id."""
    message = json.loads(body.decode())
    payload = message["payload"].encode()
    request = json.loads(payload)
    if request.get("type") != "embedded_license_request":
        raise ValueError("not an embedded license request")
    title_id = request["title"]
    auth_key = derive_key(
        embedded_app_secret(service), _LABEL_AUTH, title_id.encode(), 256
    )
    expected = hmac_mod.new(auth_key, payload, hashlib.sha256).hexdigest()
    if not hmac_mod.compare_digest(expected, message["mac"]):
        raise ValueError("embedded license request MAC mismatch")
    return title_id


def build_embedded_license(
    service: str, keys: dict[bytes, bytes], *, nonce: bytes
) -> bytes:
    """Wrap *keys* for delivery to the embedded CDM."""
    wrap_key = derive_key(embedded_app_secret(service), _LABEL_WRAP, nonce, 128)
    rng = derive_rng(f"embedded-license/{service}/{nonce.hex()}")
    entries = []
    for kid, key in sorted(keys.items()):
        iv = rng.generate(16)
        entries.append(
            {
                "key_id": kid.hex(),
                "iv": iv.hex(),
                "wrapped_key": cbc_encrypt(wrap_key, iv, key).hex(),
            }
        )
    return json.dumps({"nonce": nonce.hex(), "keys": entries}).encode()
