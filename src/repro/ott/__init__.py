"""OTT app models: the app framework, per-service backends, the
embedded custom DRM, and the ten evaluated service profiles."""

from repro.ott.app import (
    AppProtectionError,
    LicenseDeniedError,
    OttApp,
    OttError,
    PlaybackError,
    PlaybackResult,
    ProvisioningDeniedError,
    TrackPlayback,
)
from repro.ott.backend import SECURE_CHANNEL_CONTENT_ID, OttBackend
from repro.ott.custom_drm import EmbeddedCdm, embedded_app_secret
from repro.ott.profile import URI_PLAIN, URI_SECURE_CHANNEL, OttProfile
from repro.ott.registry import ALL_PROFILES, profile_by_name, profile_by_service

__all__ = [
    "AppProtectionError",
    "LicenseDeniedError",
    "OttApp",
    "OttError",
    "PlaybackError",
    "PlaybackResult",
    "ProvisioningDeniedError",
    "TrackPlayback",
    "SECURE_CHANNEL_CONTENT_ID",
    "OttBackend",
    "EmbeddedCdm",
    "embedded_app_secret",
    "URI_PLAIN",
    "URI_SECURE_CHANNEL",
    "OttProfile",
    "ALL_PROFILES",
    "profile_by_name",
    "profile_by_service",
]
