"""Registry of the ten evaluated OTT apps, in the paper's order."""

from __future__ import annotations

from repro.ott.profile import OttProfile
from repro.ott.profiles.amazon_prime import PROFILE as AMAZON_PRIME
from repro.ott.profiles.disneyplus import PROFILE as DISNEY_PLUS
from repro.ott.profiles.hbo_max import PROFILE as HBO_MAX
from repro.ott.profiles.hulu import PROFILE as HULU
from repro.ott.profiles.mycanal import PROFILE as MYCANAL
from repro.ott.profiles.netflix import PROFILE as NETFLIX
from repro.ott.profiles.ocs import PROFILE as OCS
from repro.ott.profiles.salto import PROFILE as SALTO
from repro.ott.profiles.showtime import PROFILE as SHOWTIME
from repro.ott.profiles.starz import PROFILE as STARZ

__all__ = ["ALL_PROFILES", "profile_by_name", "profile_by_service"]

# Table I order.
ALL_PROFILES: tuple[OttProfile, ...] = (
    NETFLIX,
    DISNEY_PLUS,
    AMAZON_PRIME,
    HULU,
    HBO_MAX,
    STARZ,
    MYCANAL,
    SHOWTIME,
    OCS,
    SALTO,
)


def profile_by_name(name: str) -> OttProfile:
    """Look a profile up by display name or service slug
    (case-insensitive)."""
    for profile in ALL_PROFILES:
        if name.lower() in (profile.name.lower(), profile.service.lower()):
            return profile
    raise KeyError(f"no OTT profile named {name!r}")


def profile_by_service(service: str) -> OttProfile:
    """Look a profile up by service slug."""
    for profile in ALL_PROFILES:
        if profile.service == service:
            return profile
    raise KeyError(f"no OTT profile with service slug {service!r}")
