"""Call graph over the decompiled APK model.

The paper pairs static scanning with dynamic monitoring *because*
"decompilation alone over-approximates": a ``MediaDrm`` reference in a
shipped class proves nothing about runtime behaviour if no execution
path reaches it. With per-method bodies in :class:`~repro.android.
packages.ApkClass`, that over-approximation stops being a caveat and
becomes a measurement — the graph walks from the framework entry points
(activity lifecycle) and splits every DRM call site into *reachable*
versus *dead code*.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.android.packages import Apk, decompile

__all__ = ["CallGraph", "DrmCallSite", "DRM_API_PREFIXES"]

# The Android DRM API surface the study scans for (§IV-B).
DRM_API_PREFIXES = (
    "android.media.MediaDrm",
    "android.media.MediaCrypto",
)


@dataclass(frozen=True)
class DrmCallSite:
    """One static call into the Android DRM API."""

    caller_class: str
    caller_method: str  # "" when only the flat method_refs view has it
    callee: str
    reachable: bool

    @property
    def caller(self) -> str:
        if not self.caller_method:
            return self.caller_class
        return f"{self.caller_class}.{self.caller_method}"


@dataclass
class CallGraph:
    """Method-level call graph of one APK."""

    apk_package: str
    # node -> callees defined in this APK (edges stay inside the graph)
    edges: dict[str, tuple[str, ...]] = field(default_factory=dict)
    # node -> every call the body makes, including platform APIs
    calls: dict[str, tuple[str, ...]] = field(default_factory=dict)
    entry_points: tuple[str, ...] = ()
    _reachable: frozenset[str] | None = field(default=None, repr=False)

    @classmethod
    def from_apk(cls, apk: Apk) -> "CallGraph":
        nodes: dict[str, tuple[str, ...]] = {}
        for klass in decompile(apk):
            for method in klass.methods:
                nodes[f"{klass.name}.{method.name}"] = method.calls
        graph = cls(apk_package=apk.package, entry_points=apk.entry_points)
        for node, outgoing in nodes.items():
            graph.calls[node] = outgoing
            graph.edges[node] = tuple(c for c in outgoing if c in nodes)
        return graph

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(self.edges)

    def reachable_methods(self) -> frozenset[str]:
        """Methods reachable from the framework entry points (BFS)."""
        if self._reachable is not None:
            return self._reachable
        seen: set[str] = set()
        queue = deque(ep for ep in self.entry_points if ep in self.edges)
        seen.update(queue)
        while queue:
            node = queue.popleft()
            for callee in self.edges[node]:
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        frozen = frozenset(seen)
        object.__setattr__(self, "_reachable", frozen)
        return frozen

    def is_reachable(self, qualified_method: str) -> bool:
        return qualified_method in self.reachable_methods()

    def dead_methods(self) -> tuple[str, ...]:
        """Defined methods no entry point reaches, in definition order."""
        reachable = self.reachable_methods()
        return tuple(n for n in self.edges if n not in reachable)

    # -- the DRM-specific view (§IV-B scan, now reachability-aware) --------

    def drm_call_sites(
        self, apk: Apk, prefixes: tuple[str, ...] = DRM_API_PREFIXES
    ) -> list[DrmCallSite]:
        """Every static DRM call site, classified reachable/dead.

        Method bodies yield precise sites; classes carrying only the
        flat ``method_refs`` view (no bodies) are conservatively treated
        as dead unless some body-level path reaches a method of theirs —
        matching how a real decompiler degrades on obfuscated classes.
        """
        reachable = self.reachable_methods()
        sites: list[DrmCallSite] = []
        seen: set[tuple[str, str, str]] = set()
        for klass in decompile(apk):
            for method in klass.methods:
                node = f"{klass.name}.{method.name}"
                for callee in method.calls:
                    if not callee.startswith(prefixes):
                        continue
                    key = (klass.name, method.name, callee)
                    if key in seen:
                        continue
                    seen.add(key)
                    sites.append(
                        DrmCallSite(
                            caller_class=klass.name,
                            caller_method=method.name,
                            callee=callee,
                            reachable=node in reachable,
                        )
                    )
            body_calls = {c for m in klass.methods for c in m.calls}
            for ref in klass.method_refs:
                if not ref.startswith(prefixes) or ref in body_calls:
                    continue
                key = (klass.name, "", ref)
                if key in seen:
                    continue
                seen.add(key)
                sites.append(
                    DrmCallSite(
                        caller_class=klass.name,
                        caller_method="",
                        callee=ref,
                        reachable=False,
                    )
                )
        return sites
