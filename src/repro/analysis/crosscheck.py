"""Reconcile static DRM call sites with dynamic monitor observations.

§IV-B runs both prongs precisely because each one lies in its own way:
static scanning sees dead code (over-approximation) and dynamic
monitoring only sees the paths one playback exercised (under-
approximation). Holding the two against each other classifies every
DRM usage as:

- ``confirmed``     — a reachable static call site whose OEMCrypto
  evidence showed up in the hooked ``_oecc`` records;
- ``static-only``   — a call site the call graph proves dead, or a
  reachable one whose evidence never fired (the measured
  over-approximation);
- ``dynamic-only``  — observed ``_oecc`` activity with *no* static call
  site behind it: the app reaches the CDM through code the decompiler
  could not attribute (native layers, obfuscation — Netflix's secure
  channel is the worked example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.callgraph import DrmCallSite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports us)
    from repro.core.monitor import DrmApiObservation

__all__ = [
    "CONFIRMED",
    "STATIC_ONLY",
    "DYNAMIC_ONLY",
    "ClassifiedCallSite",
    "CrossCheckResult",
    "cross_check",
]

CONFIRMED = "confirmed"
STATIC_ONLY = "static-only"
DYNAMIC_ONLY = "dynamic-only"

# Which hooked ``_oecc`` exports evidence each Android DRM API call.
# Mirrors how MediaDrm/MediaCrypto fan into OEMCrypto (§II, Figure 1).
OECC_EVIDENCE: dict[str, tuple[str, ...]] = {
    # An open session proves the CDM was constructed even when the hook
    # window missed the one-time _oecc01 bring-up.
    "android.media.MediaDrm.<init>": (
        "_oecc01_initialize",
        "_oecc05_open_session",
    ),
    "android.media.MediaDrm.openSession": ("_oecc05_open_session",),
    "android.media.MediaDrm.closeSession": ("_oecc06_close_session",),
    "android.media.MediaDrm.getKeyRequest": (
        "_oecc07_generate_derived_keys",
        "_oecc08_generate_nonce",
        "_oecc09_generate_signature",
    ),
    "android.media.MediaDrm.provideKeyResponse": (
        "_oecc10_load_keys",
        "_oecc24_derive_keys_from_session_key",
    ),
    "android.media.MediaDrm.restoreKeys": ("_oecc10_load_keys",),
    "android.media.MediaDrm.getProvisionRequest": ("_oecc13_get_device_id",),
    "android.media.MediaDrm.provideProvisionResponse": (
        "_oecc21_rewrap_device_rsa_key",
        "_oecc22_load_device_rsa_key",
    ),
    "android.media.MediaDrm.getPropertyString": ("_oecc13_get_device_id",),
    "android.media.MediaCrypto.<init>": (
        "_oecc11_select_key",
        "_oecc12_decrypt_ctr",
        "_oecc28_decrypt_cbcs",
    ),
    "android.media.MediaDrm.CryptoSession.encrypt": ("_oecc30_generic_encrypt",),
    "android.media.MediaDrm.CryptoSession.decrypt": ("_oecc31_generic_decrypt",),
    "android.media.MediaDrm.CryptoSession.sign": ("_oecc32_generic_sign",),
    "android.media.MediaDrm.CryptoSession.verify": ("_oecc33_generic_verify",),
}

# Hooked functions that fire on any Widevine session regardless of which
# API triggered them — never counted as dynamic-only on their own.
_AMBIENT_FUNCTIONS = frozenset(
    {
        "_oecc01_initialize",
        "_oecc02_terminate",
        "_oecc23_generate_rsa_signature",
        "_oecc25_get_rsa_public_fingerprint",
    }
)


@dataclass(frozen=True)
class ClassifiedCallSite:
    """One static call site with its cross-check verdict."""

    site: DrmCallSite
    verdict: str  # CONFIRMED | STATIC_ONLY
    note: str = ""


@dataclass
class CrossCheckResult:
    """Static-vs-dynamic reconciliation for one app."""

    package: str
    sites: list[ClassifiedCallSite] = field(default_factory=list)
    dynamic_only: tuple[str, ...] = ()  # observed _oecc with no static site

    @property
    def confirmed(self) -> int:
        return sum(1 for s in self.sites if s.verdict == CONFIRMED)

    @property
    def static_only(self) -> int:
        return sum(1 for s in self.sites if s.verdict == STATIC_ONLY)

    @property
    def dead_code(self) -> int:
        return sum(
            1
            for s in self.sites
            if s.verdict == STATIC_ONLY and not s.site.reachable
        )

    def counts(self) -> dict[str, int]:
        return {
            "confirmed": self.confirmed,
            "static_only": self.static_only,
            "dead_code": self.dead_code,
            "dynamic_only": len(self.dynamic_only),
        }


def cross_check(
    package: str,
    sites: list[DrmCallSite],
    observation: DrmApiObservation,
) -> CrossCheckResult:
    """Classify each static call site against one monitored playback."""
    observed = set(observation.functions_seen)
    result = CrossCheckResult(package=package)

    covered: set[str] = set()
    for site in sites:
        evidence = OECC_EVIDENCE.get(site.callee, ())
        fired = sorted(observed.intersection(evidence))
        if site.reachable and fired:
            covered.update(fired)
            result.sites.append(
                ClassifiedCallSite(
                    site=site,
                    verdict=CONFIRMED,
                    note=f"observed {', '.join(fired)}",
                )
            )
        elif not site.reachable:
            result.sites.append(
                ClassifiedCallSite(
                    site=site,
                    verdict=STATIC_ONLY,
                    note="dead code: no call-graph path from any entry point",
                )
            )
        else:
            result.sites.append(
                ClassifiedCallSite(
                    site=site,
                    verdict=STATIC_ONLY,
                    note="reachable but no OEMCrypto evidence this playback",
                )
            )

    # Evidence any *static* site could account for, dead or not — a dead
    # getPropertyString site does not make _oecc13 "unattributed".
    attributable: set[str] = set()
    for site in sites:
        attributable.update(OECC_EVIDENCE.get(site.callee, ()))
    result.dynamic_only = tuple(
        sorted(
            fn
            for fn in observed
            if fn not in attributable and fn not in _AMBIENT_FUNCTIONS
        )
    )
    return result
