"""Deep static analysis (§IV-B, first prong — made measurable).

Two prongs share this package:

- the **APK dataflow engine** (:mod:`callgraph`, :mod:`taint`,
  :mod:`engine`): builds a call graph with entry-point reachability so
  the paper's static over-approximation (dead code) becomes a measured
  quantity, and runs a source→sink taint pass over DRM key material,
  tagging findings with CWE ids. :mod:`crosscheck` reconciles static
  call sites with what the dynamic monitor actually observed;
- the **repo invariant linter** (:mod:`lint`): AST rules that guard the
  concurrency/determinism substrate this codebase itself relies on
  (lock-protected registries, seeded randomness, the simulated clock).
"""

from repro.analysis.callgraph import CallGraph, DrmCallSite
from repro.analysis.crosscheck import (
    CONFIRMED,
    DYNAMIC_ONLY,
    STATIC_ONLY,
    CrossCheckResult,
    cross_check,
)
from repro.analysis.engine import ApkAnalysisReport, analyze
from repro.analysis.lint import (
    LintReport,
    LintSuppression,
    LintViolation,
    SuppressedViolation,
    lint_paths,
    lint_paths_report,
    lint_source,
    lint_source_report,
)
from repro.analysis.taint import (
    TaintFinding,
    TaintSink,
    TaintSource,
    default_ruleset,
    registered_sinks,
    registered_sources,
)

__all__ = [
    "CallGraph",
    "DrmCallSite",
    "ApkAnalysisReport",
    "analyze",
    "CrossCheckResult",
    "cross_check",
    "CONFIRMED",
    "STATIC_ONLY",
    "DYNAMIC_ONLY",
    "TaintSource",
    "TaintSink",
    "TaintFinding",
    "default_ruleset",
    "registered_sources",
    "registered_sinks",
    "LintReport",
    "LintSuppression",
    "LintViolation",
    "SuppressedViolation",
    "lint_paths",
    "lint_paths_report",
    "lint_source",
    "lint_source_report",
]
