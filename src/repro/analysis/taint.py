"""Taint pass: DRM key material flowing into insecure sinks.

§IV-D's practical impact is, at bottom, a *dataflow* story: keybox
bytes unlock the device RSA key, which unlocks content keys — and the
failure the paper files under CWE-922 is any of those secrets coming to
rest somewhere world-readable. "A First Look at DRM Systems for Secure
Mobile Content Delivery" (Rafi et al.) makes the same point from the
app side: what matters is not *whether* an app touches the DRM API but
*where the key-lifecycle data goes afterwards*.

The pass works on the decompiled method-body model:

- a method that calls a registered **source** API is seeded tainted;
- taint propagates to callees (arguments are opaque, so a tainted
  caller taints everything it invokes that the APK defines) and through
  **fields**: a tainted method's ``field_writes`` taint the field, and
  any method reading a tainted field becomes tainted;
- a tainted method calling a registered **sink** API yields a
  :class:`TaintFinding`, tagged with the sink's CWE id and severity and
  with call-graph reachability of the whole path (a flow living purely
  in dead code is reported, but flagged — the paper's
  over-approximation again).

Sources and sinks live in a module-level registry guarded by a lock —
the same shared-registry discipline :mod:`repro.analysis.lint` enforces
over the rest of the tree.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph
from repro.android.packages import Apk, decompile

__all__ = [
    "TaintSource",
    "TaintSink",
    "TaintFinding",
    "register_source",
    "register_sink",
    "registered_sources",
    "registered_sinks",
    "default_ruleset",
    "TaintAnalyzer",
]


def _matches(callee: str, patterns: tuple[str, ...]) -> bool:
    """Prefix match; a leading ``*`` matches any class-name prefix."""
    for pattern in patterns:
        if pattern.startswith("*"):
            if pattern[1:] in callee:
                return True
        elif callee.startswith(pattern):
            return True
    return False


@dataclass(frozen=True)
class TaintSource:
    """An API whose result is DRM key-lifecycle material."""

    id: str  # e.g. "license-payload"
    description: str
    call_patterns: tuple[str, ...]

    def matches(self, callee: str) -> bool:
        return _matches(callee, self.call_patterns)


@dataclass(frozen=True)
class TaintSink:
    """An API that persists or transmits data insecurely."""

    id: str  # e.g. "world-readable-storage"
    description: str
    cwe: str  # e.g. "CWE-922"
    severity: str  # "critical" | "high" | "medium"
    call_patterns: tuple[str, ...]

    def matches(self, callee: str) -> bool:
        return _matches(callee, self.call_patterns)


@dataclass(frozen=True)
class TaintFinding:
    """One source→sink flow through the decompiled app."""

    source: str  # TaintSource.id
    sink: str  # TaintSink.id
    cwe: str
    severity: str
    source_call: str  # the API call that seeded the taint
    sink_call: str  # the API call the secret reached
    path: tuple[str, ...]  # method / field hops, source first
    reachable: bool  # every hop on a live call-graph path?

    def describe(self) -> str:
        liveness = "reachable" if self.reachable else "DEAD CODE"
        chain = " -> ".join(self.path)
        return (
            f"[{self.cwe}][{self.severity}] {self.source} -> {self.sink} "
            f"({liveness}): {chain} -> {self.sink_call}"
        )


# -- the rule registry ---------------------------------------------------------

_SOURCES: dict[str, TaintSource] = {}
_SINKS: dict[str, TaintSink] = {}
_RULES_LOCK = threading.Lock()


def register_source(source: TaintSource) -> TaintSource:
    with _RULES_LOCK:
        _SOURCES[source.id] = source
    return source


def register_sink(sink: TaintSink) -> TaintSink:
    with _RULES_LOCK:
        _SINKS[sink.id] = sink
    return sink


def registered_sources() -> tuple[TaintSource, ...]:
    with _RULES_LOCK:
        return tuple(_SOURCES.values())


def registered_sinks() -> tuple[TaintSink, ...]:
    with _RULES_LOCK:
        return tuple(_SINKS.values())


def default_ruleset() -> tuple[tuple[TaintSource, ...], tuple[TaintSink, ...]]:
    """The built-in rules (also ensures they are registered)."""
    with _RULES_LOCK:
        for source in _DEFAULT_SOURCES:
            _SOURCES.setdefault(source.id, source)
        for sink in _DEFAULT_SINKS:
            _SINKS.setdefault(sink.id, sink)
        return tuple(_SOURCES.values()), tuple(_SINKS.values())


# The paper's key ladder, top to bottom (§II, §IV-D).
_DEFAULT_SOURCES = (
    TaintSource(
        id="keybox-bytes",
        description="factory keybox material (root of the key ladder)",
        call_patterns=("*.drm.KeyboxLoader.load", "*.KeyboxReader.read"),
    ),
    TaintSource(
        id="device-rsa-key",
        description="provisioned device RSA key blob",
        call_patterns=(
            "android.media.MediaDrm.getProvisionRequest",
            "android.media.MediaDrm.provideProvisionResponse",
            "*.ProvisioningStore.loadWrappedKey",
        ),
    ),
    TaintSource(
        id="content-keys",
        description="per-title content decryption keys",
        call_patterns=(
            "android.media.MediaDrm.queryKeyStatus",
            "*.drm.EmbeddedCdm.loadKeys",
            "*.drm.EmbeddedCdm.sessionKeys",
        ),
    ),
    TaintSource(
        id="license-payload",
        description="raw license response (wraps the content keys)",
        call_patterns=(
            "android.media.MediaDrm.provideKeyResponse",
            "android.media.MediaDrm.getKeyRequest",
            "*.LicenseClient.fetchLicense",
        ),
    ),
)

_DEFAULT_SINKS = (
    TaintSink(
        id="world-readable-storage",
        description="secret at rest outside app-private storage",
        cwe="CWE-922",
        severity="critical",
        call_patterns=(
            "java.io.FileOutputStream.<init>",
            "android.content.Context.openFileOutput",
            "android.os.Environment.getExternalStorageDirectory",
        ),
    ),
    TaintSink(
        id="logcat",
        description="secret written to the shared system log",
        cwe="CWE-532",
        severity="high",
        call_patterns=(
            "android.util.Log.v",
            "android.util.Log.d",
            "android.util.Log.i",
            "android.util.Log.w",
            "android.util.Log.e",
        ),
    ),
    TaintSink(
        id="plaintext-http",
        description="secret transmitted over cleartext HTTP",
        cwe="CWE-319",
        severity="high",
        call_patterns=(
            "java.net.HttpURLConnection.connect",
            "org.apache.http.client.HttpClient.execute",
        ),
    ),
)


# -- the analyzer --------------------------------------------------------------


@dataclass(frozen=True)
class _Taint:
    """Provenance of one tainted method: which source, via which hops."""

    source_id: str
    source_call: str
    path: tuple[str, ...]
    live: bool  # every method hop so far is call-graph reachable


class TaintAnalyzer:
    """Field- and call-sensitive taint propagation to a fixpoint."""

    def __init__(
        self,
        sources: tuple[TaintSource, ...] | None = None,
        sinks: tuple[TaintSink, ...] | None = None,
    ):
        if sources is None or sinks is None:
            default_sources, default_sinks = default_ruleset()
            sources = sources if sources is not None else default_sources
            sinks = sinks if sinks is not None else default_sinks
        self.sources = sources
        self.sinks = sinks

    def run(self, apk: Apk, graph: CallGraph | None = None) -> list[TaintFinding]:
        graph = graph or CallGraph.from_apk(apk)
        reachable = graph.reachable_methods()

        bodies = {
            f"{klass.name}.{method.name}": method
            for klass in decompile(apk)
            for method in klass.methods
        }

        # method -> {source_id: best taint fact}; fields likewise.
        tainted: dict[str, dict[str, _Taint]] = {}
        tainted_fields: dict[str, dict[str, _Taint]] = {}

        def absorb(
            table: dict[str, dict[str, _Taint]], key: str, fact: _Taint
        ) -> bool:
            """Record *fact*; True if it added information (new source,
            or upgraded a dead-code-only fact to a live one)."""
            existing = table.setdefault(key, {}).get(fact.source_id)
            if existing is None or (fact.live and not existing.live):
                table[key][fact.source_id] = fact
                return True
            return False

        # Seed: any method calling a source API.
        for node in sorted(bodies):
            for callee in bodies[node].calls:
                for source in self.sources:
                    if source.matches(callee):
                        absorb(
                            tainted,
                            node,
                            _Taint(
                                source_id=source.id,
                                source_call=callee,
                                path=(node,),
                                live=node in reachable,
                            ),
                        )

        # Propagate through call edges and field reads/writes.
        changed = True
        while changed:
            changed = False
            for node in sorted(tainted):
                body = bodies.get(node)
                if body is None:
                    continue
                for fact in list(tainted[node].values()):
                    for callee in body.calls:
                        if callee not in bodies or callee in fact.path:
                            continue
                        step = _Taint(
                            source_id=fact.source_id,
                            source_call=fact.source_call,
                            path=fact.path + (callee,),
                            live=fact.live and callee in reachable,
                        )
                        changed |= absorb(tainted, callee, step)
                    for field_name in body.field_writes:
                        step = _Taint(
                            source_id=fact.source_id,
                            source_call=fact.source_call,
                            path=fact.path + (f"[field {field_name}]",),
                            live=fact.live,
                        )
                        changed |= absorb(tainted_fields, field_name, step)
            for node in sorted(bodies):
                body = bodies[node]
                for field_name in body.field_reads:
                    for fact in list(tainted_fields.get(field_name, {}).values()):
                        step = _Taint(
                            source_id=fact.source_id,
                            source_call=fact.source_call,
                            path=fact.path + (node,),
                            live=fact.live and node in reachable,
                        )
                        changed |= absorb(tainted, node, step)

        # Report: tainted method calling a sink API.
        findings: list[TaintFinding] = []
        seen: set[tuple[str, str, str, str]] = set()
        for node in sorted(tainted):
            body = bodies.get(node)
            if body is None:
                continue
            for callee in body.calls:
                for sink in self.sinks:
                    if not sink.matches(callee):
                        continue
                    for source_id in sorted(tainted[node]):
                        fact = tainted[node][source_id]
                        key = (source_id, sink.id, node, callee)
                        if key in seen:
                            continue
                        seen.add(key)
                        findings.append(
                            TaintFinding(
                                source=source_id,
                                sink=sink.id,
                                cwe=sink.cwe,
                                severity=sink.severity,
                                source_call=fact.source_call,
                                sink_call=callee,
                                path=fact.path,
                                reachable=fact.live,
                            )
                        )
        return findings
