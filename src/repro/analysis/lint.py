"""Repo invariant linter: AST rules guarding the concurrency and
determinism substrate.

The parallel study runner's byte-identity contract rests on three
conventions nothing used to enforce:

- shared mutable registries are mutated only under their lock
  (``REG001``), and hand-rolled LRU caches always *have* a lock
  (``LRU004``);
- every random byte comes from the seeded HMAC-DRBG, never the
  process RNG (``RNG002``);
- no wall-clock reads outside :mod:`repro.android.clock` — simulated
  time is advanced explicitly (``CLK003``).

Each rule is pure stdlib ``ast`` — no third-party linter dependency —
and is self-tested against seeded-violation fixtures in
``tests/fixtures/lint/``. ``tools/lint_repro.py`` (and the CI lint job)
runs the whole set over ``src/repro``.

Deliberate exceptions are suppressed in place, never globally::

    self._clock = time.perf_counter_ns  # lint: allow(CLK003) spans time real work

The comment names one rule and **must** carry a justification; a bare
``allow(CLK003)`` with no reason does not suppress. It applies to the
line it sits on, or — when the comment stands alone — to the next line.
Suppressions are not silent: every one that fires is recorded in the
:class:`LintReport` so the CI log shows what was waived and why.

REG001/LRU004 violations additionally carry a ready-to-apply
unified-diff patch (``repro lint --fix-preview``). Each patch is a
full-file diff against the **original** source, so when one file
carries several violations the patches overlap: apply one patch per
file, re-lint, and take the regenerated patch for the next violation.
"""

from __future__ import annotations

import ast
import difflib
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "LintReport",
    "LintSuppression",
    "LintViolation",
    "RULE_IDS",
    "SuppressedViolation",
    "lint_source",
    "lint_source_report",
    "lint_file",
    "lint_file_report",
    "lint_paths",
    "lint_paths_report",
]

RULE_IDS = ("REG001", "RNG002", "CLK003", "LRU004")

# Modules allowed to read the wall clock: the simulation's one clock
# abstraction. Everything else must take a SimClock.
_WALL_CLOCK_ALLOWED_SUFFIXES = ("repro/android/clock.py",)

_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "add",
        "remove",
        "discard",
        "move_to_end",
    }
)

_MUTABLE_CALLS = frozenset({"dict", "list", "set", "OrderedDict", "defaultdict"})
_LOCK_CALLS = frozenset({"Lock", "RLock"})

_FORBIDDEN_RNG = {
    "random.random",
    "random.randint",
    "random.randrange",
    "random.uniform",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.getrandbits",
    "random.randbytes",
    "os.urandom",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.randbelow",
    "secrets.choice",
    "uuid.uuid4",
}

_FORBIDDEN_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}


@dataclass(frozen=True)
class LintViolation:
    rule: str
    path: str
    line: int
    message: str
    # Ready-to-apply unified diff fixing the violation, when the rule
    # knows the exact repair (REG001: wrap in `with <lock>:`; LRU004:
    # declare the missing lock beside the cache). ``repro lint
    # --fix-preview`` and ``tools/lint_repro.py`` echo it. Diffed
    # against the unmodified file: apply at most one patch per file,
    # then re-lint to regenerate the rest against the patched source.
    patch: str | None = None

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


# -- suppressions --------------------------------------------------------------

# `# lint: allow(RULE123) <reason>` — one rule per comment, reason
# mandatory. Multiple comments may share a line.
_SUPPRESSION_RE = re.compile(
    r"#\s*lint:\s*allow\((?P<rule>[A-Z]+\d+)\)\s*(?P<reason>[^#\n]*)"
)


@dataclass(frozen=True)
class LintSuppression:
    """One `# lint: allow(...)` comment found in a source file."""

    rule: str
    path: str
    line: int  # line the comment sits on
    reason: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: allow({self.rule}) {self.reason}"


@dataclass(frozen=True)
class SuppressedViolation:
    """A violation waived by a matching suppression comment."""

    violation: LintViolation
    suppression: LintSuppression

    def __str__(self) -> str:
        v, s = self.violation, self.suppression
        return (
            f"{v.path}:{v.line}: {v.rule} suppressed "
            f"(allow at line {s.line}: {s.reason})"
        )


@dataclass
class LintReport:
    """What the linter found *and* what it was told to overlook."""

    violations: list[LintViolation] = field(default_factory=list)
    suppressed: list[SuppressedViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def extend(self, other: "LintReport") -> None:
        self.violations.extend(other.violations)
        self.suppressed.extend(other.suppressed)


def _collect_suppressions(source: str, path: str) -> list[LintSuppression]:
    suppressions: list[LintSuppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        for match in _SUPPRESSION_RE.finditer(text):
            suppressions.append(
                LintSuppression(
                    rule=match.group("rule"),
                    path=path,
                    line=lineno,
                    reason=match.group("reason").strip(),
                )
            )
    return suppressions


def _covered_lines(suppression: LintSuppression, source_lines: list[str]) -> set[int]:
    """A trailing comment covers its own line; a comment standing alone
    on a line covers the statement directly below it."""
    covered = {suppression.line}
    index = suppression.line - 1
    if 0 <= index < len(source_lines) and source_lines[index].lstrip().startswith("#"):
        covered.add(suppression.line + 1)
    return covered


def _apply_suppressions(
    violations: list[LintViolation],
    suppressions: list[LintSuppression],
    source: str,
) -> LintReport:
    source_lines = source.splitlines()
    coverage: dict[tuple[str, int], LintSuppression] = {}
    for suppression in suppressions:
        if not suppression.reason:
            continue  # a waiver without a justification does not waive
        for line in _covered_lines(suppression, source_lines):
            coverage.setdefault((suppression.rule, line), suppression)
    report = LintReport()
    for violation in violations:
        suppression = coverage.get((violation.rule, violation.line))
        if suppression is None:
            report.violations.append(violation)
        else:
            report.suppressed.append(
                SuppressedViolation(violation=violation, suppression=suppression)
            )
    return report


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted-name rendering of a Name/Attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


def _is_mutable_literal(value: ast.AST) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(value, ast.Call):
        name = _dotted(value.func).rsplit(".", 1)[-1]
        return name in _MUTABLE_CALLS
    return False


def _is_lock_factory(value: ast.AST) -> bool:
    if isinstance(value, ast.Call):
        name = _dotted(value.func).rsplit(".", 1)[-1]
        return name in _LOCK_CALLS
    return False


def _is_ordereddict_call(value: ast.AST) -> bool:
    return (
        isinstance(value, ast.Call)
        and _dotted(value.func).rsplit(".", 1)[-1] == "OrderedDict"
    )


def _with_holds_lock(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        if "lock" in _dotted(expr).lower():
            return True
    return False


# -- scope harvesting ----------------------------------------------------------


@dataclass
class _Scope:
    """Registries and locks declared by one module or one class."""

    registries: set[str]  # plain names (module) or attr names (class)
    lru_caches: set[str]
    has_lock: bool
    is_class: bool
    # Lock expressions as they read at a mutation site (module names,
    # or "self.<attr>" for class scopes) — the autofix wraps mutations
    # in the first one. Empty when the scope declares no lock.
    lock_exprs: tuple[str, ...] = ()
    # cache name -> line of its declaring assignment; the LRU004
    # autofix inserts the missing lock right below it.
    cache_lines: dict[str, int] = field(default_factory=dict)


def _module_scope(tree: ast.Module) -> _Scope:
    registries: set[str] = set()
    caches: set[str] = set()
    locks: list[str] = []
    cache_lines: dict[str, int] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.AST | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        for target in targets:
            if not isinstance(target, ast.Name) or target.id == "__all__":
                continue
            if _is_lock_factory(value):
                locks.append(target.id)
            elif _is_ordereddict_call(value):
                caches.add(target.id)
                registries.add(target.id)
                cache_lines[target.id] = getattr(
                    stmt, "end_lineno", stmt.lineno
                )
            elif _is_mutable_literal(value):
                registries.add(target.id)
    return _Scope(
        registries,
        caches,
        bool(locks),
        is_class=False,
        lock_exprs=tuple(locks),
        cache_lines=cache_lines,
    )


def _class_scope(cls: ast.ClassDef) -> _Scope:
    """Instance attributes assigned anywhere in the class's methods."""
    registries: set[str] = set()
    caches: set[str] = set()
    locks: list[str] = []
    cache_lines: dict[str, int] = {}
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if _is_lock_factory(node.value):
                    locks.append(f"self.{target.attr}")
                elif _is_ordereddict_call(node.value):
                    caches.add(target.attr)
                    registries.add(target.attr)
                    cache_lines[target.attr] = getattr(
                        node, "end_lineno", node.lineno
                    )
                elif _is_mutable_literal(node.value):
                    registries.add(target.attr)
    return _Scope(
        registries,
        caches,
        bool(locks),
        is_class=True,
        lock_exprs=tuple(locks),
        cache_lines=cache_lines,
    )


# -- autofix patches -----------------------------------------------------------


def _unified_patch(
    old_lines: list[str], new_lines: list[str], path: str
) -> str:
    """Full-file unified diff, ready for ``patch -p1`` / ``git apply``."""
    return (
        "\n".join(
            difflib.unified_diff(
                old_lines,
                new_lines,
                fromfile=f"a/{path}",
                tofile=f"b/{path}",
                lineterm="",
            )
        )
        + "\n"
    )


def _reg001_patch(
    source_lines: list[str], node: ast.AST, lock_expr: str, path: str
) -> str | None:
    """Wrap the flagged statement in ``with <lock>:``, re-indented."""
    start = getattr(node, "lineno", 0) - 1
    end = getattr(node, "end_lineno", getattr(node, "lineno", 0)) - 1
    if start < 0 or end >= len(source_lines):
        return None
    stmt = source_lines[start : end + 1]
    indent = stmt[0][: len(stmt[0]) - len(stmt[0].lstrip())]
    fixed = [f"{indent}with {lock_expr}:"] + [
        f"    {line}" if line.strip() else line for line in stmt
    ]
    new_lines = source_lines[:start] + fixed + source_lines[end + 1 :]
    return _unified_patch(source_lines, new_lines, path)


def _import_insert_index(source_lines: list[str]) -> int:
    """0-based index where ``import threading`` can legally go.

    Joining the first existing import is preferred; failing that, the
    slot just below the module docstring and any ``from __future__``
    imports — inserting above either would demote the docstring or
    raise ``SyntaxError: from __future__ imports must occur at the
    beginning of the file``.
    """
    try:
        body = ast.parse("\n".join(source_lines)).body
    except SyntaxError:
        body = []
    index = 0
    for position, node in enumerate(body):
        docstring = (
            position == 0
            and isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        )
        if docstring or (
            isinstance(node, ast.ImportFrom) and node.module == "__future__"
        ):
            index = getattr(node, "end_lineno", node.lineno)
            continue
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            return node.lineno - 1
        break
    return index


def _lru004_patch(
    source_lines: list[str], scope: "_Scope", cache: str, path: str
) -> str | None:
    """Declare the missing lock on the line below the cache assignment
    (adding ``import threading`` when the module lacks it)."""
    decl_end = scope.cache_lines.get(cache)
    if decl_end is None or decl_end > len(source_lines):
        return None
    decl_line = source_lines[decl_end - 1]
    indent = decl_line[: len(decl_line) - len(decl_line.lstrip())]
    lock_name = f"self.{cache}_lock" if scope.is_class else f"{cache}_lock"
    new_lines = list(source_lines)
    new_lines.insert(decl_end, f"{indent}{lock_name} = threading.Lock()")
    has_import = any(
        re.match(r"\s*(import threading\b|from threading import )", line)
        for line in source_lines
    )
    if not has_import:
        new_lines.insert(
            _import_insert_index(source_lines), "import threading"
        )
    return _unified_patch(source_lines, new_lines, path)


# -- mutation scanning ---------------------------------------------------------


class _MutationScanner(ast.NodeVisitor):
    """Walks one function body tracking the with-lock nesting depth."""

    def __init__(
        self,
        scope: _Scope,
        path: str,
        violations: list[LintViolation],
        where: str,
        source_lines: list[str] | None = None,
    ):
        self.scope = scope
        self.path = path
        self.violations = violations
        self.where = where
        self.source_lines = source_lines or []
        self.lock_depth = 0

    # -- helpers -----------------------------------------------------------

    def _registry_name(self, node: ast.AST) -> str | None:
        """The registry this expression denotes, if tracked by scope."""
        if self.scope.is_class:
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.scope.registries
            ):
                return f"self.{node.attr}"
        elif isinstance(node, ast.Name) and node.id in self.scope.registries:
            return node.id
        return None

    def _flag(self, node: ast.AST, registry: str) -> None:
        if self.lock_depth > 0:
            return
        lock_expr = self.scope.lock_exprs[0] if self.scope.lock_exprs else None
        patch = None
        if lock_expr is not None and self.source_lines:
            patch = _reg001_patch(self.source_lines, node, lock_expr, self.path)
        self.violations.append(
            LintViolation(
                rule="REG001",
                path=self.path,
                line=getattr(node, "lineno", 0),
                message=(
                    f"shared registry {registry!r} mutated outside its lock "
                    f"in {self.where} (wrap the mutation in "
                    f"`with {lock_expr or '<lock>'}:`)"
                ),
                patch=patch,
            )
        )

    # -- visitors ----------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        held = _with_holds_lock(node)
        if held:
            self.lock_depth += 1
        self.generic_visit(node)
        if held:
            self.lock_depth -= 1

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                registry = self._registry_name(target.value)
                if registry is not None:
                    self._flag(node, registry)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Subscript):
            registry = self._registry_name(node.target.value)
            if registry is not None:
                self._flag(node, registry)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                registry = self._registry_name(target.value)
                if registry is not None:
                    self._flag(node, registry)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
        ):
            registry = self._registry_name(func.value)
            if registry is not None:
                self._flag(node, registry)
        self.generic_visit(node)


def _check_registry_locks(
    tree: ast.Module,
    path: str,
    violations: list[LintViolation],
    source_lines: list[str] | None = None,
) -> None:
    """REG001 + LRU004 over the module scope and every class scope."""
    source_lines = source_lines or []

    def scan_scope(scope: _Scope, owner: ast.AST, label: str) -> None:
        if scope.lru_caches and not scope.has_lock:
            for cache in sorted(scope.lru_caches):
                patch = (
                    _lru004_patch(source_lines, scope, cache, path)
                    if source_lines
                    else None
                )
                violations.append(
                    LintViolation(
                        rule="LRU004",
                        path=path,
                        line=getattr(owner, "lineno", 1),
                        message=(
                            f"LRU cache {cache!r} in {label} has no lock: "
                            "declare a threading.Lock() beside it and mutate "
                            "under it"
                        ),
                        patch=patch,
                    )
                )
        if not scope.has_lock or not scope.registries:
            return
        body = owner.body if isinstance(owner, (ast.Module, ast.ClassDef)) else []
        for stmt in body:
            functions = (
                [stmt]
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                else []
            )
            for func in functions:
                if func.name == "__init__":
                    continue  # construction precedes sharing
                scanner = _MutationScanner(
                    scope,
                    path,
                    violations,
                    where=f"{label}.{func.name}",
                    source_lines=source_lines,
                )
                for node in func.body:
                    scanner.visit(node)

    scan_scope(_module_scope(tree), tree, "module")
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            scan_scope(_class_scope(node), node, node.name)


def _check_forbidden_calls(
    tree: ast.Module, path: str, violations: list[LintViolation]
) -> None:
    """RNG002 + CLK003: call-pattern bans."""
    clock_allowed = path.replace("\\", "/").endswith(
        _WALL_CLOCK_ALLOWED_SUFFIXES
    )
    # Attribute nodes serving as a call's callee are handled by the Call
    # branch; the leftovers are bare references (aliasing a clock
    # function dodges the rule just as effectively as calling it).
    call_callees = {
        id(node.func) for node in ast.walk(tree) if isinstance(node, ast.Call)
    }
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and id(node) not in call_callees:
            name = _dotted(node)
            if name in _FORBIDDEN_CLOCK and not clock_allowed:
                violations.append(
                    LintViolation(
                        rule="CLK003",
                        path=path,
                        line=node.lineno,
                        message=(
                            f"wall-clock function `{name}` referenced "
                            "outside repro.android.clock; simulated "
                            "components take a SimClock"
                        ),
                    )
                )
            continue
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name in _FORBIDDEN_RNG:
            violations.append(
                LintViolation(
                    rule="RNG002",
                    path=path,
                    line=node.lineno,
                    message=(
                        f"process-level RNG `{name}` breaks study "
                        "determinism; draw from repro.crypto.rng.derive_rng"
                    ),
                )
            )
        elif name in ("random.Random", "Random") and not (
            node.args or node.keywords
        ):
            violations.append(
                LintViolation(
                    rule="RNG002",
                    path=path,
                    line=node.lineno,
                    message=(
                        "unseeded random.Random() breaks study determinism; "
                        "seed it or use repro.crypto.rng.derive_rng"
                    ),
                )
            )
        elif name in _FORBIDDEN_CLOCK and not clock_allowed:
            violations.append(
                LintViolation(
                    rule="CLK003",
                    path=path,
                    line=node.lineno,
                    message=(
                        f"wall-clock read `{name}` outside repro.android."
                        "clock; simulated components take a SimClock"
                    ),
                )
            )


# -- entry points --------------------------------------------------------------


def lint_source_report(source: str, path: str = "<string>") -> LintReport:
    """Lint one Python source text, honouring ``# lint: allow`` comments."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return LintReport(
            violations=[
                LintViolation(
                    rule="SYNTAX",
                    path=path,
                    line=exc.lineno or 0,
                    message=f"unparsable: {exc.msg}",
                )
            ]
        )
    violations: list[LintViolation] = []
    _check_registry_locks(tree, path, violations, source.splitlines())
    _check_forbidden_calls(tree, path, violations)
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return _apply_suppressions(
        violations, _collect_suppressions(source, path), source
    )


def lint_source(source: str, path: str = "<string>") -> list[LintViolation]:
    """Lint one Python source text (unsuppressed violations only)."""
    return lint_source_report(source, path).violations


def lint_file_report(path: str | Path) -> LintReport:
    path = Path(path)
    return lint_source_report(path.read_text(encoding="utf-8"), str(path))


def lint_file(path: str | Path) -> list[LintViolation]:
    return lint_file_report(path).violations


def lint_paths_report(paths: list[str | Path]) -> LintReport:
    """Lint files and/or directory trees (``*.py``, sorted walk)."""
    report = LintReport()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for file in sorted(entry.rglob("*.py")):
                report.extend(lint_file_report(file))
        else:
            report.extend(lint_file_report(entry))
    return report


def lint_paths(paths: list[str | Path]) -> list[LintViolation]:
    return lint_paths_report(paths).violations
