"""The per-app analysis driver: call graph + taint in one report."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.callgraph import CallGraph, DrmCallSite
from repro.analysis.taint import TaintAnalyzer, TaintFinding
from repro.android.packages import Apk

__all__ = ["ApkAnalysisReport", "analyze"]


@dataclass
class ApkAnalysisReport:
    """Everything the dataflow engine learned about one APK."""

    package: str
    graph: CallGraph
    call_sites: list[DrmCallSite] = field(default_factory=list)
    taint_findings: list[TaintFinding] = field(default_factory=list)

    @property
    def reachable_sites(self) -> list[DrmCallSite]:
        return [s for s in self.call_sites if s.reachable]

    @property
    def dead_sites(self) -> list[DrmCallSite]:
        return [s for s in self.call_sites if not s.reachable]

    def findings_by_cwe(self, cwe: str) -> list[TaintFinding]:
        return [f for f in self.taint_findings if f.cwe == cwe]

    def to_dict(self) -> dict[str, object]:
        return {
            "package": self.package,
            "methods": len(self.graph.nodes),
            "reachable_methods": len(self.graph.reachable_methods()),
            "drm_call_sites": {
                "reachable": len(self.reachable_sites),
                "dead": len(self.dead_sites),
            },
            "taint_findings": [
                {
                    "source": f.source,
                    "sink": f.sink,
                    "cwe": f.cwe,
                    "severity": f.severity,
                    "reachable": f.reachable,
                    "path": list(f.path),
                    "sink_call": f.sink_call,
                }
                for f in self.taint_findings
            ],
        }

    def render(self) -> str:
        lines = [
            f"package {self.package}: {len(self.graph.nodes)} methods, "
            f"{len(self.graph.reachable_methods())} reachable from "
            f"{len(self.graph.entry_points)} entry point(s)"
        ]
        lines.append(
            f"DRM call sites: {len(self.reachable_sites)} reachable, "
            f"{len(self.dead_sites)} dead code"
        )
        for site in self.call_sites:
            marker = "LIVE" if site.reachable else "dead"
            lines.append(f"  [{marker}] {site.caller} -> {site.callee}")
        if self.taint_findings:
            lines.append(f"taint findings: {len(self.taint_findings)}")
            for finding in self.taint_findings:
                lines.append(f"  {finding.describe()}")
        else:
            lines.append("taint findings: none")
        return "\n".join(lines)


def analyze(apk: Apk) -> ApkAnalysisReport:
    """Run the full static pipeline over one APK."""
    graph = CallGraph.from_apk(apk)
    return ApkAnalysisReport(
        package=apk.package,
        graph=graph,
        call_sites=graph.drm_call_sites(apk),
        taint_findings=TaintAnalyzer().run(apk, graph),
    )
