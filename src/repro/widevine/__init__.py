"""The simulated Widevine CDM: keybox, OEMCrypto key ladder, L1/L3
secret storage, HAL plugin and version arithmetic."""

from repro.widevine.cdm import CdmError, CdmSession, WidevineCdm
from repro.widevine.keybox import KEYBOX_MAGIC, KEYBOX_SIZE, Keybox, issue_keybox
from repro.widevine.oemcrypto import (
    DecryptResult,
    InsufficientSecurityError,
    InvalidSessionError,
    KeyNotLoadedError,
    NotProvisionedError,
    OemCrypto,
    OemCryptoError,
    SignatureFailureError,
)
from repro.widevine.plugin import WidevineHalPlugin
from repro.widevine.storage import (
    WHITEBOX_TABLE_MAGIC,
    InProcessSecretStore,
    SecretStore,
    TeeSecretStore,
    apply_whitebox_mask,
)
from repro.widevine.versions import CDM_CURRENT, CDM_NEXUS5, CdmVersion

__all__ = [
    "CdmError",
    "CdmSession",
    "WidevineCdm",
    "KEYBOX_MAGIC",
    "KEYBOX_SIZE",
    "Keybox",
    "issue_keybox",
    "DecryptResult",
    "InsufficientSecurityError",
    "InvalidSessionError",
    "KeyNotLoadedError",
    "NotProvisionedError",
    "OemCrypto",
    "OemCryptoError",
    "SignatureFailureError",
    "WidevineHalPlugin",
    "WHITEBOX_TABLE_MAGIC",
    "InProcessSecretStore",
    "SecretStore",
    "TeeSecretStore",
    "apply_whitebox_mask",
    "CDM_CURRENT",
    "CDM_NEXUS5",
    "CdmVersion",
]
