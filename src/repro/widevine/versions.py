"""CDM version arithmetic and well-known versions.

Q4 hinges on version/patch metadata: the Nexus 5 shipped CDM 3.1.0 and
stopped receiving updates with Android 6.0.1 (2016), while the current
CDM at the time of the study was 15.0 — so a revocation-enforcing
service compares the client's CDM version against a floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

__all__ = ["CdmVersion", "CDM_NEXUS5", "CDM_CURRENT", "SECURITY_LEVELS"]

SECURITY_LEVELS = ("L1", "L2", "L3")


@total_ordering
@dataclass(frozen=True)
class CdmVersion:
    """A Widevine CDM version (major.minor.patch)."""

    major: int
    minor: int = 0
    patch: int = 0

    @classmethod
    def parse(cls, raw: str) -> "CdmVersion":
        parts = raw.split(".")
        if not 1 <= len(parts) <= 3:
            raise ValueError(f"bad CDM version {raw!r}")
        try:
            numbers = [int(p) for p in parts]
        except ValueError:
            raise ValueError(f"bad CDM version {raw!r}") from None
        while len(numbers) < 3:
            numbers.append(0)
        return cls(*numbers)

    def __str__(self) -> str:
        return f"{self.major}.{self.minor}.{self.patch}"

    def _key(self) -> tuple[int, int, int]:
        return (self.major, self.minor, self.patch)

    def __lt__(self, other: "CdmVersion") -> bool:
        if not isinstance(other, CdmVersion):
            return NotImplemented
        return self._key() < other._key()


# The Nexus 5's last CDM (Android 6.0.1, 2016) — §IV-B "Outdated Device".
CDM_NEXUS5 = CdmVersion(3, 1, 0)
# Current CDM at the time of the study (2021).
CDM_CURRENT = CdmVersion(15, 0, 0)
