"""Where CDM secrets physically live — the L1 / L3 difference.

§IV-D's CVE-2021-0639 is, at bottom, a *storage* bug (CWE-922: insecure
storage of sensitive information): on L3 the keybox sits in the DRM
process's address space, protected only by a static whitebox-style XOR
mask whose constant table ships in the same module. On L1 the keybox
never leaves the TEE, so the same scan finds nothing.

Two stores implement the same interface:

- :class:`InProcessSecretStore` (L3) mirrors the keybox into a mapped
  region of the host process (``libwvdrmengine.so:.data``) with the
  mask table in ``.rodata`` — both scannable by instrumentation;
- :class:`TeeSecretStore` (L1) keeps everything in the trustlet object,
  mapping nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.crypto.rng import derive_rng
from repro.widevine.keybox import KEYBOX_SIZE, Keybox

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.android.process import Process

__all__ = [
    "SecretStore",
    "InProcessSecretStore",
    "TeeSecretStore",
    "WHITEBOX_TABLE_MAGIC",
    "apply_whitebox_mask",
]

# Marker preceding the whitebox mask table in .rodata; real whiteboxes
# are recognizable constant tables too (Arxan's were, per the
# widevine-l3-decryptor episode).
WHITEBOX_TABLE_MAGIC = b"WBX1"
_MASK_LEN = 16


def _whitebox_mask(module_seed: bytes) -> bytes:
    return derive_rng("wv-l3-whitebox", seed=module_seed).generate(_MASK_LEN)


def apply_whitebox_mask(device_key: bytes, mask: bytes) -> bytes:
    """The 'whitebox': a static XOR of the device key.

    Deliberately weak-but-invertible, standing in for the broken
    AES-128 whitebox of real L3 implementations (Buchanan 2019,
    Hadad 2020) — the attack recovers the mask from the module and
    inverts it, it does not magically read the key.
    """
    if len(mask) != _MASK_LEN:
        raise ValueError("mask must be 16 bytes")
    return bytes(k ^ m for k, m in zip(device_key, mask))


class SecretStore:
    """Interface: hold the keybox and the loaded device RSA key."""

    security_level = "L0"

    def install_keybox(self, keybox: Keybox) -> None:
        raise NotImplementedError

    def keybox(self) -> Keybox:
        raise NotImplementedError

    def device_key(self) -> bytes:
        return self.keybox().device_key


class InProcessSecretStore(SecretStore):
    """L3: secrets live in the host process's memory map."""

    security_level = "L3"

    def __init__(self, process: "Process", *, module_name: str = "libwvdrmengine.so"):
        self._process = process
        self._module_name = module_name
        self._mask = _whitebox_mask(module_seed=module_name.encode())
        self._data_region = process.map_region(f"{module_name}:.data", KEYBOX_SIZE + 32)
        rodata = process.map_region(f"{module_name}:.rodata", 64)
        rodata.write(0, WHITEBOX_TABLE_MAGIC + self._mask)
        self._keybox: Keybox | None = None

    def install_keybox(self, keybox: Keybox) -> None:
        self._keybox = keybox
        # Serialize with the device key masked: structure (ids, magic,
        # CRC recomputed over the masked body) stays scannable.
        masked = Keybox(
            device_id=keybox.device_id,
            device_key=apply_whitebox_mask(keybox.device_key, self._mask),
            key_data=keybox.key_data,
        )
        self._data_region.write(8, masked.serialize())

    def keybox(self) -> Keybox:
        if self._keybox is None:
            raise RuntimeError("no keybox installed")
        return self._keybox


class TeeSecretStore(SecretStore):
    """L1: secrets live inside the TEE trustlet, unmapped."""

    security_level = "L1"

    def __init__(self) -> None:
        self._keybox: Keybox | None = None

    def install_keybox(self, keybox: Keybox) -> None:
        self._keybox = keybox

    def keybox(self) -> Keybox:
        if self._keybox is None:
            raise RuntimeError("no keybox installed")
        return self._keybox


def simulate_tee_compromise(store: TeeSecretStore, process: "Process") -> None:
    """Model a Zhao-style TEE break (WideShears, BlackHat Asia 2021).

    Zhao exploited the QTEE trustlet to read the L1 keybox out of secure
    memory. We model the *outcome* of such an exploit: the trustlet's
    secret pages become readable to the attacker, i.e. the raw
    (unmasked — the TEE needs no whitebox) keybox appears in a mapped
    region that the standard memory scan then finds. This is the "our
    PoC works for both L1 and L3" path of §IV-D.
    """
    keybox = store.keybox()
    region = process.map_region("qsee:widevine-trustlet-dump", KEYBOX_SIZE + 16)
    region.write(8, keybox.serialize())
