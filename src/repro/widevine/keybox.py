"""The Widevine keybox — the root of trust of the key ladder.

§IV-D: "Keybox: 128-byte structure including a magic number and a
128-bit AES Device Key. This key is installed by the manufacturer, and
constitutes the root of trust (RoT)."

Layout used here (128 bytes, mirroring the public structure):

    offset   0  device_id   (32 bytes)
    offset  32  device_key  (16 bytes, AES-128)
    offset  48  key_data    (72 bytes, provisioning metadata)
    offset 120  magic       (4 bytes, b"kbox")
    offset 124  crc         (4 bytes, CRC-32 of bytes 0..123)

The magic+CRC trailer is what the paper's memory scan keys on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.crypto.rng import derive_rng

__all__ = ["Keybox", "KEYBOX_SIZE", "KEYBOX_MAGIC", "issue_keybox"]

KEYBOX_SIZE = 128
KEYBOX_MAGIC = b"kbox"
_DEVICE_ID_LEN = 32
_DEVICE_KEY_LEN = 16
_KEY_DATA_LEN = 72


@dataclass(frozen=True)
class Keybox:
    """A parsed keybox."""

    device_id: bytes
    device_key: bytes
    key_data: bytes

    def __post_init__(self) -> None:
        if len(self.device_id) != _DEVICE_ID_LEN:
            raise ValueError("device_id must be 32 bytes")
        if len(self.device_key) != _DEVICE_KEY_LEN:
            raise ValueError("device_key must be 16 bytes")
        if len(self.key_data) != _KEY_DATA_LEN:
            raise ValueError("key_data must be 72 bytes")

    def serialize(self) -> bytes:
        body = self.device_id + self.device_key + self.key_data + KEYBOX_MAGIC
        crc = zlib.crc32(body).to_bytes(4, "big")
        blob = body + crc
        assert len(blob) == KEYBOX_SIZE
        return blob

    @classmethod
    def parse(cls, blob: bytes) -> "Keybox":
        if len(blob) != KEYBOX_SIZE:
            raise ValueError(f"keybox must be {KEYBOX_SIZE} bytes, got {len(blob)}")
        if blob[120:124] != KEYBOX_MAGIC:
            raise ValueError("bad keybox magic")
        if zlib.crc32(blob[:124]).to_bytes(4, "big") != blob[124:]:
            raise ValueError("keybox CRC mismatch")
        return cls(
            device_id=blob[:32],
            device_key=blob[32:48],
            key_data=blob[48:120],
        )

    @classmethod
    def is_plausible(cls, blob: bytes) -> bool:
        """Structural check used by memory scanners."""
        try:
            cls.parse(blob)
        except ValueError:
            return False
        return True


def issue_keybox(serial: str, *, root_seed: bytes = b"widevine-factory") -> Keybox:
    """Mint the factory keybox for a device serial.

    Deterministic in (serial, root_seed): the provisioning authority
    can re-derive any device's key from its id — modelling the shared
    keybox database Google operates.
    """
    rng = derive_rng(f"keybox/{serial}", seed=root_seed)
    return Keybox(
        device_id=rng.generate(_DEVICE_ID_LEN),
        device_key=rng.generate(_DEVICE_KEY_LEN),
        key_data=rng.generate(_KEY_DATA_LEN),
    )
