"""The Widevine HAL plugin (``libwvdrmengine.so`` / ``libwvhidl.so``).

Loaded by the Media DRM Server for the Widevine UUID. Decides the
device's security level (L1 when a TEE is present — mandatory from
Android 7 — else L3), wires the OEMCrypto engine into the DRM process's
module map so instrumentation can find it, and exposes the CDM to the
HAL.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bmff.pssh import WIDEVINE_SYSTEM_ID
from repro.obs.bus import ObservabilityBus
from repro.widevine.cdm import WidevineCdm
from repro.widevine.keybox import Keybox
from repro.widevine.oemcrypto import OemCrypto
from repro.widevine.storage import InProcessSecretStore, TeeSecretStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.android.process import Process

__all__ = ["WidevineHalPlugin"]


class WidevineHalPlugin:
    """HAL-facing wrapper around one device's Widevine CDM."""

    uuid = WIDEVINE_SYSTEM_ID

    def __init__(
        self,
        *,
        process: "Process",
        keybox: Keybox,
        has_tee: bool,
        cdm_version: str,
        device_model: str,
        persistent_store: dict[str, bytes],
        serial: str,
        clock=None,
        engine_module_name: str = "libwvdrmengine.so",
        obs: ObservabilityBus | None = None,
    ):
        self.security_level = "L1" if has_tee else "L3"
        if has_tee:
            # L1: secrets live in the TEE; the DRM process loads a thin
            # liboemcrypto.so proxy whose calls cross into the trustlet.
            store: TeeSecretStore | InProcessSecretStore = TeeSecretStore()
        else:
            # L3: everything runs inside the DRM process — including the
            # whitebox-masked keybox (CWE-922, the seed of CVE-2021-0639).
            store = InProcessSecretStore(process, module_name=engine_module_name)
        store.install_keybox(keybox)

        self.oemcrypto = OemCrypto(
            store, serial=serial, cdm_version=cdm_version, clock=clock
        )
        self.cdm = WidevineCdm(
            self.oemcrypto,
            persistent_store=persistent_store,
            device_model=device_model,
            obs=obs,
        )

        process.load_module(engine_module_name, self)
        if has_tee:
            # §II-C: "whenever CDM is required, this library calls
            # liboemcrypto.so that sends the related requests to the
            # Widevine TEE trustlet" — so on L1 the _oecc surface shows
            # up under liboemcrypto.so.
            process.load_module("liboemcrypto.so", self.oemcrypto)
        else:
            # On L3 "no further component is involved": the _oecc
            # surface lives inside libwvdrmengine.so itself.
            process.load_module(f"{engine_module_name}#oemcrypto", self.oemcrypto)

    # -- properties exposed through MediaDrm.getPropertyString -------------

    def properties(self) -> dict[str, str]:
        return {
            "vendor": WidevineCdm.VENDOR,
            "version": self.cdm.cdm_version,
            "description": WidevineCdm.DESCRIPTION,
            "securityLevel": self.security_level,
            "systemId": self.uuid.hex(),
        }
