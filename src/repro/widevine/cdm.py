"""The Widevine CDM (the ``libwvdrmengine`` logic).

Offline licenses are supported: ``store_offline_license`` persists a
validated license and ``restore_keys`` replays it into a later session
(the license carries its own key-wrap material).

Sits between the Android Media DRM HAL and OEMCrypto: manages sessions,
builds/parses the provisioning and license protocol messages, persists
per-origin provisioning, and routes decryption. All cryptography is
delegated to :class:`repro.widevine.oemcrypto.OemCrypto`, so hooks on
the ``_oecc`` surface observe the complete key ladder.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.license_server.protocol import (
    LicenseRequest,
    LicenseResponse,
    ProtocolError,
    ProvisionRequest,
)
from repro.obs.bus import NULL_BUS, ObservabilityBus
from repro.widevine.oemcrypto import (
    DecryptResult,
    NotProvisionedError,
    OemCrypto,
    OemCryptoError,
)

__all__ = ["WidevineCdm", "CdmSession", "CdmError", "NotProvisionedError"]


class CdmError(Exception):
    """CDM-level failure (protocol, state)."""


@dataclass
class CdmSession:
    """CDM-side session state."""

    session_id: bytes
    origin: str
    pending_request_payload: bytes | None = None
    loaded_key_ids: list[bytes] = field(default_factory=list)


class WidevineCdm:
    """One CDM instance per device."""

    VENDOR = "Google"
    DESCRIPTION = "Widevine CDM (simulated)"

    def __init__(
        self,
        oemcrypto: OemCrypto,
        *,
        persistent_store: dict[str, bytes],
        device_model: str,
        obs: ObservabilityBus | None = None,
    ):
        self._oc = oemcrypto
        self._store = persistent_store
        self._device_model = device_model
        self.obs = obs if obs is not None else NULL_BUS
        self._sessions: dict[bytes, CdmSession] = {}
        # origin → oemcrypto session carrying the provisioning nonce.
        self._pending_provisioning: dict[str, bytes] = {}
        self._oc._oecc01_initialize()

    # -- properties --------------------------------------------------------

    @property
    def security_level(self) -> str:
        return self._oc.security_level

    @property
    def cdm_version(self) -> str:
        return self._oc.cdm_version

    def _storage_key(self, origin: str) -> str:
        return f"widevine/rsa/{origin}"

    def is_provisioned(self, origin: str) -> bool:
        return self._storage_key(origin) in self._store

    # -- sessions ------------------------------------------------------------

    def open_session(self, origin: str) -> bytes:
        session_id = self._oc._oecc05_open_session()
        self._sessions[session_id] = CdmSession(session_id=session_id, origin=origin)
        return session_id

    def close_session(self, session_id: bytes) -> None:
        self._oc._oecc06_close_session(session_id)
        self._sessions.pop(session_id, None)

    def _session(self, session_id: bytes) -> CdmSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise CdmError(f"unknown CDM session {session_id.hex()}") from None

    # -- provisioning ----------------------------------------------------------

    def get_provision_request(self, origin: str) -> bytes:
        """Build a keybox-authenticated provisioning request."""
        with self.obs.span("cdm.provision.request", origin=origin):
            oc_session = self._oc._oecc05_open_session()
            nonce = self._oc._oecc08_generate_nonce(oc_session)
            request = ProvisionRequest(
                device_id=self._oc._oecc13_get_device_id(),
                nonce=nonce,
                cdm_version=self.cdm_version,
                security_level=self.security_level,
            )
            payload = request.signing_payload()
            self._oc._oecc07_generate_derived_keys(oc_session, payload)
            request.mac = self._oc._oecc09_generate_signature(oc_session, payload)
            self._pending_provisioning[origin] = oc_session
            return request.serialize()

    def provide_provision_response(self, origin: str, response: bytes) -> None:
        """Unwrap the device RSA key and persist it for *origin*."""
        with self.obs.span("cdm.provision.load", origin=origin):
            oc_session = self._pending_provisioning.pop(origin, None)
            if oc_session is None:
                raise CdmError(f"no provisioning in flight for origin {origin!r}")
            try:
                storage_blob = self._oc._oecc21_rewrap_device_rsa_key(
                    oc_session, response
                )
            finally:
                self._oc._oecc06_close_session(oc_session)
            self._store[self._storage_key(origin)] = storage_blob
            self.obs.count("cdm.provisionings")

    def _load_rsa_key(self, origin: str) -> None:
        blob = self._store.get(self._storage_key(origin))
        if blob is None:
            raise NotProvisionedError(f"origin {origin!r} not provisioned")
        self._oc._oecc22_load_device_rsa_key(blob)

    # -- licensing ----------------------------------------------------------------

    def get_key_request(self, session_id: bytes, init_data: bytes) -> bytes:
        """Build a signed license request for PSSH *init_data*."""
        session = self._session(session_id)
        with self.obs.span("cdm.key_request", origin=session.origin):
            return self._get_key_request(session, session_id, init_data)

    def _get_key_request(
        self, session: CdmSession, session_id: bytes, init_data: bytes
    ) -> bytes:
        self._load_rsa_key(session.origin)
        nonce = self._oc._oecc08_generate_nonce(session_id)
        request = LicenseRequest(
            session_id=session_id,
            device_id=self._oc._oecc13_get_device_id(),
            rsa_fingerprint=self._oc._oecc25_get_rsa_public_fingerprint(),
            pssh_data=init_data,
            nonce=nonce,
            cdm_version=self.cdm_version,
            security_level=self.security_level,
            device_model=self._device_model,
        )
        payload = request.signing_payload()
        request.signature = self._oc._oecc23_generate_rsa_signature(
            session_id, payload
        )
        session.pending_request_payload = payload
        return request.serialize()

    def provide_key_response(self, session_id: bytes, response: bytes) -> list[bytes]:
        """Load a license; returns the key IDs now usable for decrypt.

        The key-ladder phase: unwrap the session key under the device
        RSA key, verify the license MAC, then load the content keys —
        all inside one ``cdm.load_keys`` span so hooks and the trace
        agree on where ladder time goes.
        """
        session = self._session(session_id)
        with self.obs.span("cdm.load_keys", origin=session.origin) as span:
            try:
                parsed = LicenseResponse.parse(response)
            except ProtocolError as exc:
                raise CdmError(f"bad license response: {exc}") from exc
            if parsed.session_id != session_id:
                raise CdmError("license is for another session")
            if session.pending_request_payload is None:
                raise CdmError("no license request in flight for this session")
            if parsed.derivation_context != session.pending_request_payload:
                raise CdmError("license derivation context mismatch")
            self._load_rsa_key(session.origin)
            loaded = self._oc._oecc10_load_keys(session_id, response)
            session.loaded_key_ids = loaded
            session.pending_request_payload = None
            span.set(keys=len(loaded))
            self.obs.count("cdm.licenses_loaded")
            return loaded

    # -- offline licenses ---------------------------------------------------------

    def store_offline_license(self, origin: str, license_bytes: bytes) -> bytes:
        """Persist a validated license for offline playback; returns the
        key-set id handed back to the app (MediaDrm's ``keySetId``)."""
        key_set_id = hashlib.sha256(license_bytes).digest()[:8]
        self._store[f"widevine/keyset/{origin}/{key_set_id.hex()}"] = license_bytes
        return key_set_id

    def restore_keys(self, session_id: bytes, key_set_id: bytes) -> list[bytes]:
        """Reload a persisted offline license into *session_id*.

        The license carries its own derivation context and session-key
        wrap, so the ladder replays without the original session: load
        the device RSA key, unwrap, verify the MAC, load the keys.
        """
        session = self._session(session_id)
        with self.obs.span("cdm.restore_keys", origin=session.origin):
            blob = self._store.get(
                f"widevine/keyset/{session.origin}/{key_set_id.hex()}"
            )
            if blob is None:
                raise CdmError(f"unknown key set {key_set_id.hex()}")
            self._load_rsa_key(session.origin)
            loaded = self._oc._oecc10_load_keys(session_id, blob)
            session.loaded_key_ids = loaded
            return loaded

    def remove_offline_license(self, origin: str, key_set_id: bytes) -> None:
        self._store.pop(f"widevine/keyset/{origin}/{key_set_id.hex()}", None)

    # -- content decryption -----------------------------------------------------------

    def decrypt(
        self,
        session_id: bytes,
        key_id: bytes,
        data: bytes,
        iv: bytes,
        subsamples: list[tuple[int, int]] | None = None,
        *,
        mode: str = "cenc",
    ) -> DecryptResult:
        self._session(session_id)
        if mode not in ("cenc", "cbcs"):
            raise CdmError(f"unsupported protection scheme {mode!r}")
        self._oc._oecc11_select_key(session_id, key_id)
        if mode == "cenc":
            return self._oc._oecc12_decrypt_ctr(session_id, data, iv, subsamples)
        return self._oc._oecc28_decrypt_cbcs(session_id, data, iv, subsamples)

    def resolve_secure_handle(self, handle: int, *, requester: str) -> bytes:
        return self._oc.resolve_secure_handle(handle, requester=requester)

    # -- generic (non-DASH) crypto ----------------------------------------------------

    def generic_encrypt(self, session_id: bytes, data: bytes, iv: bytes) -> bytes:
        self._session(session_id)
        return self._oc._oecc30_generic_encrypt(session_id, data, iv)

    def generic_decrypt(self, session_id: bytes, data: bytes, iv: bytes) -> bytes:
        self._session(session_id)
        return self._oc._oecc31_generic_decrypt(session_id, data, iv)

    def generic_sign(self, session_id: bytes, data: bytes) -> bytes:
        self._session(session_id)
        return self._oc._oecc32_generic_sign(session_id, data)

    def generic_verify(
        self, session_id: bytes, data: bytes, signature: bytes
    ) -> bool:
        self._session(session_id)
        return self._oc._oecc33_generic_verify(session_id, data, signature)
