"""OEMCrypto: the low-level Widevine crypto engine.

This is the layer the paper instruments: "we intercept and note any
function called within the CDM process linked to the Widevine protocol
(namely ``_oecc`` functions)". Method names therefore follow the real
library's ``_oeccNN`` export convention, and the Frida analogue hooks
them by prefix.

The key ladder implemented here is the one §IV-D reverse-engineers:

    keybox device key
      ├─ CMAC-derived provisioning keys  → install device RSA key
      └─ CMAC-derived storage key        → persist device RSA key
    device RSA key
      ├─ RSASSA-PSS                      → sign license requests
      └─ RSAES-OAEP                      → receive the session key
    session key
      └─ CMAC KDF (context = request)    → MAC keys + key-wrapping key
    content keys (AES-CBC-wrapped in the license)
      └─ AES-CTR (CENC)                  → media decryption

L1 and L3 run the *same* ladder; they differ only in where secrets live
(:mod:`repro.widevine.storage`) and in whether decrypted output stays in
secure memory.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
from dataclasses import dataclass, field

from repro.bmff.boxes import SencEntry, SubsampleRange
from repro.bmff.cenc import decrypt_sample as cenc_decrypt_sample
from repro.bmff.cenc import CencSample, decrypt_sample_cbcs
from repro.crypto.kdf import SessionKeys, derive_key, derive_session_keys
from repro.crypto.modes import cbc_decrypt, cbc_encrypt
from repro.crypto.rng import derive_rng
from repro.crypto.rsa import RsaPrivateKey, oaep_decrypt, pss_sign
from repro.license_server.protocol import (
    KeyControl,
    LicenseResponse,
    ProtocolError,
    ProvisionResponse,
)
from repro.widevine.storage import SecretStore

__all__ = [
    "OemCrypto",
    "OemCryptoError",
    "InvalidSessionError",
    "NotProvisionedError",
    "SignatureFailureError",
    "KeyNotLoadedError",
    "InsufficientSecurityError",
    "KeysExpiredError",
    "DecryptResult",
    "LABEL_PROVISIONING",
    "LABEL_PROV_MAC",
    "LABEL_STORAGE",
]

LABEL_PROVISIONING = b"PROVISIONING"
LABEL_PROV_MAC = b"PROVMAC"
LABEL_STORAGE = b"STORAGE"


class OemCryptoError(Exception):
    """Base for OEMCrypto failures."""


class InvalidSessionError(OemCryptoError):
    pass


class NotProvisionedError(OemCryptoError):
    """No device RSA key loaded — provisioning required first."""


class SignatureFailureError(OemCryptoError):
    pass


class KeyNotLoadedError(OemCryptoError):
    pass


class InsufficientSecurityError(OemCryptoError):
    """A key's control block demands a higher security level."""


class KeysExpiredError(OemCryptoError):
    """The license duration of the selected key has lapsed."""


@dataclass
class DecryptResult:
    """Output of a content decrypt call.

    On L3 the clear bytes come back into the caller's process (`data`);
    on L1 they stay in secure memory and only a `handle` is returned —
    which is why MovieStealer-style buffer theft fails there (§II-B).
    """

    secure: bool
    data: bytes | None = None
    handle: int | None = None


@dataclass
class _Session:
    session_id: bytes
    nonces: list[bytes] = field(default_factory=list)
    derived: SessionKeys | None = None
    # kid → (key, control, load timestamp)
    content_keys: dict[bytes, tuple[bytes, KeyControl, float]] = field(
        default_factory=dict
    )
    selected_key_id: bytes | None = None


class OemCrypto:
    """One OEMCrypto engine instance (one per device)."""

    def __init__(
        self,
        store: SecretStore,
        *,
        serial: str,
        cdm_version: str,
        clock=None,
    ):
        self._store = store
        self._serial = serial
        self._clock = clock  # duck-typed: anything with .now() -> float
        self.cdm_version = cdm_version
        self.security_level = store.security_level
        self._rng = derive_rng(f"oemcrypto/{serial}")
        self._sessions: dict[bytes, _Session] = {}
        self._rsa_key: RsaPrivateKey | None = None
        self._secure_buffers: dict[int, bytes] = {}
        self._next_handle = 1
        self._next_session = 1
        self.call_count = 0

    # -- internals ------------------------------------------------------

    def _session(self, session_id: bytes) -> _Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise InvalidSessionError(
                f"unknown session {session_id.hex()}"
            ) from None

    def _derived(self, session_id: bytes) -> SessionKeys:
        session = self._session(session_id)
        if session.derived is None:
            raise OemCryptoError("session has no derived keys")
        return session.derived

    def _now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    # -- lifecycle --------------------------------------------------------

    def _oecc01_initialize(self) -> bool:
        """Engine init; verifies the keybox is present and well-formed."""
        self.call_count += 1
        self._store.keybox()  # raises if absent
        return True

    def _oecc02_terminate(self) -> None:
        self.call_count += 1
        self._sessions.clear()
        self._secure_buffers.clear()

    def _oecc05_open_session(self) -> bytes:
        self.call_count += 1
        session_id = self._next_session.to_bytes(4, "big")
        self._next_session += 1
        self._sessions[session_id] = _Session(session_id=session_id)
        return session_id

    def _oecc06_close_session(self, session_id: bytes) -> None:
        self.call_count += 1
        self._sessions.pop(session_id, None)

    # -- keybox-rooted derivations ---------------------------------------

    def _oecc07_generate_derived_keys(
        self, session_id: bytes, context: bytes
    ) -> None:
        """Derive session keys directly from the keybox device key
        (pre-provisioning path, used to authenticate provisioning)."""
        self.call_count += 1
        session = self._session(session_id)
        session.derived = derive_session_keys(self._store.device_key(), context)

    def _oecc08_generate_nonce(self, session_id: bytes) -> bytes:
        self.call_count += 1
        session = self._session(session_id)
        nonce = self._rng.generate(16)
        session.nonces.append(nonce)
        return nonce

    def _oecc09_generate_signature(self, session_id: bytes, message: bytes) -> bytes:
        """HMAC-SHA256 under the session's client MAC key."""
        self.call_count += 1
        keys = self._derived(session_id)
        return hmac_mod.new(keys.mac_client, message, hashlib.sha256).digest()

    def _oecc13_get_device_id(self) -> bytes:
        self.call_count += 1
        return self._store.keybox().device_id

    # -- provisioning ------------------------------------------------------

    def _oecc21_rewrap_device_rsa_key(
        self, session_id: bytes, response_bytes: bytes
    ) -> bytes:
        """Verify and unwrap a provisioning response, returning a
        storage blob the CDM persists (RSA key re-encrypted under the
        keybox-derived storage key)."""
        self.call_count += 1
        session = self._session(session_id)
        try:
            response = ProvisionResponse.parse(response_bytes)
        except ProtocolError as exc:
            raise OemCryptoError(f"bad provisioning response: {exc}") from exc

        device_key = self._store.device_key()
        keybox = self._store.keybox()
        if response.device_id != keybox.device_id:
            raise OemCryptoError("provisioning response for another device")
        mac_key = derive_key(device_key, LABEL_PROV_MAC, response.device_id, 256)
        expected = hmac_mod.new(
            mac_key, response.signing_payload(), hashlib.sha256
        ).digest()
        if not hmac_mod.compare_digest(expected, response.mac):
            raise SignatureFailureError("provisioning response MAC mismatch")

        if not session.nonces:
            raise OemCryptoError("no provisioning nonce outstanding")
        nonce = session.nonces[-1]
        prov_key = derive_key(device_key, LABEL_PROVISIONING, nonce, 128)
        try:
            rsa_blob = cbc_decrypt(prov_key, response.iv, response.wrapped_rsa_key)
        except ValueError as exc:
            raise OemCryptoError(f"cannot unwrap device RSA key: {exc}") from exc

        storage_key = derive_key(device_key, LABEL_STORAGE, keybox.device_id, 128)
        storage_iv = self._rng.generate(16)
        return b"WVST" + storage_iv + cbc_encrypt(storage_key, storage_iv, rsa_blob)

    def _oecc22_load_device_rsa_key(self, storage_blob: bytes) -> None:
        """Load the provisioned RSA key from its storage blob."""
        self.call_count += 1
        if storage_blob[:4] != b"WVST":
            raise OemCryptoError("bad RSA storage blob")
        storage_iv = storage_blob[4:20]
        keybox = self._store.keybox()
        storage_key = derive_key(
            self._store.device_key(), LABEL_STORAGE, keybox.device_id, 128
        )
        try:
            rsa_blob = cbc_decrypt(storage_key, storage_iv, storage_blob[20:])
            self._rsa_key = RsaPrivateKey.import_secret(rsa_blob)
        except ValueError as exc:
            raise OemCryptoError(f"cannot load device RSA key: {exc}") from exc

    def _oecc25_get_rsa_public_fingerprint(self) -> bytes:
        self.call_count += 1
        if self._rsa_key is None:
            raise NotProvisionedError("device RSA key not loaded")
        return self._rsa_key.public.fingerprint()

    def _oecc23_generate_rsa_signature(
        self, session_id: bytes, message: bytes
    ) -> bytes:
        """RSASSA-PSS over *message* with the device RSA key."""
        self.call_count += 1
        self._session(session_id)
        if self._rsa_key is None:
            raise NotProvisionedError("device RSA key not loaded")
        return pss_sign(self._rsa_key, message, rng=self._rng)

    def _oecc24_derive_keys_from_session_key(
        self, session_id: bytes, wrapped_session_key: bytes, context: bytes
    ) -> None:
        """Unwrap the session key (RSA-OAEP) and run the CMAC KDF."""
        self.call_count += 1
        session = self._session(session_id)
        if self._rsa_key is None:
            raise NotProvisionedError("device RSA key not loaded")
        try:
            session_key = oaep_decrypt(self._rsa_key, wrapped_session_key)
        except ValueError as exc:
            raise OemCryptoError(f"cannot unwrap session key: {exc}") from exc
        if len(session_key) != 16:
            raise OemCryptoError("session key has wrong length")
        session.derived = derive_session_keys(session_key, context)

    # -- license loading and content decryption ----------------------------

    def _oecc10_load_keys(self, session_id: bytes, license_bytes: bytes) -> list[bytes]:
        """Verify a license and load its content keys into the session.

        Returns the loaded key IDs.
        """
        self.call_count += 1
        session = self._session(session_id)
        try:
            license_msg = LicenseResponse.parse(license_bytes)
        except ProtocolError as exc:
            raise OemCryptoError(f"bad license: {exc}") from exc

        self._oecc24_derive_keys_from_session_key(
            session_id, license_msg.wrapped_session_key, license_msg.derivation_context
        )
        keys = self._derived(session_id)
        expected = hmac_mod.new(
            keys.mac_server, license_msg.signing_payload(), hashlib.sha256
        ).digest()
        if not hmac_mod.compare_digest(expected, license_msg.mac):
            raise SignatureFailureError("license MAC mismatch")

        loaded: list[bytes] = []
        for wrapped in license_msg.keys:
            try:
                content_key = cbc_decrypt(
                    keys.encryption, wrapped.iv, wrapped.wrapped_key
                )
            except ValueError as exc:
                raise OemCryptoError(f"cannot unwrap content key: {exc}") from exc
            if len(content_key) != 16:
                raise OemCryptoError("content key has wrong length")
            required = wrapped.control.require_security_level
            if required == "L1" and self.security_level != "L1":
                # Control block forbids loading this key at L3.
                continue
            session.content_keys[wrapped.key_id] = (
                content_key,
                wrapped.control,
                self._now(),
            )
            loaded.append(wrapped.key_id)
        return loaded

    def _oecc11_select_key(self, session_id: bytes, key_id: bytes) -> None:
        self.call_count += 1
        session = self._session(session_id)
        if key_id not in session.content_keys:
            raise KeyNotLoadedError(f"key {key_id.hex()} not loaded")
        session.selected_key_id = key_id

    def _usable_selected_key(self, session_id: bytes) -> bytes:
        """The selected content key, after control-block enforcement."""
        session = self._session(session_id)
        if session.selected_key_id is None:
            raise KeyNotLoadedError("no key selected")
        content_key, control, loaded_at = session.content_keys[
            session.selected_key_id
        ]
        if control.require_security_level == "L1" and self.security_level != "L1":
            raise InsufficientSecurityError("key requires L1")
        if (
            control.license_duration_s is not None
            and self._now() > loaded_at + control.license_duration_s
        ):
            raise KeysExpiredError(
                f"license expired "
                f"{self._now() - loaded_at - control.license_duration_s:.0f}s ago"
            )
        return content_key

    def _emit_clear(self, clear: bytes) -> DecryptResult:
        if self.security_level == "L1":
            handle = self._next_handle
            self._next_handle += 1
            self._secure_buffers[handle] = clear
            return DecryptResult(secure=True, handle=handle)
        return DecryptResult(secure=False, data=clear)

    def _oecc12_decrypt_ctr(
        self,
        session_id: bytes,
        data: bytes,
        iv: bytes,
        subsamples: list[tuple[int, int]] | None = None,
    ) -> DecryptResult:
        """CENC AES-CTR ('cenc') decrypt with the selected key."""
        self.call_count += 1
        content_key = self._usable_selected_key(session_id)
        entry = SencEntry(
            iv=iv,
            subsamples=[SubsampleRange(c, p) for c, p in (subsamples or [])],
        )
        clear = cenc_decrypt_sample(CencSample(data=data, entry=entry), content_key)
        return self._emit_clear(clear)

    def _oecc28_decrypt_cbcs(
        self,
        session_id: bytes,
        data: bytes,
        iv: bytes,
        subsamples: list[tuple[int, int]] | None = None,
        pattern: tuple[int, int] = (1, 9),
    ) -> DecryptResult:
        """CENC AES-CBC pattern ('cbcs') decrypt with the selected key."""
        self.call_count += 1
        content_key = self._usable_selected_key(session_id)
        entry = SencEntry(
            iv=iv,
            subsamples=[SubsampleRange(c, p) for c, p in (subsamples or [])],
        )
        clear = decrypt_sample_cbcs(
            CencSample(data=data, entry=entry), content_key, pattern=pattern
        )
        return self._emit_clear(clear)

    def resolve_secure_handle(self, handle: int, *, requester: str) -> bytes:
        """Secure-path buffer access, granted only to the secure decoder.

        Not an ``_oecc`` export: instrumentation hooking the OEMCrypto
        surface never sees these bytes, matching L1's protected output
        path.
        """
        if requester != "secure-decoder":
            raise PermissionError("secure buffers are only mapped to the decoder")
        try:
            return self._secure_buffers.pop(handle)
        except KeyError:
            raise OemCryptoError(f"unknown secure buffer {handle}") from None

    # -- generic (non-DASH) crypto API --------------------------------------

    def _oecc30_generic_encrypt(
        self, session_id: bytes, data: bytes, iv: bytes
    ) -> bytes:
        self.call_count += 1
        keys = self._derived(session_id)
        return cbc_encrypt(keys.generic_encryption, iv, data)

    def _oecc31_generic_decrypt(
        self, session_id: bytes, data: bytes, iv: bytes
    ) -> bytes:
        self.call_count += 1
        keys = self._derived(session_id)
        try:
            return cbc_decrypt(keys.generic_encryption, iv, data)
        except ValueError as exc:
            raise OemCryptoError(f"generic decrypt failed: {exc}") from exc

    def _oecc32_generic_sign(self, session_id: bytes, data: bytes) -> bytes:
        self.call_count += 1
        keys = self._derived(session_id)
        return hmac_mod.new(keys.generic_signing, data, hashlib.sha256).digest()

    def _oecc33_generic_verify(
        self, session_id: bytes, data: bytes, signature: bytes
    ) -> bool:
        self.call_count += 1
        keys = self._derived(session_id)
        expected = hmac_mod.new(keys.generic_signing, data, hashlib.sha256).digest()
        return hmac_mod.compare_digest(expected, signature)

    # -- introspection -------------------------------------------------------

    def oecc_function_names(self) -> list[str]:
        """All exported ``_oecc`` entry points (what a hooker enumerates)."""
        return sorted(
            name
            for name in dir(self)
            if name.startswith("_oecc") and callable(getattr(self, name))
        )
