"""The simulated network: name resolution, TLS handshakes, clients.

``Network`` maps hostnames to :class:`~repro.net.server.VirtualServer`
instances and delivers requests over a modelled TLS handshake. An
:class:`~repro.net.proxy.InterceptingProxy` can be interposed for a
device, after which every connection from that device terminates at the
proxy first — succeeding only if the device trusts the proxy CA *and*
the app's pinning is defeated, the two conditions the paper's
methodology engineers with Burp + Frida.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.net.http import HttpRequest, HttpResponse
from repro.net.server import VirtualServer
from repro.net.tls import PinSet, TlsError, TrustStore
from repro.obs.bus import NULL_BUS, ObservabilityBus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.proxy import InterceptingProxy

__all__ = ["Network", "HttpClient"]


class Network:
    """Hostname → server registry plus optional per-client proxying.

    The registry is shared by every device and backend on the simulated
    network, and the parallel study runner resolves hosts from many
    worker threads at once — registration and lookup are serialised
    behind a lock (lookups return the server object, whose handling is
    per-service state touched by one study worker at a time).
    """

    def __init__(self) -> None:
        self._servers: dict[str, VirtualServer] = {}
        self._lock = threading.Lock()

    def register(self, server: VirtualServer) -> None:
        with self._lock:
            if server.hostname in self._servers:
                raise ValueError(f"host already registered: {server.hostname}")
            self._servers[server.hostname] = server

    def server_for(self, hostname: str) -> VirtualServer:
        with self._lock:
            try:
                return self._servers[hostname]
            except KeyError:
                raise LookupError(f"unknown host {hostname!r}") from None

    def deliver(self, request: HttpRequest) -> HttpResponse:
        """Origin-side delivery (no client TLS policy applied)."""
        return self.server_for(request.parsed_url.host).handle(request)


class HttpClient:
    """An app's HTTP stack: trust store + optional pin set + proxy.

    The trust store belongs to the *device*, the pin set to the *app* —
    mirroring Android, where a user CA can be installed device-wide but
    pinning is app code.
    """

    def __init__(
        self,
        network: Network,
        *,
        trust_store: TrustStore | None = None,
        pin_set: PinSet | None = None,
        obs: ObservabilityBus | None = None,
    ):
        self.network = network
        self.trust_store = trust_store or TrustStore()
        self.pin_set = pin_set or PinSet()
        self.proxy: "InterceptingProxy | None" = None
        self.obs = obs if obs is not None else NULL_BUS

    def set_proxy(self, proxy: "InterceptingProxy | None") -> None:
        self.proxy = proxy

    def request(self, request: HttpRequest) -> HttpResponse:
        parsed = request.parsed_url
        # Stamp the sender's bus on the request so the origin (and any
        # interposed proxy) span under the same tree.
        request.obs = self.obs
        with self.obs.span(
            "http.request", method=request.method, host=parsed.host, path=parsed.path
        ):
            self.obs.count("http.requests")
            self.obs.count("http.bytes_out", len(request.body))
            response = self._deliver(request, parsed.host)
            self.obs.count("http.bytes_in", len(response.body))
            self.obs.count(f"http.status.{response.status}")
        return response

    def _deliver(self, request: HttpRequest, host: str) -> HttpResponse:
        if self.proxy is not None:
            # The proxy terminates TLS with its own certificate for the
            # requested host; the client validates that certificate.
            cert = self.proxy.certificate_for(host)
            self.trust_store.verify(cert, host)
            self.pin_set.verify(host, cert)
            return self.proxy.forward(request)
        server = self.network.server_for(host)
        self.trust_store.verify(server.certificate, host)
        self.pin_set.verify(host, server.certificate)
        return server.handle(request)

    def get(self, url: str, headers: dict[str, str] | None = None) -> HttpResponse:
        return self.request(HttpRequest("GET", url, headers=headers or {}))

    def post(
        self, url: str, body: bytes, headers: dict[str, str] | None = None
    ) -> HttpResponse:
        return self.request(
            HttpRequest("POST", url, headers=headers or {}, body=body)
        )
