"""CDN server: stores packaged segments and serves them by URI.

Assets are registered under opaque paths; optionally a signed token is
required (modelling expiring CDN URLs), though — matching reality — the
token only gates *delivery*, not *readability* of what is delivered.
"""

from __future__ import annotations

import hashlib

from repro.net.http import HttpRequest, HttpResponse
from repro.net.server import VirtualServer
from repro.obs.bus import NULL_BUS

__all__ = ["CdnServer"]


class CdnServer(VirtualServer):
    """A content delivery origin."""

    def __init__(self, hostname: str, *, require_token: bool = False):
        super().__init__(hostname)
        self._blobs: dict[str, bytes] = {}
        self._require_token = require_token
        self._token_secret = b"cdn-token/" + hostname.encode()
        self.route("/", self._serve)

    def put(self, path: str, blob: bytes) -> str:
        """Store *blob* under *path*; returns the absolute URL."""
        if not path.startswith("/"):
            raise ValueError("CDN path must start with '/'")
        self._blobs[path] = blob
        return f"https://{self.hostname}{path}"

    def url_for(self, path: str) -> str:
        if path not in self._blobs:
            raise KeyError(f"no asset at {path}")
        url = f"https://{self.hostname}{path}"
        if self._require_token:
            url += f"?token={self.token_for(path)}"
        return url

    def token_for(self, path: str) -> str:
        return hashlib.sha256(self._token_secret + path.encode()).hexdigest()[:16]

    def _serve(self, request: HttpRequest) -> HttpResponse:
        url = request.parsed_url
        bus = request.obs if request.obs is not None else NULL_BUS
        blob = self._blobs.get(url.path)
        if blob is None:
            return HttpResponse.not_found(f"no asset at {url.path}")
        if self._require_token and url.query.get("token") != self.token_for(url.path):
            bus.count("cdn.token_rejections")
            return HttpResponse.forbidden("missing or invalid CDN token")
        bus.count("cdn.segments_served")
        bus.count("cdn.bytes_served", len(blob))
        return HttpResponse(
            status=200,
            headers={"content-type": "application/octet-stream"},
            body=blob,
        )
