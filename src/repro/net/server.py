"""Virtual HTTPS servers with path routing."""

from __future__ import annotations

from typing import Callable

from repro.net.http import HttpRequest, HttpResponse
from repro.net.tls import Certificate, issue_certificate
from repro.obs.bus import NULL_BUS

__all__ = ["VirtualServer", "RouteHandler"]

RouteHandler = Callable[[HttpRequest], HttpResponse]


class VirtualServer:
    """One origin on the simulated network.

    Routes are matched by longest registered prefix, so a server can
    expose ``/segments/`` and a more specific ``/segments/special``.
    """

    def __init__(self, hostname: str, *, issuer: str = "GlobalRootCA"):
        self.hostname = hostname
        self.certificate: Certificate = issue_certificate(
            hostname, issuer, seed=b"server-key"
        )
        self._routes: dict[str, RouteHandler] = {}
        self.request_log: list[HttpRequest] = []

    def route(self, prefix: str, handler: RouteHandler) -> None:
        """Register *handler* for paths starting with *prefix*."""
        if not prefix.startswith("/"):
            raise ValueError("route prefix must start with '/'")
        self._routes[prefix] = handler

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Dispatch a request to the longest matching route.

        The single server-side observation seam: every origin — license
        server, CDN, app backend — dispatches through here, so one span
        covers them all, nested under the sender's ``http.request`` via
        the bus riding on the request.
        """
        bus = request.obs if request.obs is not None else NULL_BUS
        with bus.span("server.handle", host=self.hostname) as span:
            self.request_log.append(request)
            path = request.parsed_url.path
            best: str | None = None
            for prefix in self._routes:
                if path.startswith(prefix) and (
                    best is None or len(prefix) > len(best)
                ):
                    best = prefix
            if best is None:
                return HttpResponse.not_found(f"no route for {path}")
            response = self._routes[best](request)
            span.set(status=response.status)
            return response
