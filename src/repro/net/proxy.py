"""Intercepting TLS proxy — the study's Burp Suite analogue.

The proxy mints a certificate for whatever host the client asks for,
signed by its own CA. If the device trusts that CA and the app's pins
are defeated, the handshake succeeds and every request/response pair is
recorded as a :class:`Flow` the audit can mine for media URIs and MPD
manifests (§IV-B "Content Protection").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.http import HttpRequest, HttpResponse
from repro.net.network import Network
from repro.net.tls import Certificate, issue_certificate
from repro.obs.bus import NULL_BUS

__all__ = ["Flow", "InterceptingProxy"]


@dataclass
class Flow:
    """One captured request/response exchange."""

    host: str
    request: HttpRequest
    response: HttpResponse


class InterceptingProxy:
    """A man-in-the-middle proxy with its own CA.

    Besides passive capture, the proxy supports *active* tampering via
    ``response_hook`` — used to show that the DRM protocol's own
    integrity (license MACs, request signatures) holds even once TLS is
    fully broken: a tampered license dies at the CDM, not silently.
    """

    CA_NAME = "WideLeakProxyCA"

    def __init__(self, network: Network):
        self._network = network
        self._certificates: dict[str, Certificate] = {}
        self.flows: list[Flow] = []
        # Optional (request, response) -> response transformer.
        self.response_hook = None

    def certificate_for(self, host: str) -> Certificate:
        """On-the-fly certificate for *host*, signed by the proxy CA."""
        if host not in self._certificates:
            self._certificates[host] = issue_certificate(
                host, self.CA_NAME, seed=b"proxy-key"
            )
        return self._certificates[host]

    def forward(self, request: HttpRequest) -> HttpResponse:
        """Relay to the real origin, recording (and optionally
        transforming) the exchange."""
        bus = request.obs if request.obs is not None else NULL_BUS
        with bus.span(
            "proxy.forward", host=request.parsed_url.host
        ) as span:
            response = self._network.deliver(request)
            if self.response_hook is not None:
                response = self.response_hook(request, response)
                span.event("proxy.tamper")
            self.flows.append(
                Flow(host=request.parsed_url.host, request=request, response=response)
            )
            bus.count("proxy.flows")
            bus.count("proxy.bytes_captured", len(response.body))
        return response

    def flows_for(self, host_substring: str) -> list[Flow]:
        return [f for f in self.flows if host_substring in f.host]

    def clear(self) -> None:
        self.flows.clear()
