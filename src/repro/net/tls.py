"""Simulated TLS: certificates, pinning, handshake verdicts.

The model keeps exactly the properties the study depends on:

- every server presents a certificate binding its hostname to a public
  key; clients verify the chain against a trust store;
- apps may additionally *pin* the expected public-key fingerprint
  (certificate pinning / "SSL pinning"), which defeats an intercepting
  proxy whose CA the device trusts;
- the Frida repinning hook (:mod:`repro.instrumentation.hooks`) disables
  the pin check at the client object — after which interception works,
  reproducing the paper's finding that pinning stopped none of the ten
  apps from being intercepted.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["Certificate", "TrustStore", "PinSet", "TlsError", "issue_certificate"]


class TlsError(Exception):
    """Handshake failure (untrusted chain or pin mismatch)."""


@dataclass(frozen=True)
class Certificate:
    """An X.509 stand-in: hostname, public key bytes, issuer name."""

    hostname: str
    public_key: bytes
    issuer: str

    def spki_fingerprint(self) -> bytes:
        """SHA-256 over the public key — what HPKP-style pins commit to."""
        return hashlib.sha256(self.public_key).digest()


def issue_certificate(hostname: str, issuer: str, seed: bytes) -> Certificate:
    """Mint a deterministic certificate for *hostname* signed by *issuer*."""
    public_key = hashlib.sha256(b"pub/" + seed + hostname.encode()).digest()
    return Certificate(hostname=hostname, public_key=public_key, issuer=issuer)


@dataclass
class TrustStore:
    """The device's set of trusted certificate authorities."""

    trusted_issuers: set[str] = field(default_factory=lambda: {"GlobalRootCA"})

    def verify(self, certificate: Certificate, hostname: str) -> None:
        if certificate.hostname != hostname:
            raise TlsError(
                f"certificate hostname {certificate.hostname!r} != {hostname!r}"
            )
        if certificate.issuer not in self.trusted_issuers:
            raise TlsError(f"untrusted issuer {certificate.issuer!r}")

    def add_issuer(self, issuer: str) -> None:
        """Install an extra CA (e.g. the proxy's CA on a test device)."""
        self.trusted_issuers.add(issuer)


@dataclass
class PinSet:
    """An app's certificate pins, host → expected SPKI fingerprint.

    ``enabled`` is the switch the repinning hook flips: real Frida
    scripts overwrite the ``X509TrustManager``/OkHttp ``CertificatePinner``
    so the check always passes; we model that as disabling the pin set.
    """

    pins: dict[str, bytes] = field(default_factory=dict)
    enabled: bool = True

    def pin(self, host: str, certificate: Certificate) -> None:
        self.pins[host] = certificate.spki_fingerprint()

    def verify(self, host: str, certificate: Certificate) -> None:
        if not self.enabled:
            return
        expected = self.pins.get(host)
        if expected is None:
            return
        if certificate.spki_fingerprint() != expected:
            raise TlsError(f"certificate pin mismatch for {host!r}")
