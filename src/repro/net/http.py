"""Minimal HTTP message model for the simulated network.

Requests and responses are plain dataclasses; there is no socket layer —
delivery happens through :class:`repro.net.network.Network`, which is
where TLS, pinning and the intercepting proxy live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlparse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.bus import ObservabilityBus

__all__ = ["HttpRequest", "HttpResponse", "Url", "parse_url"]


@dataclass(frozen=True)
class Url:
    """Decomposed URL."""

    scheme: str
    host: str
    path: str
    query: dict[str, str]

    def __str__(self) -> str:
        query = "&".join(f"{k}={v}" for k, v in sorted(self.query.items()))
        return f"{self.scheme}://{self.host}{self.path}" + (
            f"?{query}" if query else ""
        )


def parse_url(raw: str) -> Url:
    """Parse an absolute URL; raises ValueError when host is missing."""
    parsed = urlparse(raw)
    if not parsed.netloc:
        raise ValueError(f"URL has no host: {raw!r}")
    query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
    return Url(
        scheme=parsed.scheme or "https",
        host=parsed.netloc,
        path=parsed.path or "/",
        query=query,
    )


@dataclass
class HttpRequest:
    """One HTTP request.

    ``obs`` carries the sender's observability bus across the
    client/server seam (set by :class:`~repro.net.network.HttpClient`),
    so server-side spans nest under the client's request span without
    any thread-local ambient state. It is transport metadata, not part
    of the message: excluded from equality and repr.
    """

    method: str
    url: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    obs: "ObservabilityBus | None" = field(
        default=None, compare=False, repr=False
    )

    @property
    def parsed_url(self) -> Url:
        return parse_url(self.url)


@dataclass
class HttpResponse:
    """One HTTP response."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @classmethod
    def not_found(cls, detail: str = "not found") -> "HttpResponse":
        return cls(status=404, body=detail.encode())

    @classmethod
    def forbidden(cls, detail: str = "forbidden") -> "HttpResponse":
        return cls(status=403, body=detail.encode())

    @classmethod
    def bad_request(cls, detail: str = "bad request") -> "HttpResponse":
        return cls(status=400, body=detail.encode())
