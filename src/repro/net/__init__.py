"""Simulated network substrate: HTTP, TLS with pinning, virtual servers,
an intercepting proxy (Burp analogue) and a CDN."""

from repro.net.cdn import CdnServer
from repro.net.http import HttpRequest, HttpResponse, Url, parse_url
from repro.net.network import HttpClient, Network
from repro.net.proxy import Flow, InterceptingProxy
from repro.net.server import VirtualServer
from repro.net.tls import (
    Certificate,
    PinSet,
    TlsError,
    TrustStore,
    issue_certificate,
)

__all__ = [
    "CdnServer",
    "HttpRequest",
    "HttpResponse",
    "Url",
    "parse_url",
    "HttpClient",
    "Network",
    "Flow",
    "InterceptingProxy",
    "VirtualServer",
    "Certificate",
    "PinSet",
    "TlsError",
    "TrustStore",
    "issue_certificate",
]
