"""Dynamic instrumentation — the study's Frida analogue.

"We leverage Frida to hook CDM calls" (§IV-B): a session attaches to a
process, enumerates its loaded modules, and intercepts functions by
name pattern, observing arguments and return values. Hooks attach to
the *DRM process*, not the app — which is why the apps' anti-debugging
and SafetyNet checks never fire (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.android.device import AndroidDevice
from repro.android.process import Process

__all__ = ["CallRecord", "FridaSession", "Hook"]


@dataclass
class CallRecord:
    """One intercepted call."""

    module: str
    function: str
    args: tuple[Any, ...]
    kwargs: dict[str, Any]
    retval: Any = None
    error: str | None = None


@dataclass
class Hook:
    """One installed interception point."""

    module: str
    function: str
    target: object
    original: Callable[..., Any]
    on_enter: Callable[[CallRecord], None] | None = None
    on_leave: Callable[[CallRecord], None] | None = None


class FridaSession:
    """An instrumentation session attached to one process."""

    def __init__(self, device: AndroidDevice, process: Process):
        self.device = device
        self.process = process
        self.records: list[CallRecord] = []
        self._hooks: list[Hook] = []
        self._attached = True
        process.attached_instruments.append("frida")

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def attach(cls, device: AndroidDevice, process_name: str) -> "FridaSession":
        """Attach to a process by name (requires a rooted device)."""
        if not device.rooted:
            raise PermissionError(
                "attaching to another process requires a rooted device"
            )
        return cls(device, device.find_process(process_name))

    def detach(self) -> None:
        """Remove every hook and release the process."""
        for hook in reversed(self._hooks):
            try:
                delattr(hook.target, hook.function)
            except AttributeError:
                pass
        self._hooks.clear()
        if self._attached:
            self.process.attached_instruments.remove("frida")
            self._attached = False

    def __enter__(self) -> "FridaSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    # -- hooking ----------------------------------------------------------------

    def enumerate_module_functions(self, pattern: str = "") -> list[tuple[str, str]]:
        """(module, function) pairs whose function name starts with
        *pattern*, across all loaded modules."""
        found: list[tuple[str, str]] = []
        for module_name, implementation in self.process.modules.items():
            for attr in dir(implementation):
                if pattern and not attr.startswith(pattern):
                    continue
                if callable(getattr(implementation, attr, None)):
                    found.append((module_name, attr))
        return sorted(found)

    def hook_function(
        self,
        module_name: str,
        function_name: str,
        *,
        on_enter: Callable[[CallRecord], None] | None = None,
        on_leave: Callable[[CallRecord], None] | None = None,
    ) -> Hook:
        """Intercept one function of one module."""
        if not self._attached:
            raise RuntimeError("session is detached")
        implementation = self.process.module(module_name)
        original = getattr(implementation, function_name)
        if not callable(original):
            raise TypeError(f"{module_name}:{function_name} is not callable")

        records = self.records

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            record = CallRecord(
                module=module_name,
                function=function_name,
                args=args,
                kwargs=dict(kwargs),
            )
            if on_enter is not None:
                on_enter(record)
            try:
                record.retval = original(*args, **kwargs)
            except Exception as exc:
                record.error = f"{type(exc).__name__}: {exc}"
                records.append(record)
                if on_leave is not None:
                    on_leave(record)
                raise
            records.append(record)
            if on_leave is not None:
                on_leave(record)
            return record.retval

        setattr(implementation, function_name, wrapper)
        hook = Hook(
            module=module_name,
            function=function_name,
            target=implementation,
            original=original,
            on_enter=on_enter,
            on_leave=on_leave,
        )
        self._hooks.append(hook)
        return hook

    def hook_pattern(
        self,
        pattern: str,
        *,
        on_enter: Callable[[CallRecord], None] | None = None,
        on_leave: Callable[[CallRecord], None] | None = None,
    ) -> list[Hook]:
        """Hook every module function starting with *pattern*.

        Objects loaded under several module aliases are hooked once,
        under the first alias seen.
        """
        hooks: list[Hook] = []
        seen_targets: set[int] = set()
        for module_name, function_name in self.enumerate_module_functions(pattern):
            implementation = self.process.module(module_name)
            key = id(implementation)
            if key in seen_targets and any(
                h.function == function_name and h.target is implementation
                for h in hooks
            ):
                continue
            seen_targets.add(key)
            hooks.append(
                self.hook_function(
                    module_name,
                    function_name,
                    on_enter=on_enter,
                    on_leave=on_leave,
                )
            )
        return hooks

    # -- convenience ---------------------------------------------------------------

    def calls_to(self, function_prefix: str) -> list[CallRecord]:
        return [r for r in self.records if r.function.startswith(function_prefix)]

    def modules_with_calls(self) -> set[str]:
        return {r.module for r in self.records}

    def clear_records(self) -> None:
        self.records.clear()
