"""Stock hook scripts — the repository's equivalents of the published
Frida scripts.

- :class:`OeccMonitor` automates OTT-app monitoring: it hooks every
  ``_oecc*`` function in the DRM process and classifies the security
  level in use from *where* the calls land (liboemcrypto.so ⇒ L1;
  everything inside libwvdrmengine.so ⇒ L3) — §IV-B verbatim;
- :func:`disable_ssl_pinning` is the SSL-repinning script: it defeats
  an app's certificate pins so the intercepting proxy can observe its
  traffic;
- the monitor also dumps the input/output buffers of selected
  functions ("to allow more in-depth analysis, we dumped input and
  output buffers related to various functions, including non DASH
  mode").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.instrumentation.frida import CallRecord, FridaSession
from repro.net.network import HttpClient
from repro.obs.bus import NULL_BUS, ObservabilityBus

__all__ = ["BufferDump", "OeccMonitor", "disable_ssl_pinning"]


@dataclass(frozen=True)
class BufferDump:
    """One dumped buffer from a hooked call."""

    function: str
    direction: str  # "in" | "out"
    data: bytes


@dataclass
class OeccMonitor:
    """Hooks the whole ``_oecc`` surface and aggregates observations."""

    session: FridaSession
    dumps: list[BufferDump] = field(default_factory=list)
    obs: ObservabilityBus = field(default=NULL_BUS, repr=False, compare=False)
    _installed: bool = False
    _flushed: int = field(default=0, repr=False, compare=False)

    # Functions whose byte buffers the study dumps for offline analysis.
    _DUMP_IN = {
        "_oecc07_generate_derived_keys": (1,),  # derivation context
        "_oecc10_load_keys": (1,),  # license response bytes
        "_oecc21_rewrap_device_rsa_key": (1,),  # provisioning response
        "_oecc24_derive_keys_from_session_key": (1, 2),  # wrapped key + context
        "_oecc30_generic_encrypt": (1,),
        "_oecc31_generic_decrypt": (1,),
    }
    _DUMP_OUT = {
        "_oecc31_generic_decrypt",  # non-DASH clear output (Netflix URIs)
        "_oecc30_generic_encrypt",
        "_oecc21_rewrap_device_rsa_key",  # RSA storage blob
    }

    def install(self) -> None:
        if self._installed:
            return
        self.session.hook_pattern("_oecc", on_leave=self._on_leave)
        self._installed = True

    def _on_leave(self, record: CallRecord) -> None:
        in_positions = self._DUMP_IN.get(record.function, ())
        for position in in_positions:
            if position < len(record.args) and isinstance(
                record.args[position], (bytes, bytearray)
            ):
                self.dumps.append(
                    BufferDump(
                        function=record.function,
                        direction="in",
                        data=bytes(record.args[position]),
                    )
                )
        if record.function in self._DUMP_OUT and isinstance(
            record.retval, (bytes, bytearray)
        ):
            self.dumps.append(
                BufferDump(
                    function=record.function,
                    direction="out",
                    data=bytes(record.retval),
                )
            )

    # -- aggregated observations ------------------------------------------

    @property
    def records(self) -> list[CallRecord]:
        return [
            r for r in self.session.records if r.function.startswith("_oecc")
        ]

    def widevine_active(self) -> bool:
        """Did any Widevine CDM call happen while monitoring?"""
        return bool(self.records)

    def observed_security_level(self) -> str | None:
        """§IV-B's classifier: L1 iff control flow reached
        liboemcrypto.so; L3 iff all calls stayed in libwvdrmengine.so."""
        modules = {r.module for r in self.records}
        if not modules:
            return None
        if any("liboemcrypto" in m for m in modules):
            return "L1"
        if all("libwvdrmengine" in m for m in modules):
            return "L3"
        return None

    def dumps_for(self, function: str, direction: str | None = None) -> list[bytes]:
        return [
            d.data
            for d in self.dumps
            if d.function == function
            and (direction is None or d.direction == direction)
        ]

    def flush_dumps(self) -> int:
        """Emit every not-yet-flushed buffer dump to the bus as an
        ``oecc.dump`` event (function, direction, size — never the
        bytes). Called by :class:`~repro.core.monitor.DrmApiMonitor`
        on detach so the dumps outlive the torn-down hook session;
        returns how many were flushed."""
        pending = self.dumps[self._flushed :]
        for dump in pending:
            self.obs.event(
                "oecc.dump",
                function=dump.function,
                direction=dump.direction,
                size=len(dump.data),
            )
        if pending:
            self.obs.count("oecc.dumps", len(pending))
        self._flushed = len(self.dumps)
        return len(pending)

    def clear(self) -> None:
        self.session.clear_records()
        self.dumps.clear()
        self._flushed = 0


def disable_ssl_pinning(client: HttpClient) -> None:
    """The SSL-repinning hook.

    Real scripts overwrite the app's TrustManager/CertificatePinner so
    every certificate validates; here the app's pin set is switched
    off. §IV-C: "using public Frida resources, we succeeded in
    bypassing SSL repinning on all OTT apps".
    """
    client.pin_set.enabled = False
