"""Process-memory scanning.

§IV-D: "By dynamically monitoring memory regions that are used during
obfuscated cryptographic operations within libwvdrmengine.so, we
searched for specific keybox structure (e.g., magic number). Thus, we
succeeded in recovering the L3 keybox". This module implements the two
scans the PoC needs: a structural keybox scan and a whitebox mask-table
scan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.process import Process
from repro.widevine.keybox import KEYBOX_MAGIC, KEYBOX_SIZE, Keybox
from repro.widevine.storage import WHITEBOX_TABLE_MAGIC

__all__ = ["MemoryMatch", "scan_for_pattern", "scan_for_keybox", "find_whitebox_mask"]

# Offset of the magic inside the keybox structure.
_MAGIC_OFFSET = 120


@dataclass(frozen=True)
class MemoryMatch:
    """One pattern hit inside a process region."""

    region: str
    offset: int
    data: bytes


def scan_for_pattern(process: Process, pattern: bytes) -> list[MemoryMatch]:
    """Find every occurrence of *pattern* in readable regions."""
    if not pattern:
        raise ValueError("empty pattern")
    matches: list[MemoryMatch] = []
    for region in process.readable_regions():
        start = 0
        blob = bytes(region.data)
        while True:
            index = blob.find(pattern, start)
            if index < 0:
                break
            matches.append(
                MemoryMatch(region=region.name, offset=index, data=pattern)
            )
            start = index + 1
    return matches


def scan_for_keybox(process: Process) -> list[MemoryMatch]:
    """Structural keybox scan: magic hits whose surrounding 128 bytes
    parse as a keybox (magic at offset 120, valid CRC)."""
    matches: list[MemoryMatch] = []
    for hit in scan_for_pattern(process, KEYBOX_MAGIC):
        begin = hit.offset - _MAGIC_OFFSET
        if begin < 0:
            continue
        region = next(r for r in process.readable_regions() if r.name == hit.region)
        candidate = bytes(region.data[begin : begin + KEYBOX_SIZE])
        if len(candidate) == KEYBOX_SIZE and Keybox.is_plausible(candidate):
            matches.append(
                MemoryMatch(region=hit.region, offset=begin, data=candidate)
            )
    return matches


def find_whitebox_mask(process: Process) -> bytes | None:
    """Locate the whitebox constant table and return the 16-byte mask."""
    hits = scan_for_pattern(process, WHITEBOX_TABLE_MAGIC)
    for hit in hits:
        region = next(r for r in process.readable_regions() if r.name == hit.region)
        mask = bytes(
            region.data[
                hit.offset + len(WHITEBOX_TABLE_MAGIC) : hit.offset
                + len(WHITEBOX_TABLE_MAGIC)
                + 16
            ]
        )
        if len(mask) == 16:
            return mask
    return None
