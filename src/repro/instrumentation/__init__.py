"""Frida-like instrumentation: process attach, function interception,
buffer dumps, memory scanning and stock hook scripts."""

from repro.instrumentation.frida import CallRecord, FridaSession, Hook
from repro.instrumentation.hooks import (
    BufferDump,
    OeccMonitor,
    disable_ssl_pinning,
)
from repro.instrumentation.memscan import (
    MemoryMatch,
    find_whitebox_mask,
    scan_for_keybox,
    scan_for_pattern,
)

__all__ = [
    "CallRecord",
    "FridaSession",
    "Hook",
    "BufferDump",
    "OeccMonitor",
    "disable_ssl_pinning",
    "MemoryMatch",
    "find_whitebox_mask",
    "scan_for_keybox",
    "scan_for_pattern",
]
