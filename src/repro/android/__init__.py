"""Simulated Android substrate: devices, processes, the Media DRM
framework (MediaDrm / MediaCrypto / MediaCodec / HAL), SafetyNet and an
APK model for static analysis."""

from repro.android.device import (
    AndroidDevice,
    DeviceSpec,
    galaxy_s7,
    nexus_5,
    pixel_6,
)
from repro.android.drm_server import MediaDrmServer
from repro.android.mediacodec import (
    CodecException,
    CryptoInfo,
    DecodedFrame,
    MediaCodec,
)
from repro.android.mediacrypto import MediaCrypto, MediaCryptoException
from repro.android.mediadrm import (
    KEY_TYPE_OFFLINE,
    KEY_TYPE_STREAMING,
    DeniedByServerException,
    KeyRequest,
    MediaDrm,
    MediaDrmException,
    NotProvisionedException,
    ProvisionRequestData,
    UnsupportedSchemeException,
)
from repro.android.packages import Apk, ApkClass, decompile
from repro.android.process import MemoryRegion, Process
from repro.android.safetynet import SafetyNetResult, attest
from repro.android.trace import FlowEvent, FlowTrace

__all__ = [
    "AndroidDevice",
    "DeviceSpec",
    "galaxy_s7",
    "nexus_5",
    "pixel_6",
    "MediaDrmServer",
    "CodecException",
    "CryptoInfo",
    "DecodedFrame",
    "MediaCodec",
    "MediaCrypto",
    "MediaCryptoException",
    "KEY_TYPE_OFFLINE",
    "KEY_TYPE_STREAMING",
    "DeniedByServerException",
    "KeyRequest",
    "MediaDrm",
    "MediaDrmException",
    "NotProvisionedException",
    "ProvisionRequestData",
    "UnsupportedSchemeException",
    "Apk",
    "ApkClass",
    "decompile",
    "MemoryRegion",
    "Process",
    "SafetyNetResult",
    "attest",
    "FlowEvent",
    "FlowTrace",
]
