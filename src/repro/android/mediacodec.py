"""The Android ``MediaCodec`` secure decode path.

``queue_secure_input_buffer`` is the Figure 1 arrow into Media Crypto:
the codec hands the encrypted sample plus its CryptoInfo to the CDM,
receives either clear bytes (L3) or a secure-buffer handle (L1),
decodes, and surfaces only frame *metadata* to the application — the
decrypted bitstream is never application-visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.mediacrypto import MediaCrypto
from repro.media.codecs import validate_sample
from repro.widevine.oemcrypto import OemCryptoError

__all__ = ["CryptoInfo", "DecodedFrame", "MediaCodec", "CodecException"]


class CodecException(Exception):
    pass


@dataclass(frozen=True)
class CryptoInfo:
    """Per-sample encryption parameters (android.media.MediaCodec.CryptoInfo)."""

    key_id: bytes
    iv: bytes
    subsamples: tuple[tuple[int, int], ...] = ()
    mode: str = "cenc"  # "cenc" | "cbcs" | "unencrypted"


@dataclass(frozen=True)
class DecodedFrame:
    """What the application gets back: metadata, never the bitstream."""

    valid: bool
    kind: str | None
    label: str | None
    sequence: int | None
    secure: bool
    reason: str = ""


@dataclass
class MediaCodec:
    """A decoder instance, optionally configured with a MediaCrypto."""

    mime_type: str
    secure: bool = False
    _crypto: MediaCrypto | None = field(default=None, repr=False)
    frames: list[DecodedFrame] = field(default_factory=list)

    @classmethod
    def create_decoder(cls, mime_type: str, *, secure: bool = False) -> "MediaCodec":
        return cls(mime_type=mime_type, secure=secure)

    def configure(self, crypto: MediaCrypto | None) -> None:
        if crypto is not None:
            needs_secure = crypto.requires_secure_decoder_component(self.mime_type)
            if needs_secure and not self.secure:
                raise CodecException(
                    "L1 session requires a secure decoder component"
                )
        self._crypto = crypto

    def queue_secure_input_buffer(self, data: bytes, info: CryptoInfo) -> DecodedFrame:
        """Decrypt-and-decode one sample through the CDM."""
        if self._crypto is None:
            raise CodecException("codec not configured with a MediaCrypto")
        device = self._crypto.device
        device.obs.flow(
            "Application", "Media Crypto", "queueSecureInputBuffer()"
        )
        device.obs.flow("Media Crypto", "CDM", "Decrypt()")

        if info.mode == "unencrypted":
            clear = data
            secure = False
        else:
            try:
                result = self._crypto._decrypt(
                    info.key_id,
                    data,
                    info.iv,
                    list(info.subsamples),
                    mode=info.mode,
                )
            except OemCryptoError as exc:
                raise CodecException(f"decrypt failed: {exc}") from exc
            if result.secure:
                assert result.handle is not None
                clear = self._crypto.media_drm._cdm.resolve_secure_handle(
                    result.handle, requester="secure-decoder"
                )
                secure = True
            else:
                assert result.data is not None
                clear = result.data
                secure = False

        validation = validate_sample(clear)
        frame = DecodedFrame(
            valid=validation.valid,
            kind=validation.kind,
            label=validation.label,
            sequence=validation.sequence,
            secure=secure,
            reason=validation.reason,
        )
        self.frames.append(frame)
        return frame

    def queue_input_buffer(self, data: bytes) -> DecodedFrame:
        """Clear (non-DRM) input path."""
        validation = validate_sample(data)
        frame = DecodedFrame(
            valid=validation.valid,
            kind=validation.kind,
            label=validation.label,
            sequence=validation.sequence,
            secure=False,
            reason=validation.reason,
        )
        self.frames.append(frame)
        return frame
