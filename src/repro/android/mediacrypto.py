"""The Android ``MediaCrypto`` API.

A MediaCrypto object binds a MediaDrm session to a MediaCodec: the
codec's secure input path decrypts through it, and — the property that
defeats MovieStealer (§II-B) — the application never receives the
decrypted buffers.
"""

from __future__ import annotations

from repro.android.device import AndroidDevice
from repro.android.mediadrm import MediaDrm, MediaDrmException

__all__ = ["MediaCrypto", "MediaCryptoException"]


class MediaCryptoException(MediaDrmException):
    pass


class MediaCrypto:
    """Decryption handle bound to one open MediaDrm session."""

    def __init__(self, media_drm: MediaDrm, session_id: bytes):
        if session_id not in media_drm._open_sessions:
            raise MediaCryptoException("session is not open")
        self.media_drm = media_drm
        self.session_id = session_id
        self.device: AndroidDevice = media_drm.device

    def requires_secure_decoder_component(self, mime_type: str) -> bool:
        """True on L1, where output buffers stay in secure memory."""
        return self.media_drm.get_property_string("securityLevel") == "L1"

    def set_media_drm_session(self, session_id: bytes) -> None:
        if session_id not in self.media_drm._open_sessions:
            raise MediaCryptoException("session is not open")
        self.session_id = session_id

    def _decrypt(self, key_id, data, iv, subsamples, mode="cenc"):
        """Internal: only MediaCodec calls this."""
        return self.media_drm._cdm.decrypt(
            self.session_id, key_id, data, iv, subsamples, mode=mode
        )
