"""Simulated monotonic device clock.

License policies are time-bounded in real Widevine (licenses carry a
duration; the CDM refuses to decrypt once it lapses). The simulation
keeps a per-device clock that tests and experiments advance explicitly,
so expiry behaviour is deterministic.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A manually-advanced clock (seconds)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("clocks only move forward")
        self._now += seconds

    def __repr__(self) -> str:
        return f"SimClock(t={self._now})"
