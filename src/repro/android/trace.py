"""Message-flow tracing, used to regenerate the paper's Figure 1.

Every component of the playback path records its arrows (application →
Media DRM Server → CDM, application → license server / CDN) into the
device's :class:`FlowTrace`; the Figure 1 benchmark asserts the
captured sequence against the published diagram.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FlowEvent", "FlowTrace"]


@dataclass(frozen=True)
class FlowEvent:
    """One arrow of the sequence diagram."""

    source: str
    target: str
    label: str

    def __str__(self) -> str:
        return f"{self.source} -> {self.target}: {self.label}"


@dataclass
class FlowTrace:
    """An append-only sequence of message arrows."""

    events: list[FlowEvent] = field(default_factory=list)
    enabled: bool = True

    def record(self, source: str, target: str, label: str) -> None:
        if self.enabled:
            self.events.append(FlowEvent(source, target, label))

    def labels(self) -> list[tuple[str, str, str]]:
        return [(e.source, e.target, e.label) for e in self.events]

    def clear(self) -> None:
        self.events.clear()

    def render(self) -> str:
        return "\n".join(str(e) for e in self.events)
