"""Message-flow tracing, used to regenerate the paper's Figure 1.

``FlowTrace`` is a thin consumer of the observability bus: components
on the playback path emit their arrows (application → Media DRM Server
→ CDM, application → license server / CDN) through
:meth:`repro.obs.bus.ObservabilityBus.flow`, and the device's trace —
registered as a flow consumer at boot — appends them here. The Figure 1
benchmark asserts the captured sequence against the published diagram,
byte-identical to the pre-bus recording.

Record/clear are lock-guarded: under :class:`ParallelStudyRunner` each
worker owns its device (and therefore its trace), but nothing should
rely on that for memory safety — a concurrent ``clear()`` must never
interleave with an append (the spirit of the repo's REG001/LRU004
invariants).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["FlowEvent", "FlowTrace"]


@dataclass(frozen=True)
class FlowEvent:
    """One arrow of the sequence diagram."""

    source: str
    target: str
    label: str

    def __str__(self) -> str:
        return f"{self.source} -> {self.target}: {self.label}"


@dataclass
class FlowTrace:
    """An append-only sequence of message arrows."""

    events: list[FlowEvent] = field(default_factory=list)
    enabled: bool = True
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(self, source: str, target: str, label: str) -> None:
        if self.enabled:
            with self._lock:
                self.events.append(FlowEvent(source, target, label))

    def labels(self) -> list[tuple[str, str, str]]:
        with self._lock:
            return [(e.source, e.target, e.label) for e in self.events]

    def clear(self) -> None:
        with self._lock:
            self.events.clear()

    def render(self) -> str:
        with self._lock:
            return "\n".join(str(e) for e in self.events)
