"""The Media DRM Server HAL (``mediadrmserver`` / ``mediaserver``).

§II-B: "Starting from API level 18, this is implemented by some HAL
module called Media DRM Server that abstracts the actual running DRM
from the programming interface used by OTT apps." Plugins register by
DRM system UUID; :class:`repro.android.mediadrm.MediaDrm` resolves
through here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.android.process import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.widevine.plugin import WidevineHalPlugin

__all__ = ["MediaDrmServer"]


class MediaDrmServer:
    """UUID → plugin registry hosted by the DRM process."""

    def __init__(self, process: Process):
        self.process = process
        self._plugins: dict[bytes, "WidevineHalPlugin"] = {}

    def register_plugin(self, plugin: "WidevineHalPlugin") -> None:
        if plugin.uuid in self._plugins:
            raise ValueError(f"plugin already registered for {plugin.uuid.hex()}")
        self._plugins[plugin.uuid] = plugin

    def is_scheme_supported(self, uuid: bytes) -> bool:
        return uuid in self._plugins

    def plugin(self, uuid: bytes) -> "WidevineHalPlugin":
        try:
            return self._plugins[uuid]
        except KeyError:
            raise LookupError(f"no DRM plugin for uuid {uuid.hex()}") from None
