"""Android device model and factory profiles.

A device boots with its DRM process, keybox, Widevine plugin and trust
store. The two profiles the study uses:

- :func:`nexus_5` — the discontinued phone of §IV-B: Android 6.0.1
  (last update, 2016), no TEE-backed Widevine → L3, CDM 3.1.0;
- :func:`pixel_6` — a current, supported L1 device (TEE, CDM 15.0).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.clock import SimClock
from repro.android.drm_server import MediaDrmServer
from repro.android.process import Process
from repro.android.trace import FlowTrace
from repro.license_server.provisioning import KeyboxAuthority
from repro.net.network import HttpClient, Network
from repro.net.tls import PinSet, TrustStore
from repro.obs.bus import ObservabilityBus
from repro.widevine.keybox import issue_keybox
from repro.widevine.plugin import WidevineHalPlugin
from repro.widevine.versions import CDM_CURRENT, CDM_NEXUS5

__all__ = ["AndroidDevice", "nexus_5", "pixel_6", "galaxy_s7", "DeviceSpec"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static facts about a device model."""

    model: str
    android_version: str
    api_level: int
    security_patch: str  # "YYYY-MM" of the last received update
    has_tee: bool
    cdm_version: str

    @property
    def discontinued(self) -> bool:
        """No security updates since before 2020 — the paper's notion of
        a deprecated device."""
        return self.security_patch < "2020-01"


class AndroidDevice:
    """One booted Android device on the simulated network."""

    def __init__(
        self,
        spec: DeviceSpec,
        *,
        serial: str,
        network: Network,
        authority: KeyboxAuthority,
        obs: ObservabilityBus | None = None,
    ):
        self.spec = spec
        self.serial = serial
        self.network = network
        self.rooted = False
        self.clock = SimClock()
        # The device's observation spine: every playback-path component
        # emits spans/arrows through it. Callers that orchestrate many
        # devices (the study, a parallel worker session) inject a shared
        # bus so all observations land in one tree.
        self.obs = obs if obs is not None else ObservabilityBus()
        self.trace = FlowTrace()
        self.obs.add_flow_consumer(self.trace.record)
        self.trust_store = TrustStore()
        self.persistent_store: dict[str, bytes] = {}
        self.processes: list[Process] = []

        # Factory keybox, registered with the provisioning authority
        # together with the device's attested Widevine capability.
        self.keybox = issue_keybox(serial)
        authority.register(
            self.keybox, security_level="L1" if spec.has_tee else "L3"
        )

        # §IV-B: the CDM loads "in mediadrmserver starting from Android 7
        # and mediaserver otherwise".
        drm_process_name = "mediadrmserver" if spec.api_level >= 24 else "mediaserver"
        self.drm_process = Process(drm_process_name)
        self.processes.append(self.drm_process)

        self.widevine_plugin = WidevineHalPlugin(
            process=self.drm_process,
            keybox=self.keybox,
            has_tee=spec.has_tee,
            cdm_version=spec.cdm_version,
            device_model=spec.model,
            persistent_store=self.persistent_store,
            serial=serial,
            clock=self.clock,
            obs=self.obs,
        )
        self.drm_server = MediaDrmServer(self.drm_process)
        self.drm_server.register_plugin(self.widevine_plugin)

    @property
    def widevine_security_level(self) -> str:
        return self.widevine_plugin.security_level

    def install_drm_plugin(self, plugin) -> None:
        """Register an additional DRM system with the Media DRM Server
        (§II-B: the framework dispatches to many key systems by UUID)."""
        self.drm_server.register_plugin(plugin)

    def find_process(self, name: str) -> Process:
        for process in self.processes:
            if process.name == name:
                return process
        raise LookupError(f"no process named {name!r} on {self.spec.model}")

    def spawn_app_process(self, package: str) -> Process:
        """Start (or restart) the app's process. Android keeps at most
        one process per package; relaunching replaces it — which also
        drops any instrumentation attached to the old incarnation."""
        self.processes = [p for p in self.processes if p.name != package]
        process = Process(package)
        self.processes.append(process)
        return process

    def new_http_client(self, pin_set: PinSet | None = None) -> HttpClient:
        """An HTTP stack bound to this device's trust store."""
        return HttpClient(
            self.network,
            trust_store=self.trust_store,
            pin_set=pin_set,
            obs=self.obs,
        )

    def __repr__(self) -> str:
        return (
            f"AndroidDevice({self.spec.model!r}, Android "
            f"{self.spec.android_version}, {self.widevine_security_level})"
        )


def nexus_5(
    network: Network,
    authority: KeyboxAuthority,
    *,
    serial: str = "N5-001",
    obs: ObservabilityBus | None = None,
) -> AndroidDevice:
    """The discontinued device of §IV-B "Outdated Device"."""
    spec = DeviceSpec(
        model="Nexus 5",
        android_version="6.0.1",
        api_level=23,
        security_patch="2016-10",
        has_tee=False,
        cdm_version=str(CDM_NEXUS5),
    )
    return AndroidDevice(
        spec, serial=serial, network=network, authority=authority, obs=obs
    )


def pixel_6(
    network: Network,
    authority: KeyboxAuthority,
    *,
    serial: str = "P6-001",
    obs: ObservabilityBus | None = None,
) -> AndroidDevice:
    """A current, supported L1 device."""
    spec = DeviceSpec(
        model="Pixel 6",
        android_version="12",
        api_level=31,
        security_patch="2021-12",
        has_tee=True,
        cdm_version=str(CDM_CURRENT),
    )
    return AndroidDevice(
        spec, serial=serial, network=network, authority=authority, obs=obs
    )


def galaxy_s7(
    network: Network,
    authority: KeyboxAuthority,
    *,
    serial: str = "S7-001",
    obs: ObservabilityBus | None = None,
) -> AndroidDevice:
    """A discontinued *L1* device (TEE present, updates stopped 2019).

    The complement of the Nexus 5 case: its keybox resists the memory
    scan (TEE-backed), but its CDM is old enough that revocation-abiding
    services refuse it — the availability/security trade-off of Q4 from
    the other side.
    """
    spec = DeviceSpec(
        model="Galaxy S7",
        android_version="8.0",
        api_level=26,
        security_patch="2019-04",
        has_tee=True,
        cdm_version="11.0.0",
    )
    return AndroidDevice(
        spec, serial=serial, network=network, authority=authority, obs=obs
    )
