"""APK model: what static analysis sees of an installed app.

The study's first methodology prong "decompile[s] the Java classes of
the evaluated OTT apps to identify some of the included Android
classes ... all calls to MediaDrm and MediaCrypto methods". The model
keeps exactly that observable: packages expose a class list with method
references, possibly including dead code — which is why the paper backs
static findings with dynamic monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ApkClass", "Apk", "decompile"]


@dataclass(frozen=True)
class ApkClass:
    """One decompiled class: fully-qualified name plus referenced methods."""

    name: str
    method_refs: tuple[str, ...] = ()


@dataclass
class Apk:
    """An installed application package."""

    package: str
    version: str
    classes: list[ApkClass] = field(default_factory=list)
    uses_exoplayer: bool = False
    pinned_hosts: tuple[str, ...] = ()
    anti_debug: bool = False
    checks_safetynet: bool = False

    def add_class(self, name: str, method_refs: tuple[str, ...] = ()) -> None:
        self.classes.append(ApkClass(name=name, method_refs=method_refs))


def decompile(apk: Apk) -> list[ApkClass]:
    """'Decompile' the APK — returns its class list for scanning."""
    return list(apk.classes)
