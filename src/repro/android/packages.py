"""APK model: what static analysis sees of an installed app.

The study's first methodology prong "decompile[s] the Java classes of
the evaluated OTT apps to identify some of the included Android
classes ... all calls to MediaDrm and MediaCrypto methods". The model
keeps exactly that observable: packages expose a class list with method
references, possibly including dead code — which is why the paper backs
static findings with dynamic monitoring.

Beyond the flat ``method_refs`` view (what a string-dump of the DEX
surfaces), classes can carry **per-method bodies**: each
:class:`ApkMethod` records its outgoing calls and the fields it reads
and writes. That is the granularity a decompiler actually produces, and
it is what lets :mod:`repro.analysis` build a call graph (so dead code
is *measurable*, not just postulated) and run a source→sink taint pass
over key material.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ApkMethod", "ApkClass", "Apk", "decompile"]


@dataclass(frozen=True)
class ApkMethod:
    """One decompiled method body.

    ``calls`` holds fully-qualified callee names — either other methods
    of this APK (``com.app.Player.prepare``) or platform APIs
    (``android.media.MediaDrm.openSession``). ``field_reads`` /
    ``field_writes`` name the fully-qualified fields the body touches;
    they are the inter-procedural dataflow edges the taint pass follows.
    """

    name: str  # unqualified, e.g. "onCreate"
    calls: tuple[str, ...] = ()
    field_reads: tuple[str, ...] = ()
    field_writes: tuple[str, ...] = ()


@dataclass(frozen=True)
class ApkClass:
    """One decompiled class: fully-qualified name plus referenced methods."""

    name: str
    method_refs: tuple[str, ...] = ()
    methods: tuple[ApkMethod, ...] = ()

    def all_refs(self) -> tuple[str, ...]:
        """Every outgoing reference: the flat ``method_refs`` view plus
        each method body's calls, deduped in first-seen order."""
        seen: dict[str, None] = {}
        for ref in self.method_refs:
            seen.setdefault(ref, None)
        for method in self.methods:
            for ref in method.calls:
                seen.setdefault(ref, None)
        return tuple(seen)

    def method(self, name: str) -> ApkMethod | None:
        for method in self.methods:
            if method.name == name:
                return method
        return None


@dataclass
class Apk:
    """An installed application package."""

    package: str
    version: str
    classes: list[ApkClass] = field(default_factory=list)
    uses_exoplayer: bool = False
    pinned_hosts: tuple[str, ...] = ()
    anti_debug: bool = False
    checks_safetynet: bool = False
    # Fully-qualified methods the Android framework invokes directly
    # (activity/service lifecycle). Call-graph reachability starts here.
    entry_points: tuple[str, ...] = ()

    def add_class(
        self,
        name: str,
        method_refs: tuple[str, ...] = (),
        methods: tuple[ApkMethod, ...] = (),
    ) -> None:
        self.classes.append(
            ApkClass(name=name, method_refs=method_refs, methods=methods)
        )

    def add_entry_point(self, qualified_method: str) -> None:
        if qualified_method not in self.entry_points:
            self.entry_points = self.entry_points + (qualified_method,)

    def find_class(self, name: str) -> ApkClass | None:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None


def decompile(apk: Apk) -> list[ApkClass]:
    """'Decompile' the APK — returns its class list for scanning."""
    return list(apk.classes)
