"""Process and memory model.

The attack surface of §IV-D is *process memory*: on L3 the Widevine
keybox lives (obfuscated) inside the DRM process's address space, where
a Frida memory scan finds it; on L1 it lives in the TEE, outside any
scannable region. This module models exactly that observable: processes
own named memory regions that instrumentation can enumerate and read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MemoryRegion", "Process"]


@dataclass
class MemoryRegion:
    """One mapped region of a process.

    ``readable`` mirrors what an attached debugger may read; TEE-backed
    secrets are simply never placed in any region.
    """

    name: str
    data: bytearray
    readable: bool = True

    def write(self, offset: int, blob: bytes) -> None:
        if offset < 0 or offset + len(blob) > len(self.data):
            raise ValueError(
                f"write [{offset}, {offset + len(blob)}) outside region "
                f"{self.name!r} of size {len(self.data)}"
            )
        self.data[offset : offset + len(blob)] = blob

    def read(self, offset: int = 0, length: int | None = None) -> bytes:
        if not self.readable:
            raise PermissionError(f"region {self.name!r} is not readable")
        end = len(self.data) if length is None else offset + length
        return bytes(self.data[offset:end])


class Process:
    """A running process: name, pid, loaded modules, memory regions."""

    _next_pid = 1000

    def __init__(self, name: str):
        self.name = name
        self.pid = Process._next_pid
        Process._next_pid += 1
        self.regions: list[MemoryRegion] = []
        # Module name → implementation object (where hooks attach).
        self.modules: dict[str, object] = {}
        self.attached_instruments: list[str] = []

    def map_region(self, name: str, size: int) -> MemoryRegion:
        """Allocate and map a new zeroed region."""
        region = MemoryRegion(name=name, data=bytearray(size))
        self.regions.append(region)
        return region

    def unmap_region(self, region: MemoryRegion) -> None:
        self.regions.remove(region)

    def load_module(self, name: str, implementation: object) -> None:
        if name in self.modules:
            raise ValueError(f"module {name!r} already loaded in {self.name}")
        self.modules[name] = implementation

    def module(self, name: str) -> object:
        try:
            return self.modules[name]
        except KeyError:
            raise LookupError(
                f"module {name!r} not loaded in process {self.name!r}"
            ) from None

    def has_module(self, name: str) -> bool:
        return name in self.modules

    def readable_regions(self) -> list[MemoryRegion]:
        return [r for r in self.regions if r.readable]

    def __repr__(self) -> str:
        return f"Process({self.name!r}, pid={self.pid})"
