"""The Android ``MediaDrm`` API (android.media.MediaDrm).

Mirrors the Java API surface OTT apps program against (§II-B and
Figure 1): scheme lookup by UUID, session management, key requests,
provisioning, property queries — plus the exception types Android
defines (``NotProvisionedException`` being the one that drives the
provisioning round-trip).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.device import AndroidDevice
from repro.widevine.cdm import CdmError
from repro.widevine.oemcrypto import NotProvisionedError, OemCryptoError

__all__ = [
    "MediaDrm",
    "KeyRequest",
    "ProvisionRequestData",
    "MediaDrmException",
    "UnsupportedSchemeException",
    "NotProvisionedException",
    "DeniedByServerException",
    "KEY_TYPE_STREAMING",
    "KEY_TYPE_OFFLINE",
]

KEY_TYPE_STREAMING = 1
KEY_TYPE_OFFLINE = 2


class MediaDrmException(Exception):
    """Base of the MediaDrm exception hierarchy."""


class UnsupportedSchemeException(MediaDrmException):
    """The device has no DRM plugin for the requested UUID."""


class NotProvisionedException(MediaDrmException):
    """The CDM needs certificate provisioning before key requests."""


class DeniedByServerException(MediaDrmException):
    """The provisioning or license server refused the device."""


@dataclass(frozen=True)
class KeyRequest:
    """Opaque license request, to be POSTed to the license server."""

    data: bytes
    default_url: str = ""


@dataclass(frozen=True)
class ProvisionRequestData:
    """Opaque provisioning request plus the server URL to send it to."""

    data: bytes
    default_url: str = ""


class MediaDrm:
    """One MediaDrm instance, bound to an app origin.

    The *origin* corresponds to the calling app's package — Android
    provisions Widevine certificates per origin since API 28, which is
    the behaviour Q4's per-app provisioning failures rely on.
    """

    def __init__(self, uuid: bytes, device: AndroidDevice, *, origin: str = "default"):
        device.obs.flow("Application", "MediaDRM Server", "MediaDrm(UUID)")
        if not device.drm_server.is_scheme_supported(uuid):
            raise UnsupportedSchemeException(f"no plugin for uuid {uuid.hex()}")
        self.uuid = uuid
        self.device = device
        self.origin = origin
        self._plugin = device.drm_server.plugin(uuid)
        self._cdm = self._plugin.cdm
        self._open_sessions: set[bytes] = set()
        self._key_types: dict[bytes, int] = {}
        self._key_set_ids: dict[bytes, bytes] = {}
        device.obs.flow("MediaDRM Server", "CDM", "Initialize()")

    @staticmethod
    def is_crypto_scheme_supported(uuid: bytes, device: AndroidDevice) -> bool:
        return device.drm_server.is_scheme_supported(uuid)

    # -- sessions -----------------------------------------------------------

    def open_session(self) -> bytes:
        self.device.obs.flow("Application", "MediaDRM Server", "openSession()")
        self.device.obs.flow("MediaDRM Server", "CDM", "openSession()")
        session_id = self._cdm.open_session(self.origin)
        self._open_sessions.add(session_id)
        return session_id

    def close_session(self, session_id: bytes) -> None:
        self._cdm.close_session(session_id)
        self._open_sessions.discard(session_id)

    def _check_session(self, session_id: bytes) -> None:
        if session_id not in self._open_sessions:
            raise MediaDrmException(f"session {session_id.hex()} not open")

    # -- licensing -----------------------------------------------------------

    def get_key_request(
        self,
        session_id: bytes,
        init_data: bytes,
        mime_type: str = "video/mp4",
        key_type: int = KEY_TYPE_STREAMING,
    ) -> KeyRequest:
        self._check_session(session_id)
        self._key_types[session_id] = key_type
        self.device.obs.flow("Application", "MediaDRM Server", "getKeyRequest()")
        self.device.obs.flow("MediaDRM Server", "CDM", "getKeyRequest()")
        try:
            data = self._cdm.get_key_request(session_id, init_data)
        except NotProvisionedError as exc:
            raise NotProvisionedException(str(exc)) from exc
        except (CdmError, OemCryptoError) as exc:
            raise MediaDrmException(str(exc)) from exc
        self.device.obs.flow("CDM", "MediaDRM Server", "opaque request")
        return KeyRequest(data=data)

    def provide_key_response(self, session_id: bytes, response: bytes) -> list[bytes]:
        """Load a license into the session; returns the loaded key IDs.

        For a session whose request used ``KEY_TYPE_OFFLINE`` the
        license is additionally persisted — retrieve its handle with
        :meth:`get_key_set_id` and reload later via
        :meth:`restore_keys` (Android's ``keySetId`` flow).
        """
        self._check_session(session_id)
        self.device.obs.flow(
            "Application", "MediaDRM Server", "provideKeyResponse()"
        )
        self.device.obs.flow("MediaDRM Server", "CDM", "provideKeyResponse")
        try:
            loaded = self._cdm.provide_key_response(session_id, response)
            if self._key_types.get(session_id) == KEY_TYPE_OFFLINE:
                self._key_set_ids[session_id] = self._cdm.store_offline_license(
                    self.origin, response
                )
            return loaded
        except NotProvisionedError as exc:
            raise NotProvisionedException(str(exc)) from exc
        except (CdmError, OemCryptoError) as exc:
            raise MediaDrmException(str(exc)) from exc

    def get_key_set_id(self, session_id: bytes) -> bytes:
        """The persisted-license handle of an offline session."""
        try:
            return self._key_set_ids[session_id]
        except KeyError:
            raise MediaDrmException(
                "session holds no offline license"
            ) from None

    def restore_keys(self, session_id: bytes, key_set_id: bytes) -> list[bytes]:
        """Reload a persisted offline license into a (new) session."""
        self._check_session(session_id)
        try:
            return self._cdm.restore_keys(session_id, key_set_id)
        except NotProvisionedError as exc:
            raise NotProvisionedException(str(exc)) from exc
        except (CdmError, OemCryptoError) as exc:
            raise MediaDrmException(str(exc)) from exc

    def remove_keys(self, key_set_id: bytes) -> None:
        """Delete a persisted offline license."""
        self._cdm.remove_offline_license(self.origin, key_set_id)

    # -- provisioning -----------------------------------------------------------

    def get_provision_request(self) -> ProvisionRequestData:
        data = self._cdm.get_provision_request(self.origin)
        return ProvisionRequestData(data=data)

    def provide_provision_response(self, response: bytes) -> None:
        try:
            self._cdm.provide_provision_response(self.origin, response)
        except (CdmError, OemCryptoError) as exc:
            raise DeniedByServerException(str(exc)) from exc

    # -- properties ---------------------------------------------------------------

    def get_property_string(self, name: str) -> str:
        properties = self._plugin.properties()
        try:
            return properties[name]
        except KeyError:
            raise MediaDrmException(f"unknown property {name!r}") from None

    # -- generic (non-DASH) crypto API ----------------------------------------------

    def generic_encrypt(self, session_id: bytes, data: bytes, iv: bytes) -> bytes:
        self._check_session(session_id)
        try:
            return self._cdm.generic_encrypt(session_id, data, iv)
        except (CdmError, OemCryptoError) as exc:
            raise MediaDrmException(str(exc)) from exc

    def generic_decrypt(self, session_id: bytes, data: bytes, iv: bytes) -> bytes:
        self._check_session(session_id)
        try:
            return self._cdm.generic_decrypt(session_id, data, iv)
        except (CdmError, OemCryptoError) as exc:
            raise MediaDrmException(str(exc)) from exc

    def generic_sign(self, session_id: bytes, data: bytes) -> bytes:
        self._check_session(session_id)
        try:
            return self._cdm.generic_sign(session_id, data)
        except (CdmError, OemCryptoError) as exc:
            raise MediaDrmException(str(exc)) from exc

    def generic_verify(
        self, session_id: bytes, data: bytes, signature: bytes
    ) -> bool:
        self._check_session(session_id)
        try:
            return self._cdm.generic_verify(session_id, data, signature)
        except (CdmError, OemCryptoError) as exc:
            raise MediaDrmException(str(exc)) from exc
