"""SafetyNet attestation (simulated).

§IV-B: evaluated apps "rely on SafetyNet to hinder any dynamic
analysis" — and §V-B: "no SafetyNet or anti-screen recording techniques
can be of any use, since attackers only need to monitor Widevine that
runs in a different process". The model captures both: attestation
fails when the *app's own* process is instrumented or the device is
rooted, but instrumentation on ``mediadrmserver`` is invisible to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.android.device import AndroidDevice

__all__ = ["SafetyNetResult", "attest"]


@dataclass(frozen=True)
class SafetyNetResult:
    """Outcome of a SafetyNet attestation call."""

    basic_integrity: bool
    cts_profile_match: bool

    @property
    def passed(self) -> bool:
        return self.basic_integrity and self.cts_profile_match


def attest(device: AndroidDevice, app_package: str) -> SafetyNetResult:
    """Attest the environment as seen *from the app's process*."""
    app_instrumented = False
    for process in device.processes:
        if process.name == app_package and process.attached_instruments:
            app_instrumented = True
    # Instrumentation of the app's own process breaks basic integrity;
    # root alone only costs the CTS profile match (matching the study's
    # experience: apps kept running on rooted phones, and hooks on
    # mediadrmserver were invisible to every check).
    return SafetyNetResult(
        basic_integrity=not app_instrumented,
        cts_profile_match=not device.rooted and not app_instrumented,
    )
