"""HD license forgery — the paper's §V-C future work, implemented.

"On PCs, the Github project netflix-1080p explains how to get HD
quality on L3 by just modifying the profiles to be sent to the CDN.
This implies that there is no strong verification for web browsers. An
interesting future work is to adapt this exploit to Android in order to
get the license keys of HD contents without breaking into the Widevine
L1."

This module adapts it: armed with the device RSA key recovered by the
§IV-D key ladder (:mod:`repro.core.keyladder_attack`), the attacker
*forges* a license request claiming ``security_level="L1"``, signs it
with the stolen key, and submits it directly — no app, no CDM. Against
a service that cross-checks the claim with its provisioning records the
forgery dies with "security level claim does not match provisioning
record"; against one that trusts the client (the netflix-1080p
situation) the server hands over the HD content keys, and the recovery
pipeline reconstructs 1080p DRM-free media from an L3-only device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.device import AndroidDevice
from repro.bmff.builder import read_pssh_boxes
from repro.bmff.boxes import PsshBox
from repro.core.keyladder_attack import KeyLadderAttack
from repro.crypto.rng import derive_rng
from repro.crypto.rsa import RsaPrivateKey, pss_sign
from repro.license_server.protocol import LicenseRequest
from repro.net.network import HttpClient, Network
from repro.ott.app import OttApp

__all__ = ["HdForgeryResult", "HdForgeryAttack"]


@dataclass
class HdForgeryResult:
    """Outcome of one HD-forgery attempt."""

    service: str
    request_accepted: bool = False
    server_error: str | None = None
    content_keys: dict[bytes, bytes] = field(default_factory=dict)
    hd_key_ids: list[bytes] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return bool(self.hd_key_ids)


class HdForgeryAttack:
    """Forge L1 license requests from a broken L3 device."""

    def __init__(self, device: AndroidDevice, network: Network):
        self.device = device
        self.network = network
        self._ladder = KeyLadderAttack(device)
        self._rng = derive_rng(f"hd-forgery/{device.serial}")

    def forge_request(
        self,
        rsa_key: RsaPrivateKey,
        device_id: bytes,
        pssh_data: bytes,
        *,
        claimed_level: str = "L1",
        claimed_model: str = "Pixel 6",
    ) -> LicenseRequest:
        """Build a client-free license request with spoofed client info,
        signed by the stolen device RSA key."""
        request = LicenseRequest(
            session_id=self._rng.generate(4),
            device_id=device_id,
            rsa_fingerprint=rsa_key.public.fingerprint(),
            pssh_data=pssh_data,
            nonce=self._rng.generate(16),
            cdm_version="15.0.0",  # also spoofed: a current CDM
            security_level=claimed_level,
            device_model=claimed_model,
        )
        request.signature = pss_sign(rsa_key, request.signing_payload())
        return request

    def run(self, app: OttApp, *, title_id: str | None = None) -> HdForgeryResult:
        """Recover the RSA key via the §IV-D ladder, then forge."""
        result = HdForgeryResult(service=app.profile.service)

        # Prerequisite: the standard key-ladder break (provisions the
        # device as a side effect of the triggered playback).
        ladder = self._ladder.run(app, title_id=title_id)
        if not ladder.keybox_recovered or not ladder.rsa_recovered:
            result.notes.append(
                "key-ladder prerequisite failed: "
                + "; ".join(ladder.notes or ["unknown"])
            )
            return result
        keybox_device_id = ladder.device_id
        rsa_key = self._ladder.recover_device_rsa_key(
            self._ladder.recover_keybox(), app.profile.package
        )
        assert rsa_key is not None and keybox_device_id is not None

        # The PSSH (with every key id, HD included) is public metadata:
        # read it from the CDN init segment, no account needed.
        backend = app.backend
        if title_id is None:
            title_id = next(iter(backend.catalog)).title_id
        packaged = backend.packaged[title_id]
        anonymous = HttpClient(self.network)
        hd_rep = max(
            (
                rep
                for rep in backend.catalog.get(title_id).videos()
            ),
            key=lambda rep: rep.resolution.height,  # type: ignore[union-attr]
        )
        init_url, __ = packaged.asset_urls[hd_rep.rep_id]
        init = anonymous.get(init_url).body
        pssh_boxes = read_pssh_boxes(init)
        if not pssh_boxes or not isinstance(pssh_boxes[0], PsshBox):
            result.notes.append("no PSSH found in the HD init segment")
            return result

        request = self.forge_request(
            rsa_key, keybox_device_id, pssh_boxes[0].data
        )
        response = anonymous.post(
            f"https://{app.profile.license_host}/license", request.serialize()
        )
        if not response.ok:
            result.server_error = response.body.decode()
            result.notes.append(f"license server refused: {result.server_error}")
            return result
        result.request_accepted = True

        result.content_keys = KeyLadderAttack.unwrap_license(
            rsa_key, response.body
        )
        if not result.content_keys:
            result.notes.append("license accepted but no key unwrapped")
            return result
        hd_kids = {
            packaged.kid_by_rep[rep.rep_id]
            for rep in backend.catalog.get(title_id).videos()
            if rep.resolution is not None and rep.resolution.height > 540
        }
        result.hd_key_ids = [k for k in result.content_keys if k in hd_kids]
        if result.hd_key_ids:
            result.notes.append(
                f"HD keys obtained on an L3 device by claiming L1 "
                f"({len(result.hd_key_ids)} of {len(hd_kids)})"
            )
        return result
