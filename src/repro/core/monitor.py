"""DRM API monitoring (§IV-B, second prong — the Q1 instrument).

Attaches the Frida analogue to the device's DRM process (``mediadrm-
server`` from Android 7, ``mediaserver`` before), hooks the whole
``_oecc`` surface, and classifies what a playback run actually used:
Widevine L1, Widevine L3, or no platform Widevine at all (a custom
DRM).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.android.device import AndroidDevice
from repro.instrumentation.frida import FridaSession
from repro.instrumentation.hooks import OeccMonitor, disable_ssl_pinning

__all__ = ["DrmApiObservation", "DrmApiMonitor", "bypass_app_protections"]


@dataclass
class DrmApiObservation:
    """Aggregated result of one monitored playback."""

    widevine_used: bool
    security_level: str | None  # "L1" | "L3" | None
    oecc_call_count: int
    functions_seen: tuple[str, ...]


class DrmApiMonitor:
    """Hooks and observes the Widevine CDM process of one device."""

    def __init__(self, device: AndroidDevice):
        self.device = device
        self._session: FridaSession | None = None
        self._monitor: OeccMonitor | None = None

    @property
    def oecc(self) -> OeccMonitor:
        if self._monitor is None:
            raise RuntimeError("monitor not attached")
        return self._monitor

    def attach(self) -> None:
        if self._session is not None:
            return
        self._session = FridaSession.attach(
            self.device, self.device.drm_process.name
        )
        self._monitor = OeccMonitor(self._session, obs=self.device.obs)
        self._monitor.install()

    def detach(self) -> None:
        if self._session is not None:
            # Teardown discards the hook session and its monitor — the
            # collected buffer dumps must reach the bus first, or the
            # "in-depth analysis" channel silently loses its data.
            if self._monitor is not None:
                self._monitor.flush_dumps()
            self._session.detach()
            self._session = None
            self._monitor = None

    @contextmanager
    def attached(self) -> Iterator["DrmApiMonitor"]:
        self.attach()
        try:
            yield self
        finally:
            self.detach()

    def observation(self) -> DrmApiObservation:
        monitor = self.oecc
        records = monitor.records
        return DrmApiObservation(
            widevine_used=monitor.widevine_active(),
            security_level=monitor.observed_security_level(),
            oecc_call_count=len(records),
            functions_seen=tuple(sorted({r.function for r in records})),
        )

    def clear(self) -> None:
        self.oecc.clear()


def bypass_app_protections(app) -> None:
    """Apply the public Frida scripts to the *app's* process: defeat
    certificate pinning and neutralize anti-debug/SafetyNet checks.

    §IV-C: "using public Frida resources, we succeeded in bypassing SSL
    repinning on all OTT apps, which shows how ineffective such a
    security mechanism is."
    """
    if "frida" not in app.process.attached_instruments:
        app.process.attached_instruments.append("frida")
    app.protections_bypassed = True
    disable_ssl_pinning(app.http)
