"""MovieStealer — the 2013 baseline attack, and why it no longer works.

Wang et al. (USENIX Security 2013) stole streams by scanning the
*player application's* memory for decrypted media buffers, exploiting
pre-TEE DRM designs where the app itself held the clear content. §II-B:
"MovieStealer as defined in [6] does not work anymore, since the app
has never access to the decrypted buffer."

This module implements both halves of that claim:

- :class:`MovieStealer` — the baseline: scan a process's memory for
  decodable media samples;
- :class:`InsecureSoftwarePlayer` — a deliberately archaic app that
  decrypts in-process and keeps decoded frames in its own heap (the
  2013-era design), against which the baseline still succeeds.

Against any modern :class:`~repro.ott.app.OttApp` the scan comes back
empty: decrypted samples exist only inside the CDM/codec path, never in
the app's address space.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.android.device import AndroidDevice
from repro.android.process import Process
from repro.bmff.builder import read_samples, read_track_info
from repro.dash.mpd import Mpd
from repro.media.codecs import SAMPLE_MAGIC, validate_sample
from repro.ott.backend import OttBackend
from repro.ott.custom_drm import EmbeddedCdm
from repro.ott.profile import OttProfile

__all__ = ["MovieStealer", "MovieStealerResult", "InsecureSoftwarePlayer"]

_HEADER_SEQ_OFFSET = 6 + 24  # magic+kind+len+label
_HEADER_LEN = 4 + 1 + 1 + 24 + 4 + 4
_CHECKSUM_LEN = 8


@dataclass
class MovieStealerResult:
    """What the memory scan recovered."""

    process_name: str
    recovered_samples: list[bytes] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return bool(self.recovered_samples)


class MovieStealer:
    """Scan a process's readable memory for clear media samples."""

    def scan_process(self, process: Process) -> MovieStealerResult:
        result = MovieStealerResult(process_name=process.name)
        for region in process.readable_regions():
            blob = bytes(region.data)
            start = 0
            while True:
                index = blob.find(SAMPLE_MAGIC, start)
                if index < 0:
                    break
                start = index + 1
                header = blob[index : index + _HEADER_LEN]
                if len(header) < _HEADER_LEN:
                    continue
                payload_len = int.from_bytes(
                    header[_HEADER_LEN - 4 : _HEADER_LEN], "big"
                )
                total = _HEADER_LEN + payload_len + _CHECKSUM_LEN
                candidate = blob[index : index + total]
                if validate_sample(candidate).valid:
                    result.recovered_samples.append(candidate)
        return result

    def run(self, device: AndroidDevice, package: str) -> MovieStealerResult:
        """Attack an installed app by process name (needs root)."""
        if not device.rooted:
            raise PermissionError("memory scanning requires a rooted device")
        return self.scan_process(device.find_process(package))


class InsecureSoftwarePlayer:
    """A 2013-style app: in-process DRM, decoded frames on the heap.

    Uses an embedded software CDM (the service must expose the
    embedded-license endpoint) and — the fatal design — writes every
    decrypted sample into its own mapped memory before "rendering".
    """

    def __init__(
        self, profile: OttProfile, device: AndroidDevice, backend: OttBackend
    ):
        if not profile.custom_drm_on_l3:
            raise ValueError(
                "the insecure player needs a service with an embedded-"
                "license endpoint (custom_drm_on_l3=True)"
            )
        self.profile = profile
        self.device = device
        self.backend = backend
        self.process = device.spawn_app_process(profile.package)
        self.http = device.new_http_client()
        self._heap = self.process.map_region(f"{profile.package}:decoded-frames", 0)

    def play(self, title_id: str | None = None, *, language: str = "en") -> bool:
        """Play a title, leaving decoded frames strewn across the heap."""
        if title_id is None:
            title_id = next(iter(self.backend.catalog)).title_id
        token_resp = self.http.post(
            f"https://{self.profile.api_host}/auth",
            json.dumps({"username": "alice"}).encode(),
        )
        token = json.loads(token_resp.body.decode())["token"]

        playback = self.http.get(
            f"https://{self.profile.api_host}/playback"
            f"?title={title_id}&token={token}"
        )
        mpd = Mpd.from_xml(
            self.http.get(json.loads(playback.body.decode())["mpd_url"]).body
        )

        cdm = EmbeddedCdm(self.profile.service)
        license_resp = self.http.post(
            f"https://{self.profile.api_host}/embedded-license?token={token}",
            cdm.build_key_request(title_id),
        )
        if not license_resp.ok:
            return False
        cdm.load_keys(license_resp.body)

        frames: list[bytes] = []
        for aset in mpd.sets_of_type("video"):
            for rep in aset.representations:
                if (rep.height or 0) > 540:
                    continue
                init = self.http.get(rep.init_url).body
                info = read_track_info(init)
                for url in rep.segment_urls:
                    samples, protected = read_samples(
                        self.http.get(url).body, iv_size=info.iv_size
                    )
                    for sample in samples:
                        if protected:
                            assert info.default_kid is not None
                            clear = cdm.decrypt(
                                info.default_kid,
                                sample.data,
                                sample.entry.iv,
                                [
                                    (s.clear_bytes, s.protected_bytes)
                                    for s in sample.entry.subsamples
                                ],
                            )
                        else:
                            clear = sample.data
                        if not validate_sample(clear).valid:
                            return False
                        frames.append(clear)
        # The 2013 mistake: clear frames linger in app memory.
        heap = b"".join(frames)
        self.process.unmap_region(self._heap)
        self._heap = self.process.map_region(
            f"{self.profile.package}:decoded-frames", len(heap)
        )
        self._heap.write(0, heap)
        return True
