"""Parallel study orchestration.

The paper's study (§IV) is embarrassingly parallel across apps: every
research question and the §IV-D attack run the same pipeline against a
different service's backend. :class:`ParallelStudyRunner` fans
:meth:`~repro.core.study.WideLeakStudy.study_app` and
:meth:`~repro.core.study.WideLeakStudy.run_attack` out over a thread
pool while keeping the output **byte-identical** to the sequential run.

Isolation model
---------------

Shared, read-mostly world: the :class:`~repro.net.network.Network`
registry, the :class:`~repro.license_server.provisioning.KeyboxAuthority`
and the ten service backends are built once and shared — their mutable
registries are lock-protected, and each worker task only exercises its
own app's service origins.

Per-task device sessions: the sequential study reuses two shared
devices across all ten apps, which is unshareable state under
concurrency (plugin sessions, traces, persistent stores). Each parallel
task therefore boots a fresh :class:`DeviceSession` — the same device
models with the *same serials*, hence the same factory keyboxes and the
same derived crypto. Because every pipeline stage is a deterministic
function of (backend, freshly-booted device) and never of accumulated
device history, per-app results — and therefore the assembled
``StudyResult`` — come out byte-identical to the sequential run (the
test suite asserts this).

Determinism notwithstanding ``jobs``: results are assembled in profile
order after all futures resolve, so scheduling order never leaks into
the artifact.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.android.device import AndroidDevice, nexus_5, pixel_6
from repro.core.report import TableOne
from repro.obs.bus import ObservabilityBus
from repro.core.study import (
    AppStudyResult,
    AttackStudyResult,
    StudyResult,
    WideLeakStudy,
)
from repro.ott.profile import OttProfile

__all__ = ["DeviceSession", "ParallelStudyRunner"]


class DeviceSession:
    """A worker's own researcher-device pair, booted against the shared
    world.

    Mirrors the sequential study's setup: a current L1 Pixel 6 and the
    discontinued L3 Nexus 5, both rooted. The serials match the shared
    devices', so the keybox authority sees the same factory keyboxes
    (registration is last-writer-wins with identical values) and every
    derived key matches the sequential run's.
    """

    def __init__(self, study: WideLeakStudy):
        # The worker's own bus — context propagates by travelling with
        # the session's devices, never through thread-locals. Folded
        # back into the study's bus in profile order once the worker's
        # task resolves, so the merged recording matches the sequential
        # run span-for-span. The study's sampler is shared (decisions
        # are a pure function of the root identity), so sampling keeps
        # the same app trees under any jobs count.
        self.obs = ObservabilityBus(
            enabled=study.obs.enabled, sampler=study.obs.sampler
        )
        self.l1_device: AndroidDevice = pixel_6(
            study.network, study.authority, obs=self.obs
        )
        self.l1_device.rooted = True
        self.legacy_device: AndroidDevice = nexus_5(
            study.network, study.authority, obs=self.obs
        )
        self.legacy_device.rooted = True


class ParallelStudyRunner:
    """Run the WideLeak study with a configurable degree of parallelism.

    ``jobs=1`` (the default) delegates straight to the sequential
    :meth:`WideLeakStudy.run` / :meth:`WideLeakStudy.run_all_attacks`
    code paths; ``jobs>1`` fans apps out across a
    :class:`~concurrent.futures.ThreadPoolExecutor`.
    """

    def __init__(
        self,
        study: WideLeakStudy | None = None,
        *,
        jobs: int = 1,
        profiles: tuple[OttProfile, ...] | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if study is not None and profiles is not None:
            raise ValueError("pass either a study or profiles, not both")
        self.study = study if study is not None else WideLeakStudy(profiles=profiles)
        self.jobs = jobs

    # -- helpers ---------------------------------------------------------------

    def _effective_jobs(self, task_count: int) -> int:
        return max(1, min(self.jobs, task_count))

    def _study_one(
        self, profile: OttProfile
    ) -> tuple[AppStudyResult, ObservabilityBus]:
        session = DeviceSession(self.study)
        result = self.study.study_app(
            profile,
            l1_device=session.l1_device,
            legacy_device=session.legacy_device,
        )
        return result, session.obs

    def _attack_one(
        self, profile: OttProfile
    ) -> tuple[AttackStudyResult, ObservabilityBus]:
        session = DeviceSession(self.study)
        result = self.study.run_attack(
            profile, legacy_device=session.legacy_device
        )
        return result, session.obs

    # -- the study -------------------------------------------------------------

    def run(self) -> StudyResult:
        """Q1–Q4 across every profile; Table I in profile order."""
        profiles = self.study.profiles
        jobs = self._effective_jobs(len(profiles))
        if jobs == 1:
            return self.study.run()

        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="wideleak-study"
        ) as pool:
            outcomes = list(pool.map(self._study_one, profiles))

        result = StudyResult(table=TableOne(), obs=self.study.obs)
        # Assembly — and bus merging — happen in profile order, so both
        # the artifact and the merged trace are scheduling-independent.
        for profile, (app_result, worker_bus) in zip(profiles, outcomes):
            self.study.obs.absorb(worker_bus)
            result.apps[profile.name] = app_result
            result.table.add(self.study._to_row(app_result))
        return result

    # -- §IV-D -----------------------------------------------------------------

    def run_all_attacks(self) -> dict[str, AttackStudyResult]:
        """The key-ladder attack sweep, fanned out per app."""
        profiles = self.study.profiles
        jobs = self._effective_jobs(len(profiles))
        if jobs == 1:
            return self.study.run_all_attacks()

        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="wideleak-attack"
        ) as pool:
            outcomes = list(pool.map(self._attack_one, profiles))
        results: dict[str, AttackStudyResult] = {}
        for profile, (outcome, worker_bus) in zip(profiles, outcomes):
            self.study.obs.absorb(worker_bus)
            results[profile.name] = outcome
        return results
