"""Table I construction, rendering and comparison against the paper.

Cells use the paper's notation:

- Q1 / Q4 status: ``●`` (works), ``◐`` (Widevine fails during
  provisioning, the paper's G#), ``✗`` (failed outright); a trailing
  ``†`` marks Amazon's custom-DRM-on-L3 behaviour;
- Q2: ``Encrypted`` / ``Clear`` / ``-`` (asset not obtainable);
- Q3: ``Minimum`` / ``Recommended`` / ``-`` (could not conclude).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "TableOneRow",
    "TableOne",
    "CrossCheckRow",
    "CrossCheckTable",
    "EXPECTED_PAPER_TABLE",
    "expected_row",
]

FULL = "●"
HALF = "◐"
FAIL = "✗"
DAGGER = "†"


@dataclass(frozen=True)
class TableOneRow:
    """One OTT app's row."""

    app: str
    widevine_used: str  # "●", "●†", "✗"
    video: str
    audio: str
    subtitles: str
    key_usage: str
    legacy_playback: str  # "●", "●†", "◐", "✗"

    def cells(self) -> tuple[str, ...]:
        return (
            self.app,
            self.widevine_used,
            self.video,
            self.audio,
            self.subtitles,
            self.key_usage,
            self.legacy_playback,
        )


_HEADERS = (
    "OTT",
    "Widevine (Q1)",
    "Video (Q2)",
    "Audio (Q2)",
    "Subtitles (Q2)",
    "Key Usage (Q3)",
    "L3 legacy (Q4)",
)


@dataclass
class TableOne:
    """The study's headline table."""

    rows: list[TableOneRow] = field(default_factory=list)

    def add(self, row: TableOneRow) -> None:
        self.rows.append(row)

    def row_for(self, app: str) -> TableOneRow:
        for row in self.rows:
            if row.app == app:
                return row
        raise KeyError(f"no row for app {app!r}")

    def render(self) -> str:
        """Fixed-width text rendering of Table I."""
        table = [_HEADERS] + [row.cells() for row in self.rows]
        widths = [
            max(len(row[col]) for row in table) for col in range(len(_HEADERS))
        ]
        lines = []
        for index, row in enumerate(table):
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            )
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (for reports/docs)."""
        lines = ["| " + " | ".join(_HEADERS) + " |"]
        lines.append("|" + "|".join("---" for _ in _HEADERS) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row.cells()) + " |")
        return "\n".join(lines)

    def diff_against_paper(self) -> list[str]:
        """Cell-level differences from the published Table I."""
        differences: list[str] = []
        for app, expected in EXPECTED_PAPER_TABLE.items():
            try:
                actual = self.row_for(app)
            except KeyError:
                differences.append(f"{app}: row missing")
                continue
            for header, want, got in zip(
                _HEADERS[1:], expected.cells()[1:], actual.cells()[1:]
            ):
                if want != got:
                    differences.append(
                        f"{app} / {header}: paper={want!r} measured={got!r}"
                    )
        return differences

    @property
    def matches_paper(self) -> bool:
        return not self.diff_against_paper()


@dataclass(frozen=True)
class CrossCheckRow:
    """Static-vs-dynamic reconciliation counts for one app (§IV-B).

    ``confirmed`` static call sites had OEMCrypto evidence in the
    monitored playback; ``dead_code`` ones have no call-graph path from
    any entry point (the measured over-approximation); ``dynamic_only``
    counts hooked activity no static site accounts for.
    """

    app: str
    confirmed: int
    dead_code: int
    static_unobserved: int  # reachable, but no evidence this playback
    dynamic_only: int


_CROSSCHECK_HEADERS = (
    "OTT",
    "Confirmed",
    "Static-only (dead code)",
    "Static-only (unobserved)",
    "Dynamic-only",
)


@dataclass
class CrossCheckTable:
    """Companion table to Table I: how the two §IV-B prongs reconcile."""

    rows: list[CrossCheckRow] = field(default_factory=list)

    def add(self, row: CrossCheckRow) -> None:
        self.rows.append(row)

    def render(self) -> str:
        table = [_CROSSCHECK_HEADERS] + [
            (
                row.app,
                str(row.confirmed),
                str(row.dead_code),
                str(row.static_unobserved),
                str(row.dynamic_only),
            )
            for row in self.rows
        ]
        widths = [
            max(len(line[col]) for line in table)
            for col in range(len(_CROSSCHECK_HEADERS))
        ]
        lines = []
        for index, line in enumerate(table):
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
            )
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)


# The published Table I, cell for cell (ground truth for comparisons).
EXPECTED_PAPER_TABLE: dict[str, TableOneRow] = {
    row.app: row
    for row in (
        TableOneRow("Netflix", FULL, "Encrypted", "Clear", "Clear", "Minimum", FULL),
        TableOneRow(
            "Disney+", FULL, "Encrypted", "Encrypted", "Clear", "Minimum", HALF
        ),
        TableOneRow(
            "Amazon Prime Video",
            FULL + DAGGER,
            "Encrypted",
            "Encrypted",
            "Clear",
            "Recommended",
            FULL + DAGGER,
        ),
        TableOneRow("Hulu", FULL, "Encrypted", "Encrypted", "-", "-", FULL),
        TableOneRow(
            "HBO Max", FULL, "Encrypted", "Encrypted", "Clear", "-", HALF
        ),
        TableOneRow("Starz", FULL, "Encrypted", "Encrypted", "-", "Minimum", HALF),
        TableOneRow("myCanal", FULL, "Encrypted", "Clear", "Clear", "Minimum", FULL),
        TableOneRow(
            "Showtime", FULL, "Encrypted", "Encrypted", "Clear", "Minimum", FULL
        ),
        TableOneRow("OCS", FULL, "Encrypted", "Encrypted", "Clear", "Minimum", FULL),
        TableOneRow("Salto", FULL, "Encrypted", "Clear", "Clear", "Minimum", FULL),
    )
}


def expected_row(app: str) -> TableOneRow:
    """The paper's row for *app* (KeyError if the paper didn't evaluate it)."""
    return EXPECTED_PAPER_TABLE[app]
