"""Legacy-device probing — the Q4 pipeline (§IV-B "Outdated Device").

"Our approach is straightforward: we use [a] Nexus 5 phone to display
content ... We also keep monitoring all calls to Widevine. We
distinguish two cases: (1) the app can display Widevine protected
content, and (2) the app uses Widevine, but no content can be
displayed."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.android.device import AndroidDevice
from repro.core.monitor import DrmApiMonitor, DrmApiObservation
from repro.ott.app import OttApp, PlaybackResult

__all__ = ["LegacyOutcome", "LegacyProbeResult", "LegacyDeviceProbe"]


class LegacyOutcome(enum.Enum):
    """Table I's Q4 column values."""

    PLAYS = "plays"  # filled circle
    PLAYS_CUSTOM_DRM = "plays-custom-drm"  # filled circle with dagger
    PROVISIONING_FAILED = "provisioning-failed"  # half circle (G#)
    LICENSE_DENIED = "license-denied"
    OTHER_FAILURE = "other-failure"


@dataclass
class LegacyProbeResult:
    """Q4 verdict for one app on one discontinued device."""

    service: str
    device_model: str
    outcome: LegacyOutcome
    playback: PlaybackResult
    observation: DrmApiObservation
    video_height: int | None = None

    @property
    def content_delivered(self) -> bool:
        return self.outcome in (
            LegacyOutcome.PLAYS,
            LegacyOutcome.PLAYS_CUSTOM_DRM,
        )


class LegacyDeviceProbe:
    """Runs Q4 against a discontinued device."""

    def __init__(self, device: AndroidDevice):
        if not device.spec.discontinued:
            raise ValueError(
                f"{device.spec.model} still receives updates; Q4 probes a "
                "discontinued device"
            )
        self.device = device

    def probe(self, app: OttApp, *, title_id: str | None = None) -> LegacyProbeResult:
        monitor = DrmApiMonitor(self.device)
        with monitor.attached():
            playback = app.play(title_id)
            observation = monitor.observation()

        if playback.ok and playback.used_custom_drm:
            outcome = LegacyOutcome.PLAYS_CUSTOM_DRM
        elif playback.ok:
            outcome = LegacyOutcome.PLAYS
        elif playback.provisioning_failed:
            outcome = LegacyOutcome.PROVISIONING_FAILED
        elif playback.error and "license" in playback.error.lower():
            outcome = LegacyOutcome.LICENSE_DENIED
        else:
            outcome = LegacyOutcome.OTHER_FAILURE

        return LegacyProbeResult(
            service=app.profile.service,
            device_model=self.device.spec.model,
            outcome=outcome,
            playback=playback,
            observation=observation,
            video_height=playback.video_height,
        )
