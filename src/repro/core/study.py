"""The WideLeak study orchestrator (§IV).

Builds the whole world — network, keybox authority, the ten service
backends, a current L1 device and a discontinued Nexus 5 — and runs the
four research questions per app:

- **Q1** from the DRM API monitor during an audited playback;
- **Q2** from the content-protection audit (URI recovery + account-less
  downloads + player probes);
- **Q3** from key-id attribution over the captured manifest and the
  service metadata endpoint;
- **Q4** from the legacy-device probe.

Table I is assembled from these *measurements*; nothing is copied from
profile configuration. :meth:`WideLeakStudy.run_attack` additionally
executes the §IV-D key-ladder PoC per app.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.crosscheck import CrossCheckResult, cross_check
from repro.analysis.engine import ApkAnalysisReport
from repro.analysis.engine import analyze as analyze_dataflow
from repro.android.device import AndroidDevice, nexus_5, pixel_6
from repro.core.content_audit import ContentAuditor, ContentAuditResult
from repro.core.key_usage import KeyUsageAnalyzer, KeyUsageReport
from repro.core.keyladder_attack import KeyLadderAttack, KeyLadderAttackResult
from repro.core.legacy_probe import (
    LegacyDeviceProbe,
    LegacyOutcome,
    LegacyProbeResult,
)
from repro.core.media_recovery import MediaRecoveryPipeline, RecoveredMedia
from repro.core.report import (
    DAGGER,
    FAIL,
    FULL,
    HALF,
    CrossCheckRow,
    CrossCheckTable,
    TableOne,
    TableOneRow,
)
from repro.core.static_analysis import StaticAnalysisReport, analyze_apk
from repro.license_server.provisioning import KeyboxAuthority
from repro.media.player import AssetStatus
from repro.net.network import Network
from repro.obs.bus import ObservabilityBus
from repro.obs.sampling import TraceSampler
from repro.ott.app import OttApp
from repro.ott.backend import OttBackend
from repro.ott.profile import OttProfile
from repro.ott.registry import ALL_PROFILES

__all__ = [
    "AppCellArtifact",
    "AppStudyResult",
    "AttackCellArtifact",
    "AttackStudyResult",
    "StudyResult",
    "WideLeakStudy",
]


@dataclass
class AppStudyResult:
    """All four research-question results for one app."""

    profile: OttProfile
    static: StaticAnalysisReport
    audit: ContentAuditResult
    key_usage: KeyUsageReport
    legacy: LegacyProbeResult
    # Deep static analysis (repro.analysis): reachability-classified DRM
    # call sites + taint findings, and the reconciliation of those call
    # sites against the Q1 monitor's observations.
    analysis: ApkAnalysisReport | None = None
    crosscheck: CrossCheckResult | None = None

    def crosscheck_row(self) -> CrossCheckRow:
        check = self.crosscheck
        if check is None:
            return CrossCheckRow(self.profile.name, 0, 0, 0, 0)
        counts = check.counts()
        return CrossCheckRow(
            app=self.profile.name,
            confirmed=counts["confirmed"],
            dead_code=counts["dead_code"],
            static_unobserved=counts["static_only"] - counts["dead_code"],
            dynamic_only=counts["dynamic_only"],
        )


@dataclass(frozen=True)
class AppCellArtifact:
    """JSON-serializable projection of one app's Q1–Q4 results.

    Exactly the facts the study artifact consumes — the Table I row,
    the per-app section of :meth:`StudyResult.to_json` and every
    scalar :meth:`StudyResult.summary` reads. ``StudyResult`` routes
    its own serialization through these projections, so a result
    assembled from persisted artifacts (the fleet's incremental
    re-runs) is byte-identical to one assembled from live pipeline
    objects.
    """

    app: str
    row: tuple[str, ...]  # Table I cells, in TableOneRow.cells() order
    # (confirmed, dead_code, static_unobserved, dynamic_only)
    crosscheck_row: tuple[int, int, int, int]
    widevine_used: bool
    video_status: str | None  # AssetStatus.value, None = not obtainable
    audio_status: str | None
    text_status: str | None
    key_usage: str | None  # KeyUsagePolicy.value, None = inconclusive
    legacy_outcome: str  # LegacyOutcome.value
    legacy_content_delivered: bool
    legacy_video_height: int | None
    security_level: str | None
    oecc_calls: int
    secure_channel: bool
    reachable_key_leak: bool
    dead_drm_code: bool
    analysis: dict | None  # ApkAnalysisReport.to_dict()
    crosscheck: dict | None  # counts + dynamic-only functions

    @classmethod
    def from_result(cls, result: "AppStudyResult") -> "AppCellArtifact":
        audit = result.audit

        def status(kind: str) -> str | None:
            value = audit.status_for(kind)
            return None if value is None else value.value

        key_usage = result.key_usage.classification
        check_row = result.crosscheck_row()
        return cls(
            app=result.profile.name,
            row=WideLeakStudy._to_row(result).cells(),
            crosscheck_row=(
                check_row.confirmed,
                check_row.dead_code,
                check_row.static_unobserved,
                check_row.dynamic_only,
            ),
            widevine_used=audit.observation.widevine_used,
            video_status=status("video"),
            audio_status=status("audio"),
            text_status=status("text"),
            key_usage=None if key_usage is None else key_usage.value,
            legacy_outcome=result.legacy.outcome.value,
            legacy_content_delivered=result.legacy.content_delivered,
            legacy_video_height=result.legacy.video_height,
            security_level=audit.observation.security_level,
            oecc_calls=audit.observation.oecc_call_count,
            secure_channel=audit.secure_channel_manifest_recovered,
            reachable_key_leak=(
                result.analysis is not None
                and any(f.reachable for f in result.analysis.taint_findings)
            ),
            dead_drm_code=(
                result.analysis is not None and bool(result.analysis.dead_sites)
            ),
            analysis=(
                None if result.analysis is None else result.analysis.to_dict()
            ),
            crosscheck=(
                None
                if result.crosscheck is None
                else {
                    **result.crosscheck.counts(),
                    "dynamic_only_functions": list(result.crosscheck.dynamic_only),
                }
            ),
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "app": self.app,
            "row": list(self.row),
            "crosscheck_row": list(self.crosscheck_row),
            "widevine_used": self.widevine_used,
            "video_status": self.video_status,
            "audio_status": self.audio_status,
            "text_status": self.text_status,
            "key_usage": self.key_usage,
            "legacy_outcome": self.legacy_outcome,
            "legacy_content_delivered": self.legacy_content_delivered,
            "legacy_video_height": self.legacy_video_height,
            "security_level": self.security_level,
            "oecc_calls": self.oecc_calls,
            "secure_channel": self.secure_channel,
            "reachable_key_leak": self.reachable_key_leak,
            "dead_drm_code": self.dead_drm_code,
            "analysis": self.analysis,
            "crosscheck": self.crosscheck,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AppCellArtifact":
        data = dict(payload)
        data["row"] = tuple(data["row"])
        data["crosscheck_row"] = tuple(data["crosscheck_row"])
        return cls(**data)

    def table_row(self) -> TableOneRow:
        return TableOneRow(*self.row)

    def app_json(self) -> dict[str, object]:
        """The per-app section of :meth:`StudyResult.to_json`."""
        return {
            "security_level": self.security_level,
            "oecc_calls": self.oecc_calls,
            "secure_channel": self.secure_channel,
            "legacy_outcome": self.legacy_outcome,
            "legacy_video_height": self.legacy_video_height,
            "analysis": self.analysis,
            "crosscheck": self.crosscheck,
        }


@dataclass
class AttackStudyResult:
    """§IV-D outcome for one app."""

    profile: OttProfile
    attack: KeyLadderAttackResult
    recovered: RecoveredMedia | None


@dataclass(frozen=True)
class AttackCellArtifact:
    """JSON-serializable projection of one §IV-D attack outcome."""

    app: str
    device_model: str
    keybox_recovered: bool
    rsa_recovered: bool
    licenses_observed: int
    content_keys: tuple[tuple[str, str], ...]  # (kid hex, key hex)
    notes: tuple[str, ...]
    recovery_attempted: bool
    recovery_succeeded: bool
    best_video_height: int | None

    @classmethod
    def from_result(cls, result: AttackStudyResult) -> "AttackCellArtifact":
        attack = result.attack
        recovered = result.recovered
        return cls(
            app=result.profile.name,
            device_model=attack.device_model,
            keybox_recovered=attack.keybox_recovered,
            rsa_recovered=attack.rsa_recovered,
            licenses_observed=attack.licenses_observed,
            content_keys=tuple(
                (kid.hex(), key.hex())
                for kid, key in attack.content_keys.items()
            ),
            notes=tuple(attack.notes),
            recovery_attempted=recovered is not None,
            recovery_succeeded=recovered is not None and recovered.succeeded,
            best_video_height=(
                None if recovered is None else recovered.best_video_height
            ),
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "app": self.app,
            "device_model": self.device_model,
            "keybox_recovered": self.keybox_recovered,
            "rsa_recovered": self.rsa_recovered,
            "licenses_observed": self.licenses_observed,
            "content_keys": [list(pair) for pair in self.content_keys],
            "notes": list(self.notes),
            "recovery_attempted": self.recovery_attempted,
            "recovery_succeeded": self.recovery_succeeded,
            "best_video_height": self.best_video_height,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AttackCellArtifact":
        data = dict(payload)
        data["content_keys"] = tuple(
            tuple(pair) for pair in data["content_keys"]
        )
        data["notes"] = tuple(data["notes"])
        return cls(**data)


@dataclass
class StudyResult:
    """Everything one full study run produced."""

    table: TableOne
    apps: dict[str, AppStudyResult] = field(default_factory=dict)
    # The bus the run observed through; carries the aggregate metrics
    # for summary()/report and the span tree for the trace exporters.
    obs: ObservabilityBus | None = field(default=None, repr=False, compare=False)
    # Per-app artifact projections. Live runs fill this lazily from
    # ``apps``; the fleet assembler pre-populates it from the result
    # store (in which case ``apps`` stays empty). Everything the
    # artifact emits — summary(), to_json(), the cross-check table —
    # reads from here, so both construction paths share one code path.
    cells: dict[str, AppCellArtifact] = field(
        default_factory=dict, repr=False, compare=False
    )

    def cell_artifacts(self) -> dict[str, AppCellArtifact]:
        """The per-app artifact projections, in profile order."""
        for name, app in self.apps.items():
            if name not in self.cells:
                self.cells[name] = AppCellArtifact.from_result(app)
        return self.cells

    def crosscheck_table(self) -> CrossCheckTable:
        """Static-vs-dynamic reconciliation, one row per app."""
        table = CrossCheckTable()
        for name, cell in self.cell_artifacts().items():
            table.add(CrossCheckRow(name, *cell.crosscheck_row))
        return table

    def metrics_table(self) -> str:
        """The run's aggregate observability metrics, rendered."""
        from repro.obs.export import render_metrics_table

        if self.obs is None:
            return "(no observability bus attached)"
        return render_metrics_table(self.obs)

    def summary(self) -> dict[str, object]:
        """The paper's headline counts, computed from measurements."""
        cells = self.cell_artifacts()
        # Deterministic bus counters only — request/byte/flow/license
        # totals are functions of the study inputs, so they survive the
        # byte-identity contract (sequential == parallel, cold == warm).
        # Span *durations* are wall-clock and stay out of the artifact.
        observability: dict[str, object] = {}
        if self.obs is not None and self.obs.enabled:
            observability = {"counters": dict(self.obs.metrics.counters())}
        clear = AssetStatus.CLEAR.value
        encrypted = AssetStatus.ENCRYPTED.value
        return {
            "observability": observability,
            "apps_with_reachable_key_leaks": sorted(
                name for name, cell in cells.items() if cell.reachable_key_leak
            ),
            "apps_with_dead_drm_code": sorted(
                name for name, cell in cells.items() if cell.dead_drm_code
            ),
            "apps_evaluated": len(cells),
            "apps_using_widevine": sum(
                1 for cell in cells.values() if cell.widevine_used
            ),
            "apps_with_clear_audio": sorted(
                name
                for name, cell in cells.items()
                if cell.audio_status == clear
            ),
            "apps_with_encrypted_video": sum(
                1 for cell in cells.values() if cell.video_status == encrypted
            ),
            "apps_with_clear_subtitles": sum(
                1 for cell in cells.values() if cell.text_status == clear
            ),
            "apps_following_recommended_keys": sorted(
                name
                for name, cell in cells.items()
                if cell.key_usage == "Recommended"
            ),
            "apps_revoking_legacy_devices": sorted(
                name
                for name, cell in cells.items()
                if cell.legacy_outcome == LegacyOutcome.PROVISIONING_FAILED.value
            ),
            "apps_serving_legacy_devices": sum(
                1 for cell in cells.values() if cell.legacy_content_delivered
            ),
        }

    def to_json(self) -> str:
        """Machine-readable artifact of the whole run."""
        import json

        payload = {
            "summary": self.summary(),
            "table1": [
                {
                    "app": row.app,
                    "widevine": row.widevine_used,
                    "video": row.video,
                    "audio": row.audio,
                    "subtitles": row.subtitles,
                    "key_usage": row.key_usage,
                    "legacy_playback": row.legacy_playback,
                }
                for row in self.table.rows
            ],
            "matches_paper": self.table.matches_paper,
            "apps": {
                name: cell.app_json()
                for name, cell in self.cell_artifacts().items()
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)


class WideLeakStudy:
    """One self-contained instance of the WideLeak experiment."""

    def __init__(
        self,
        profiles: tuple[OttProfile, ...] | None = None,
        *,
        obs: ObservabilityBus | None = None,
        sampler: TraceSampler | None = None,
    ):
        self.profiles = profiles if profiles is not None else ALL_PROFILES
        # One bus for the whole (sequential) study: world construction,
        # packaging, every per-app pipeline. The parallel runner gives
        # each worker session its own bus — sharing this bus's sampler,
        # so every worker makes identical keep/drop decisions — and
        # merges them back here.
        if obs is not None and sampler is not None:
            raise ValueError(
                "pass either a bus (which carries its own sampler) or a "
                "sampler, not both"
            )
        self.obs = obs if obs is not None else ObservabilityBus(sampler=sampler)
        self.network = Network()
        self.authority = KeyboxAuthority()
        self.backends: dict[str, OttBackend] = {
            profile.service: OttBackend(
                profile, self.network, self.authority, obs=self.obs
            )
            for profile in self.profiles
        }
        # Researcher-controlled (rooted) devices, per the DRM threat model.
        self.l1_device: AndroidDevice = pixel_6(
            self.network, self.authority, obs=self.obs
        )
        self.l1_device.rooted = True
        self.legacy_device: AndroidDevice = nexus_5(
            self.network, self.authority, obs=self.obs
        )
        self.legacy_device.rooted = True

    @classmethod
    def with_default_apps(
        cls,
        *,
        obs: ObservabilityBus | None = None,
        sampler: TraceSampler | None = None,
    ) -> "WideLeakStudy":
        """The paper's setup: all ten premium OTT apps."""
        return cls(obs=obs, sampler=sampler)

    # -- single-app pipeline ---------------------------------------------------

    def study_app(
        self,
        profile: OttProfile,
        *,
        l1_device: AndroidDevice | None = None,
        legacy_device: AndroidDevice | None = None,
    ) -> AppStudyResult:
        """Run Q1–Q4 for one app.

        The device pair defaults to the study's shared devices; the
        parallel runner injects per-worker sessions instead so
        concurrent app studies never share mutable device state. Either
        way the per-app results are identical: each pipeline stage is a
        deterministic function of the app's backend and a booted device,
        never of what other apps did to the device before (asserted by
        the parallel-determinism tests).
        """
        l1_device = l1_device or self.l1_device
        legacy_device = legacy_device or self.legacy_device
        backend = self.backends[profile.service]

        # One root span per app, on the bus that travels with the
        # executing worker's devices — the study's own bus when running
        # sequentially, the session's bus under the parallel runner.
        with l1_device.obs.span("study.app", app=profile.name):
            app_l1 = OttApp(profile, l1_device, backend)
            static = analyze_apk(app_l1.apk)
            analysis = analyze_dataflow(app_l1.apk)
            audit = ContentAuditor(l1_device, self.network).audit(app_l1)
            key_usage = KeyUsageAnalyzer().analyze(app_l1, audit.mpd_bytes)

            app_legacy = OttApp(profile, legacy_device, backend)
            legacy = LegacyDeviceProbe(legacy_device).probe(app_legacy)

            return AppStudyResult(
                profile=profile,
                static=static,
                audit=audit,
                key_usage=key_usage,
                legacy=legacy,
                analysis=analysis,
                crosscheck=cross_check(
                    profile.package, analysis.call_sites, audit.observation
                ),
            )

    # -- the full study -----------------------------------------------------------

    def run(self) -> StudyResult:
        result = StudyResult(table=TableOne(), obs=self.obs)
        for profile in self.profiles:
            app_result = self.study_app(profile)
            result.apps[profile.name] = app_result
            result.table.add(self._to_row(app_result))
        return result

    @staticmethod
    def _to_row(app_result: AppStudyResult) -> TableOneRow:
        audit = app_result.audit
        legacy = app_result.legacy

        custom_on_l3 = legacy.outcome is LegacyOutcome.PLAYS_CUSTOM_DRM
        if audit.observation.widevine_used:
            widevine_cell = FULL + (DAGGER if custom_on_l3 else "")
        else:
            widevine_cell = FAIL

        def q2_cell(kind: str) -> str:
            status = audit.status_for(kind)
            if status is None:
                return "-"
            return {
                AssetStatus.CLEAR: "Clear",
                AssetStatus.ENCRYPTED: "Encrypted",
                AssetStatus.CORRUPT: "Corrupt",
            }[status]

        key_usage = app_result.key_usage.classification
        key_cell = key_usage.value if key_usage is not None else "-"

        legacy_cell = {
            LegacyOutcome.PLAYS: FULL,
            LegacyOutcome.PLAYS_CUSTOM_DRM: FULL + DAGGER,
            LegacyOutcome.PROVISIONING_FAILED: HALF,
            LegacyOutcome.LICENSE_DENIED: HALF,
            LegacyOutcome.OTHER_FAILURE: FAIL,
        }[legacy.outcome]

        return TableOneRow(
            app=app_result.profile.name,
            widevine_used=widevine_cell,
            video=q2_cell("video"),
            audio=q2_cell("audio"),
            subtitles=q2_cell("text"),
            key_usage=key_cell,
            legacy_playback=legacy_cell,
        )

    # -- §IV-D practical impact ----------------------------------------------------

    def run_attack(
        self,
        profile: OttProfile,
        *,
        legacy_device: AndroidDevice | None = None,
    ) -> AttackStudyResult:
        """Key-ladder attack + media reconstruction for one app on the
        discontinued device.

        ``legacy_device`` follows the same injection convention as
        :meth:`study_app`.
        """
        legacy_device = legacy_device or self.legacy_device
        backend = self.backends[profile.service]
        with legacy_device.obs.span("study.attack", app=profile.name):
            app = OttApp(profile, legacy_device, backend)
            attack = KeyLadderAttack(legacy_device).run(app)

            recovered: RecoveredMedia | None = None
            if attack.content_keys:
                title_id = next(iter(backend.catalog)).title_id
                packaged = backend.packaged[title_id]
                mpd_url = f"https://{profile.cdn_host}{packaged.mpd_path}"
                recovered = MediaRecoveryPipeline(self.network).recover(
                    profile.service, mpd_url, attack.content_keys
                )
            return AttackStudyResult(
                profile=profile, attack=attack, recovered=recovered
            )

    def run_all_attacks(self) -> dict[str, AttackStudyResult]:
        """§IV-D across every evaluated app."""
        return {
            profile.name: self.run_attack(profile) for profile in self.profiles
        }
