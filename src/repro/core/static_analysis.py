"""Static analysis of OTT packages (§IV-B, first prong).

"We decompile the Java classes of the evaluated OTT apps to identify
some of the included Android classes. More specifically, we scan all
calls to MediaDrm and MediaCrypto methods that are required within a
Widevine session." Static results over-approximate (dead code), which
is why the pipeline pairs them with dynamic monitoring.

This module is the *flat* scan: API presence and call-site inventory.
The reachability- and dataflow-aware view (which of these call sites a
framework entry point can actually reach, and where key material flows
afterwards) lives in :mod:`repro.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.packages import Apk, decompile

__all__ = ["StaticAnalysisReport", "analyze_apk"]

_MEDIADRM_PREFIX = "android.media.MediaDrm"
_MEDIACRYPTO_PREFIX = "android.media.MediaCrypto"
_EXOPLAYER_PREFIX = "com.google.android.exoplayer2"


@dataclass
class StaticAnalysisReport:
    """What decompilation reveals about an app's DRM usage."""

    package: str
    uses_media_drm: bool = False
    uses_media_crypto: bool = False
    uses_exoplayer: bool = False
    drm_call_sites: list[tuple[str, str]] = field(default_factory=list)

    @property
    def uses_android_drm_api(self) -> bool:
        return self.uses_media_drm or self.uses_media_crypto


def analyze_apk(apk: Apk) -> StaticAnalysisReport:
    """Scan the decompiled class list for Android DRM API call sites.

    ExoPlayer detection covers both shipped ExoPlayer *classes* and
    apps that merely *call into* ``com.google.android.exoplayer2.*``
    (e.g. a thin wrapper around a prebuilt player AAR would show no
    exoplayer2 class of its own). Call sites are reported once per
    (class, callee) pair even when several methods — or the flat
    ``method_refs`` view plus a method body — reference the same API.
    """
    report = StaticAnalysisReport(package=apk.package)
    seen: set[tuple[str, str]] = set()
    for cls in decompile(apk):
        if cls.name.startswith(_EXOPLAYER_PREFIX):
            report.uses_exoplayer = True
        for ref in cls.all_refs():
            if ref.startswith(_EXOPLAYER_PREFIX):
                report.uses_exoplayer = True
            site = (cls.name, ref)
            if site in seen:
                continue
            if ref.startswith(_MEDIADRM_PREFIX):
                report.uses_media_drm = True
                seen.add(site)
                report.drm_call_sites.append(site)
            elif ref.startswith(_MEDIACRYPTO_PREFIX):
                report.uses_media_crypto = True
                seen.add(site)
                report.drm_call_sites.append(site)
    return report
