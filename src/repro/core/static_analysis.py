"""Static analysis of OTT packages (§IV-B, first prong).

"We decompile the Java classes of the evaluated OTT apps to identify
some of the included Android classes. More specifically, we scan all
calls to MediaDrm and MediaCrypto methods that are required within a
Widevine session." Static results over-approximate (dead code), which
is why the pipeline pairs them with dynamic monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.packages import Apk, decompile

__all__ = ["StaticAnalysisReport", "analyze_apk"]

_MEDIADRM_PREFIX = "android.media.MediaDrm"
_MEDIACRYPTO_PREFIX = "android.media.MediaCrypto"
_EXOPLAYER_PREFIX = "com.google.android.exoplayer2"


@dataclass
class StaticAnalysisReport:
    """What decompilation reveals about an app's DRM usage."""

    package: str
    uses_media_drm: bool = False
    uses_media_crypto: bool = False
    uses_exoplayer: bool = False
    drm_call_sites: list[tuple[str, str]] = field(default_factory=list)

    @property
    def uses_android_drm_api(self) -> bool:
        return self.uses_media_drm or self.uses_media_crypto


def analyze_apk(apk: Apk) -> StaticAnalysisReport:
    """Scan the decompiled class list for Android DRM API call sites."""
    report = StaticAnalysisReport(package=apk.package)
    for cls in decompile(apk):
        if cls.name.startswith(_EXOPLAYER_PREFIX):
            report.uses_exoplayer = True
        for ref in cls.method_refs:
            if ref.startswith(_MEDIADRM_PREFIX):
                report.uses_media_drm = True
                report.drm_call_sites.append((cls.name, ref))
            elif ref.startswith(_MEDIACRYPTO_PREFIX):
                report.uses_media_crypto = True
                report.drm_call_sites.append((cls.name, ref))
    return report
