"""DRM-free media reconstruction — the tail of §IV-D.

"Finally, we use MPEG-CENC to decrypt all protected contents. With some
processing, we reconstruct the pirated media and play it on another
device (i.e., personal computer) without any OTT account."

Given a manifest URI and the content keys recovered by
:mod:`repro.core.keyladder_attack`, this pipeline downloads every asset
with an account-less client, CENC-decrypts what it has keys for,
rebuilds clear init/media segments, and verifies the result with the
reference player — the "another device". Since the keys came from an
L3 session, HD representations stay undecryptable and the best playable
quality lands at 960x540 (qHD), the paper's headline limitation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bmff.builder import (
    build_init_segment,
    build_media_segment,
    read_samples,
    read_track_info,
)
from repro.bmff.cenc import decrypt_sample, decrypt_sample_cbcs
from repro.dash.mpd import Mpd, MpdParseError
from repro.media.player import AssetStatus, probe_subtitle, probe_track
from repro.net.network import HttpClient, Network

__all__ = ["RecoveredTrack", "RecoveredMedia", "MediaRecoveryPipeline"]


@dataclass
class RecoveredTrack:
    """One representation's recovery outcome."""

    rep_id: str
    kind: str
    height: int | None = None
    language: str | None = None
    was_encrypted: bool = False
    decrypted: bool = False
    playable: bool = False
    clear_init: bytes = b""
    clear_segments: list[bytes] = field(default_factory=list)
    note: str = ""


@dataclass
class RecoveredMedia:
    """A reconstructed, account-free copy of one title."""

    service: str
    title_id: str
    tracks: list[RecoveredTrack] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def best_video_height(self) -> int | None:
        heights = [
            t.height
            for t in self.tracks
            if t.kind == "video" and t.playable and t.height is not None
        ]
        return max(heights) if heights else None

    @property
    def playable_kinds(self) -> set[str]:
        return {t.kind for t in self.tracks if t.playable}

    @property
    def succeeded(self) -> bool:
        """DRM-free recovery counts once playable video exists."""
        return any(t.kind == "video" and t.playable for t in self.tracks)


class MediaRecoveryPipeline:
    """Downloads, decrypts and re-verifies a title outside any app."""

    def __init__(self, network: Network):
        # Deliberately a *fresh* client: no account, no pins, no device.
        self.client = HttpClient(network)

    def recover(
        self,
        service: str,
        mpd_url: str,
        content_keys: dict[bytes, bytes],
    ) -> RecoveredMedia:
        response = self.client.get(mpd_url)
        result = RecoveredMedia(service=service, title_id="")
        if not response.ok:
            result.notes.append(f"manifest download failed: {response.status}")
            return result
        try:
            mpd = Mpd.from_xml(response.body)
        except MpdParseError as exc:
            result.notes.append(f"manifest unparsable: {exc}")
            return result
        result.title_id = mpd.title_id

        for aset in mpd.adaptation_sets:
            for rep in aset.representations:
                if aset.content_type == "text":
                    result.tracks.append(self._recover_subtitle(rep, aset.lang))
                else:
                    result.tracks.append(
                        self._recover_av_track(
                            rep, aset.content_type, aset.lang, content_keys
                        )
                    )
        return result

    def _recover_subtitle(self, rep, language) -> RecoveredTrack:
        body = self.client.get(rep.init_url).body
        status = probe_subtitle(body)
        return RecoveredTrack(
            rep_id=rep.rep_id,
            kind="text",
            language=language,
            was_encrypted=status is AssetStatus.ENCRYPTED,
            decrypted=status is AssetStatus.CLEAR,
            playable=status is AssetStatus.CLEAR,
            clear_init=body if status is AssetStatus.CLEAR else b"",
            note="subtitles are delivered in clear" if status is AssetStatus.CLEAR else "",
        )

    def _recover_av_track(
        self, rep, kind: str, language, content_keys: dict[bytes, bytes]
    ) -> RecoveredTrack:
        track = RecoveredTrack(
            rep_id=rep.rep_id, kind=kind, height=rep.height, language=language
        )
        init = self.client.get(rep.init_url).body
        info = read_track_info(init)
        track.was_encrypted = info.protected

        segments = [self.client.get(url).body for url in rep.segment_urls]
        if not info.protected:
            # Already clear (e.g. Netflix audio): "reconstruction" is a
            # straight copy, playable anywhere with no account.
            track.clear_init = init
            track.clear_segments = segments
            track.decrypted = True
            track.note = "asset was delivered unencrypted"
        else:
            assert info.default_kid is not None
            key = content_keys.get(info.default_kid)
            if key is None:
                track.note = (
                    f"no content key for kid {info.default_kid.hex()[:8]}… "
                    "(not granted at this security level)"
                )
                return track
            track.clear_init = build_init_segment(kind=info.kind, codec=info.codec)
            for index, segment in enumerate(segments):
                samples, protected = read_samples(segment, iv_size=info.iv_size)
                if not protected:
                    track.clear_segments.append(segment)
                    continue
                if info.scheme == "cbcs":
                    clear_samples = [
                        decrypt_sample_cbcs(s, key) for s in samples
                    ]
                else:
                    clear_samples = [decrypt_sample(s, key) for s in samples]
                track.clear_segments.append(
                    build_media_segment(index + 1, clear_samples)
                )
            track.decrypted = True

        probe = probe_track(track.clear_init, track.clear_segments)
        track.playable = probe.status is AssetStatus.CLEAR
        if track.decrypted and not track.playable:
            track.note = f"decryption produced unplayable output: {probe.notes}"
        return track
