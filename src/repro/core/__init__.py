"""The paper's contribution: the WideLeak study methodology.

Static analysis, DRM API monitoring, content-protection auditing,
key-usage analysis, legacy-device probing, the §IV-D key-ladder attack
(CVE-2021-0639), media reconstruction, and Table I reporting.
"""

from repro.core.content_audit import ContentAuditor, ContentAuditResult, TrackAudit
from repro.core.figures import (
    FIGURE_1_ARROWS,
    capture_figure1,
    collapse_decode_loop,
    figure1_matches,
)
from repro.core.hd_forgery import HdForgeryAttack, HdForgeryResult
from repro.core.key_usage import KeyUsageAnalyzer, KeyUsageReport
from repro.core.keyladder_attack import KeyLadderAttack, KeyLadderAttackResult
from repro.core.legacy_probe import (
    LegacyDeviceProbe,
    LegacyOutcome,
    LegacyProbeResult,
)
from repro.core.media_recovery import (
    MediaRecoveryPipeline,
    RecoveredMedia,
    RecoveredTrack,
)
from repro.core.monitor import (
    DrmApiMonitor,
    DrmApiObservation,
    bypass_app_protections,
)
from repro.core.moviestealer import (
    InsecureSoftwarePlayer,
    MovieStealer,
    MovieStealerResult,
)
from repro.core.report import (
    EXPECTED_PAPER_TABLE,
    CrossCheckRow,
    CrossCheckTable,
    TableOne,
    TableOneRow,
    expected_row,
)
from repro.core.static_analysis import StaticAnalysisReport, analyze_apk
from repro.core.study import (
    AppStudyResult,
    AttackStudyResult,
    StudyResult,
    WideLeakStudy,
)

__all__ = [
    "ContentAuditor",
    "ContentAuditResult",
    "TrackAudit",
    "FIGURE_1_ARROWS",
    "capture_figure1",
    "collapse_decode_loop",
    "figure1_matches",
    "HdForgeryAttack",
    "HdForgeryResult",
    "InsecureSoftwarePlayer",
    "MovieStealer",
    "MovieStealerResult",
    "KeyUsageAnalyzer",
    "KeyUsageReport",
    "KeyLadderAttack",
    "KeyLadderAttackResult",
    "LegacyDeviceProbe",
    "LegacyOutcome",
    "LegacyProbeResult",
    "MediaRecoveryPipeline",
    "RecoveredMedia",
    "RecoveredTrack",
    "DrmApiMonitor",
    "DrmApiObservation",
    "bypass_app_protections",
    "EXPECTED_PAPER_TABLE",
    "CrossCheckRow",
    "CrossCheckTable",
    "TableOne",
    "TableOneRow",
    "expected_row",
    "StaticAnalysisReport",
    "analyze_apk",
    "AppStudyResult",
    "AttackStudyResult",
    "StudyResult",
    "WideLeakStudy",
]
