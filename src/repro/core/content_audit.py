"""Content-protection audit — the Q2 pipeline (§IV-B "Content
Protection").

The methodology, mirrored step for step:

1. hook the CDM process (so nothing the app does client-side is
   trusted), interpose the TLS proxy, and defeat the app's pinning;
2. play a title; capture the network flows and the non-DASH generic-
   crypto buffers;
3. recover the manifest URI — from the flows, or for Netflix-style
   services from the *output* of the generic decrypt function ("this
   protection does not prevent us from recovering Netflix links by
   intercepting the output of some Widevine functions");
4. download every asset the manifest lists **with a fresh, account-less
   client**, and classify each by actually trying to read it
   (:mod:`repro.media.player`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.android.device import AndroidDevice
from repro.core.monitor import DrmApiMonitor, DrmApiObservation, bypass_app_protections
from repro.dash.mpd import Mpd, MpdParseError
from repro.media.player import AssetStatus, probe_subtitle, probe_track
from repro.net.http import parse_url
from repro.net.network import HttpClient, Network
from repro.net.proxy import InterceptingProxy
from repro.ott.app import OttApp, PlaybackResult

__all__ = ["TrackAudit", "ContentAuditResult", "ContentAuditor"]


@dataclass
class TrackAudit:
    """Protection verdict for one downloadable representation."""

    rep_id: str
    kind: str  # "video" | "audio" | "text"
    status: AssetStatus
    height: int | None = None
    language: str | None = None
    segment_count: int = 0


@dataclass
class ContentAuditResult:
    """Everything the Q2 audit learned about one app."""

    service: str
    playback: PlaybackResult
    observation: DrmApiObservation
    mpd_url: str | None = None
    mpd_bytes: bytes | None = None
    tracks: list[TrackAudit] = field(default_factory=list)
    secure_channel_manifest_recovered: bool = False
    notes: list[str] = field(default_factory=list)

    def status_for(self, kind: str) -> AssetStatus | None:
        """Aggregate verdict for a track kind; ``None`` when the audit
        found no asset of that kind (Table I's "-")."""
        statuses = [t.status for t in self.tracks if t.kind == kind]
        if not statuses:
            return None
        # One clear asset is the finding — it leaks regardless of the rest.
        if any(s is AssetStatus.CLEAR for s in statuses):
            return AssetStatus.CLEAR
        if all(s is AssetStatus.ENCRYPTED for s in statuses):
            return AssetStatus.ENCRYPTED
        return AssetStatus.CORRUPT


class ContentAuditor:
    """Runs the Q2 pipeline for one app on one device."""

    def __init__(self, device: AndroidDevice, network: Network):
        self.device = device
        self.network = network

    def audit(self, app: OttApp, *, title_id: str | None = None) -> ContentAuditResult:
        with self.device.obs.span("audit.content", app=app.profile.name):
            return self._audit(app, title_id=title_id)

    def _audit(
        self, app: OttApp, *, title_id: str | None = None
    ) -> ContentAuditResult:
        monitor = DrmApiMonitor(self.device)
        proxy = InterceptingProxy(self.network)
        self.device.trust_store.add_issuer(InterceptingProxy.CA_NAME)
        bypass_app_protections(app)
        app.http.set_proxy(proxy)

        with monitor.attached():
            playback = app.play(title_id)
            observation = monitor.observation()
            generic_outputs = monitor.oecc.dumps_for(
                "_oecc31_generic_decrypt", "out"
            )
        app.http.set_proxy(None)

        result = ContentAuditResult(
            service=app.profile.service,
            playback=playback,
            observation=observation,
        )

        # -- manifest URI recovery -------------------------------------
        mpd_url = self._mpd_url_from_flows(proxy)
        if mpd_url is None:
            mpd_url = self._mpd_url_from_generic_dumps(generic_outputs)
            if mpd_url is not None:
                result.secure_channel_manifest_recovered = True
                result.notes.append(
                    "manifest URI recovered from non-DASH generic decrypt output"
                )
        elif generic_outputs:
            # URI was also visible in flows, but record that the secure
            # channel was in use and readable at the CDM boundary.
            if self._mpd_url_from_generic_dumps(generic_outputs):
                result.secure_channel_manifest_recovered = True
        if mpd_url is None:
            result.notes.append("no manifest URI recovered")
            return result
        result.mpd_url = mpd_url

        # -- account-less download and classification -------------------
        # Fresh client, no account, no pins — but it observes through
        # the device's bus like every other probe in this audit.
        anonymous = HttpClient(self.network, obs=self.device.obs)
        response = anonymous.get(mpd_url)
        if not response.ok:
            result.notes.append(f"manifest download failed: {response.status}")
            return result
        result.mpd_bytes = response.body
        try:
            mpd = Mpd.from_xml(response.body)
        except MpdParseError as exc:
            result.notes.append(f"manifest unparsable: {exc}")
            return result

        for aset in mpd.adaptation_sets:
            for rep in aset.representations:
                if aset.content_type == "text":
                    body = anonymous.get(rep.init_url).body
                    status = probe_subtitle(body)
                    result.tracks.append(
                        TrackAudit(
                            rep_id=rep.rep_id,
                            kind="text",
                            status=status,
                            language=aset.lang,
                        )
                    )
                    continue
                init = anonymous.get(rep.init_url).body
                segments = [anonymous.get(u).body for u in rep.segment_urls]
                probe = probe_track(init, segments)
                result.tracks.append(
                    TrackAudit(
                        rep_id=rep.rep_id,
                        kind=aset.content_type,
                        status=probe.status,
                        height=rep.height,
                        language=aset.lang,
                        segment_count=len(segments),
                    )
                )
        return result

    # -- URI recovery helpers ------------------------------------------------

    @staticmethod
    def _mpd_url_from_flows(proxy: InterceptingProxy) -> str | None:
        for flow in proxy.flows:
            if flow.request.parsed_url.path.endswith(".mpd") and flow.response.ok:
                return flow.request.url
        # Plain playback-API responses also carry the URL in JSON.
        for flow in proxy.flows:
            if "/playback" in flow.request.parsed_url.path and flow.response.ok:
                try:
                    payload = json.loads(flow.response.body.decode())
                except (ValueError, UnicodeDecodeError):
                    continue
                if "mpd_url" in payload:
                    return payload["mpd_url"]
        return None

    @staticmethod
    def _mpd_url_from_generic_dumps(outputs: list[bytes]) -> str | None:
        for blob in outputs:
            try:
                payload = json.loads(blob.decode())
            except (ValueError, UnicodeDecodeError):
                continue
            if isinstance(payload, dict) and "mpd_url" in payload:
                return payload["mpd_url"]
        return None
