"""Key-usage analysis — the Q3 pipeline.

"We analyzed some metadata indicating the identifier for every
decryption key" — key IDs come from the captured MPD's per-track
``cenc:default_KID`` attributes plus the service's own key-metadata
endpoint. The classification (Table I, "Widevine Key Usage"):

- **Recommended** — distinct keys per video resolution *and* audio keys
  disjoint from video keys;
- **Minimum** — audio delivered in clear, or audio sharing a video key;
- **unknown ("-")** — key identifiers could not be attributed to tracks
  (the paper's regional-restriction cases).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.dash.mpd import Mpd, MpdParseError
from repro.license_server.policy import KeyUsagePolicy
from repro.ott.app import OttApp

__all__ = ["KeyUsageReport", "KeyUsageAnalyzer"]


@dataclass
class KeyUsageReport:
    """Q3 verdict for one app."""

    service: str
    classification: KeyUsagePolicy | None  # None = could not conclude
    audio_clear: bool = False
    audio_shares_video_key: bool = False
    video_keys_distinct_per_resolution: bool = False
    video_kids: dict[str, bytes] = field(default_factory=dict)  # rep → kid
    audio_kids: dict[str, bytes | None] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)


class KeyUsageAnalyzer:
    """Attributes key IDs to tracks and classifies the key policy."""

    def analyze(self, app: OttApp, mpd_bytes: bytes | None) -> KeyUsageReport:
        report = KeyUsageReport(service=app.profile.service, classification=None)
        if mpd_bytes is None:
            report.notes.append("no manifest available")
            return report
        try:
            mpd = Mpd.from_xml(mpd_bytes)
        except MpdParseError as exc:
            report.notes.append(f"manifest unparsable: {exc}")
            return report

        video_kids: dict[str, bytes | None] = {}
        video_heights: dict[str, int | None] = {}
        audio_kids: dict[str, bytes | None] = {}
        audio_protected: dict[str, bool] = {}
        for aset in mpd.adaptation_sets:
            for rep in aset.representations:
                if aset.content_type == "video":
                    video_kids[rep.rep_id] = rep.default_kid()
                    video_heights[rep.rep_id] = rep.height
                elif aset.content_type == "audio":
                    audio_kids[rep.rep_id] = rep.default_kid()
                    audio_protected[rep.rep_id] = rep.protected

        # Fill attribution gaps from the OTT-specific metadata endpoint.
        missing_video = [r for r, k in video_kids.items() if k is None]
        missing_audio = [
            r for r, k in audio_kids.items() if k is None and audio_protected[r]
        ]
        if missing_video or missing_audio:
            keymap = self._fetch_keymap(app, mpd.title_id)
            if keymap is None:
                report.notes.append(
                    "key metadata endpoint unavailable (regional restriction); "
                    "cannot attribute key ids to tracks"
                )
                return report
            for rep_id in missing_video:
                video_kids[rep_id] = keymap.get(rep_id)
            for rep_id in missing_audio:
                audio_kids[rep_id] = keymap.get(rep_id)

        report.video_kids = {r: k for r, k in video_kids.items() if k is not None}
        report.audio_kids = dict(audio_kids)

        # Distinct video keys per resolution?
        heights_by_kid: dict[bytes, set[int | None]] = {}
        for rep_id, kid in report.video_kids.items():
            heights_by_kid.setdefault(kid, set()).add(video_heights.get(rep_id))
        report.video_keys_distinct_per_resolution = len(heights_by_kid) == len(
            report.video_kids
        )

        # Audio classification.
        report.audio_clear = any(
            not audio_protected.get(r, False) for r in audio_kids
        )
        video_kid_set = set(report.video_kids.values())
        protected_audio_kids = {
            k for r, k in audio_kids.items() if audio_protected.get(r) and k
        }
        report.audio_shares_video_key = bool(protected_audio_kids & video_kid_set)

        if report.audio_clear or report.audio_shares_video_key:
            report.classification = KeyUsagePolicy.MINIMUM
        elif protected_audio_kids:
            report.classification = KeyUsagePolicy.RECOMMENDED
        else:
            report.notes.append("no audio tracks found; cannot classify")
        return report

    @staticmethod
    def _fetch_keymap(app: OttApp, title_id: str) -> dict[str, bytes] | None:
        token = app.token
        if token is None:
            app.login()
            token = app.token
        response = app.http.get(
            f"https://{app.profile.api_host}/keymap?title={title_id}&token={token}"
        )
        if not response.ok:
            return None
        payload = json.loads(response.body.decode())
        return {
            rep_id: bytes.fromhex(kid)
            for rep_id, kid in payload.items()
            if kid is not None
        }
