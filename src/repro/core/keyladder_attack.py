"""The key-ladder attack of §IV-D (CVE-2021-0639).

Recovers DRM-free content keys on a discontinued L3 device using only
what an attacker with full device control observes:

1. **Keybox recovery** — scan the DRM process's memory for the keybox
   structure (magic number + CRC), recover the whitebox mask from the
   module's constant table, and invert the static XOR: the 128-bit AES
   device key falls out (insecure storage of sensitive information,
   CWE-922).
2. **Device RSA key recovery** — read the provisioned key blob from the
   device's persistent storage (root access) and strip the storage
   encryption, whose key derives from the recovered device key.
3. **Content-key recovery** — intercept license responses at the
   ``_oecc`` boundary and replay the ladder offline: RSA-OAEP-unwrap the
   session key, run the CMAC KDF over the dumped derivation context,
   and AES-CBC-unwrap every content key.

The implementation touches *only* attacker-observable surfaces: memory
regions, hooked buffers, the persistent store, network captures. It
never reads Python-level secrets out of the simulation objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.android.device import AndroidDevice
from repro.core.monitor import DrmApiMonitor
from repro.crypto.kdf import derive_key, derive_session_keys
from repro.crypto.modes import cbc_decrypt
from repro.crypto.rsa import RsaPrivateKey, oaep_decrypt
from repro.instrumentation.memscan import find_whitebox_mask, scan_for_keybox
from repro.license_server.protocol import LicenseResponse, ProtocolError
from repro.ott.app import OttApp, PlaybackResult
from repro.widevine.keybox import Keybox
from repro.widevine.oemcrypto import LABEL_STORAGE
from repro.widevine.storage import apply_whitebox_mask

__all__ = ["KeyLadderAttack", "KeyLadderAttackResult"]


@dataclass
class KeyLadderAttackResult:
    """Everything the attack recovered for one app."""

    service: str
    device_model: str
    keybox_recovered: bool = False
    device_id: bytes | None = None
    device_key: bytes | None = None
    rsa_recovered: bool = False
    rsa_fingerprint: bytes | None = None
    licenses_observed: int = 0
    content_keys: dict[bytes, bytes] = field(default_factory=dict)
    playback: PlaybackResult | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return bool(self.content_keys)


class KeyLadderAttack:
    """Runs the full §IV-D pipeline against one app on one device."""

    def __init__(self, device: AndroidDevice):
        if not device.rooted:
            raise PermissionError(
                "the DRM threat model grants full device control; root the "
                "device first (device.rooted = True)"
            )
        self.device = device

    # -- step 1: keybox ------------------------------------------------------

    def recover_keybox(self) -> Keybox | None:
        """Memory-scan the DRM process for the keybox.

        On L3 the structure sits whitebox-masked next to its constant
        table: invert the static XOR. On an uncompromised L1 the scan
        finds nothing — the TEE never maps the keybox into scannable
        memory. After a TEE break (see
        :func:`repro.widevine.storage.simulate_tee_compromise`) the raw
        keybox appears in a dump region with no mask table, and is used
        as-is.
        """
        process = self.device.drm_process
        matches = scan_for_keybox(process)
        if not matches:
            return None
        scanned = Keybox.parse(matches[0].data)
        mask = find_whitebox_mask(process)
        if mask is None:
            # No whitebox table: the scanned structure is unmasked
            # (e.g. a TEE memory dump).
            return scanned
        return Keybox(
            device_id=scanned.device_id,
            device_key=apply_whitebox_mask(scanned.device_key, mask),
            key_data=scanned.key_data,
        )

    # -- step 2: device RSA key --------------------------------------------------

    def recover_device_rsa_key(
        self, keybox: Keybox, origin: str
    ) -> RsaPrivateKey | None:
        """Decrypt the persisted provisioning blob with the
        keybox-derived storage key."""
        blob = self.device.persistent_store.get(f"widevine/rsa/{origin}")
        if blob is None or blob[:4] != b"WVST":
            return None
        storage_key = derive_key(
            keybox.device_key, LABEL_STORAGE, keybox.device_id, 128
        )
        try:
            rsa_blob = cbc_decrypt(storage_key, blob[4:20], blob[20:])
            return RsaPrivateKey.import_secret(rsa_blob)
        except ValueError:
            return None

    # -- step 3: content keys -----------------------------------------------------

    @staticmethod
    def unwrap_license(
        rsa_key: RsaPrivateKey, license_bytes: bytes
    ) -> dict[bytes, bytes]:
        """Replay the ladder offline over one captured license."""
        try:
            license_msg = LicenseResponse.parse(license_bytes)
        except ProtocolError:
            return {}
        try:
            session_key = oaep_decrypt(rsa_key, license_msg.wrapped_session_key)
        except ValueError:
            return {}
        derived = derive_session_keys(session_key, license_msg.derivation_context)
        recovered: dict[bytes, bytes] = {}
        for wrapped in license_msg.keys:
            try:
                key = cbc_decrypt(derived.encryption, wrapped.iv, wrapped.wrapped_key)
            except ValueError:
                continue
            if len(key) == 16:
                recovered[wrapped.key_id] = key
        return recovered

    def harvest_offline_licenses(
        self, rsa_key: RsaPrivateKey, origin: str
    ) -> dict[bytes, bytes]:
        """Unwrap every *persisted offline license* of an app origin.

        Offline viewing makes the long-term compromise worse: licenses
        sit on flash indefinitely, so an attacker who breaks the ladder
        once recovers keys for everything ever downloaded — no live
        playback or hooking needed.
        """
        recovered: dict[bytes, bytes] = {}
        prefix = f"widevine/keyset/{origin}/"
        for path, blob in self.device.persistent_store.items():
            if path.startswith(prefix):
                recovered.update(self.unwrap_license(rsa_key, blob))
        return recovered

    # -- the full pipeline ------------------------------------------------------------

    def run(self, app: OttApp, *, title_id: str | None = None) -> KeyLadderAttackResult:
        """Trigger a playback under monitoring and work the ladder."""
        result = KeyLadderAttackResult(
            service=app.profile.service,
            device_model=self.device.spec.model,
        )

        monitor = DrmApiMonitor(self.device)
        with monitor.attached():
            result.playback = app.play(title_id)
            license_dumps = monitor.oecc.dumps_for("_oecc10_load_keys", "in")
        result.licenses_observed = len(license_dumps)
        if not license_dumps:
            result.notes.append(
                "no license crossed the Widevine boundary during playback "
                "(custom DRM, or playback denied)"
            )

        keybox = self.recover_keybox()
        if keybox is None:
            result.notes.append(
                "keybox not found in process memory (TEE-backed L1, or scan "
                "defeated)"
            )
            return result
        result.keybox_recovered = True
        result.device_id = keybox.device_id
        result.device_key = keybox.device_key

        rsa_key = self.recover_device_rsa_key(keybox, app.profile.package)
        if rsa_key is None:
            result.notes.append(
                "no provisioned RSA key blob for this app origin "
                "(provisioning failed or never happened)"
            )
            return result
        result.rsa_recovered = True
        result.rsa_fingerprint = rsa_key.public.fingerprint()

        for blob in license_dumps:
            result.content_keys.update(self.unwrap_license(rsa_key, blob))
        if not result.content_keys and license_dumps:
            result.notes.append("license captured but no key unwrapped")
        return result
