"""Figure 1 as a first-class artifact.

The published figure draws one encrypted-playback round trip:
application ↔ Media DRM Server ↔ CDM, plus the license server and CDN
exchanges, with the decode loop drawn once. This module owns the
canonical arrow list and the trace post-processing that maps a real
playback (many decode iterations) onto the figure's shape.
"""

from __future__ import annotations

from repro.android.trace import FlowTrace

__all__ = [
    "FIGURE_1_ARROWS",
    "collapse_decode_loop",
    "capture_figure1",
    "figure1_matches",
]

FIGURE_1_ARROWS: tuple[tuple[str, str, str], ...] = (
    ("Application", "MediaDRM Server", "MediaDrm(UUID)"),
    ("MediaDRM Server", "CDM", "Initialize()"),
    ("Application", "MediaDRM Server", "openSession()"),
    ("MediaDRM Server", "CDM", "openSession()"),
    ("Application", "MediaDRM Server", "getKeyRequest()"),
    ("MediaDRM Server", "CDM", "getKeyRequest()"),
    ("CDM", "MediaDRM Server", "opaque request"),
    ("Application", "License Server", "Get License"),
    ("License Server", "Application", "License"),
    ("Application", "MediaDRM Server", "provideKeyResponse()"),
    ("MediaDRM Server", "CDM", "provideKeyResponse"),
    ("Application", "CDN", "Get Media"),
    ("CDN", "Application", "Media"),
    ("Application", "Media Crypto", "queueSecureInputBuffer()"),
    ("Media Crypto", "CDM", "Decrypt()"),
)

_DECODE_LABELS = frozenset({"queueSecureInputBuffer()", "Decrypt()"})


def collapse_decode_loop(
    events: list[tuple[str, str, str]],
) -> list[tuple[str, str, str]]:
    """Keep only the first occurrence of each decode-loop arrow, the way
    the figure draws the per-sample loop once."""
    seen: set[tuple[str, str, str]] = set()
    collapsed: list[tuple[str, str, str]] = []
    for event in events:
        if event[2] in _DECODE_LABELS:
            if event in seen:
                continue
            seen.add(event)
        collapsed.append(event)
    return collapsed


def capture_figure1(app, *, title_id: str | None = None) -> list[tuple[str, str, str]]:
    """Run one playback of *app* and return the collapsed arrow trace.

    The app is played once beforehand so provisioning (not part of the
    figure) happens out of band.
    """
    trace: FlowTrace = app.device.trace
    warmup = app.play(title_id)
    if not warmup.ok:
        raise RuntimeError(f"warm-up playback failed: {warmup.error}")
    trace.clear()
    result = app.play(title_id)
    if not result.ok:
        raise RuntimeError(f"playback failed: {result.error}")
    return collapse_decode_loop(trace.labels())


def figure1_matches(events: list[tuple[str, str, str]]) -> bool:
    """Does a collapsed trace equal the published figure?"""
    return tuple(events) == FIGURE_1_ARROWS
