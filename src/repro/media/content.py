"""Content model: titles, tracks, representations, segments.

A :class:`Title` is one piece of media with an adaptation ladder:
video representations at several resolutions, audio representations per
language, and subtitle tracks per language — the exact shape the paper's
Q2/Q3 analysis sweeps (video once, audio/subtitles re-fetched per
language selection).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.media.codecs import generate_sample

__all__ = [
    "TrackKind",
    "Resolution",
    "Representation",
    "Title",
    "make_title",
    "QHD",
    "HD_720",
    "HD_1080",
]


class TrackKind(enum.Enum):
    """The three asset classes the study audits."""

    VIDEO = "video"
    AUDIO = "audio"
    TEXT = "text"


@dataclass(frozen=True, order=True)
class Resolution:
    """Video frame size; comparable so "best quality" is well-defined."""

    width: int
    height: int

    def __str__(self) -> str:
        return f"{self.width}x{self.height}"

    @property
    def is_hd(self) -> bool:
        return self.height >= 720


QHD = Resolution(960, 540)
HD_720 = Resolution(1280, 720)
HD_1080 = Resolution(1920, 1080)


@dataclass(frozen=True)
class Representation:
    """One downloadable track variant.

    Video representations differ by resolution; audio and text by
    language. ``rep_id`` is stable and unique within a title.
    """

    rep_id: str
    kind: TrackKind
    codec: str
    bitrate_kbps: int
    resolution: Resolution | None = None
    language: str | None = None

    def __post_init__(self) -> None:
        if self.kind is TrackKind.VIDEO and self.resolution is None:
            raise ValueError("video representation needs a resolution")
        if self.kind is not TrackKind.VIDEO and self.language is None:
            raise ValueError("audio/text representation needs a language")

    def label(self, title_id: str) -> str:
        """Stable content label used to derive deterministic samples."""
        return f"{title_id}/{self.rep_id}"


@dataclass(frozen=True)
class Title:
    """One media item with its full adaptation ladder."""

    title_id: str
    name: str
    duration_s: int
    segment_duration_s: int
    representations: tuple[Representation, ...] = field(default_factory=tuple)

    @property
    def segment_count(self) -> int:
        return -(-self.duration_s // self.segment_duration_s)

    def videos(self) -> list[Representation]:
        reps = [r for r in self.representations if r.kind is TrackKind.VIDEO]
        return sorted(reps, key=lambda r: r.resolution)  # type: ignore[arg-type]

    def audios(self, language: str | None = None) -> list[Representation]:
        reps = [r for r in self.representations if r.kind is TrackKind.AUDIO]
        if language is not None:
            reps = [r for r in reps if r.language == language]
        return reps

    def subtitles(self, language: str | None = None) -> list[Representation]:
        reps = [r for r in self.representations if r.kind is TrackKind.TEXT]
        if language is not None:
            reps = [r for r in reps if r.language == language]
        return reps

    def representation(self, rep_id: str) -> Representation:
        for rep in self.representations:
            if rep.rep_id == rep_id:
                return rep
        raise KeyError(f"no representation {rep_id!r} in {self.title_id}")

    def languages(self) -> list[str]:
        return sorted({r.language for r in self.audios()})  # type: ignore[arg-type]

    def samples_for_segment(
        self, rep: Representation, segment_index: int, *, samples_per_segment: int = 4
    ) -> list[bytes]:
        """Deterministic clear samples for one (representation, segment)."""
        if not 0 <= segment_index < self.segment_count:
            raise IndexError(
                f"segment {segment_index} out of range 0..{self.segment_count - 1}"
            )
        # Payload size scales with bitrate so higher resolutions really
        # are bigger assets, while staying laptop-friendly.
        payload_len = max(64, self.segment_duration_s * rep.bitrate_kbps // 32)
        label = rep.label(self.title_id)
        base = segment_index * samples_per_segment
        return [
            generate_sample(rep.kind.value, label, base + i, payload_len)
            for i in range(samples_per_segment)
        ]


def make_title(
    title_id: str,
    name: str,
    *,
    duration_s: int = 24,
    segment_duration_s: int = 4,
    video_resolutions: tuple[Resolution, ...] = (QHD, HD_720, HD_1080),
    audio_languages: tuple[str, ...] = ("en", "fr"),
    subtitle_languages: tuple[str, ...] = ("en", "fr"),
) -> Title:
    """Build a title with a conventional adaptation ladder."""
    reps: list[Representation] = []
    for res in video_resolutions:
        reps.append(
            Representation(
                rep_id=f"v{res.height}",
                kind=TrackKind.VIDEO,
                codec="synh264",
                bitrate_kbps=res.height * 4,
                resolution=res,
            )
        )
    for lang in audio_languages:
        reps.append(
            Representation(
                rep_id=f"a-{lang}",
                kind=TrackKind.AUDIO,
                codec="synaac",
                bitrate_kbps=128,
                language=lang,
            )
        )
    for lang in subtitle_languages:
        reps.append(
            Representation(
                rep_id=f"t-{lang}",
                kind=TrackKind.TEXT,
                codec="wvtt",
                bitrate_kbps=4,
                language=lang,
            )
        )
    return Title(
        title_id=title_id,
        name=name,
        duration_s=duration_s,
        segment_duration_s=segment_duration_s,
        representations=tuple(reps),
    )
