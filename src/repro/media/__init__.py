"""Synthetic media substrate: content model, codecs, subtitles, player,
catalogs."""

from repro.media.catalog import Catalog, default_catalog
from repro.media.codecs import (
    HEADER_LEN,
    SAMPLE_MAGIC,
    SampleValidation,
    generate_sample,
    sample_header_length,
    validate_sample,
)
from repro.media.content import (
    HD_720,
    HD_1080,
    QHD,
    Representation,
    Resolution,
    Title,
    TrackKind,
    make_title,
)
from repro.media.player import (
    AssetStatus,
    PlaybackProbe,
    probe_subtitle,
    probe_track,
)
from repro.media.subtitles import (
    Cue,
    build_webvtt,
    looks_like_clear_text,
    parse_webvtt,
)

__all__ = [
    "Catalog",
    "default_catalog",
    "HEADER_LEN",
    "SAMPLE_MAGIC",
    "SampleValidation",
    "generate_sample",
    "sample_header_length",
    "validate_sample",
    "HD_720",
    "HD_1080",
    "QHD",
    "Representation",
    "Resolution",
    "Title",
    "TrackKind",
    "make_title",
    "AssetStatus",
    "PlaybackProbe",
    "probe_subtitle",
    "probe_track",
    "Cue",
    "build_webvtt",
    "looks_like_clear_text",
    "parse_webvtt",
]
