"""WebVTT subtitle generation and the paper's ASCII check.

Subtitles are delivered as standalone WebVTT files (never inside the
fMP4 container in our services, matching the common practice the paper
observes). The audit's subtitle check mirrors §IV-B: "we check whether
they contain ascii characters for English ones".
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

__all__ = ["Cue", "build_webvtt", "parse_webvtt", "looks_like_clear_text"]

_WORDS = (
    "the quick brown fox jumps over the lazy dog while the stream keeps "
    "playing and nobody checks the subtitles"
).split()


@dataclass(frozen=True)
class Cue:
    """One subtitle cue."""

    start_s: float
    end_s: float
    text: str


def _timestamp(seconds: float) -> str:
    minutes, secs = divmod(seconds, 60)
    hours, minutes = divmod(int(minutes), 60)
    return f"{hours:02d}:{int(minutes):02d}:{secs:06.3f}"


def build_webvtt(title_id: str, language: str, duration_s: int) -> bytes:
    """Deterministic WebVTT document for one (title, language)."""
    lines = ["WEBVTT", ""]
    cue_len = 3.0
    count = max(1, int(duration_s // cue_len))
    for index in range(count):
        start = index * cue_len
        end = min(start + cue_len, float(duration_s))
        seed = zlib.crc32(f"{title_id}:{language}".encode())
        word = _WORDS[(seed + index) % len(_WORDS)]
        text = f"[{language}] {title_id} cue {index}: {word}"
        lines.append(f"{index + 1}")
        lines.append(f"{_timestamp(start)} --> {_timestamp(end)}")
        lines.append(text)
        lines.append("")
    return "\n".join(lines).encode()


def parse_webvtt(data: bytes) -> list[Cue]:
    """Parse a WebVTT document; raises ValueError if malformed."""
    text = data.decode("utf-8", errors="strict")
    lines = text.splitlines()
    if not lines or lines[0].strip() != "WEBVTT":
        raise ValueError("not a WebVTT document")
    cues: list[Cue] = []
    i = 1
    while i < len(lines):
        line = lines[i].strip()
        if "-->" in line:
            start_raw, end_raw = (part.strip() for part in line.split("-->"))
            start = _parse_timestamp(start_raw)
            end = _parse_timestamp(end_raw)
            body: list[str] = []
            i += 1
            while i < len(lines) and lines[i].strip():
                body.append(lines[i])
                i += 1
            cues.append(Cue(start_s=start, end_s=end, text="\n".join(body)))
        else:
            i += 1
    return cues


def _parse_timestamp(raw: str) -> float:
    parts = raw.split(":")
    if len(parts) != 3:
        raise ValueError(f"bad timestamp {raw!r}")
    hours, minutes, seconds = parts
    return int(hours) * 3600 + int(minutes) * 60 + float(seconds)


def looks_like_clear_text(data: bytes) -> bool:
    """The paper's subtitle heuristic: printable-ASCII dominance.

    Encrypted bytes are uniformly distributed so they fail decisively;
    a real clear WebVTT passes.
    """
    if not data:
        return False
    printable = sum(1 for b in data if 32 <= b < 127 or b in (9, 10, 13))
    return printable / len(data) > 0.95
