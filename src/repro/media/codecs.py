"""Synthetic codec bitstreams.

The paper downloads real movie tracks and checks whether "video or
audio players can read the downloaded files". We have no movies, so
tracks are synthetic bitstreams with enough structure for an honest
playability check:

- every sample starts with a clear header (magic, kind, label, sequence
  number) — modelling the codec headers real packagers leave clear in
  subsample encryption — followed by a pseudo-random payload;
- a truncated SHA-256 over header+payload ends the sample, so the
  reference player in :mod:`repro.media.player` can tell *decodable
  content* from *ciphertext* without any out-of-band flag.

Samples are deterministic functions of (title, track label, sequence
number), so the same content fetched through different apps or devices
is bit-identical — which is what lets the key-ladder attack's output be
verified against the original.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

__all__ = [
    "SAMPLE_MAGIC",
    "HEADER_LEN",
    "SampleValidation",
    "generate_sample",
    "validate_sample",
    "sample_header_length",
]

SAMPLE_MAGIC = b"SYN0"
_CHECKSUM_LEN = 8
_KIND_CODES = {"video": 0x76, "audio": 0x61, "text": 0x74}
_KIND_NAMES = {code: kind for kind, code in _KIND_CODES.items()}

# Fixed-size label field keeps every header the same length, which the
# CENC subsample maps rely on.
_LABEL_LEN = 24
HEADER_LEN = 4 + 1 + 1 + _LABEL_LEN + 4 + 4


@dataclass(frozen=True)
class SampleValidation:
    """Outcome of validating one sample bitstream."""

    valid: bool
    reason: str
    kind: str | None = None
    label: str | None = None
    sequence: int | None = None


def _keystream(seed: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(seed + counter.to_bytes(4, "big")).digest())
        counter += 1
    return bytes(out[:length])


def generate_sample(kind: str, label: str, sequence: int, payload_len: int) -> bytes:
    """Deterministically generate one synthetic sample.

    *label* identifies the (title, representation) pair, e.g.
    ``"tt-001/video-540p"``; *sequence* is the global sample index.
    """
    if kind not in _KIND_CODES:
        raise ValueError(f"unknown sample kind {kind!r}")
    raw_label = label.encode()
    if len(raw_label) > _LABEL_LEN:
        raise ValueError(f"label too long ({len(raw_label)} > {_LABEL_LEN})")
    padded_label = raw_label.ljust(_LABEL_LEN, b"\x00")
    header = (
        SAMPLE_MAGIC
        + bytes([_KIND_CODES[kind], len(raw_label)])
        + padded_label
        + struct.pack(">II", sequence, payload_len)
    )
    payload = _keystream(b"payload/" + raw_label + struct.pack(">I", sequence), payload_len)
    checksum = hashlib.sha256(header + payload).digest()[:_CHECKSUM_LEN]
    return header + payload + checksum


def validate_sample(data: bytes) -> SampleValidation:
    """Check whether *data* is a well-formed clear sample.

    Ciphertext fails here (wrong checksum or corrupted structure), which
    is how the reference player distinguishes protected from clear
    content.
    """
    if len(data) < HEADER_LEN + _CHECKSUM_LEN:
        return SampleValidation(False, "too short")
    if data[:4] != SAMPLE_MAGIC:
        return SampleValidation(False, "bad magic")
    kind_code = data[4]
    kind = _KIND_NAMES.get(kind_code)
    if kind is None:
        return SampleValidation(False, f"unknown kind byte 0x{kind_code:02x}")
    label_len = data[5]
    if label_len > _LABEL_LEN:
        return SampleValidation(False, "bad label length")
    label = data[6 : 6 + label_len].decode("latin-1")
    sequence, payload_len = struct.unpack(
        ">II", data[6 + _LABEL_LEN : HEADER_LEN]
    )
    expected_total = HEADER_LEN + payload_len + _CHECKSUM_LEN
    if len(data) != expected_total:
        return SampleValidation(
            False, f"length mismatch ({len(data)} != {expected_total})", kind, label
        )
    body = data[: HEADER_LEN + payload_len]
    checksum = data[HEADER_LEN + payload_len :]
    if hashlib.sha256(body).digest()[:_CHECKSUM_LEN] != checksum:
        return SampleValidation(False, "checksum mismatch", kind, label, sequence)
    return SampleValidation(True, "ok", kind, label, sequence)


def sample_header_length() -> int:
    """Length of the clear header prefix (the CENC clear range)."""
    return HEADER_LEN
