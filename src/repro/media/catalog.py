"""Per-service content catalogs.

Each OTT backend owns a :class:`Catalog` of titles. Helper factories
build the catalogs the study's workloads use; title ids are kept short
because they feed the fixed-width sample labels of
:mod:`repro.media.codecs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.media.content import Title, make_title

__all__ = ["Catalog", "default_catalog"]


@dataclass
class Catalog:
    """A service's library of titles."""

    service: str
    titles: dict[str, Title] = field(default_factory=dict)

    def add(self, title: Title) -> None:
        if title.title_id in self.titles:
            raise ValueError(f"duplicate title id {title.title_id!r}")
        self.titles[title.title_id] = title

    def get(self, title_id: str) -> Title:
        try:
            return self.titles[title_id]
        except KeyError:
            raise KeyError(
                f"{self.service}: unknown title {title_id!r}"
            ) from None

    def __contains__(self, title_id: str) -> bool:
        return title_id in self.titles

    def __iter__(self):
        return iter(self.titles.values())

    def __len__(self) -> int:
        return len(self.titles)


def default_catalog(service: str, *, title_count: int = 2) -> Catalog:
    """A small standard catalog: *title_count* titles with the default
    ladder (540p/720p/1080p video, en+fr audio and subtitles)."""
    catalog = Catalog(service=service)
    for index in range(title_count):
        title_id = f"{service[:4]}{index:02d}"
        catalog.add(make_title(title_id, f"{service} feature #{index}"))
    return catalog
