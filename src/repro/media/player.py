"""Reference media player used by the audit to classify downloaded assets.

This is the "video or audio player" of §IV-B: given the raw bytes of an
init segment and media segments, it parses the container, tries to
decode the samples, and reports one of three statuses:

- ``CLEAR`` — container parses and every sample validates: the asset
  plays anywhere, no DRM involved;
- ``ENCRYPTED`` — container parses, the track is CENC-protected and the
  payloads do not validate without keys;
- ``CORRUPT`` — neither: the bytes are not a playable asset.

It never consults the DRM stack, so (like the paper's offline check) it
answers "can a pirate read this file as-is?".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.bmff.boxes import BoxParseError
from repro.bmff.builder import read_samples, read_track_info
from repro.media.codecs import validate_sample
from repro.media.subtitles import looks_like_clear_text, parse_webvtt

__all__ = ["AssetStatus", "PlaybackProbe", "probe_track", "probe_subtitle"]


class AssetStatus(enum.Enum):
    """Protection status of a downloaded asset, as seen by a player."""

    CLEAR = "clear"
    ENCRYPTED = "encrypted"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class PlaybackProbe:
    """Detailed result of probing one track."""

    status: AssetStatus
    kind: str | None = None
    codec: str | None = None
    declared_protected: bool = False
    default_kid: bytes | None = None
    samples_total: int = 0
    samples_valid: int = 0
    notes: tuple[str, ...] = field(default_factory=tuple)


def probe_track(init_segment: bytes, media_segments: list[bytes]) -> PlaybackProbe:
    """Classify a downloaded track from its raw bytes."""
    try:
        info = read_track_info(init_segment)
    except (BoxParseError, ValueError) as exc:
        return PlaybackProbe(status=AssetStatus.CORRUPT, notes=(str(exc),))

    total = 0
    valid = 0
    senc_present = False
    notes: list[str] = []
    for segment in media_segments:
        try:
            samples, protected = read_samples(segment, iv_size=info.iv_size)
        except (BoxParseError, ValueError) as exc:
            return PlaybackProbe(
                status=AssetStatus.CORRUPT,
                kind=info.kind,
                codec=info.codec,
                declared_protected=info.protected,
                default_kid=info.default_kid,
                notes=(f"segment parse error: {exc}",),
            )
        senc_present = senc_present or protected
        for sample in samples:
            total += 1
            if validate_sample(sample.data).valid:
                valid += 1

    if total and valid == total:
        status = AssetStatus.CLEAR
        if info.protected:
            # Declared protected but fully decodable: a packager bug the
            # audit should flag loudly rather than average away.
            notes.append("declared protected but samples decode in clear")
    elif info.protected or senc_present:
        status = AssetStatus.ENCRYPTED
        if valid:
            notes.append(f"{valid}/{total} samples decode despite protection")
    else:
        status = AssetStatus.CORRUPT
        notes.append("clear container but samples do not decode")

    return PlaybackProbe(
        status=status,
        kind=info.kind,
        codec=info.codec,
        declared_protected=info.protected,
        default_kid=info.default_kid,
        samples_total=total,
        samples_valid=valid,
        notes=tuple(notes),
    )


def probe_subtitle(data: bytes) -> AssetStatus:
    """Classify a subtitle file: parseable WebVTT + mostly-ASCII = clear."""
    if looks_like_clear_text(data):
        try:
            parse_webvtt(data)
        except ValueError:
            return AssetStatus.CORRUPT
        return AssetStatus.CLEAR
    return AssetStatus.ENCRYPTED
