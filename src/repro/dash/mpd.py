"""MPEG-DASH Media Presentation Description (MPD) model.

Implements the subset of ISO/IEC 23009-1 the study needs: a single
period with adaptation sets per track type, ``SegmentList`` addressing,
and ``ContentProtection`` descriptors carrying both the generic CENC
``default_KID`` and the Widevine PSSH payload. Serializes to and parses
from real XML — the audit pipeline works on captured MPD *bytes*, like
the paper's network interception does.
"""

from __future__ import annotations

import base64
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

__all__ = [
    "CENC_SCHEME_URI",
    "WIDEVINE_SCHEME_URI",
    "ContentProtectionTag",
    "MpdRepresentation",
    "AdaptationSet",
    "Mpd",
    "MpdParseError",
]

CENC_SCHEME_URI = "urn:mpeg:dash:mp4protection:2011"
WIDEVINE_SCHEME_URI = "urn:uuid:edef8ba9-79d6-4ace-a3c8-27dcd51d21ed"

_MPD_NS = "urn:mpeg:dash:schema:mpd:2011"
_CENC_NS = "urn:mpeg:cenc:2013"


class MpdParseError(ValueError):
    """Raised when MPD XML is structurally invalid."""


def _format_kid(kid: bytes) -> str:
    h = kid.hex()
    return f"{h[:8]}-{h[8:12]}-{h[12:16]}-{h[16:20]}-{h[20:]}"


def _parse_kid(text: str) -> bytes:
    cleaned = text.replace("-", "").strip()
    try:
        kid = bytes.fromhex(cleaned)
    except ValueError:
        raise MpdParseError(f"bad default_KID {text!r}") from None
    if len(kid) != 16:
        raise MpdParseError(f"bad default_KID {text!r}")
    return kid


@dataclass
class ContentProtectionTag:
    """One ``<ContentProtection>`` descriptor."""

    scheme_id_uri: str
    value: str = ""
    default_kid: bytes | None = None
    pssh_b64: str | None = None

    @classmethod
    def cenc(cls, default_kid: bytes) -> "ContentProtectionTag":
        return cls(
            scheme_id_uri=CENC_SCHEME_URI, value="cenc", default_kid=default_kid
        )

    @classmethod
    def widevine(cls, pssh_bytes: bytes) -> "ContentProtectionTag":
        return cls(
            scheme_id_uri=WIDEVINE_SCHEME_URI,
            pssh_b64=base64.b64encode(pssh_bytes).decode(),
        )

    @property
    def pssh_bytes(self) -> bytes | None:
        if self.pssh_b64 is None:
            return None
        return base64.b64decode(self.pssh_b64)


@dataclass
class MpdRepresentation:
    """One ``<Representation>`` with SegmentList addressing."""

    rep_id: str
    bandwidth_kbps: int
    codecs: str
    mime_type: str
    init_url: str
    segment_urls: list[str] = field(default_factory=list)
    width: int | None = None
    height: int | None = None
    content_protections: list[ContentProtectionTag] = field(default_factory=list)

    @property
    def protected(self) -> bool:
        return bool(self.content_protections)

    def default_kid(self) -> bytes | None:
        for tag in self.content_protections:
            if tag.default_kid is not None:
                return tag.default_kid
        return None


@dataclass
class AdaptationSet:
    """One ``<AdaptationSet>`` grouping same-type representations."""

    content_type: str  # "video" | "audio" | "text"
    lang: str | None = None
    representations: list[MpdRepresentation] = field(default_factory=list)
    content_protections: list[ContentProtectionTag] = field(default_factory=list)

    def all_protections(self, rep: MpdRepresentation) -> list[ContentProtectionTag]:
        """Set-level plus representation-level protection descriptors."""
        return list(self.content_protections) + list(rep.content_protections)


@dataclass
class Mpd:
    """A whole manifest (single period)."""

    title_id: str
    duration_s: int
    adaptation_sets: list[AdaptationSet] = field(default_factory=list)

    def sets_of_type(self, content_type: str) -> list[AdaptationSet]:
        return [s for s in self.adaptation_sets if s.content_type == content_type]

    # --- XML serialization -------------------------------------------

    def to_xml(self) -> bytes:
        ET.register_namespace("", _MPD_NS)
        ET.register_namespace("cenc", _CENC_NS)
        root = ET.Element(
            f"{{{_MPD_NS}}}MPD",
            {
                "type": "static",
                "mediaPresentationDuration": f"PT{self.duration_s}S",
                "id": self.title_id,
            },
        )
        period = ET.SubElement(root, f"{{{_MPD_NS}}}Period", {"id": "0"})
        for aset in self.adaptation_sets:
            attrs = {"contentType": aset.content_type}
            if aset.lang:
                attrs["lang"] = aset.lang
            aset_el = ET.SubElement(period, f"{{{_MPD_NS}}}AdaptationSet", attrs)
            for tag in aset.content_protections:
                self._emit_protection(aset_el, tag)
            for rep in aset.representations:
                rep_attrs = {
                    "id": rep.rep_id,
                    "bandwidth": str(rep.bandwidth_kbps * 1000),
                    "codecs": rep.codecs,
                    "mimeType": rep.mime_type,
                }
                if rep.width is not None:
                    rep_attrs["width"] = str(rep.width)
                if rep.height is not None:
                    rep_attrs["height"] = str(rep.height)
                rep_el = ET.SubElement(
                    aset_el, f"{{{_MPD_NS}}}Representation", rep_attrs
                )
                for tag in rep.content_protections:
                    self._emit_protection(rep_el, tag)
                seg_list = ET.SubElement(rep_el, f"{{{_MPD_NS}}}SegmentList")
                ET.SubElement(
                    seg_list,
                    f"{{{_MPD_NS}}}Initialization",
                    {"sourceURL": rep.init_url},
                )
                for url in rep.segment_urls:
                    ET.SubElement(
                        seg_list, f"{{{_MPD_NS}}}SegmentURL", {"media": url}
                    )
        return ET.tostring(root, encoding="utf-8", xml_declaration=True)

    @staticmethod
    def _emit_protection(parent: ET.Element, tag: ContentProtectionTag) -> None:
        attrs = {"schemeIdUri": tag.scheme_id_uri}
        if tag.value:
            attrs["value"] = tag.value
        if tag.default_kid is not None:
            attrs[f"{{{_CENC_NS}}}default_KID"] = _format_kid(tag.default_kid)
        el = ET.SubElement(parent, f"{{{_MPD_NS}}}ContentProtection", attrs)
        if tag.pssh_b64 is not None:
            pssh_el = ET.SubElement(el, f"{{{_CENC_NS}}}pssh")
            pssh_el.text = tag.pssh_b64

    # --- XML parsing --------------------------------------------------

    @classmethod
    def from_xml(cls, data: bytes) -> "Mpd":
        try:
            root = ET.fromstring(data)
        except ET.ParseError as exc:
            raise MpdParseError(f"bad MPD XML: {exc}") from exc
        if root.tag != f"{{{_MPD_NS}}}MPD":
            raise MpdParseError(f"unexpected root element {root.tag!r}")
        duration_raw = root.get("mediaPresentationDuration", "PT0S")
        duration_s = int(float(duration_raw.removeprefix("PT").removesuffix("S")))
        mpd = cls(title_id=root.get("id", ""), duration_s=duration_s)

        period = root.find(f"{{{_MPD_NS}}}Period")
        if period is None:
            raise MpdParseError("MPD has no Period")
        for aset_el in period.findall(f"{{{_MPD_NS}}}AdaptationSet"):
            aset = AdaptationSet(
                content_type=aset_el.get("contentType", ""),
                lang=aset_el.get("lang"),
                content_protections=cls._parse_protections(aset_el),
            )
            for rep_el in aset_el.findall(f"{{{_MPD_NS}}}Representation"):
                seg_list = rep_el.find(f"{{{_MPD_NS}}}SegmentList")
                if seg_list is None:
                    raise MpdParseError("Representation lacks SegmentList")
                init_el = seg_list.find(f"{{{_MPD_NS}}}Initialization")
                if init_el is None:
                    raise MpdParseError("SegmentList lacks Initialization")
                rep = MpdRepresentation(
                    rep_id=rep_el.get("id", ""),
                    bandwidth_kbps=int(rep_el.get("bandwidth", "0")) // 1000,
                    codecs=rep_el.get("codecs", ""),
                    mime_type=rep_el.get("mimeType", ""),
                    init_url=init_el.get("sourceURL", ""),
                    segment_urls=[
                        seg.get("media", "")
                        for seg in seg_list.findall(f"{{{_MPD_NS}}}SegmentURL")
                    ],
                    width=_int_or_none(rep_el.get("width")),
                    height=_int_or_none(rep_el.get("height")),
                    content_protections=cls._parse_protections(rep_el),
                )
                aset.representations.append(rep)
            mpd.adaptation_sets.append(aset)
        return mpd

    @staticmethod
    def _parse_protections(parent: ET.Element) -> list[ContentProtectionTag]:
        tags: list[ContentProtectionTag] = []
        for el in parent.findall(f"{{{_MPD_NS}}}ContentProtection"):
            kid_attr = el.get(f"{{{_CENC_NS}}}default_KID")
            pssh_el = el.find(f"{{{_CENC_NS}}}pssh")
            tags.append(
                ContentProtectionTag(
                    scheme_id_uri=el.get("schemeIdUri", ""),
                    value=el.get("value", ""),
                    default_kid=_parse_kid(kid_attr) if kid_attr else None,
                    pssh_b64=pssh_el.text if pssh_el is not None else None,
                )
            )
        return tags


def _int_or_none(raw: str | None) -> int | None:
    return int(raw) if raw is not None else None
