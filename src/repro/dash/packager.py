"""DASH packager: titles + key assignments → CDN assets + MPD.

This is the content-preparation pipeline a streaming service runs ahead
of time: encrypt each track according to the service's key policy, wrap
into fragmented MP4, upload to the CDN, and emit the manifest with
``ContentProtection`` descriptors. The per-service *choices* (which
tracks get keys, how many keys) come from
:mod:`repro.license_server.policy` — they are the study's subject.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.bmff.builder import build_init_segment, build_media_segment
from repro.bmff.cenc import (
    CencSample,
    encrypt_sample,
    encrypt_sample_cbcs,
    iv_sequence,
)
from repro.bmff.pssh import build_widevine_pssh
from repro.dash.mpd import AdaptationSet, ContentProtectionTag, Mpd, MpdRepresentation
from repro.media.codecs import sample_header_length
from repro.media.content import Representation, Title, TrackKind
from repro.media.subtitles import build_webvtt
from repro.net.cdn import CdnServer
from repro.obs.bus import NULL_BUS, ObservabilityBus

__all__ = [
    "TrackCrypto",
    "PackagedTitle",
    "Packager",
    "segment_cache_stats",
    "clear_segment_cache",
]

_MIME_BY_KIND = {
    TrackKind.VIDEO: "video/mp4",
    TrackKind.AUDIO: "audio/mp4",
    TrackKind.TEXT: "text/vtt",
}


class _SegmentCache:
    """Process-wide LRU of packaged (encrypted) media segments.

    Segment bytes are a pure function of the packaging inputs: the
    sample payloads derive deterministically from
    ``(title_id, rep_id, codec, bitrate, segment duration)``, the IV
    sequence from ``(service, title_id, rep_id, segment index)``, and
    the ciphertext from the content key and protection scheme. The ten
    study backends — and every deterministic world rebuild in tests and
    benchmarks — therefore re-encrypt byte-identical segments; memoizing
    them removes that CPU cost from study construction.

    Thread-safe: the parallel study runner may rebuild device worlds
    concurrently with packaging still in flight elsewhere.
    """

    def __init__(self, max_entries: int = 8192):
        self._entries: OrderedDict[tuple, bytes] = OrderedDict()
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, cache_key: tuple) -> bytes | None:
        with self._lock:
            segment = self._entries.get(cache_key)
            if segment is None:
                self.misses += 1
                return None
            self._entries.move_to_end(cache_key)
            self.hits += 1
            return segment

    def put(self, cache_key: tuple, segment: bytes) -> None:
        with self._lock:
            self._entries[cache_key] = segment
            self._entries.move_to_end(cache_key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


_SEGMENT_CACHE = _SegmentCache()


def segment_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the packaged-segment cache."""
    cache = _SEGMENT_CACHE
    with cache._lock:
        return {
            "hits": cache.hits,
            "misses": cache.misses,
            "entries": len(cache._entries),
        }


def clear_segment_cache() -> None:
    """Drop all memoized segments (cold-start benchmarking)."""
    _SEGMENT_CACHE.clear()


@dataclass(frozen=True)
class TrackCrypto:
    """Key material assigned to one representation.

    ``key is None`` means the representation ships in the clear.
    ``scheme`` selects the CENC protection scheme: ``"cenc"`` (AES-CTR
    subsample, the default for DASH) or ``"cbcs"`` (AES-CBC 1:9
    pattern, 16-byte IVs).
    """

    key_id: bytes | None
    key: bytes | None
    iv_size: int = 8
    scheme: str = "cenc"

    @property
    def protected(self) -> bool:
        return self.key is not None

    def __post_init__(self) -> None:
        if (self.key is None) != (self.key_id is None):
            raise ValueError("key and key_id must be both set or both None")
        if self.key is not None and len(self.key) != 16:
            raise ValueError("content key must be 16 bytes")
        if self.key_id is not None and len(self.key_id) != 16:
            raise ValueError("key id must be 16 bytes")
        if self.scheme not in ("cenc", "cbcs"):
            raise ValueError(f"unsupported protection scheme {self.scheme!r}")
        if self.scheme == "cbcs" and self.iv_size != 16:
            object.__setattr__(self, "iv_size", 16)


@dataclass
class PackagedTitle:
    """Everything the packager produced for one title."""

    title: Title
    mpd: Mpd
    mpd_xml: bytes
    mpd_path: str
    # rep_id → (init_url, [segment_urls]); subtitles have a single
    # "segment" holding the WebVTT document.
    asset_urls: dict[str, tuple[str, list[str]]] = field(default_factory=dict)
    # kid → key, for the license server.
    content_keys: dict[bytes, bytes] = field(default_factory=dict)
    # rep_id → kid (None = clear), for analysis convenience.
    kid_by_rep: dict[str, bytes | None] = field(default_factory=dict)

    def key_ids(self) -> set[bytes]:
        return set(self.content_keys)


class Packager:
    """Packages titles for one service onto one CDN."""

    def __init__(
        self,
        service: str,
        cdn: CdnServer,
        *,
        provider: str | None = None,
        publish_key_ids: bool = True,
        obs: ObservabilityBus | None = None,
    ):
        self.service = service
        self.cdn = cdn
        self.provider = provider or service
        self.obs = obs if obs is not None else NULL_BUS
        # When False the MPD omits per-representation cenc:default_KID
        # attributes (only the aggregated Widevine PSSH remains) —
        # modelling services whose per-track key metadata sits behind a
        # separate, possibly geo-blocked endpoint.
        self.publish_key_ids = publish_key_ids

    def package(
        self,
        title: Title,
        crypto_by_rep: dict[str, TrackCrypto],
        *,
        base_path: str | None = None,
    ) -> PackagedTitle:
        """Package *title*, protecting each representation as assigned.

        *crypto_by_rep* must contain an entry for every representation
        of the title — forcing callers (the service key policies) to
        make an explicit clear/protected decision per track, because
        the silent default is precisely the failure mode the paper
        documents.
        """
        missing = {r.rep_id for r in title.representations} - set(crypto_by_rep)
        if missing:
            raise ValueError(f"no crypto decision for representations: {missing}")

        with self.obs.span(
            "package.title", service=self.service, title=title.title_id
        ):
            packaged = self._package(title, crypto_by_rep, base_path)
            self.obs.count("package.titles")
            return packaged

    def _package(
        self,
        title: Title,
        crypto_by_rep: dict[str, TrackCrypto],
        base_path: str | None,
    ) -> PackagedTitle:
        base = base_path or f"/{self.service}/{title.title_id}"
        all_kids = sorted(
            {c.key_id for c in crypto_by_rep.values() if c.key_id is not None}
        )
        packaged = PackagedTitle(
            title=title,
            mpd=Mpd(title_id=title.title_id, duration_s=title.duration_s),
            mpd_xml=b"",
            mpd_path=f"{base}/manifest.mpd",
        )

        video_set = AdaptationSet(content_type="video")
        audio_sets: list[AdaptationSet] = []
        text_sets: list[AdaptationSet] = []

        for rep in title.representations:
            crypto = crypto_by_rep[rep.rep_id]
            if rep.kind is TrackKind.TEXT:
                mpd_rep = self._package_subtitle(title, rep, base, packaged)
                text_sets.append(
                    AdaptationSet(
                        content_type="text",
                        lang=rep.language,
                        representations=[mpd_rep],
                    )
                )
                continue

            mpd_rep = self._package_av_track(
                title, rep, crypto, base, all_kids, packaged
            )
            if rep.kind is TrackKind.VIDEO:
                video_set.representations.append(mpd_rep)
            else:
                audio_sets.append(
                    AdaptationSet(
                        content_type="audio",
                        lang=rep.language,
                        representations=[mpd_rep],
                    )
                )

        packaged.mpd.adaptation_sets = [video_set, *audio_sets, *text_sets]
        packaged.mpd_xml = packaged.mpd.to_xml()
        self.cdn.put(packaged.mpd_path, packaged.mpd_xml)
        return packaged

    def _package_av_track(
        self,
        title: Title,
        rep: Representation,
        crypto: TrackCrypto,
        base: str,
        all_kids: list[bytes],
        packaged: PackagedTitle,
    ) -> MpdRepresentation:
        pssh_boxes = []
        protections: list[ContentProtectionTag] = []
        if crypto.protected:
            assert crypto.key_id is not None and crypto.key is not None
            pssh = build_widevine_pssh(
                all_kids, provider=self.provider, content_id=title.title_id.encode()
            )
            pssh_boxes = [pssh]
            protections = [ContentProtectionTag.widevine(pssh.serialize())]
            if self.publish_key_ids:
                protections.insert(0, ContentProtectionTag.cenc(crypto.key_id))
            packaged.content_keys[crypto.key_id] = crypto.key

        init = build_init_segment(
            kind=rep.kind.value,
            codec=rep.codec,
            default_kid=crypto.key_id if crypto.protected else None,
            iv_size=crypto.iv_size,
            scheme=crypto.scheme,
            pssh=pssh_boxes,
        )
        init_path = f"{base}/{rep.rep_id}/init.mp4"
        init_url = self.cdn.put(init_path, init)

        segment_urls: list[str] = []
        clear_len = sample_header_length()
        for seg_index in range(title.segment_count):
            # Everything the segment bytes depend on: sample payloads
            # (title/rep identity, bitrate, segment duration), the IV
            # seed (service-scoped), and the crypto assignment.
            cache_key = (
                self.service,
                title.title_id,
                title.segment_duration_s,
                rep.rep_id,
                rep.codec,
                rep.bitrate_kbps,
                seg_index,
                crypto.key,
                crypto.key_id,
                crypto.iv_size,
                crypto.scheme,
                clear_len,
            )
            segment = _SEGMENT_CACHE.get(cache_key)
            if segment is None:
                segment = self._build_media_segment(
                    title, rep, crypto, seg_index, clear_len
                )
                _SEGMENT_CACHE.put(cache_key, segment)
            path = f"{base}/{rep.rep_id}/seg-{seg_index:04d}.m4s"
            segment_urls.append(self.cdn.put(path, segment))

        packaged.asset_urls[rep.rep_id] = (init_url, segment_urls)
        packaged.kid_by_rep[rep.rep_id] = crypto.key_id
        self.obs.count("package.segments", title.segment_count)
        return MpdRepresentation(
            rep_id=rep.rep_id,
            bandwidth_kbps=rep.bitrate_kbps,
            codecs=rep.codec,
            mime_type=_MIME_BY_KIND[rep.kind],
            init_url=init_url,
            segment_urls=segment_urls,
            width=rep.resolution.width if rep.resolution else None,
            height=rep.resolution.height if rep.resolution else None,
            content_protections=protections,
        )

    def _build_media_segment(
        self,
        title: Title,
        rep: Representation,
        crypto: TrackCrypto,
        seg_index: int,
        clear_len: int,
    ) -> bytes:
        """Generate, encrypt and box one media segment (cache miss path)."""
        samples = title.samples_for_segment(rep, seg_index)
        if not crypto.protected:
            return build_media_segment(seg_index + 1, samples)
        assert crypto.key is not None
        seed = f"{self.service}/{title.title_id}/{rep.rep_id}/{seg_index}"
        ivs = iv_sequence(seed.encode(), len(samples), iv_size=crypto.iv_size)
        if crypto.scheme == "cbcs":
            enc: list[CencSample] = [
                encrypt_sample_cbcs(s, crypto.key, iv, clear_header=clear_len)
                for s, iv in zip(samples, ivs)
            ]
        else:
            enc = [
                encrypt_sample(s, crypto.key, iv, clear_header=clear_len)
                for s, iv in zip(samples, ivs)
            ]
        return build_media_segment(seg_index + 1, enc, iv_size=crypto.iv_size)

    def _package_subtitle(
        self,
        title: Title,
        rep: Representation,
        base: str,
        packaged: PackagedTitle,
    ) -> MpdRepresentation:
        # Subtitles ship as standalone WebVTT; no Android DRM API exists
        # for encrypted subtitles (§IV "Insights"), and accordingly every
        # service the paper measured delivers them in clear.
        assert rep.language is not None
        vtt = build_webvtt(title.title_id, rep.language, title.duration_s)
        path = f"{base}/{rep.rep_id}/subs.vtt"
        url = self.cdn.put(path, vtt)
        packaged.asset_urls[rep.rep_id] = (url, [])
        packaged.kid_by_rep[rep.rep_id] = None
        return MpdRepresentation(
            rep_id=rep.rep_id,
            bandwidth_kbps=rep.bitrate_kbps,
            codecs=rep.codec,
            mime_type=_MIME_BY_KIND[TrackKind.TEXT],
            init_url=url,
            segment_urls=[],
        )
