"""MPEG-DASH substrate: MPD model and packaging/streaming helpers."""

from repro.dash.client import (
    MAX_HEIGHT_BY_LEVEL,
    TrackSelection,
    TrackSelectionError,
    TrackSelector,
    extract_widevine_init_data,
)
from repro.dash.mpd import (
    CENC_SCHEME_URI,
    WIDEVINE_SCHEME_URI,
    AdaptationSet,
    ContentProtectionTag,
    Mpd,
    MpdParseError,
    MpdRepresentation,
)
from repro.dash.packager import PackagedTitle, Packager, TrackCrypto

__all__ = [
    "MAX_HEIGHT_BY_LEVEL",
    "TrackSelection",
    "TrackSelectionError",
    "TrackSelector",
    "extract_widevine_init_data",
    "CENC_SCHEME_URI",
    "WIDEVINE_SCHEME_URI",
    "AdaptationSet",
    "ContentProtectionTag",
    "Mpd",
    "MpdParseError",
    "MpdRepresentation",
    "PackagedTitle",
    "Packager",
    "TrackCrypto",
]
