"""DASH client-side helpers — the ExoPlayer analogue.

§IV "Insights": "many apps call DRM API through ExoPlayer as
recommended by Widevine". This module captures the player-library half
of that: track selection over a parsed MPD (resolution capping by
security level, language matching) and extraction of the DRM init data
a `MediaDrm` session needs. The OTT app models delegate here, the same
way real apps delegate to ExoPlayer's ``DefaultTrackSelector`` and
``DefaultDrmSessionManager``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bmff.boxes import PsshBox, parse_boxes
from repro.dash.mpd import Mpd, MpdRepresentation, WIDEVINE_SCHEME_URI
from repro.obs.bus import NULL_BUS, ObservabilityBus

__all__ = [
    "MAX_HEIGHT_BY_LEVEL",
    "TrackSelection",
    "TrackSelectionError",
    "TrackSelector",
    "extract_widevine_init_data",
]

# The resolution ceilings ExoPlayer-era apps apply per Widevine level:
# HD requires hardware-backed L1.
MAX_HEIGHT_BY_LEVEL = {"L1": 1080, "L2": 540, "L3": 540}


class TrackSelectionError(ValueError):
    """No representation satisfies the selection constraints."""


@dataclass(frozen=True)
class TrackSelection:
    """The representations chosen for one playback."""

    video: MpdRepresentation
    audio: MpdRepresentation
    text: MpdRepresentation | None


class TrackSelector:
    """Selects representations from a manifest, ExoPlayer-style."""

    def __init__(self, mpd: Mpd, *, obs: ObservabilityBus | None = None):
        self.mpd = mpd
        self.obs = obs if obs is not None else NULL_BUS

    def select_video(self, *, max_height: int) -> MpdRepresentation:
        """Highest video rung within the ceiling."""
        candidates = [
            rep
            for aset in self.mpd.sets_of_type("video")
            for rep in aset.representations
            if (rep.height or 0) <= max_height
        ]
        if not candidates:
            raise TrackSelectionError(
                f"no playable video representation under {max_height}p"
            )
        chosen = max(candidates, key=lambda rep: rep.height or 0)
        self.obs.event(
            "dash.select_video",
            rep=chosen.rep_id,
            height=chosen.height,
            ceiling=max_height,
        )
        return chosen

    def select_audio(self, language: str) -> MpdRepresentation:
        for aset in self.mpd.sets_of_type("audio"):
            if aset.lang == language and aset.representations:
                return aset.representations[0]
        raise TrackSelectionError(
            f"no audio representation for language {language!r}"
        )

    def select_text(self, language: str) -> MpdRepresentation | None:
        """Subtitles are optional: None when the manifest lists none."""
        for aset in self.mpd.sets_of_type("text"):
            if aset.lang == language and aset.representations:
                return aset.representations[0]
        return None

    def select(
        self,
        *,
        security_level: str,
        audio_language: str,
        text_language: str | None = None,
    ) -> TrackSelection:
        """One-call selection for a playback session."""
        max_height = MAX_HEIGHT_BY_LEVEL.get(security_level, 540)
        return TrackSelection(
            video=self.select_video(max_height=max_height),
            audio=self.select_audio(audio_language),
            text=(
                self.select_text(text_language)
                if text_language is not None
                else None
            ),
        )

    def init_data_for(self, rep: MpdRepresentation) -> bytes:
        """Widevine PSSH init data for a representation (set- or
        rep-level ``ContentProtection``)."""
        for aset in self.mpd.adaptation_sets:
            if rep in aset.representations:
                data = extract_widevine_init_data(aset.all_protections(rep))
                if data is not None:
                    return data
        raise TrackSelectionError(f"no Widevine init data for {rep.rep_id}")


def extract_widevine_init_data(protections) -> bytes | None:
    """Pull the Widevine PSSH payload out of ContentProtection tags."""
    for tag in protections:
        if tag.scheme_id_uri == WIDEVINE_SCHEME_URI and tag.pssh_bytes:
            boxes = parse_boxes(tag.pssh_bytes)
            if boxes and isinstance(boxes[0], PsshBox):
                return boxes[0].data
    return None
