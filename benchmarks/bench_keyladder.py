"""§IV-D practical impact — the key-ladder attack and media recovery.

Regenerates the in-text results: DRM-free content recovered from the
six apps that keep serving discontinued devices (all except Amazon and
the three revoking services), best quality capped at 960x540 (qHD),
keys identical for all subscribers. Benchmarks each attack stage:
memory scan, RSA recovery, offline license unwrap, CENC decryption.
"""

from __future__ import annotations

import pytest

from repro.core.keyladder_attack import KeyLadderAttack
from repro.core.media_recovery import MediaRecoveryPipeline
from repro.core.study import WideLeakStudy
from repro.instrumentation.memscan import scan_for_keybox
from repro.ott.app import OttApp
from repro.ott.registry import profile_by_name

SIX_BROKEN = {"Netflix", "Hulu", "myCanal", "Showtime", "OCS", "Salto"}


def test_practical_impact_reproduced(study, capsys):
    """The §IV-D table-in-prose: who breaks, who resists, at what quality."""
    results = study.run_all_attacks()
    with capsys.disabled():
        print("\n=== §IV-D practical impact (regenerated) ===")
        header = f"{'OTT':22s} {'keybox':7s} {'RSA':5s} {'keys':5s} {'DRM-free':9s} {'best':6s}"
        print(header)
        print("-" * len(header))
        for name, outcome in results.items():
            attack, recovered = outcome.attack, outcome.recovered
            best = recovered.best_video_height if recovered else None
            print(
                f"{name:22s} {str(attack.keybox_recovered):7s} "
                f"{str(attack.rsa_recovered):5s} {len(attack.content_keys):<5d} "
                f"{str(bool(recovered and recovered.succeeded)):9s} "
                f"{str(best):6s}"
            )
    broken = {
        name
        for name, outcome in results.items()
        if outcome.recovered is not None and outcome.recovered.succeeded
    }
    assert broken == SIX_BROKEN
    for name in SIX_BROKEN:
        assert results[name].recovered.best_video_height == 540  # qHD


def test_bench_keybox_memory_scan(benchmark, study):
    """Stage 1: structural keybox scan over the DRM process memory."""
    device = study.legacy_device
    matches = benchmark(scan_for_keybox, device.drm_process)
    assert len(matches) == 1


def test_bench_keybox_recovery(benchmark, study):
    """Stage 1 complete: scan + whitebox mask inversion."""
    attack = KeyLadderAttack(study.legacy_device)
    keybox = benchmark(attack.recover_keybox)
    assert keybox is not None
    assert keybox.device_key == study.legacy_device.keybox.device_key


def test_bench_full_attack_pipeline(benchmark, study):
    """All three stages plus triggering playback, for one app."""
    profile = profile_by_name("Showtime")
    backend = study.backends[profile.service]

    def run():
        app = OttApp(profile, study.legacy_device, backend)
        return KeyLadderAttack(study.legacy_device).run(app)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.succeeded


def test_bench_offline_license_harvest(benchmark, study):
    """Unwrapping every persisted offline license after a keybox break."""
    from repro.android.mediadrm import KEY_TYPE_OFFLINE, MediaDrm
    from repro.bmff.builder import read_pssh_boxes
    from repro.bmff.pssh import WIDEVINE_SYSTEM_ID

    profile = profile_by_name("OCS")
    backend = study.backends[profile.service]
    device = study.legacy_device
    drm = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin=profile.package)
    client = device.new_http_client()
    request = drm.get_provision_request()
    response = client.post(
        f"https://{profile.provisioning_host}/provision", request.data
    )
    drm.provide_provision_response(response.body)
    packaged = backend.packaged[next(iter(backend.catalog)).title_id]
    init_url, _ = packaged.asset_urls["v540"]
    (pssh,) = read_pssh_boxes(client.get(init_url).body)
    session = drm.open_session()
    key_request = drm.get_key_request(session, pssh.data, key_type=KEY_TYPE_OFFLINE)
    license_response = client.post(
        f"https://{profile.license_host}/license", key_request.data
    )
    drm.provide_key_response(session, license_response.body)

    attack = KeyLadderAttack(device)
    keybox = attack.recover_keybox()
    rsa = attack.recover_device_rsa_key(keybox, profile.package)

    harvested = benchmark(attack.harvest_offline_licenses, rsa, profile.package)
    assert harvested


def test_bench_hd_forgery(benchmark, study):
    """The §V-C forgery attempt (strict service: rejected, still timed)."""
    from repro.core.hd_forgery import HdForgeryAttack
    from repro.ott.app import OttApp as _OttApp

    profile = profile_by_name("Salto")
    backend = study.backends[profile.service]

    def run():
        app = _OttApp(profile, study.legacy_device, backend)
        return HdForgeryAttack(study.legacy_device, study.network).run(app)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not result.succeeded  # all Table I services verify the claim


def test_bench_media_recovery(benchmark, study):
    """CENC decryption + reconstruction of a whole title."""
    profile = profile_by_name("Showtime")
    backend = study.backends[profile.service]
    app = OttApp(profile, study.legacy_device, backend)
    attack = KeyLadderAttack(study.legacy_device).run(app)
    assert attack.succeeded
    title_id = next(iter(backend.catalog)).title_id
    packaged = backend.packaged[title_id]
    mpd_url = f"https://{profile.cdn_host}{packaged.mpd_path}"
    pipeline = MediaRecoveryPipeline(study.network)

    recovered = benchmark.pedantic(
        lambda: pipeline.recover(profile.service, mpd_url, attack.content_keys),
        rounds=3,
        iterations=1,
    )
    assert recovered.succeeded
    assert recovered.best_video_height == 540
