"""Figure 1 — Encrypted Content Playback in Android.

Replays one full DASH playback on an L1 device and checks the captured
message sequence against the figure's arrows (application ↔ Media DRM
Server ↔ CDM, license server, CDN, Media Crypto). The benchmark times
one complete Figure-1 round trip (license acquisition + secure decode).
"""

from __future__ import annotations

import pytest

from repro.core.figures import FIGURE_1_ARROWS, collapse_decode_loop
from repro.core.study import WideLeakStudy
from repro.ott.app import OttApp
from repro.ott.registry import profile_by_name

def test_figure1_sequence_reproduced(study, capsys):
    profile = profile_by_name("OCS")
    app = OttApp(profile, study.l1_device, study.backends[profile.service])
    app.play()  # provision once, out of band of the figure
    study.l1_device.trace.clear()
    result = app.play()
    assert result.ok
    arrows = collapse_decode_loop(study.l1_device.trace.labels())
    with capsys.disabled():
        print("\n=== Figure 1 message sequence (captured) ===")
        for source, target, label in arrows:
            print(f"  {source} -> {target}: {label}")
    assert tuple(arrows) == FIGURE_1_ARROWS


def test_bench_figure1_playback(benchmark, study):
    """One full encrypted-playback round trip (Figure 1, end to end)."""
    profile = profile_by_name("Showtime")
    app = OttApp(profile, study.l1_device, study.backends[profile.service])
    app.play()  # warm: provisioning done once

    def run():
        study.l1_device.trace.clear()
        result = app.play()
        assert result.ok
        return result

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.video_height == 1080
