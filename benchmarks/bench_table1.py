"""Table I — Widevine usage and asset protections by OTTs.

Regenerates the paper's only table by running the full four-question
pipeline over all ten apps, prints it next to the published table, and
asserts a cell-for-cell match. Per-app audit latency is benchmarked on
a representative subset.
"""

from __future__ import annotations

import pytest

from repro.core.report import EXPECTED_PAPER_TABLE, TableOne
from repro.core.study import WideLeakStudy
from repro.ott.registry import ALL_PROFILES, profile_by_name


def test_table1_regenerates_exactly(study, capsys):
    """The headline artefact: measured Table I == published Table I."""
    result = study.run()
    with capsys.disabled():
        print("\n=== Table I (regenerated from the pipeline) ===")
        print(result.table.render())
        print("\n=== Table I (published) ===")
        expected = TableOne(rows=list(EXPECTED_PAPER_TABLE.values()))
        print(expected.render())
        diffs = result.table.diff_against_paper()
        print(f"\ncell differences vs paper: {diffs if diffs else 'none'}")
    assert result.table.matches_paper


@pytest.mark.parametrize(
    "app_name", ["Netflix", "Disney+", "Amazon Prime Video", "Hulu"]
)
def test_bench_single_app_study(benchmark, app_name):
    """Latency of the full Q1–Q4 pipeline for one app."""
    study = WideLeakStudy.with_default_apps()
    profile = profile_by_name(app_name)

    def run():
        return study.study_app(profile)

    app_result = benchmark.pedantic(run, rounds=3, iterations=1)
    expected = EXPECTED_PAPER_TABLE[app_name]
    row = WideLeakStudy._to_row(app_result)
    assert row == expected


def test_bench_full_table(benchmark):
    """End-to-end cost of regenerating the whole table."""
    def run():
        return WideLeakStudy.with_default_apps().run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.table.rows) == len(ALL_PROFILES)
    assert result.table.matches_paper
