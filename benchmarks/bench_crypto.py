"""Crypto substrate micro-benchmarks.

Not a paper artefact — these quantify the simulation's own primitives
(pure-Python AES/CMAC/RSA/CENC) so regressions in the substrate are
visible independently of the pipeline benches.
"""

from __future__ import annotations

import pytest

from repro.bmff.cenc import decrypt_sample, encrypt_sample
from repro.crypto.aes import AES
from repro.crypto.cmac import aes_cmac
from repro.crypto.kdf import derive_session_keys
from repro.crypto.modes import cbc_encrypt, ctr_transform
from repro.crypto.rng import HmacDrbg
from repro.crypto.rsa import generate_keypair, oaep_decrypt, oaep_encrypt, pss_sign

_KEY = bytes(range(16))
_IV = bytes(range(16))


def test_bench_aes_block(benchmark):
    cipher = AES(_KEY)
    block = bytes(16)
    out = benchmark(cipher.encrypt_block, block)
    assert len(out) == 16


def test_bench_ctr_4kb(benchmark):
    data = bytes(4096)
    out = benchmark(ctr_transform, _KEY, _IV, data)
    assert len(out) == 4096


def test_bench_cbc_4kb(benchmark):
    data = bytes(4096)
    out = benchmark(cbc_encrypt, _KEY, _IV, data)
    assert len(out) == 4112


def test_bench_cmac_1kb(benchmark):
    data = bytes(1024)
    tag = benchmark(aes_cmac, _KEY, data)
    assert len(tag) == 16


def test_bench_session_key_derivation(benchmark):
    keys = benchmark(derive_session_keys, _KEY, b"license-request-context")
    assert len(keys.encryption) == 16


def test_bench_hmac_drbg(benchmark):
    rng = HmacDrbg(b"bench")
    out = benchmark(rng.generate, 1024)
    assert len(out) == 1024


def test_bench_cenc_sample_encrypt(benchmark):
    sample = bytes(2048)
    enc = benchmark(encrypt_sample, sample, _KEY, bytes(8), clear_header=64)
    assert len(enc.data) == 2048


def test_bench_cenc_sample_decrypt(benchmark):
    enc = encrypt_sample(bytes(2048), _KEY, bytes(8), clear_header=64)
    out = benchmark(decrypt_sample, enc, _KEY)
    assert out == bytes(2048)


@pytest.fixture(scope="module")
def rsa2048():
    return generate_keypair(2048, label="bench-rsa")


def test_bench_rsa_oaep_encrypt(benchmark, rsa2048):
    ct = benchmark(oaep_encrypt, rsa2048.public, bytes(16))
    assert len(ct) == 256


def test_bench_rsa_oaep_decrypt(benchmark, rsa2048):
    ct = oaep_encrypt(rsa2048.public, bytes(16))
    out = benchmark(oaep_decrypt, rsa2048, ct)
    assert out == bytes(16)


def test_bench_rsa_pss_sign(benchmark, rsa2048):
    sig = benchmark(pss_sign, rsa2048, b"license request payload")
    assert len(sig) == 256


def test_bench_rsa_keygen_1024(benchmark):
    from repro.crypto.rng import derive_rng

    counter = iter(range(10**6))

    def gen():
        return generate_keypair(
            1024, rng=derive_rng(f"bench-keygen-{next(counter)}")
        )

    key = benchmark.pedantic(gen, rounds=3, iterations=1)
    assert key.n.bit_length() == 1024
