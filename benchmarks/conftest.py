"""Shared benchmark fixtures.

The benchmarks double as the reproduction harness: each bench module
regenerates one of the paper's artefacts (Table I, Figure 1, the §IV-D
practical-impact results) and *asserts* the reproduced shape against
the published values while timing the pipeline that produced it.
"""

from __future__ import annotations

import pytest

from repro.core.study import WideLeakStudy


@pytest.fixture(scope="session")
def study() -> WideLeakStudy:
    return WideLeakStudy.with_default_apps()
