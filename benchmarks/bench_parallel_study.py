"""Full-study macro-benchmarks: sequential vs. parallel, cold vs. warm.

Times the whole reproduction (world construction + Q1-Q4 over all ten
apps + the §IV-D sweep) along the optimisation trajectory this repo
ships:

- **cold** — every process-wide cache cleared first: expanded-AES
  ciphers, CTR keystream blocks, CMAC subkeys, KDF derivations and the
  packager's segment cache. This is what a fresh interpreter pays.
- **warm** — the same run again with caches populated, the steady state
  for repeated studies in one process (benchmarks, CI, notebooks).
- **parallel** — the warm run fanned out over ``jobs=4`` worker
  threads via :class:`~repro.core.parallel.ParallelStudyRunner`.
- **fleet** — the same campaign through :mod:`repro.fleet`: cold
  (every cell computed into the content-addressed store), warm
  resubmit (zero cells computed, pure cache hits) and a
  single-profile invalidation (exactly the world cell plus that app's
  audit cell recomputed). Cache-hit ratio and warm-vs-cold wall times
  land in the artifact too.

``test_bench_study_trajectory`` writes the measurements to
``BENCH_study.json`` at the repo root so the trajectory is a diffable
artifact, and asserts the parallel artifact is byte-identical to the
sequential one.

Honest caveat, recorded in the artifact too: the pipeline is CPU-bound
pure Python, so under the GIL thread fan-out mostly overlaps cache
misses rather than adding cores — the wall-clock win comes from the
cached crypto fast paths; ``jobs`` buys isolation-checked concurrency
at roughly neutral cost.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import tempfile
import time
from pathlib import Path

from repro.core.parallel import ParallelStudyRunner
from repro.core.study import WideLeakStudy
from repro.fleet import Campaign, FleetScheduler
from repro.ott.registry import ALL_PROFILES
from repro.crypto.aes import cipher_for
from repro.obs.bus import ObservabilityBus
from repro.obs.sampling import TraceSampler
from repro.crypto.cmac import _subkeys_for
from repro.crypto.kdf import derive_key
from repro.crypto.modes import _keystream_blocks
from repro.dash.packager import clear_segment_cache, segment_cache_stats

_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_study.json"


def _clear_substrate_caches() -> None:
    """Reset every process-wide cache the fast paths rely on."""
    cipher_for.cache_clear()
    _keystream_blocks.cache_clear()
    _subkeys_for.cache_clear()
    derive_key.cache_clear()
    clear_segment_cache()


def _timed_study(jobs: int = 1) -> tuple[float, str]:
    """Construct the world and run the full study; (seconds, artifact)."""
    start = time.perf_counter()
    runner = ParallelStudyRunner(WideLeakStudy.with_default_apps(), jobs=jobs)
    result = runner.run()
    elapsed = time.perf_counter() - start
    assert result.table.matches_paper
    return elapsed, result.to_json()


def _timed_study_bus(enabled: bool) -> float:
    """Full sequential study on an explicitly enabled/disabled bus."""
    gc.collect()  # prior runs' span graphs must not tax this one
    start = time.perf_counter()
    study = WideLeakStudy.with_default_apps(
        obs=ObservabilityBus(enabled=enabled)
    )
    result = study.run()
    elapsed = time.perf_counter() - start
    assert result.table.matches_paper
    return elapsed


def _obs_overhead() -> dict[str, float]:
    """Traced vs. untraced wall time, min-of-3 each, warm caches.

    Minimum (not mean) of interleaved runs: both modes see the same
    cache/GC state, and the minimum is the least noise-contaminated
    estimate of each mode's true cost.
    """
    untraced_runs: list[float] = []
    traced_runs: list[float] = []
    for _ in range(3):
        untraced_runs.append(_timed_study_bus(False))
        traced_runs.append(_timed_study_bus(True))
    untraced, traced = min(untraced_runs), min(traced_runs)
    return {
        "untraced_seconds": round(untraced, 3),
        "traced_seconds": round(traced, 3),
        "overhead_pct": round((traced / untraced - 1.0) * 100.0, 2),
    }


def _timed_study_sampled(denominator: int) -> tuple[float, str, int]:
    """Full sequential study at a 1/N sampling rate; returns
    (seconds, artifact JSON, spans dropped)."""
    gc.collect()
    start = time.perf_counter()
    study = WideLeakStudy.with_default_apps(
        sampler=TraceSampler(denominator)
    )
    result = study.run()
    elapsed = time.perf_counter() - start
    assert result.table.matches_paper
    return elapsed, result.to_json(), study.obs.sampling_snapshot()["dropped_spans"]


def _sampling_sweep() -> dict[str, object]:
    """Wall time across sampling rates (full, 1/4, 1/16, disabled),
    min-of-4 interleaved runs each, warm caches.

    Also asserts the exactness contract: the study artifact is
    byte-identical at every rate."""
    full_runs: list[float] = []
    one_in_4_runs: list[float] = []
    one_in_16_runs: list[float] = []
    disabled_runs: list[float] = []
    full_json = sampled_json_4 = sampled_json_16 = ""
    dropped_4 = dropped_16 = 0
    for _ in range(4):
        seconds, full_json, _zero = _timed_study_sampled(1)
        full_runs.append(seconds)
        seconds, sampled_json_4, dropped_4 = _timed_study_sampled(4)
        one_in_4_runs.append(seconds)
        seconds, sampled_json_16, dropped_16 = _timed_study_sampled(16)
        one_in_16_runs.append(seconds)
        disabled_runs.append(_timed_study_bus(False))
    assert sampled_json_4 == full_json
    assert sampled_json_16 == full_json
    assert dropped_16 >= dropped_4 > 0
    return {
        "full_seconds": round(min(full_runs), 3),
        "one_in_4_seconds": round(min(one_in_4_runs), 3),
        "one_in_16_seconds": round(min(one_in_16_runs), 3),
        "disabled_seconds": round(min(disabled_runs), 3),
        "one_in_4_dropped_spans": dropped_4,
        "one_in_16_dropped_spans": dropped_16,
        "artifact_byte_identical_at_all_rates": True,
        "gate_tolerance_pct": 10.0,
        "note": (
            "full sequential study per head-sampling rate, warm caches, "
            "min of 4 interleaved runs each; counters and "
            "StudyResult.to_json() byte-identical at every rate"
        ),
    }


def _fleet_trajectory(expected_json: str) -> dict[str, object]:
    """Cold campaign -> warm resubmit -> single-profile invalidation.

    Runs the full ten-app campaign through the fleet scheduler three
    times against one content-addressed store: cold (every cell
    computed), warm (the acceptance criterion — zero cells computed,
    byte-identical artifact) and with exactly one profile's benign
    metadata bumped (recomputes only the world cell plus that app's
    audit cell). Records the wall times and the warm cache-hit ratio.
    """
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as root:
        scheduler = FleetScheduler(root)
        campaign = Campaign(profiles=ALL_PROFILES)

        start = time.perf_counter()
        cold = scheduler.submit(campaign)
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        warm = scheduler.submit(campaign)
        warm_s = time.perf_counter() - start

        bumped = list(ALL_PROFILES)
        bumped[0] = dataclasses.replace(
            bumped[0], installs_millions=bumped[0].installs_millions + 1
        )
        start = time.perf_counter()
        invalidated = scheduler.submit(Campaign(profiles=tuple(bumped)))
        invalidated_s = time.perf_counter() - start

        # The whole point of the store: cold fleet assembly is
        # byte-identical to the in-process run, and the warm resubmit
        # recomputes nothing yet assembles the identical artifact.
        assert cold.result.to_json() == expected_json
        assert warm.result.to_json() == expected_json
        assert warm.stats["computed"] == 0
        assert warm.stats["cache_hits"] == warm.stats["cells"]
        # world + the bumped app's audit cell; everything else is a hit
        assert invalidated.stats["computed"] == 2

        return {
            "cold_seconds": round(cold_s, 3),
            "warm_seconds": round(warm_s, 3),
            "invalidated_seconds": round(invalidated_s, 3),
            "warm_pct_of_cold": round(warm_s / cold_s * 100.0, 1),
            "cells": cold.stats["cells"],
            "cold_computed": cold.stats["computed"],
            "warm_computed": warm.stats["computed"],
            "warm_cache_hits": warm.stats["cache_hits"],
            "warm_cache_hit_ratio": round(
                warm.stats["cache_hits"] / warm.stats["cells"], 3
            ),
            "invalidated_computed": invalidated.stats["computed"],
            "store": scheduler.store.stats(),
            "byte_identical_to_sequential": True,
            "note": (
                "full ten-app campaign through repro.fleet against one "
                "content-addressed store; warm resubmit is pure cache "
                "hits and assembles the byte-identical StudyResult"
            ),
        }


def _timed_attacks(jobs: int = 1) -> float:
    start = time.perf_counter()
    runner = ParallelStudyRunner(WideLeakStudy.with_default_apps(), jobs=jobs)
    outcomes = runner.run_all_attacks()
    elapsed = time.perf_counter() - start
    assert any(
        o.recovered is not None and o.recovered.succeeded
        for o in outcomes.values()
    )
    return elapsed


def test_bench_study_trajectory(capsys):
    """Cold -> warm -> parallel, emitted as ``BENCH_study.json``."""
    _clear_substrate_caches()
    cold_s, cold_json = _timed_study(jobs=1)
    cold_cache = segment_cache_stats()

    warm_s, warm_json = _timed_study(jobs=1)
    warm_cache = segment_cache_stats()

    parallel_s, parallel_json = _timed_study(jobs=4)
    attacks_seq_s = _timed_attacks(jobs=1)
    attacks_par_s = _timed_attacks(jobs=4)
    observability = _obs_overhead()
    sampling_sweep = _sampling_sweep()
    fleet = _fleet_trajectory(cold_json)

    assert warm_json == cold_json
    assert parallel_json == cold_json
    assert observability["overhead_pct"] < 10.0, observability
    # Recording fewer spans must not cost more than recording them all.
    # Sampled runs still observe every duration (the exactness
    # contract), so the true delta is near zero; the 10% tolerance —
    # the same budget the obs-overhead gate uses — absorbs the ±7-10%
    # round-to-round scheduler noise measured in this container.
    assert (
        sampling_sweep["one_in_4_seconds"]
        <= sampling_sweep["full_seconds"] * 1.10
    ), sampling_sweep

    payload = {
        "artifact": "WideLeak full-study wall time (construction + Q1-Q4)",
        "trajectory": [
            {
                "phase": "sequential-cold",
                "seconds": round(cold_s, 3),
                "note": "all substrate caches cleared first",
            },
            {
                "phase": "sequential-warm",
                "seconds": round(warm_s, 3),
                "note": "cipher/keystream/KDF/segment caches populated",
            },
            {
                "phase": "parallel-jobs4-warm",
                "seconds": round(parallel_s, 3),
                "note": "ThreadPoolExecutor fan-out, byte-identical output",
            },
        ],
        "attacks": {
            "sequential_seconds": round(attacks_seq_s, 3),
            "parallel_jobs4_seconds": round(attacks_par_s, 3),
        },
        "observability": {
            **observability,
            "budget_pct": 10.0,
            "note": (
                "full sequential study on an enabled vs. disabled "
                "ObservabilityBus, warm caches, min of 3 interleaved "
                "runs each"
            ),
            "sampling_sweep": sampling_sweep,
        },
        "fleet": fleet,
        "packager_segment_cache": {
            "cold": cold_cache,
            "after_warm_run": warm_cache,
        },
        "speedup_warm_over_cold": round(cold_s / warm_s, 2),
        "parallel_matches_sequential": True,
        "caveat": (
            "CPU-bound pure Python under the GIL: the speedup comes from "
            "the cached crypto fast paths; jobs>1 provides overlap and an "
            "isolation check, not core scaling"
        ),
    }
    _ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print(f"\n=== full-study trajectory (-> {_ARTIFACT.name}) ===")
        for point in payload["trajectory"]:
            print(f"{point['phase']:22s} {point['seconds']:>8.3f}s")
        print(
            f"{'attacks seq/par':22s} {attacks_seq_s:>8.3f}s /"
            f" {attacks_par_s:.3f}s"
        )
        print(f"warm-over-cold speedup: {payload['speedup_warm_over_cold']}x")
        print(
            f"observability overhead: {observability['overhead_pct']}% "
            f"(traced {observability['traced_seconds']}s / "
            f"untraced {observability['untraced_seconds']}s)"
        )
        print(
            "sampling sweep: "
            f"full {sampling_sweep['full_seconds']}s / "
            f"1-in-4 {sampling_sweep['one_in_4_seconds']}s / "
            f"1-in-16 {sampling_sweep['one_in_16_seconds']}s / "
            f"disabled {sampling_sweep['disabled_seconds']}s"
        )
        print(
            "fleet: "
            f"cold {fleet['cold_seconds']}s / "
            f"warm {fleet['warm_seconds']}s "
            f"({fleet['warm_pct_of_cold']}% of cold, "
            f"hit ratio {fleet['warm_cache_hit_ratio']}) / "
            f"invalidated {fleet['invalidated_seconds']}s "
            f"({fleet['invalidated_computed']} cells recomputed)"
        )


def test_bench_obs_overhead_smoke():
    """CI smoke: the observability bus must cost < 10% of an untraced
    run. Standalone so the CI bench-smoke job can run just this."""
    _timed_study_bus(True)  # warm the substrate caches first
    observability = _obs_overhead()
    assert observability["overhead_pct"] < 10.0, observability


def test_bench_sampling_overhead_smoke():
    """CI smoke: sampling at 1/4 must not be slower than full tracing
    (min-of-4 interleaved; 10% tolerance for scheduler noise), and the
    study artifact must stay byte-identical at every rate — asserted
    inside the sweep. Standalone so the CI profile-smoke job can run
    just this gate."""
    _timed_study_bus(True)  # warm the substrate caches first
    sweep = _sampling_sweep()
    assert sweep["one_in_4_seconds"] <= sweep["full_seconds"] * 1.10, sweep


def test_bench_sequential_study_warm(benchmark):
    """Steady-state sequential run (caches warm from prior iterations)."""
    elapsed, _ = _timed_study(jobs=1)
    del elapsed

    def run():
        return ParallelStudyRunner(
            WideLeakStudy.with_default_apps(), jobs=1
        ).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.table.matches_paper


def test_bench_parallel_study_jobs4(benchmark):
    """Steady-state jobs=4 run; asserts Table I still matches."""

    def run():
        return ParallelStudyRunner(
            WideLeakStudy.with_default_apps(), jobs=4
        ).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.table.matches_paper


def test_bench_packager_cold_vs_warm(benchmark):
    """World construction alone, segment cache cleared each round.

    Construction is dominated by packaging (CENC-encrypting every
    segment of every representation for ten services), so this isolates
    the segment cache's contribution.
    """

    def build_cold():
        clear_segment_cache()
        return WideLeakStudy.with_default_apps()

    study = benchmark.pedantic(build_cold, rounds=3, iterations=1)
    assert len(study.backends) == 10
    stats = segment_cache_stats()
    assert stats["misses"] > 0


def test_bench_packager_warm(benchmark):
    """World construction with the segment cache left warm."""
    WideLeakStudy.with_default_apps()

    def build_warm():
        return WideLeakStudy.with_default_apps()

    study = benchmark.pedantic(build_warm, rounds=3, iterations=1)
    assert len(study.backends) == 10
