"""Ablations over the design choices DESIGN.md calls out.

Not published figures — these quantify the *mechanisms* behind the
paper's findings:

1. **Hook overhead** — playback cost with and without the `_oecc`
   monitor attached (the methodology's observability tax);
2. **L1 vs L3 scan resistance** — the memory scan that is the heart of
   CVE-2021-0639, on both storage models;
3. **Key-policy blast radius** — how many assets one leaked key opens
   under Minimum vs Recommended key usage (why Widevine recommends
   distinct keys, Q3);
4. **Revocation effectiveness** — attack success with revocation
   enforced vs ignored (the Q4 trade-off).
"""

from __future__ import annotations

import pytest

from repro.core.keyladder_attack import KeyLadderAttack
from repro.core.monitor import DrmApiMonitor
from repro.instrumentation.memscan import scan_for_keybox
from repro.license_server.policy import (
    AudioProtection,
    RevocationPolicy,
    ServicePolicy,
    assign_track_crypto,
)
from repro.media.content import make_title
from repro.ott.app import OttApp
from repro.ott.registry import profile_by_name


# -- 1. hook overhead ---------------------------------------------------------


def test_bench_playback_unmonitored(benchmark, study):
    profile = profile_by_name("OCS")
    app = OttApp(profile, study.l1_device, study.backends[profile.service])
    app.play()  # provision

    result = benchmark.pedantic(app.play, rounds=3, iterations=1)
    assert result.ok


def test_bench_playback_monitored(benchmark, study):
    profile = profile_by_name("OCS")
    app = OttApp(profile, study.l1_device, study.backends[profile.service])
    app.play()
    monitor = DrmApiMonitor(study.l1_device)

    def run():
        with monitor.attached():
            return app.play()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.ok


# -- 2. scan resistance -------------------------------------------------------


def test_bench_scan_l3_finds_keybox(benchmark, study):
    matches = benchmark(scan_for_keybox, study.legacy_device.drm_process)
    assert len(matches) == 1


def test_bench_scan_l1_finds_nothing(benchmark, study):
    matches = benchmark(scan_for_keybox, study.l1_device.drm_process)
    assert matches == []


# -- 3. key-policy blast radius ------------------------------------------------


def _blast_radius(audio_protection: AudioProtection) -> tuple[int, int]:
    """(#assets decryptable with the leaked qHD video key, #total
    protected assets) for one title under a policy."""
    policy = ServicePolicy(
        service=f"blast-{audio_protection.value}",
        audio_protection=audio_protection,
        revocation=RevocationPolicy(),
    )
    title = make_title("blst00", "Blast radius")
    assignment = assign_track_crypto(policy, title)
    leaked_kid = assignment["v540"].key_id
    protected = [a for a in assignment.values() if a.protected]
    opened = [a for a in protected if a.key_id == leaked_kid]
    return len(opened), len(protected)


def test_blast_radius_minimum_vs_recommended(capsys):
    shared_opened, shared_total = _blast_radius(AudioProtection.SHARED_KEY)
    distinct_opened, distinct_total = _blast_radius(AudioProtection.DISTINCT_KEY)
    with capsys.disabled():
        print("\n=== Ablation: one leaked qHD key opens… ===")
        print(
            f"  Minimum (shared audio key):   {shared_opened}/{shared_total} "
            "protected assets"
        )
        print(
            f"  Recommended (distinct keys):  {distinct_opened}/{distinct_total} "
            "protected assets"
        )
    # Minimum: the leaked video key also unlocks every audio language.
    assert shared_opened == 3  # v540 + audio en + audio fr
    # Recommended: it unlocks exactly the one representation.
    assert distinct_opened == 1


def test_bench_key_assignment(benchmark):
    policy = ServicePolicy(
        service="bench-assign",
        audio_protection=AudioProtection.DISTINCT_KEY,
        revocation=RevocationPolicy(),
    )
    title = make_title("bass00", "Assignment bench")
    assignment = benchmark(assign_track_crypto, policy, title)
    assert len(assignment) == len(title.representations)


# -- 3b. why subscriber-shared keys: CDN storage economics -----------------------


def test_per_account_keys_storage_cost(capsys):
    """§IV-D observes every service shares content keys across all
    subscribers. This ablation shows why: per-account keys force
    per-account encrypted copies on the CDN — storage scales with the
    subscriber count instead of the catalog size."""
    from repro.dash.packager import Packager
    from repro.net.cdn import CdnServer

    def cdn_bytes(per_account: bool, accounts: int) -> int:
        policy = ServicePolicy(
            service=f"stor{int(per_account)}",
            audio_protection=AudioProtection.SHARED_KEY,
            revocation=RevocationPolicy(),
            per_account_keys=per_account,
        )
        title = make_title("stor00", "Storage ablation")
        cdn = CdnServer(f"cdn.stor{int(per_account)}.example")
        if not per_account:
            packager = Packager(policy.service, cdn)
            packager.package(title, assign_track_crypto(policy, title))
        else:
            for index in range(accounts):
                packager = Packager(policy.service, cdn)
                packager.package(
                    title,
                    assign_track_crypto(policy, title, account=f"user{index}"),
                    base_path=f"/{policy.service}/user{index}/{title.title_id}",
                )
        return sum(len(blob) for blob in cdn._blobs.values())

    accounts = 3
    shared = cdn_bytes(per_account=False, accounts=accounts)
    per_account = cdn_bytes(per_account=True, accounts=accounts)
    with capsys.disabled():
        print("\n=== Ablation: CDN storage, shared vs per-account keys ===")
        print(f"  shared keys (any number of subscribers): {shared:>9d} bytes")
        print(f"  per-account keys ({accounts} subscribers):        {per_account:>9d} bytes")
        print(f"  ratio: {per_account / shared:.2f}x — scales with subscribers")
    assert per_account >= accounts * shared * 0.95


# -- 4. client-level verification (the netflix-1080p knob) -----------------------


def test_client_level_verification_gates_hd(capsys):
    """§V-C adapted: with server-side verification of the claimed
    security level, HD forgery from a broken L3 device fails; without
    it, both HD keys leak."""
    from repro.android.device import nexus_5
    from repro.core.hd_forgery import HdForgeryAttack
    from repro.license_server.provisioning import KeyboxAuthority
    from repro.net.network import Network
    from repro.ott.backend import OttBackend
    from repro.ott.profile import OttProfile

    outcomes = {}
    for verifies in (True, False):
        profile = OttProfile(
            name="Knob",
            service=f"knob{int(verifies)}",
            package="com.knob.app",
            installs_millions=1,
            audio_protection=AudioProtection.SHARED_KEY,
            enforces_revocation=False,
            verifies_client_level=verifies,
        )
        network = Network()
        authority = KeyboxAuthority()
        backend = OttBackend(profile, network, authority)
        device = nexus_5(network, authority)
        device.rooted = True
        app = OttApp(profile, device, backend)
        result = HdForgeryAttack(device, network).run(app)
        outcomes[verifies] = len(result.hd_key_ids)
    with capsys.disabled():
        print("\n=== Ablation: HD keys leaked to an L3 forger claiming L1 ===")
        print(f"  server verifies client level:   {outcomes[True]} HD keys")
        print(f"  server trusts the claim:        {outcomes[False]} HD keys")
    assert outcomes[True] == 0
    assert outcomes[False] == 2


# -- 5. revocation effectiveness -------------------------------------------------


def test_revocation_stops_the_attack(study, capsys):
    """Attack success on the discontinued device, per revocation stance."""
    outcomes = {}
    for name in ("Showtime", "Disney+"):
        profile = profile_by_name(name)
        app = OttApp(profile, study.legacy_device, study.backends[profile.service])
        result = KeyLadderAttack(study.legacy_device).run(app)
        outcomes[name] = result.succeeded
    with capsys.disabled():
        print("\n=== Ablation: revocation vs the key-ladder attack ===")
        print(f"  revocation ignored  (Showtime): attack succeeded = {outcomes['Showtime']}")
        print(f"  revocation enforced (Disney+):  attack succeeded = {outcomes['Disney+']}")
    assert outcomes["Showtime"] is True
    assert outcomes["Disney+"] is False
