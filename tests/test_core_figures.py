"""Figure 1 helpers plus the no-DRM music-service baseline ([14])."""

import pytest

from repro.core.figures import (
    FIGURE_1_ARROWS,
    capture_figure1,
    collapse_decode_loop,
    figure1_matches,
)


class TestCollapse:
    def test_keeps_first_decode_pair(self):
        q = ("Application", "Media Crypto", "queueSecureInputBuffer()")
        d = ("Media Crypto", "CDM", "Decrypt()")
        other = ("A", "B", "something()")
        events = [other, q, d, q, d, q, d]
        assert collapse_decode_loop(events) == [other, q, d]

    def test_non_decode_events_untouched(self):
        events = [("A", "B", "x()"), ("A", "B", "x()")]
        assert collapse_decode_loop(events) == events

    def test_figure1_matches(self):
        assert figure1_matches(list(FIGURE_1_ARROWS))
        assert not figure1_matches(list(FIGURE_1_ARROWS[:-1]))


class TestCaptureFigure1:
    def test_captures_canonical_sequence(self, full_study):
        from repro.ott.app import OttApp
        from repro.ott.registry import profile_by_name

        profile = profile_by_name("myCanal")
        app = OttApp(
            profile, full_study.l1_device, full_study.backends[profile.service]
        )
        events = capture_figure1(app)
        assert figure1_matches(events)

    def test_raises_on_failed_playback(self, full_study):
        from repro.ott.app import OttApp
        from repro.ott.registry import profile_by_name

        profile = profile_by_name("Disney+")
        app = OttApp(
            profile, full_study.legacy_device, full_study.backends[profile.service]
        )
        with pytest.raises(RuntimeError, match="playback failed"):
            capture_figure1(app)


class TestMarkdownRendering:
    def test_table_markdown(self, study_result):
        markdown = study_result.table.render_markdown()
        lines = markdown.splitlines()
        assert lines[0].startswith("| OTT |")
        assert lines[1].startswith("|---")
        assert len(lines) == 12  # header + separator + 10 rows
        assert "| Netflix |" in markdown


class TestMusicServiceBaseline:
    """[14] 'Looney Tunes: exposing the lack of DRM protection in
    Indian music streaming services' — the degenerate case the paper's
    Q1 contrasts against: no DRM at all, everything is a direct
    download."""

    def test_all_clear_music_catalog(self):
        from repro.dash.packager import Packager, TrackCrypto
        from repro.media.content import make_title
        from repro.media.player import AssetStatus, probe_track
        from repro.net.cdn import CdnServer
        from repro.net.http import HttpRequest, parse_url
        from repro.net.network import HttpClient, Network

        network = Network()
        cdn = CdnServer("cdn.tunes.example")
        network.register(cdn)
        # An audio-only "album": no video, no subtitles, no keys anywhere.
        album = make_title(
            "tune00",
            "Album",
            video_resolutions=(),
            audio_languages=("hi", "ta"),
            subtitle_languages=(),
        )
        crypto = {
            rep.rep_id: TrackCrypto(None, None) for rep in album.representations
        }
        packaged = Packager("tunes", cdn).package(album, crypto)
        assert packaged.content_keys == {}

        client = HttpClient(network)  # no account, no app, no DRM
        for rep in album.representations:
            init_url, seg_urls = packaged.asset_urls[rep.rep_id]
            init = client.get(init_url).body
            segments = [client.get(u).body for u in seg_urls]
            assert probe_track(init, segments).status is AssetStatus.CLEAR
