"""DASH client (ExoPlayer analogue): track selection and init-data
extraction."""

import pytest

from repro.bmff.pssh import build_widevine_pssh
from repro.dash.client import (
    MAX_HEIGHT_BY_LEVEL,
    TrackSelectionError,
    TrackSelector,
    extract_widevine_init_data,
)
from repro.dash.mpd import AdaptationSet, ContentProtectionTag, Mpd, MpdRepresentation

_KID = bytes(range(16))


def _video(rep_id: str, height: int, protections=None) -> MpdRepresentation:
    return MpdRepresentation(
        rep_id=rep_id,
        bandwidth_kbps=height * 4,
        codecs="synh264",
        mime_type="video/mp4",
        init_url=f"https://cdn.x/{rep_id}/init.mp4",
        segment_urls=[f"https://cdn.x/{rep_id}/seg-0.m4s"],
        width=height * 16 // 9,
        height=height,
        content_protections=protections or [],
    )


def _audio(lang: str) -> AdaptationSet:
    rep = MpdRepresentation(
        rep_id=f"a-{lang}",
        bandwidth_kbps=128,
        codecs="synaac",
        mime_type="audio/mp4",
        init_url=f"https://cdn.x/a-{lang}/init.mp4",
    )
    return AdaptationSet(content_type="audio", lang=lang, representations=[rep])


def _text(lang: str) -> AdaptationSet:
    rep = MpdRepresentation(
        rep_id=f"t-{lang}",
        bandwidth_kbps=4,
        codecs="wvtt",
        mime_type="text/vtt",
        init_url=f"https://cdn.x/t-{lang}/subs.vtt",
    )
    return AdaptationSet(content_type="text", lang=lang, representations=[rep])


@pytest.fixture
def mpd() -> Mpd:
    pssh = build_widevine_pssh([_KID], provider="x")
    video_set = AdaptationSet(
        content_type="video",
        representations=[
            _video("v540", 540, [ContentProtectionTag.widevine(pssh.serialize())]),
            _video("v720", 720),
            _video("v1080", 1080),
        ],
    )
    return Mpd(
        title_id="sel00",
        duration_s=8,
        adaptation_sets=[video_set, _audio("en"), _audio("fr"), _text("en")],
    )


class TestVideoSelection:
    def test_highest_under_cap(self, mpd):
        selector = TrackSelector(mpd)
        assert selector.select_video(max_height=1080).rep_id == "v1080"
        assert selector.select_video(max_height=720).rep_id == "v720"
        assert selector.select_video(max_height=600).rep_id == "v540"

    def test_no_candidate_raises(self, mpd):
        with pytest.raises(TrackSelectionError, match="under 100p"):
            TrackSelector(mpd).select_video(max_height=100)

    def test_level_caps(self):
        assert MAX_HEIGHT_BY_LEVEL["L1"] == 1080
        assert MAX_HEIGHT_BY_LEVEL["L3"] == 540


class TestAudioAndText:
    def test_audio_by_language(self, mpd):
        assert TrackSelector(mpd).select_audio("fr").rep_id == "a-fr"

    def test_missing_audio_language(self, mpd):
        with pytest.raises(TrackSelectionError, match="'de'"):
            TrackSelector(mpd).select_audio("de")

    def test_text_optional(self, mpd):
        selector = TrackSelector(mpd)
        assert selector.select_text("en").rep_id == "t-en"
        assert selector.select_text("fr") is None


class TestSelect:
    def test_one_call_selection(self, mpd):
        selection = TrackSelector(mpd).select(
            security_level="L3", audio_language="en", text_language="en"
        )
        assert selection.video.rep_id == "v540"
        assert selection.audio.rep_id == "a-en"
        assert selection.text.rep_id == "t-en"

    def test_unknown_level_defaults_to_sub_hd(self, mpd):
        selection = TrackSelector(mpd).select(
            security_level="L9", audio_language="en"
        )
        assert selection.video.rep_id == "v540"
        assert selection.text is None


class TestInitData:
    def test_extracts_pssh_payload(self, mpd):
        selector = TrackSelector(mpd)
        rep = selector.select_video(max_height=540)
        data = selector.init_data_for(rep)
        from repro.bmff.pssh import WidevinePsshData

        assert WidevinePsshData.parse(data).key_ids == [_KID]

    def test_missing_init_data_raises(self, mpd):
        selector = TrackSelector(mpd)
        rep = selector.select_video(max_height=720)  # unprotected rung
        with pytest.raises(TrackSelectionError, match="no Widevine init data"):
            selector.init_data_for(rep)

    def test_extract_helper_none_for_no_tags(self):
        assert extract_widevine_init_data([]) is None
        assert extract_widevine_init_data([ContentProtectionTag.cenc(_KID)]) is None
