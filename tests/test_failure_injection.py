"""Failure injection: tampered licenses, corrupted media, broken
servers — the stack must fail closed, loudly and at the right layer."""

import json

import pytest

from repro.android.device import pixel_6
from repro.android.mediadrm import MediaDrm, MediaDrmException
from repro.bmff.builder import read_pssh_boxes
from repro.bmff.pssh import WIDEVINE_SYSTEM_ID
from repro.license_server.policy import AudioProtection
from repro.license_server.protocol import LicenseResponse
from repro.license_server.provisioning import KeyboxAuthority
from repro.net.http import HttpRequest, HttpResponse
from repro.net.network import Network
from repro.ott.app import OttApp
from repro.ott.backend import OttBackend
from repro.ott.profile import OttProfile


def _world(**overrides):
    defaults = dict(
        name="FailFlix",
        service="failflix",
        package="com.failflix.app",
        installs_millions=1,
        audio_protection=AudioProtection.SHARED_KEY,
        enforces_revocation=False,
    )
    defaults.update(overrides)
    profile = OttProfile(**defaults)
    network = Network()
    authority = KeyboxAuthority()
    backend = OttBackend(profile, network, authority)
    device = pixel_6(network, authority)
    device.rooted = True
    return profile, network, backend, device


def _provisioned_drm(profile, backend, device):
    drm = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin=profile.package)
    client = device.new_http_client()
    request = drm.get_provision_request()
    response = client.post(
        f"https://{profile.provisioning_host}/provision", request.data
    )
    drm.provide_provision_response(response.body)
    return drm, client


class TestTamperedLicense:
    def _license_response(self, profile, backend, device):
        drm, client = _provisioned_drm(profile, backend, device)
        packaged = backend.packaged[next(iter(backend.catalog)).title_id]
        init_url, _ = packaged.asset_urls["v540"]
        (pssh,) = read_pssh_boxes(client.get(init_url).body)
        session = drm.open_session()
        request = drm.get_key_request(session, pssh.data)
        response = client.post(
            f"https://{profile.license_host}/license", request.data
        )
        return drm, session, response.body

    def test_flipped_mac_rejected(self):
        profile, __, backend, device = _world(service="tl1")
        drm, session, body = self._license_response(profile, backend, device)
        message = json.loads(body.decode())
        message["mac"] = "00" * 32
        with pytest.raises(MediaDrmException, match="MAC mismatch"):
            drm.provide_key_response(session, json.dumps(message).encode())

    def test_swapped_wrapped_key_rejected(self):
        profile, __, backend, device = _world(service="tl2")
        drm, session, body = self._license_response(profile, backend, device)
        message = json.loads(body.decode())
        # Corrupt a wrapped content key: the MAC covers it, so the CDM
        # must notice before any unwrap happens.
        message["keys"][0]["wrapped_key"] = "ab" * 32
        with pytest.raises(MediaDrmException, match="MAC mismatch"):
            drm.provide_key_response(session, json.dumps(message).encode())

    def test_tampered_derivation_context_rejected(self):
        profile, __, backend, device = _world(service="tl3")
        drm, session, body = self._license_response(profile, backend, device)
        message = json.loads(body.decode())
        message["derivation_context"] = "00" * 8
        with pytest.raises(MediaDrmException, match="context mismatch"):
            drm.provide_key_response(session, json.dumps(message).encode())

    def test_truncated_body_rejected(self):
        profile, __, backend, device = _world(service="tl4")
        drm, session, body = self._license_response(profile, backend, device)
        with pytest.raises(MediaDrmException, match="bad license response"):
            drm.provide_key_response(session, body[: len(body) // 2])


class TestBrokenProvisioning:
    def test_garbage_provision_response(self):
        profile, __, backend, device = _world(service="bp1")
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin=profile.package)
        drm.get_provision_request()
        from repro.android.mediadrm import DeniedByServerException

        with pytest.raises(DeniedByServerException):
            drm.provide_provision_response(b"\x00\x01\x02 garbage")

    def test_replayed_provision_response_for_other_device(self):
        profile, network, backend, device_a = _world(service="bp2")
        authority = KeyboxAuthority()
        device_b = pixel_6(network, authority, serial="P6-OTHER")
        device_b.rooted = True

        drm_a = MediaDrm(WIDEVINE_SYSTEM_ID, device_a, origin=profile.package)
        client = device_a.new_http_client()
        request = drm_a.get_provision_request()
        response = client.post(
            f"https://{profile.provisioning_host}/provision", request.data
        )
        # Feed A's provisioning response to B.
        drm_b = MediaDrm(WIDEVINE_SYSTEM_ID, device_b, origin=profile.package)
        drm_b.get_provision_request()
        from repro.android.mediadrm import DeniedByServerException

        with pytest.raises(DeniedByServerException, match="another device"):
            drm_b.provide_provision_response(response.body)


class TestCorruptedCdn:
    def _corrupt_cdn(self, backend, *, flip_segments=False, drop=False):
        """Wrap the CDN route to corrupt or drop asset bodies."""
        original = backend.cdn._serve

        def corrupted(request: HttpRequest) -> HttpResponse:
            response = original(request)
            if not response.ok:
                return response
            path = request.parsed_url.path
            if drop and path.endswith(".m4s"):
                return HttpResponse.not_found("segment vanished")
            if flip_segments and path.endswith(".m4s"):
                body = bytearray(response.body)
                body[len(body) // 2] ^= 0xFF
                return HttpResponse(status=200, body=bytes(body))
            return response

        backend.cdn.route("/", corrupted)

    def test_bitflipped_segments_fail_decode(self):
        profile, __, backend, device = _world(service="cc1")
        self._corrupt_cdn(backend, flip_segments=True)
        app = OttApp(profile, device, backend)
        result = app.play()
        assert not result.ok
        # The flip lands either in a clear range (checksum fails) or a
        # protected range (decrypt garbles) — both must surface.
        video = next(t for t in result.tracks if t.kind == "video")
        assert video.frames_valid < video.frames_total

    def test_missing_segments_fail_playback(self):
        profile, __, backend, device = _world(service="cc2")
        self._corrupt_cdn(backend, drop=True)
        app = OttApp(profile, device, backend)
        result = app.play()
        assert not result.ok


class TestBrokenApi:
    def test_playback_api_500(self):
        profile, __, backend, device = _world(service="ba1")
        backend.api.route(
            "/playback",
            lambda request: HttpResponse(status=500, body=b"backend exploded"),
        )
        app = OttApp(profile, device, backend)
        result = app.play()
        assert not result.ok
        assert "backend exploded" in result.error

    def test_license_endpoint_garbage(self):
        profile, __, backend, device = _world(service="ba2")
        backend.license_server.route(
            "/license", lambda request: HttpResponse(status=200, body=b"not json")
        )
        app = OttApp(profile, device, backend)
        result = app.play()
        assert not result.ok
        assert "license load failed" in result.error

    def test_unresolvable_host_surfaces(self):
        profile, network, backend, device = _world(service="ba3")
        app = OttApp(profile, device, backend)
        app.profile = profile  # unchanged; break DNS instead:
        network._servers.pop(profile.api_host)
        with pytest.raises(LookupError, match="unknown host"):
            app.play()


class TestSessionMisuse:
    def test_decrypt_after_close(self):
        profile, __, backend, device = _world(service="sm1")
        drm, client = _provisioned_drm(profile, backend, device)
        packaged = backend.packaged[next(iter(backend.catalog)).title_id]
        init_url, seg_urls = packaged.asset_urls["v540"]
        init = client.get(init_url).body
        (pssh,) = read_pssh_boxes(init)
        session = drm.open_session()
        request = drm.get_key_request(session, pssh.data)
        response = client.post(
            f"https://{profile.license_host}/license", request.data
        )
        drm.provide_key_response(session, response.body)
        drm.close_session(session)
        with pytest.raises(MediaDrmException, match="not open"):
            drm.get_key_request(session, pssh.data)

    def test_two_sessions_do_not_share_keys(self):
        profile, __, backend, device = _world(service="sm2")
        drm, client = _provisioned_drm(profile, backend, device)
        packaged = backend.packaged[next(iter(backend.catalog)).title_id]
        init_url, _ = packaged.asset_urls["v540"]
        init = client.get(init_url).body
        (pssh,) = read_pssh_boxes(init)
        from repro.bmff.builder import read_track_info

        kid = read_track_info(init).default_kid

        licensed = drm.open_session()
        request = drm.get_key_request(licensed, pssh.data)
        response = client.post(
            f"https://{profile.license_host}/license", request.data
        )
        drm.provide_key_response(licensed, response.body)

        unlicensed = drm.open_session()
        from repro.widevine.oemcrypto import KeyNotLoadedError

        with pytest.raises(KeyNotLoadedError):
            drm._cdm.decrypt(unlicensed, kid, bytes(16), bytes(8), [])
