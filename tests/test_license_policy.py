"""Service policies: key assignment per Table I's regimes, revocation."""

import pytest

from repro.license_server.policy import (
    AudioProtection,
    KeyUsagePolicy,
    RevocationPolicy,
    ServicePolicy,
    assign_track_crypto,
)
from repro.media.content import TrackKind, make_title
from repro.widevine.versions import CdmVersion


def _policy(audio: AudioProtection, **kwargs) -> ServicePolicy:
    return ServicePolicy(
        service="svc",
        audio_protection=audio,
        revocation=RevocationPolicy(),
        **kwargs,
    )


@pytest.fixture
def title():
    return make_title("svc00", "Policy feature")


class TestRevocationPolicy:
    def test_unenforced_allows_everything(self):
        policy = RevocationPolicy()
        assert not policy.enforced
        assert policy.allows("3.1.0")
        assert policy.allows("15.0.0")

    def test_enforced_floor(self):
        policy = RevocationPolicy(min_cdm_version=CdmVersion(14))
        assert policy.enforced
        assert not policy.allows("3.1.0")
        assert not policy.allows("13.9.9")
        assert policy.allows("14.0.0")
        assert policy.allows("15.0.0")


class TestKeyAssignment:
    def test_video_always_encrypted_distinct_per_resolution(self, title):
        for audio in AudioProtection:
            assignment = assign_track_crypto(_policy(audio), title)
            video_kids = {
                assignment[r.rep_id].key_id
                for r in title.representations
                if r.kind is TrackKind.VIDEO
            }
            assert None not in video_kids
            assert len(video_kids) == 3

    def test_subtitles_always_clear(self, title):
        for audio in AudioProtection:
            assignment = assign_track_crypto(_policy(audio), title)
            for rep in title.subtitles():
                assert not assignment[rep.rep_id].protected

    def test_clear_audio(self, title):
        assignment = assign_track_crypto(_policy(AudioProtection.CLEAR), title)
        for rep in title.audios():
            assert not assignment[rep.rep_id].protected

    def test_shared_key_audio_reuses_lowest_video_key(self, title):
        assignment = assign_track_crypto(_policy(AudioProtection.SHARED_KEY), title)
        v540 = assignment["v540"]
        for rep in title.audios():
            assert assignment[rep.rep_id].key_id == v540.key_id
            assert assignment[rep.rep_id].key == v540.key

    def test_distinct_key_audio(self, title):
        assignment = assign_track_crypto(_policy(AudioProtection.DISTINCT_KEY), title)
        video_kids = {assignment[r.rep_id].key_id for r in title.videos()}
        for rep in title.audios():
            kid = assignment[rep.rep_id].key_id
            assert kid is not None
            assert kid not in video_kids

    def test_distinct_audio_keys_per_language(self, title):
        assignment = assign_track_crypto(_policy(AudioProtection.DISTINCT_KEY), title)
        kids = [assignment[r.rep_id].key_id for r in title.audios()]
        assert len(set(kids)) == len(kids)

    def test_assignment_deterministic(self, title):
        policy = _policy(AudioProtection.SHARED_KEY)
        assert assign_track_crypto(policy, title) == assign_track_crypto(policy, title)

    def test_keys_subscriber_independent_by_default(self, title):
        """§IV-D: 'OTT apps use the same keys for all their subscribers
        for a given media'."""
        policy = _policy(AudioProtection.SHARED_KEY)
        alice = assign_track_crypto(policy, title, account="alice")
        bob = assign_track_crypto(policy, title, account="bob")
        assert alice == bob

    def test_per_account_keys_option(self, title):
        policy = _policy(AudioProtection.SHARED_KEY, per_account_keys=True)
        alice = assign_track_crypto(policy, title, account="alice")
        bob = assign_track_crypto(policy, title, account="bob")
        assert alice["v540"].key != bob["v540"].key
        # Key IDs stay stable (they are content metadata).
        assert alice["v540"].key_id == bob["v540"].key_id

    def test_service_separation(self, title):
        a = assign_track_crypto(_policy(AudioProtection.SHARED_KEY), title)
        other = ServicePolicy(
            service="other",
            audio_protection=AudioProtection.SHARED_KEY,
            revocation=RevocationPolicy(),
        )
        b = assign_track_crypto(other, title)
        assert a["v540"].key != b["v540"].key

    def test_shared_key_requires_video(self):
        bare = make_title(
            "bare00", "Audio only", video_resolutions=(), subtitle_languages=()
        )
        with pytest.raises(ValueError, match="requires a video track"):
            assign_track_crypto(_policy(AudioProtection.SHARED_KEY), bare)


class TestKeyUsageClassification:
    def test_minimum_for_clear(self):
        assert _policy(AudioProtection.CLEAR).key_usage is KeyUsagePolicy.MINIMUM

    def test_minimum_for_shared(self):
        assert _policy(AudioProtection.SHARED_KEY).key_usage is KeyUsagePolicy.MINIMUM

    def test_recommended_for_distinct(self):
        assert (
            _policy(AudioProtection.DISTINCT_KEY).key_usage
            is KeyUsagePolicy.RECOMMENDED
        )
