"""Taint pass: key material flowing into insecure sinks."""

from __future__ import annotations

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import analyze
from repro.analysis.taint import (
    TaintAnalyzer,
    TaintSink,
    TaintSource,
    default_ruleset,
    registered_sinks,
    registered_sources,
)
from repro.android.packages import Apk, ApkMethod
from repro.ott.registry import profile_by_name


def _apk(entry: str = "com.x.Main.onCreate") -> Apk:
    return Apk(package="com.x", version="1.0", entry_points=(entry,))


class TestRegistry:
    def test_default_ruleset_covers_the_key_ladder(self):
        sources, sinks = default_ruleset()
        assert {s.id for s in sources} >= {
            "keybox-bytes",
            "device-rsa-key",
            "content-keys",
            "license-payload",
        }
        assert {(s.id, s.cwe) for s in sinks} >= {
            ("world-readable-storage", "CWE-922"),
            ("logcat", "CWE-532"),
            ("plaintext-http", "CWE-319"),
        }

    def test_registered_views_expose_defaults(self):
        default_ruleset()
        assert any(s.id == "keybox-bytes" for s in registered_sources())
        assert any(s.cwe == "CWE-922" for s in registered_sinks())

    def test_wildcard_pattern_matches_any_class_prefix(self):
        source = TaintSource("x", "", call_patterns=("*.KeyboxReader.read",))
        assert source.matches("com.vendor.drm.KeyboxReader.read")
        assert not source.matches("com.vendor.drm.Other.read")


class TestFlows:
    def test_keybox_to_world_readable_storage_is_cwe_922(self):
        apk = _apk()
        apk.add_class(
            "com.x.Main",
            methods=(ApkMethod("onCreate", calls=("com.x.drm.Dumper.dump",)),),
        )
        apk.add_class(
            "com.x.drm.Dumper",
            methods=(
                ApkMethod(
                    "dump",
                    calls=(
                        "com.x.drm.KeyboxReader.read",
                        "java.io.FileOutputStream.<init>",
                    ),
                ),
            ),
        )
        findings = TaintAnalyzer().run(apk)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.source == "keybox-bytes"
        assert finding.sink == "world-readable-storage"
        assert finding.cwe == "CWE-922"
        assert finding.severity == "critical"
        assert finding.reachable
        assert "CWE-922" in finding.describe()

    def test_flow_through_field_write_then_read(self):
        apk = _apk()
        apk.add_class(
            "com.x.Main",
            methods=(
                ApkMethod(
                    "onCreate",
                    calls=("com.x.A.fetch", "com.x.B.flush"),
                ),
            ),
        )
        apk.add_class(
            "com.x.A",
            methods=(
                ApkMethod(
                    "fetch",
                    calls=("android.media.MediaDrm.provideKeyResponse",),
                    field_writes=("com.x.licenseBlob",),
                ),
            ),
        )
        apk.add_class(
            "com.x.B",
            methods=(
                ApkMethod(
                    "flush",
                    calls=("android.content.Context.openFileOutput",),
                    field_reads=("com.x.licenseBlob",),
                ),
            ),
        )
        findings = TaintAnalyzer().run(apk)
        assert [f.cwe for f in findings] == ["CWE-922"]
        assert "[field com.x.licenseBlob]" in findings[0].path
        assert findings[0].reachable

    def test_dead_code_flow_is_reported_but_flagged(self):
        apk = _apk()
        apk.add_class("com.x.Main", methods=(ApkMethod("onCreate"),))
        # No path from the entry point reaches the dumper.
        apk.add_class(
            "com.x.Dumper",
            methods=(
                ApkMethod(
                    "dump",
                    calls=(
                        "android.media.MediaDrm.getKeyRequest",
                        "android.util.Log.d",
                    ),
                ),
            ),
        )
        findings = TaintAnalyzer().run(apk)
        assert len(findings) == 1
        assert findings[0].cwe == "CWE-532"
        assert not findings[0].reachable
        assert "DEAD CODE" in findings[0].describe()

    def test_no_flow_no_finding(self):
        """Source and sink in unconnected methods: nothing reported."""
        apk = _apk()
        apk.add_class(
            "com.x.Main",
            methods=(
                ApkMethod("onCreate", calls=("com.x.A.fetch", "com.x.B.save")),
            ),
        )
        apk.add_class(
            "com.x.A",
            methods=(
                ApkMethod(
                    "fetch", calls=("android.media.MediaDrm.getKeyRequest",)
                ),
            ),
        )
        # B writes a file but never receives anything tainted.
        apk.add_class(
            "com.x.B",
            methods=(
                ApkMethod("save", calls=("java.io.FileOutputStream.<init>",)),
            ),
        )
        assert TaintAnalyzer().run(apk) == []

    def test_custom_ruleset_overrides_defaults(self):
        apk = _apk()
        apk.add_class(
            "com.x.Main",
            methods=(
                ApkMethod(
                    "onCreate",
                    calls=("com.x.Secrets.load", "com.x.Beacon.send"),
                ),
            ),
        )
        analyzer = TaintAnalyzer(
            sources=(
                TaintSource("custom-src", "", call_patterns=("com.x.Secrets.",)),
            ),
            sinks=(
                TaintSink(
                    "custom-sink",
                    "",
                    cwe="CWE-200",
                    severity="medium",
                    call_patterns=("com.x.Beacon.",),
                ),
            ),
        )
        findings = analyzer.run(apk)
        assert [(f.source, f.sink, f.cwe) for f in findings] == [
            ("custom-src", "custom-sink", "CWE-200")
        ]


class TestProfileFindings:
    def test_netflix_offline_cache_is_a_reachable_cwe_922(self):
        report = analyze(profile_by_name("Netflix").build_apk())
        findings = report.findings_by_cwe("CWE-922")
        assert findings and all(f.reachable for f in findings)

    def test_hbo_max_key_dumper_is_dead_code(self):
        report = analyze(profile_by_name("HBO Max").build_apk())
        assert report.taint_findings
        assert all(not f.reachable for f in report.taint_findings)

    def test_hulu_telemetry_leaks_over_plaintext_http(self):
        report = analyze(profile_by_name("Hulu").build_apk())
        assert [f.cwe for f in report.taint_findings] == ["CWE-319"]

    def test_amazon_custom_drm_keys_reach_disk(self):
        report = analyze(profile_by_name("Amazon Prime Video").build_apk())
        cwes = {f.cwe for f in report.taint_findings}
        assert "CWE-922" in cwes
        sources = {f.source for f in report.findings_by_cwe("CWE-922")}
        assert "content-keys" in sources


class TestDeterminism:
    def test_findings_are_stable_across_runs(self):
        apk = profile_by_name("Showtime").build_apk()
        graph = CallGraph.from_apk(apk)
        first = TaintAnalyzer().run(apk, graph)
        second = TaintAnalyzer().run(apk, graph)
        assert first == second
