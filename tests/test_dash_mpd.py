"""MPD model: XML round trips, ContentProtection descriptors, errors."""

import pytest

from repro.dash.mpd import (
    CENC_SCHEME_URI,
    WIDEVINE_SCHEME_URI,
    AdaptationSet,
    ContentProtectionTag,
    Mpd,
    MpdParseError,
    MpdRepresentation,
)

_KID = bytes(range(16))


def _sample_mpd() -> Mpd:
    video = MpdRepresentation(
        rep_id="v540",
        bandwidth_kbps=2160,
        codecs="synh264",
        mime_type="video/mp4",
        init_url="https://cdn.example/v540/init.mp4",
        segment_urls=[
            "https://cdn.example/v540/seg-0000.m4s",
            "https://cdn.example/v540/seg-0001.m4s",
        ],
        width=960,
        height=540,
        content_protections=[
            ContentProtectionTag.cenc(_KID),
            ContentProtectionTag.widevine(b"pssh-bytes"),
        ],
    )
    audio = MpdRepresentation(
        rep_id="a-en",
        bandwidth_kbps=128,
        codecs="synaac",
        mime_type="audio/mp4",
        init_url="https://cdn.example/a-en/init.mp4",
        segment_urls=["https://cdn.example/a-en/seg-0000.m4s"],
    )
    return Mpd(
        title_id="tt01",
        duration_s=24,
        adaptation_sets=[
            AdaptationSet(content_type="video", representations=[video]),
            AdaptationSet(content_type="audio", lang="en", representations=[audio]),
        ],
    )


class TestRoundTrip:
    def test_basic_fields(self):
        mpd = Mpd.from_xml(_sample_mpd().to_xml())
        assert mpd.title_id == "tt01"
        assert mpd.duration_s == 24
        assert len(mpd.adaptation_sets) == 2

    def test_video_representation(self):
        mpd = Mpd.from_xml(_sample_mpd().to_xml())
        (video,) = mpd.sets_of_type("video")[0].representations
        assert video.rep_id == "v540"
        assert video.width == 960
        assert video.height == 540
        assert video.bandwidth_kbps == 2160
        assert len(video.segment_urls) == 2
        assert video.init_url.endswith("init.mp4")

    def test_content_protection_round_trip(self):
        mpd = Mpd.from_xml(_sample_mpd().to_xml())
        (video,) = mpd.sets_of_type("video")[0].representations
        assert video.protected
        assert video.default_kid() == _KID
        schemes = {t.scheme_id_uri for t in video.content_protections}
        assert schemes == {CENC_SCHEME_URI, WIDEVINE_SCHEME_URI}

    def test_widevine_pssh_payload(self):
        mpd = Mpd.from_xml(_sample_mpd().to_xml())
        (video,) = mpd.sets_of_type("video")[0].representations
        wv = [
            t
            for t in video.content_protections
            if t.scheme_id_uri == WIDEVINE_SCHEME_URI
        ][0]
        assert wv.pssh_bytes == b"pssh-bytes"

    def test_audio_language(self):
        mpd = Mpd.from_xml(_sample_mpd().to_xml())
        (audio_set,) = mpd.sets_of_type("audio")
        assert audio_set.lang == "en"
        assert not audio_set.representations[0].protected

    def test_set_level_protections(self):
        mpd = _sample_mpd()
        mpd.adaptation_sets[0].content_protections = [
            ContentProtectionTag.cenc(_KID)
        ]
        parsed = Mpd.from_xml(mpd.to_xml())
        aset = parsed.sets_of_type("video")[0]
        assert aset.content_protections[0].default_kid == _KID
        rep = aset.representations[0]
        assert len(aset.all_protections(rep)) == 3


class TestErrors:
    def test_not_xml(self):
        with pytest.raises(MpdParseError, match="bad MPD XML"):
            Mpd.from_xml(b"definitely { not xml")

    def test_wrong_root(self):
        with pytest.raises(MpdParseError, match="unexpected root"):
            Mpd.from_xml(b"<foo/>")

    def test_missing_period(self):
        xml = (
            b'<MPD xmlns="urn:mpeg:dash:schema:mpd:2011" '
            b'mediaPresentationDuration="PT4S"/>'
        )
        with pytest.raises(MpdParseError, match="no Period"):
            Mpd.from_xml(xml)

    def test_bad_kid_attribute(self):
        xml = _sample_mpd().to_xml().replace(_kid_str().encode(), b"zz-not-hex")
        with pytest.raises(MpdParseError):
            Mpd.from_xml(xml)


def _kid_str() -> str:
    h = _KID.hex()
    return f"{h[:8]}-{h[8:12]}-{h[12:16]}-{h[16:20]}-{h[20:]}"


class TestTagHelpers:
    def test_cenc_tag(self):
        tag = ContentProtectionTag.cenc(_KID)
        assert tag.value == "cenc"
        assert tag.default_kid == _KID
        assert tag.pssh_bytes is None

    def test_widevine_tag(self):
        tag = ContentProtectionTag.widevine(b"abc")
        assert tag.pssh_bytes == b"abc"
        assert tag.default_kid is None

    def test_sets_of_type(self):
        mpd = _sample_mpd()
        assert len(mpd.sets_of_type("video")) == 1
        assert mpd.sets_of_type("text") == []
