"""Study summary counts and the JSON artifact."""

import json


class TestSummary:
    def test_headline_counts(self, study_result):
        summary = study_result.summary()
        assert summary["apps_evaluated"] == 10
        assert summary["apps_using_widevine"] == 10
        assert summary["apps_with_clear_audio"] == ["Netflix", "Salto", "myCanal"]
        assert summary["apps_with_encrypted_video"] == 10
        # Hulu and Starz subtitle status unknown → 8 confirmed clear.
        assert summary["apps_with_clear_subtitles"] == 8
        assert summary["apps_following_recommended_keys"] == [
            "Amazon Prime Video"
        ]
        assert summary["apps_revoking_legacy_devices"] == [
            "Disney+",
            "HBO Max",
            "Starz",
        ]
        assert summary["apps_serving_legacy_devices"] == 7


class TestJsonArtifact:
    def test_round_trips_through_json(self, study_result):
        payload = json.loads(study_result.to_json())
        assert payload["matches_paper"] is True
        assert len(payload["table1"]) == 10
        netflix = next(r for r in payload["table1"] if r["app"] == "Netflix")
        assert netflix["audio"] == "Clear"
        assert payload["apps"]["Netflix"]["secure_channel"] is True
        assert payload["apps"]["Amazon Prime Video"]["legacy_outcome"] == (
            "plays-custom-drm"
        )
        assert payload["apps"]["Disney+"]["legacy_video_height"] is None
        assert payload["apps"]["Showtime"]["legacy_video_height"] == 540
