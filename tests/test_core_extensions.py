"""Extension features: HD forgery (§V-C future work), the MovieStealer
baseline, Zhao-style L1 TEE compromise, offline licenses."""

import pytest

from repro.android.device import nexus_5, pixel_6
from repro.android.mediadrm import (
    KEY_TYPE_OFFLINE,
    MediaDrm,
    MediaDrmException,
)
from repro.bmff.builder import read_pssh_boxes, read_track_info
from repro.bmff.pssh import WIDEVINE_SYSTEM_ID
from repro.core.hd_forgery import HdForgeryAttack
from repro.core.keyladder_attack import KeyLadderAttack
from repro.core.media_recovery import MediaRecoveryPipeline
from repro.core.moviestealer import InsecureSoftwarePlayer, MovieStealer
from repro.license_server.policy import AudioProtection
from repro.license_server.provisioning import KeyboxAuthority
from repro.net.network import Network
from repro.ott.app import OttApp
from repro.ott.backend import OttBackend
from repro.ott.profile import OttProfile
from repro.widevine.storage import simulate_tee_compromise


def _world(**overrides):
    defaults = dict(
        name="ExtFlix",
        service="extflix",
        package="com.extflix.app",
        installs_millions=1,
        audio_protection=AudioProtection.SHARED_KEY,
        enforces_revocation=False,
    )
    defaults.update(overrides)
    profile = OttProfile(**defaults)
    network = Network()
    authority = KeyboxAuthority()
    backend = OttBackend(profile, network, authority)
    return profile, network, authority, backend


def _legacy(network, authority):
    device = nexus_5(network, authority)
    device.rooted = True
    return device


class TestHdForgery:
    def test_strict_service_rejects_forged_l1_claim(self):
        profile, network, authority, backend = _world(service="hdstrict")
        device = _legacy(network, authority)
        app = OttApp(profile, device, backend)
        result = HdForgeryAttack(device, network).run(app)
        assert not result.succeeded
        assert not result.request_accepted
        assert "security level claim" in (result.server_error or "")

    def test_lax_service_leaks_hd_keys(self):
        """The netflix-1080p scenario adapted to Android: no server-side
        check of the claimed level ⇒ HD keys for an L3 forger."""
        profile, network, authority, backend = _world(
            service="hdlax", verifies_client_level=False
        )
        device = _legacy(network, authority)
        app = OttApp(profile, device, backend)
        result = HdForgeryAttack(device, network).run(app)
        assert result.request_accepted
        assert result.succeeded
        # Both HD rungs (720p, 1080p) leaked.
        assert len(result.hd_key_ids) == 2

    def test_lax_service_enables_full_hd_piracy(self):
        profile, network, authority, backend = _world(
            service="hdlax2", verifies_client_level=False
        )
        device = _legacy(network, authority)
        app = OttApp(profile, device, backend)
        forgery = HdForgeryAttack(device, network).run(app)
        title_id = next(iter(backend.catalog)).title_id
        packaged = backend.packaged[title_id]
        mpd_url = f"https://{profile.cdn_host}{packaged.mpd_path}"
        recovered = MediaRecoveryPipeline(network).recover(
            profile.service, mpd_url, forgery.content_keys
        )
        assert recovered.best_video_height == 1080  # not qHD any more

    def test_forgery_requires_broken_ladder_first(self):
        profile, network, authority, backend = _world(
            service="hdrev", enforces_revocation=True, verifies_client_level=False
        )
        device = _legacy(network, authority)
        app = OttApp(profile, device, backend)
        result = HdForgeryAttack(device, network).run(app)
        assert not result.succeeded
        assert any("prerequisite failed" in n for n in result.notes)


class TestMovieStealer:
    def test_fails_against_modern_app(self):
        """§II-B: 'MovieStealer … does not work anymore, since the app
        has never access to the decrypted buffer.'"""
        profile, network, authority, backend = _world(service="msmod")
        device = _legacy(network, authority)
        app = OttApp(profile, device, backend)
        assert app.play().ok
        result = MovieStealer().run(device, profile.package)
        assert not result.succeeded

    def test_fails_against_drm_process_too(self):
        profile, network, authority, backend = _world(service="msdrm")
        device = _legacy(network, authority)
        app = OttApp(profile, device, backend)
        assert app.play().ok
        result = MovieStealer().scan_process(device.drm_process)
        assert not result.succeeded

    def test_succeeds_against_2013_era_player(self):
        profile, network, authority, backend = _world(
            service="msold", custom_drm_on_l3=True
        )
        device = _legacy(network, authority)
        player = InsecureSoftwarePlayer(profile, device, backend)
        assert player.play()
        result = MovieStealer().run(device, profile.package)
        assert result.succeeded
        # Every recovered buffer is genuinely decodable media.
        from repro.media.codecs import validate_sample

        assert all(validate_sample(s).valid for s in result.recovered_samples)

    def test_requires_root(self):
        profile, network, authority, backend = _world(service="msroot")
        device = nexus_5(network, authority)
        with pytest.raises(PermissionError, match="rooted"):
            MovieStealer().run(device, profile.package)

    def test_insecure_player_requires_embedded_endpoint(self):
        profile, network, authority, backend = _world(service="msreq")
        device = _legacy(network, authority)
        with pytest.raises(ValueError, match="embedded"):
            InsecureSoftwarePlayer(profile, device, backend)


class TestTeeCompromise:
    def test_l1_falls_after_tee_break(self):
        """'Note that our PoC works for both L1 and L3' — given an L1
        keybox source (Zhao 2021), the same ladder breaks L1."""
        profile, network, authority, backend = _world(service="tee1")
        device = pixel_6(network, authority)
        device.rooted = True
        app = OttApp(profile, device, backend)

        attack = KeyLadderAttack(device)
        assert attack.recover_keybox() is None  # intact TEE resists

        simulate_tee_compromise(
            device.widevine_plugin.oemcrypto._store, device.drm_process
        )
        keybox = attack.recover_keybox()
        assert keybox is not None
        assert keybox.device_key == device.keybox.device_key  # raw, unmasked

        result = attack.run(app)
        assert result.succeeded
        # On L1 the server grants every key, HD included.
        packaged = backend.packaged[next(iter(backend.catalog)).title_id]
        assert packaged.kid_by_rep["v1080"] in result.content_keys

    def test_tee_break_yields_full_hd_recovery(self):
        profile, network, authority, backend = _world(service="tee2")
        device = pixel_6(network, authority)
        device.rooted = True
        app = OttApp(profile, device, backend)
        simulate_tee_compromise(
            device.widevine_plugin.oemcrypto._store, device.drm_process
        )
        attack = KeyLadderAttack(device).run(app)
        title_id = next(iter(backend.catalog)).title_id
        packaged = backend.packaged[title_id]
        mpd_url = f"https://{profile.cdn_host}{packaged.mpd_path}"
        recovered = MediaRecoveryPipeline(network).recover(
            profile.service, mpd_url, attack.content_keys
        )
        assert recovered.best_video_height == 1080


class TestOfflineLicenses:
    def _provisioned_drm(self, world_tuple, device):
        profile, network, authority, backend = world_tuple
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin=profile.package)
        client = device.new_http_client()
        request = drm.get_provision_request()
        response = client.post(
            f"https://{profile.provisioning_host}/provision", request.data
        )
        drm.provide_provision_response(response.body)
        return drm, client

    def test_offline_license_round_trip(self):
        world_tuple = _world(service="off1")
        profile, network, authority, backend = world_tuple
        device = pixel_6(network, authority)
        device.rooted = True
        drm, client = self._provisioned_drm(world_tuple, device)

        packaged = backend.packaged[next(iter(backend.catalog)).title_id]
        init_url, _ = packaged.asset_urls["v540"]
        init = client.get(init_url).body
        (pssh,) = read_pssh_boxes(init)
        info = read_track_info(init)

        session = drm.open_session()
        request = drm.get_key_request(
            session, pssh.data, key_type=KEY_TYPE_OFFLINE
        )
        response = client.post(
            f"https://{profile.license_host}/license", request.data
        )
        loaded = drm.provide_key_response(session, response.body)
        assert info.default_kid in loaded
        key_set_id = drm.get_key_set_id(session)
        drm.close_session(session)

        # Later (offline): restore into a brand-new session.
        restored_session = drm.open_session()
        restored = drm.restore_keys(restored_session, key_set_id)
        assert info.default_kid in restored

        # And the restored keys actually decrypt.
        from repro.android.mediacodec import CryptoInfo, MediaCodec
        from repro.android.mediacrypto import MediaCrypto
        from repro.bmff.builder import read_samples

        crypto = MediaCrypto(drm, restored_session)
        codec = MediaCodec.create_decoder("video/mp4", secure=True)
        codec.configure(crypto)
        __, seg_urls = packaged.asset_urls["v540"]
        samples, __ = read_samples(client.get(seg_urls[0]).body, iv_size=8)
        frame = codec.queue_secure_input_buffer(
            samples[0].data,
            CryptoInfo(
                key_id=info.default_kid,
                iv=samples[0].entry.iv,
                subsamples=tuple(
                    (s.clear_bytes, s.protected_bytes)
                    for s in samples[0].entry.subsamples
                ),
            ),
        )
        assert frame.valid

    def test_streaming_session_has_no_key_set_id(self):
        world_tuple = _world(service="off2")
        profile, network, authority, backend = world_tuple
        device = pixel_6(network, authority)
        drm, client = self._provisioned_drm(world_tuple, device)
        packaged = backend.packaged[next(iter(backend.catalog)).title_id]
        init_url, _ = packaged.asset_urls["v540"]
        (pssh,) = read_pssh_boxes(client.get(init_url).body)
        session = drm.open_session()
        request = drm.get_key_request(session, pssh.data)  # streaming
        response = client.post(
            f"https://{profile.license_host}/license", request.data
        )
        drm.provide_key_response(session, response.body)
        with pytest.raises(MediaDrmException, match="no offline license"):
            drm.get_key_set_id(session)

    def test_restore_unknown_key_set_rejected(self):
        world_tuple = _world(service="off3")
        profile, network, authority, backend = world_tuple
        device = pixel_6(network, authority)
        drm, __ = self._provisioned_drm(world_tuple, device)
        session = drm.open_session()
        with pytest.raises(MediaDrmException, match="unknown key set"):
            drm.restore_keys(session, bytes(8))

    def test_remove_keys(self):
        world_tuple = _world(service="off4")
        profile, network, authority, backend = world_tuple
        device = pixel_6(network, authority)
        drm, client = self._provisioned_drm(world_tuple, device)
        packaged = backend.packaged[next(iter(backend.catalog)).title_id]
        init_url, _ = packaged.asset_urls["v540"]
        (pssh,) = read_pssh_boxes(client.get(init_url).body)
        session = drm.open_session()
        request = drm.get_key_request(session, pssh.data, key_type=KEY_TYPE_OFFLINE)
        response = client.post(
            f"https://{profile.license_host}/license", request.data
        )
        drm.provide_key_response(session, response.body)
        key_set_id = drm.get_key_set_id(session)
        drm.remove_keys(key_set_id)
        fresh = drm.open_session()
        with pytest.raises(MediaDrmException, match="unknown key set"):
            drm.restore_keys(fresh, key_set_id)
