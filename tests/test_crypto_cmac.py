"""AES-CMAC: the four RFC 4493 vectors plus behaviour tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.cmac import aes_cmac, cmac_verify

_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
_MSG = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)

# RFC 4493 §4: (message length, expected tag).
_VECTORS = [
    (0, "bb1d6929e95937287fa37d129b756746"),
    (16, "070a16b46b4d4144f79bdd9dd04a287c"),
    (40, "dfa66747de9ae63030ca32611497c827"),
    (64, "51f0bebf7e3b9d92fc49741779363cfe"),
]


@pytest.mark.parametrize("length,expected", _VECTORS)
def test_rfc4493_vectors(length, expected):
    assert aes_cmac(_KEY, _MSG[:length]).hex() == expected


def test_tag_is_16_bytes():
    assert len(aes_cmac(_KEY, b"anything")) == 16


def test_verify_accepts_valid_tag():
    tag = aes_cmac(_KEY, b"message")
    assert cmac_verify(_KEY, b"message", tag)


def test_verify_rejects_tampered_tag():
    tag = bytearray(aes_cmac(_KEY, b"message"))
    tag[0] ^= 1
    assert not cmac_verify(_KEY, b"message", bytes(tag))


def test_verify_rejects_wrong_length_tag():
    tag = aes_cmac(_KEY, b"message")
    assert not cmac_verify(_KEY, b"message", tag[:15])


def test_verify_rejects_wrong_message():
    tag = aes_cmac(_KEY, b"message")
    assert not cmac_verify(_KEY, b"other message", tag)


@given(message=st.binary(max_size=100))
def test_deterministic(message):
    assert aes_cmac(_KEY, message) == aes_cmac(_KEY, message)


@given(message=st.binary(max_size=100))
def test_key_separation(message):
    other_key = bytes([1]) + _KEY[1:]
    assert aes_cmac(_KEY, message) != aes_cmac(other_key, message)


def test_block_boundary_messages_differ():
    # Padding-vs-no-padding branch must not collide trivially.
    tags = {aes_cmac(_KEY, bytes(n)).hex() for n in (15, 16, 17, 31, 32)}
    assert len(tags) == 5
