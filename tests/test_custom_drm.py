"""The embedded (Amazon-style) DRM scheme, unit-level."""

import json

import pytest

from repro.bmff.cenc import encrypt_sample
from repro.ott.custom_drm import (
    EmbeddedCdm,
    build_embedded_license,
    embedded_app_secret,
    parse_embedded_license_request,
)

_KID = bytes([5]) * 16
_KEY = bytes([6]) * 16


class TestSecrets:
    def test_per_service_secret(self):
        assert embedded_app_secret("svc-a") != embedded_app_secret("svc-b")

    def test_deterministic(self):
        assert embedded_app_secret("svc") == embedded_app_secret("svc")


class TestRequestPath:
    def test_request_round_trip(self):
        cdm = EmbeddedCdm("svc")
        request = cdm.build_key_request("tt01")
        assert parse_embedded_license_request("svc", request) == "tt01"

    def test_wrong_service_rejected(self):
        request = EmbeddedCdm("svc").build_key_request("tt01")
        with pytest.raises(ValueError, match="MAC mismatch"):
            parse_embedded_license_request("other", request)

    def test_tampered_title_rejected(self):
        request = json.loads(EmbeddedCdm("svc").build_key_request("tt01"))
        request["payload"] = request["payload"].replace("tt01", "tt99")
        with pytest.raises(ValueError, match="MAC mismatch"):
            parse_embedded_license_request("svc", json.dumps(request).encode())

    def test_wrong_type_rejected(self):
        payload = json.dumps({"type": "nope", "title": "x"})
        blob = json.dumps({"payload": payload, "mac": "00" * 32}).encode()
        with pytest.raises(ValueError, match="not an embedded"):
            parse_embedded_license_request("svc", blob)


class TestLicensePath:
    def test_license_round_trip(self):
        license_bytes = build_embedded_license(
            "svc", {_KID: _KEY}, nonce=bytes(16)
        )
        cdm = EmbeddedCdm("svc")
        assert cdm.load_keys(license_bytes) == [_KID]
        sample = encrypt_sample(b"M" * 48, _KEY, bytes(8))
        assert cdm.decrypt(_KID, sample.data, sample.entry.iv, []) == b"M" * 48

    def test_wrong_service_garbles_keys(self):
        license_bytes = build_embedded_license(
            "svc", {_KID: _KEY}, nonce=bytes(16)
        )
        other = EmbeddedCdm("other")
        # CBC-unpad may or may not fail; either way the key is wrong.
        try:
            other.load_keys(license_bytes)
        except ValueError:
            return
        sample = encrypt_sample(b"M" * 48, _KEY, bytes(8))
        assert other.decrypt(_KID, sample.data, sample.entry.iv, []) != b"M" * 48

    def test_decrypt_unloaded_key(self):
        with pytest.raises(KeyError, match="not loaded"):
            EmbeddedCdm("svc").decrypt(_KID, bytes(16), bytes(8), [])

    def test_nonce_separates_wrapping(self):
        a = build_embedded_license("svc", {_KID: _KEY}, nonce=bytes(16))
        b = build_embedded_license("svc", {_KID: _KEY}, nonce=bytes([1]) * 16)
        assert a != b
        for blob in (a, b):
            cdm = EmbeddedCdm("svc")
            assert cdm.load_keys(blob) == [_KID]


class TestSecureChannelTrace:
    def test_netflix_flow_has_bootstrap_license(self, full_study):
        """Netflix's secure channel adds a whole license exchange
        *before* the content license — visibly different from the
        canonical Figure 1 flow."""
        from repro.ott.app import OttApp
        from repro.ott.registry import profile_by_name

        profile = profile_by_name("Netflix")
        device = full_study.l1_device
        app = OttApp(profile, device, full_study.backends[profile.service])
        app.play()
        device.trace.clear()
        assert app.play().ok
        labels = [label for __, __, label in device.trace.labels()]
        # Two "Get License" arrows: the channel bootstrap + the content.
        assert labels.count("Get License") == 2
        assert labels.count("License") == 2
        # The bootstrap happens before the CDN is ever contacted.
        assert labels.index("Get License") < labels.index("Get Media")
