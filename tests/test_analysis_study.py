"""Analysis + cross-check wired through the full study pipeline."""

from __future__ import annotations

import json

from repro.core.report import CrossCheckRow, CrossCheckTable
from repro.core.study import StudyResult


class TestStudyIntegration:
    def test_every_app_carries_analysis_and_crosscheck(self, study_result):
        for name, app in study_result.apps.items():
            assert app.analysis is not None, name
            assert app.crosscheck is not None, name
            assert app.analysis.call_sites, name

    def test_every_app_has_confirmed_and_dead_sites(self, study_result):
        for name, app in study_result.apps.items():
            counts = app.crosscheck.counts()
            assert counts["confirmed"] > 0, name
            assert counts["dead_code"] > 0, name

    def test_netflix_secure_channel_is_the_dynamic_only_story(
        self, study_result
    ):
        netflix = study_result.apps["Netflix"]
        assert netflix.crosscheck.dynamic_only == ("_oecc31_generic_decrypt",)
        others = [
            app.crosscheck.dynamic_only
            for name, app in study_result.apps.items()
            if name != "Netflix"
        ]
        assert all(dynamic == () for dynamic in others)

    def test_discontinued_device_profiles_show_cwe_922(self, study_result):
        """Acceptance: a reachable CWE-922 finding on apps the paper
        found serving (or custom-DRM-serving) the discontinued device."""
        for name in ("Netflix", "Amazon Prime Video", "myCanal", "Salto"):
            findings = study_result.apps[name].analysis.findings_by_cwe(
                "CWE-922"
            )
            assert findings, name
            assert any(f.reachable for f in findings), name

    def test_summary_counts_leaks_and_dead_code(self, study_result):
        summary = study_result.summary()
        assert "Netflix" in summary["apps_with_reachable_key_leaks"]
        assert len(summary["apps_with_dead_drm_code"]) == 10

    def test_crosscheck_table_has_one_row_per_app(self, study_result):
        table = study_result.crosscheck_table()
        assert isinstance(table, CrossCheckTable)
        assert len(table.rows) == len(study_result.apps)
        rendered = table.render()
        assert "Confirmed" in rendered and "Netflix" in rendered

    def test_json_artifact_carries_analysis_and_crosscheck(self, study_result):
        payload = json.loads(study_result.to_json())
        netflix = payload["apps"]["Netflix"]
        assert netflix["analysis"]["drm_call_sites"]["dead"] >= 1
        assert netflix["crosscheck"]["confirmed"] > 0
        assert netflix["crosscheck"]["dynamic_only_functions"] == [
            "_oecc31_generic_decrypt"
        ]


class TestCrossCheckRow:
    def test_row_from_missing_crosscheck_is_zeroed(self):
        from repro.core.study import AppStudyResult
        from repro.ott.registry import profile_by_name

        result = AppStudyResult.__new__(AppStudyResult)
        result.profile = profile_by_name("OCS")
        result.crosscheck = None
        row = AppStudyResult.crosscheck_row(result)
        assert row == CrossCheckRow("OCS", 0, 0, 0, 0)
