"""WebVTT subtitles and the paper's ASCII clear-text heuristic."""

import pytest

from repro.media.subtitles import (
    build_webvtt,
    looks_like_clear_text,
    parse_webvtt,
)


class TestBuild:
    def test_header(self):
        assert build_webvtt("tt01", "en", 12).startswith(b"WEBVTT")

    def test_deterministic(self):
        assert build_webvtt("tt01", "en", 12) == build_webvtt("tt01", "en", 12)

    def test_language_separation(self):
        assert build_webvtt("tt01", "en", 12) != build_webvtt("tt01", "fr", 12)

    def test_cue_count_scales_with_duration(self):
        short = parse_webvtt(build_webvtt("t", "en", 6))
        long = parse_webvtt(build_webvtt("t", "en", 30))
        assert len(long) > len(short)


class TestParse:
    def test_round_trip_cues(self):
        cues = parse_webvtt(build_webvtt("tt01", "en", 12))
        assert len(cues) == 4
        assert cues[0].start_s == 0.0
        assert cues[0].end_s == 3.0
        assert "tt01 cue 0" in cues[0].text

    def test_cues_ordered_and_contiguous(self):
        cues = parse_webvtt(build_webvtt("tt01", "en", 24))
        for earlier, later in zip(cues, cues[1:]):
            assert earlier.end_s == later.start_s

    def test_rejects_missing_header(self):
        with pytest.raises(ValueError, match="not a WebVTT"):
            parse_webvtt(b"1\n00:00:00.000 --> 00:00:03.000\nhi\n")

    def test_rejects_binary(self):
        with pytest.raises((ValueError, UnicodeDecodeError)):
            parse_webvtt(bytes(range(256)))

    def test_rejects_bad_timestamp(self):
        doc = b"WEBVTT\n\n1\n00:00 --> 00:03\nhi\n"
        with pytest.raises(ValueError, match="bad timestamp"):
            parse_webvtt(doc)

    def test_empty_document(self):
        assert parse_webvtt(b"WEBVTT\n") == []


class TestClearTextHeuristic:
    def test_accepts_webvtt(self):
        assert looks_like_clear_text(build_webvtt("tt01", "en", 12))

    def test_rejects_uniform_bytes(self):
        assert not looks_like_clear_text(bytes(range(256)) * 4)

    def test_rejects_empty(self):
        assert not looks_like_clear_text(b"")

    def test_accepts_plain_ascii(self):
        assert looks_like_clear_text(b"Hello, subtitles!\n" * 20)

    def test_rejects_mostly_binary_with_ascii_prefix(self):
        blob = b"WEBVTT" + bytes(range(1, 200)) * 3
        assert not looks_like_clear_text(blob)
