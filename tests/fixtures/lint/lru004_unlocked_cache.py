"""Seeded LRU004 violation: hand-rolled LRU cache with no lock."""

from collections import OrderedDict


class SegmentCache:
    def __init__(self, capacity=8):
        self.capacity = capacity
        self._entries = OrderedDict()

    def get(self, key):
        return self._entries.get(key)
