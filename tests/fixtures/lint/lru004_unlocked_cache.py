"""Seeded LRU004 violation: hand-rolled LRU cache with no lock.

The ``__future__`` import is part of the fixture: the autofix must
insert ``import threading`` *below* it (and the docstring), or the
patched module would not even parse.
"""

from __future__ import annotations

from collections import OrderedDict


class SegmentCache:
    def __init__(self, capacity=8):
        self.capacity = capacity
        self._entries = OrderedDict()

    def get(self, key):
        return self._entries.get(key)
