"""Seeded CLK003 violation: wall-clock read outside repro.android.clock."""

import time


def issue_timestamp():
    return int(time.time())
