"""Seeded RNG002 violations: process-level randomness."""

import os
import random


def weak_token():
    return os.urandom(16)


def weak_jitter():
    return random.random()


def unseeded_stream():
    return random.Random()
