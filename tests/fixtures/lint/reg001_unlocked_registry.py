"""Seeded REG001 violation: registry mutated outside its lock."""

import threading

_REGISTRY: dict = {}
_REGISTRY_LOCK = threading.Lock()


def register(name, value):
    _REGISTRY[name] = value  # mutation without holding _REGISTRY_LOCK


def register_properly(name, value):
    with _REGISTRY_LOCK:
        _REGISTRY[name] = value  # this one is fine
