"""CDM behaviour through the full client/server protocol, plus the
Android MediaDrm/MediaCrypto/MediaCodec layer above it."""

import pytest

from repro.android.mediacodec import CodecException, CryptoInfo, MediaCodec
from repro.android.mediacrypto import MediaCrypto, MediaCryptoException
from repro.android.mediadrm import (
    MediaDrm,
    MediaDrmException,
    NotProvisionedException,
    UnsupportedSchemeException,
)
from repro.bmff.builder import read_pssh_boxes, read_samples, read_track_info
from repro.bmff.pssh import PLAYREADY_SYSTEM_ID, WIDEVINE_SYSTEM_ID
from repro.net.http import parse_url


def _provision(drm, device, world, origin="com.test.app"):
    client = device.new_http_client()
    request = drm.get_provision_request()
    response = client.post(
        f"https://{world.provisioning.hostname}/provision", request.data
    )
    assert response.ok, response.body
    drm.provide_provision_response(response.body)


def _license(drm, device, world, session_id, init_data):
    client = device.new_http_client()
    request = drm.get_key_request(session_id, init_data)
    response = client.post(
        f"https://{world.license_server.hostname}/license", request.data
    )
    assert response.ok, response.body
    return drm.provide_key_response(session_id, response.body)


def _fetch(device, world, url):
    return device.new_http_client().get(url).body


class TestMediaDrmBasics:
    def test_unsupported_scheme(self, world):
        device = world.l1_device()
        with pytest.raises(UnsupportedSchemeException):
            MediaDrm(PLAYREADY_SYSTEM_ID, device)

    def test_is_crypto_scheme_supported(self, world):
        device = world.l1_device()
        assert MediaDrm.is_crypto_scheme_supported(WIDEVINE_SYSTEM_ID, device)
        assert not MediaDrm.is_crypto_scheme_supported(PLAYREADY_SYSTEM_ID, device)

    def test_properties(self, world):
        device = world.l1_device()
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device)
        assert drm.get_property_string("vendor") == "Google"
        assert drm.get_property_string("securityLevel") == "L1"
        assert drm.get_property_string("version") == "15.0.0"
        with pytest.raises(MediaDrmException, match="unknown property"):
            drm.get_property_string("nope")

    def test_l3_security_level(self, world):
        device = world.l3_device()
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device)
        assert drm.get_property_string("securityLevel") == "L3"

    def test_session_lifecycle(self, world):
        device = world.l1_device()
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device)
        session = drm.open_session()
        drm.close_session(session)
        with pytest.raises(MediaDrmException, match="not open"):
            drm.get_key_request(session, b"init")

    def test_key_request_requires_provisioning(self, world):
        device = world.l1_device()
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin="com.fresh.app")
        session = drm.open_session()
        with pytest.raises(NotProvisionedException):
            drm.get_key_request(session, b"init-data")


class TestProvisioningFlow:
    def test_provisioning_is_per_origin(self, world):
        device = world.l1_device()
        drm_a = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin="com.app.a")
        _provision(drm_a, device, world, origin="com.app.a")
        assert drm_a._cdm.is_provisioned("com.app.a")
        assert not drm_a._cdm.is_provisioned("com.app.b")

    def test_provision_response_without_request_rejected(self, world):
        device = world.l1_device()
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin="com.app.x")
        from repro.android.mediadrm import DeniedByServerException

        with pytest.raises(DeniedByServerException):
            drm.provide_provision_response(b"whatever")

    def test_provisioning_survives_for_new_mediadrm_instance(self, world):
        device = world.l1_device()
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin="com.app.p")
        _provision(drm, device, world)
        # New instance, same origin: no NotProvisionedException.
        drm2 = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin="com.app.p")
        session = drm2.open_session()
        init_url, _ = world.packaged.asset_urls["v540"]
        init = _fetch(device, world, init_url)
        (pssh,) = read_pssh_boxes(init)
        request = drm2.get_key_request(session, pssh.data)
        assert request.data


class TestLicenseFlow:
    def _playable_session(self, world, device, origin="com.test.app"):
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin=origin)
        _provision(drm, device, world, origin)
        session = drm.open_session()
        init_url, seg_urls = world.packaged.asset_urls["v540"]
        init = _fetch(device, world, init_url)
        (pssh,) = read_pssh_boxes(init)
        loaded = _license(drm, device, world, session, pssh.data)
        return drm, session, init, seg_urls, loaded

    def test_license_loads_keys(self, world):
        device = world.l1_device()
        __, __, init, __, loaded = self._playable_session(world, device)
        info = read_track_info(init)
        assert info.default_kid in loaded

    def test_wrong_session_response_rejected(self, world):
        device = world.l1_device()
        drm, session, init, __, __ = self._playable_session(world, device)
        other = drm.open_session()
        init_url, _ = world.packaged.asset_urls["v540"]
        (pssh,) = read_pssh_boxes(init)
        request = drm.get_key_request(other, pssh.data)
        client = device.new_http_client()
        response = client.post(
            f"https://{world.license_server.hostname}/license", request.data
        )
        with pytest.raises(MediaDrmException, match="another session"):
            drm.provide_key_response(session, response.body)

    def test_replayed_response_rejected(self, world):
        device = world.l1_device()
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin="com.test.app")
        _provision(drm, device, world)
        session = drm.open_session()
        init_url, _ = world.packaged.asset_urls["v540"]
        (pssh,) = read_pssh_boxes(_fetch(device, world, init_url))
        request = drm.get_key_request(session, pssh.data)
        response = device.new_http_client().post(
            f"https://{world.license_server.hostname}/license", request.data
        )
        drm.provide_key_response(session, response.body)
        # Replaying the same response must fail: no request in flight.
        with pytest.raises(MediaDrmException, match="no license request"):
            drm.provide_key_response(session, response.body)

    def test_malformed_response_rejected(self, world):
        device = world.l1_device()
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin="com.test.app")
        _provision(drm, device, world)
        session = drm.open_session()
        with pytest.raises(MediaDrmException, match="bad license response"):
            drm.provide_key_response(session, b"{}")

    def test_secure_decode_end_to_end(self, world):
        device = world.l1_device()
        drm, session, init, seg_urls, __ = self._playable_session(world, device)
        info = read_track_info(init)
        crypto = MediaCrypto(drm, session)
        assert crypto.requires_secure_decoder_component("video/mp4")
        codec = MediaCodec.create_decoder("video/mp4", secure=True)
        codec.configure(crypto)
        segment = _fetch(device, world, seg_urls[0])
        samples, protected = read_samples(segment, iv_size=info.iv_size)
        assert protected
        for sample in samples:
            frame = codec.queue_secure_input_buffer(
                sample.data,
                CryptoInfo(
                    key_id=info.default_kid,
                    iv=sample.entry.iv,
                    subsamples=tuple(
                        (s.clear_bytes, s.protected_bytes)
                        for s in sample.entry.subsamples
                    ),
                ),
            )
            assert frame.valid
            assert frame.secure

    def test_l3_decode_not_secure(self, world):
        device = world.l3_device()
        drm, session, init, seg_urls, __ = self._playable_session(
            world, device, origin="com.test.l3"
        )
        info = read_track_info(init)
        crypto = MediaCrypto(drm, session)
        assert not crypto.requires_secure_decoder_component("video/mp4")
        codec = MediaCodec.create_decoder("video/mp4")
        codec.configure(crypto)
        segment = _fetch(device, world, seg_urls[0])
        samples, __ = read_samples(segment, iv_size=info.iv_size)
        frame = codec.queue_secure_input_buffer(
            samples[0].data,
            CryptoInfo(
                key_id=info.default_kid,
                iv=samples[0].entry.iv,
                subsamples=tuple(
                    (s.clear_bytes, s.protected_bytes)
                    for s in samples[0].entry.subsamples
                ),
            ),
        )
        assert frame.valid
        assert not frame.secure


class TestMediaCryptoAndCodec:
    def test_media_crypto_requires_open_session(self, world):
        device = world.l1_device()
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device)
        with pytest.raises(MediaCryptoException):
            MediaCrypto(drm, b"\x00\x00\x00\x63")

    def test_l1_requires_secure_decoder(self, world):
        device = world.l1_device()
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device)
        session = drm.open_session()
        crypto = MediaCrypto(drm, session)
        codec = MediaCodec.create_decoder("video/mp4", secure=False)
        with pytest.raises(CodecException, match="secure decoder"):
            codec.configure(crypto)

    def test_codec_without_crypto_rejects_secure_input(self):
        codec = MediaCodec.create_decoder("video/mp4")
        with pytest.raises(CodecException, match="not configured"):
            codec.queue_secure_input_buffer(b"x", CryptoInfo(bytes(16), bytes(8)))

    def test_clear_input_path(self):
        from repro.media.codecs import generate_sample

        codec = MediaCodec.create_decoder("audio/mp4")
        frame = codec.queue_input_buffer(generate_sample("audio", "l", 0, 40))
        assert frame.valid
        assert frame.kind == "audio"

    def test_clear_garbage_invalid_frame(self):
        codec = MediaCodec.create_decoder("audio/mp4")
        assert not codec.queue_input_buffer(b"garbage").valid

    def test_set_media_drm_session(self, world):
        device = world.l1_device()
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device)
        s1, s2 = drm.open_session(), drm.open_session()
        crypto = MediaCrypto(drm, s1)
        crypto.set_media_drm_session(s2)
        assert crypto.session_id == s2
        drm.close_session(s2)
        with pytest.raises(MediaCryptoException):
            crypto.set_media_drm_session(s2)
