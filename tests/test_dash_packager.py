"""DASH packager: protection decisions, CDN layout, MPD emission."""

import pytest

from repro.bmff.builder import read_pssh_boxes, read_samples, read_track_info
from repro.crypto.rng import derive_rng
from repro.dash.mpd import Mpd
from repro.dash.packager import Packager, TrackCrypto
from repro.media.content import TrackKind, make_title
from repro.net.cdn import CdnServer
from repro.net.http import parse_url


@pytest.fixture
def cdn() -> CdnServer:
    return CdnServer("cdn.pack.example")


@pytest.fixture
def title():
    return make_title("pack00", "Packager feature")


def _crypto_map(title, *, protect_audio=True):
    rng = derive_rng("packager-test-keys")
    crypto = {}
    for rep in title.representations:
        if rep.kind is TrackKind.TEXT or (
            rep.kind is TrackKind.AUDIO and not protect_audio
        ):
            crypto[rep.rep_id] = TrackCrypto(None, None)
        else:
            crypto[rep.rep_id] = TrackCrypto(rng.generate(16), rng.generate(16))
    return crypto


class TestTrackCrypto:
    def test_clear(self):
        assert not TrackCrypto(None, None).protected

    def test_protected(self):
        assert TrackCrypto(bytes(16), bytes(16)).protected

    def test_half_specified_rejected(self):
        with pytest.raises(ValueError, match="both"):
            TrackCrypto(bytes(16), None)
        with pytest.raises(ValueError, match="both"):
            TrackCrypto(None, bytes(16))

    def test_bad_lengths_rejected(self):
        with pytest.raises(ValueError, match="16 bytes"):
            TrackCrypto(bytes(16), bytes(8))
        with pytest.raises(ValueError, match="16 bytes"):
            TrackCrypto(bytes(8), bytes(16))


class TestPackage:
    def test_requires_decision_for_every_rep(self, cdn, title):
        crypto = _crypto_map(title)
        del crypto["a-en"]
        with pytest.raises(ValueError, match="no crypto decision"):
            Packager("svc", cdn).package(title, crypto)

    def test_mpd_round_trips(self, cdn, title):
        packaged = Packager("svc", cdn).package(title, _crypto_map(title))
        mpd = Mpd.from_xml(packaged.mpd_xml)
        assert mpd.title_id == title.title_id
        assert len(mpd.sets_of_type("video")[0].representations) == 3
        assert len(mpd.sets_of_type("audio")) == 2
        assert len(mpd.sets_of_type("text")) == 2

    def test_assets_served_from_cdn(self, cdn, title):
        packaged = Packager("svc", cdn).package(title, _crypto_map(title))
        init_url, seg_urls = packaged.asset_urls["v540"]
        assert len(seg_urls) == title.segment_count
        init = cdn.handle_path(init_url)
        info = read_track_info(init)
        assert info.protected

    def test_protected_segments_have_senc(self, cdn, title):
        packaged = Packager("svc", cdn).package(title, _crypto_map(title))
        __, seg_urls = packaged.asset_urls["v540"]
        segment = cdn.handle_path(seg_urls[0])
        __, protected = read_samples(segment)
        assert protected

    def test_clear_audio_segments(self, cdn, title):
        packaged = Packager("svc", cdn).package(
            title, _crypto_map(title, protect_audio=False)
        )
        init_url, seg_urls = packaged.asset_urls["a-en"]
        assert not read_track_info(cdn.handle_path(init_url)).protected
        __, protected = read_samples(cdn.handle_path(seg_urls[0]))
        assert not protected

    def test_content_keys_registry(self, cdn, title):
        crypto = _crypto_map(title)
        packaged = Packager("svc", cdn).package(title, crypto)
        # 3 video + 2 audio distinct keys in this map.
        assert len(packaged.content_keys) == 5
        for rep_id, assignment in crypto.items():
            if assignment.protected:
                assert packaged.content_keys[assignment.key_id] == assignment.key
                assert packaged.kid_by_rep[rep_id] == assignment.key_id
            else:
                assert packaged.kid_by_rep[rep_id] is None

    def test_subtitles_always_clear_vtt(self, cdn, title):
        packaged = Packager("svc", cdn).package(title, _crypto_map(title))
        url, segments = packaged.asset_urls["t-en"]
        assert segments == []
        assert cdn.handle_path(url).startswith(b"WEBVTT")

    def test_pssh_lists_all_title_kids(self, cdn, title):
        packaged = Packager("svc", cdn).package(title, _crypto_map(title))
        init_url, _ = packaged.asset_urls["v540"]
        (pssh,) = read_pssh_boxes(cdn.handle_path(init_url))
        assert set(pssh.key_ids) == set(packaged.content_keys)

    def test_publish_key_ids_false_omits_cenc_tags(self, cdn, title):
        packager = Packager("svc", cdn, publish_key_ids=False)
        packaged = packager.package(title, _crypto_map(title))
        mpd = Mpd.from_xml(packaged.mpd_xml)
        for aset in mpd.adaptation_sets:
            for rep in aset.representations:
                assert rep.default_kid() is None
        # But Widevine pssh tags remain: the content is still protected.
        video = mpd.sets_of_type("video")[0].representations[0]
        assert video.protected

    def test_mpd_uploaded_to_cdn(self, cdn, title):
        packaged = Packager("svc", cdn).package(title, _crypto_map(title))
        assert cdn.handle_path(
            f"https://{cdn.hostname}{packaged.mpd_path}"
        ) == packaged.mpd_xml


# Helper installed on CdnServer for tests: fetch by URL without a client.
def _handle_path(self, url: str) -> bytes:
    from repro.net.http import HttpRequest

    path = parse_url(url).path if "://" in url else url
    response = self.handle(HttpRequest("GET", f"https://{self.hostname}{path}"))
    assert response.ok, response.body
    return response.body


CdnServer.handle_path = _handle_path  # type: ignore[attr-defined]
