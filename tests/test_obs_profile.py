"""Trace analytics: critical-path extraction, self-time aggregation,
collapsed-stack flame graphs, and the trace diff."""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.obs.bus import ObservabilityBus
from repro.obs.export import to_chrome_trace, to_jsonl
from repro.obs.profile import (
    critical_path,
    critical_paths,
    diff_traces,
    load_trace_profile,
    render_profile,
    self_time_profile,
    to_collapsed_stacks,
    write_flame_graph,
)

FIXTURES = Path(__file__).parent / "fixtures" / "traces"


class SteppedClock:
    """A clock the test advances explicitly, for exact durations."""

    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        return self.now

    def advance(self, ns: int) -> None:
        self.now += ns


@pytest.fixture
def clock() -> SteppedClock:
    return SteppedClock()


@pytest.fixture
def recorded(clock) -> ObservabilityBus:
    """One app tree with a known critical path:

    study.app (100) -> audit.content (60) -> http.request (45);
    license.exchange (30, with a 10ns http.request child) is the
    shorter branch.
    """
    bus = ObservabilityBus(clock=clock)
    with bus.span("study.app", app="Netflix"):
        with bus.span("license.exchange"):
            with bus.span("http.request"):
                clock.advance(10)
            clock.advance(20)
        with bus.span("audit.content"):
            with bus.span("http.request"):
                clock.advance(45)
            clock.advance(15)
        clock.advance(10)
    return bus


class TestCriticalPath:
    def test_follows_the_longest_child_chain(self, recorded):
        root = recorded.spans[0]
        path = critical_path(recorded.spans, root)
        assert [s.name for s in path] == [
            "study.app",
            "audit.content",
            "http.request",
        ]
        assert path[1].duration_ns == 60
        assert path[2].duration_ns == 45

    def test_one_path_per_study_root(self, clock):
        bus = ObservabilityBus(clock=clock)
        for app in ("Netflix", "Hulu"):
            with bus.span("study.app", app=app):
                with bus.span("license.exchange"):
                    clock.advance(5)
        paths = critical_paths(bus.spans)
        assert [p[0].attrs["app"] for p in paths] == ["Netflix", "Hulu"]
        assert all(p[-1].name == "license.exchange" for p in paths)

    def test_non_study_roots_are_used_when_no_study_roots_exist(self, clock):
        bus = ObservabilityBus(clock=clock)
        with bus.span("package.title", service="netflix"):
            clock.advance(5)
        assert [p[0].name for p in critical_paths(bus.spans)] == [
            "package.title"
        ]

    def test_duration_tie_breaks_on_earlier_start(self, clock):
        bus = ObservabilityBus(clock=clock)
        with bus.span("root"):
            with bus.span("first"):
                clock.advance(10)
            with bus.span("second"):
                clock.advance(10)
        path = critical_path(bus.spans, bus.spans[0])
        assert [s.name for s in path] == ["root", "first"]


class TestSelfTime:
    def test_self_is_duration_minus_children(self, recorded):
        stats = self_time_profile(recorded.spans)
        assert stats["study.app"].total_ns == 100
        assert stats["study.app"].self_ns == 10  # 100 - (30 + 60)
        assert stats["audit.content"].self_ns == 15
        assert stats["license.exchange"].self_ns == 20
        # Two http.request spans aggregate under one name.
        assert stats["http.request"].count == 2
        assert stats["http.request"].total_ns == 55
        assert stats["http.request"].self_ns == 55

    def test_self_times_sum_to_the_wall_clock(self, recorded):
        stats = self_time_profile(recorded.spans)
        assert sum(s.self_ns for s in stats.values()) == 100

    def test_render_profile_has_paths_and_table(self, recorded):
        text = render_profile(recorded, top=3)
        assert "critical path — Netflix" in text
        assert "audit.content" in text
        assert "self%" in text
        assert "(1 more span names below the top 3)" in text

    def test_render_profile_empty_bus(self):
        assert render_profile(ObservabilityBus()) == "(no spans recorded)"


class TestCollapsedStacks:
    def test_format_is_flamegraph_compatible(self, recorded):
        text = to_collapsed_stacks(recorded)
        lines = text.strip().split("\n")
        # Brendan Gregg collapsed format: frames joined by ';', one
        # integer weight, no other whitespace. speedscope imports this.
        assert all(re.fullmatch(r"[^ ]+ \d+", line) for line in lines)
        weights = {
            line.rsplit(" ", 1)[0]: int(line.rsplit(" ", 1)[1])
            for line in lines
        }
        assert weights["study.app"] == 10
        assert weights["study.app;audit.content"] == 15
        assert weights["study.app;audit.content;http.request"] == 45
        assert weights["study.app;license.exchange;http.request"] == 10

    def test_total_weight_equals_wall_time(self, recorded):
        lines = to_collapsed_stacks(recorded).strip().split("\n")
        assert sum(int(line.rsplit(" ", 1)[1]) for line in lines) == 100

    def test_write_flame_graph(self, recorded, tmp_path):
        path = write_flame_graph(recorded, tmp_path / "flame.txt")
        assert path.read_text() == to_collapsed_stacks(recorded)


class TestLoadTraceProfile:
    def test_loads_our_jsonl_export(self, recorded, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(to_jsonl(recorded))
        profile = load_trace_profile(path)
        assert profile["http.request"].count == 2
        assert profile["http.request"].total_ns == 55
        assert profile["study.total"].total_ns == 100

    def test_loads_chrome_trace_export(self, recorded, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(to_chrome_trace(recorded)))
        profile = load_trace_profile(path)
        assert profile["http.request"].count == 2
        assert profile["http.request"].total_ns == pytest.approx(55)
        assert profile["study.total"].total_ns == pytest.approx(100)

    def test_loads_bench_trajectory(self, tmp_path):
        path = tmp_path / "BENCH_study.json"
        path.write_text(
            json.dumps(
                {
                    "trajectory": [
                        {"phase": "sequential-warm", "seconds": 0.9},
                    ],
                    "observability": {"traced_seconds": 0.95},
                }
            )
        )
        profile = load_trace_profile(path)
        assert profile["sequential-warm"].total_ns == pytest.approx(0.9e9)
        assert profile["study.total"].total_ns == pytest.approx(0.95e9)


class TestTraceDiff:
    def test_flags_the_injected_slowdown(self):
        old = load_trace_profile(FIXTURES / "baseline.jsonl")
        new = load_trace_profile(FIXTURES / "slowdown.jsonl")
        diff = diff_traces(old, new, threshold=0.25)
        regressed = {row.name for row in diff.regressions()}
        # license.exchange went 5µs -> 20µs (and dragged its parent and
        # the wall total along); audit.content stayed put.
        assert "license.exchange" in regressed
        assert "http.request" in regressed
        assert "audit.content" not in regressed
        rendered = diff.render()
        assert "REGRESSED" in rendered
        assert "license.exchange" in rendered

    def test_identical_traces_show_no_regression(self):
        old = load_trace_profile(FIXTURES / "baseline.jsonl")
        diff = diff_traces(old, old, threshold=0.25)
        assert diff.regressions() == []
        assert "no span regressed" in diff.render()

    def test_threshold_is_respected(self):
        old = load_trace_profile(FIXTURES / "baseline.jsonl")
        new = load_trace_profile(FIXTURES / "slowdown.jsonl")
        # The worst ratio is http.request's 6.0x: it clears a 2.5
        # threshold (6 > 3.5) but nothing clears 6.0 (needs > 7x).
        assert diff_traces(old, new, threshold=6.0).regressions() == []
        assert diff_traces(old, new, threshold=2.5).regressions()

    def test_added_and_removed_names_never_regress(self):
        old = load_trace_profile(FIXTURES / "baseline.jsonl")
        new = dict(old)
        removed = new.pop("audit.content")
        diff = diff_traces(old, new)
        row = next(r for r in diff.rows if r.name == "audit.content")
        assert row.new_count == 0 and not row.regressed(0.0)
        del removed

    def test_count_deltas_are_reported(self):
        old = load_trace_profile(FIXTURES / "baseline.jsonl")
        new = load_trace_profile(FIXTURES / "slowdown.jsonl")
        rendered = diff_traces(old, new).render()
        assert "1→1" in rendered
