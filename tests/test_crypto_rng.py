"""HMAC-DRBG determinism and distribution sanity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.rng import HmacDrbg, derive_rng


def test_same_seed_same_stream():
    a, b = HmacDrbg(b"seed"), HmacDrbg(b"seed")
    assert a.generate(64) == b.generate(64)


def test_different_seeds_different_streams():
    assert HmacDrbg(b"seed-a").generate(32) != HmacDrbg(b"seed-b").generate(32)


def test_stream_advances():
    rng = HmacDrbg(b"seed")
    assert rng.generate(16) != rng.generate(16)


def test_generate_zero_bytes():
    assert HmacDrbg(b"s").generate(0) == b""


def test_generate_negative_rejected():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").generate(-1)


def test_reseed_changes_stream():
    a, b = HmacDrbg(b"seed"), HmacDrbg(b"seed")
    b.reseed(b"extra entropy")
    assert a.generate(32) != b.generate(32)


def test_derive_rng_label_separation():
    assert derive_rng("one").generate(16) != derive_rng("two").generate(16)


def test_derive_rng_is_reproducible():
    assert derive_rng("label").generate(16) == derive_rng("label").generate(16)


def test_derive_rng_seed_separation():
    assert (
        derive_rng("label", seed=b"a").generate(16)
        != derive_rng("label", seed=b"b").generate(16)
    )


@given(upper=st.integers(min_value=1, max_value=10_000))
def test_randint_below_in_range(upper):
    value = HmacDrbg(b"bound-test").randint_below(upper)
    assert 0 <= value < upper


def test_randint_below_rejects_nonpositive():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").randint_below(0)


def test_randint_covers_small_range():
    rng = HmacDrbg(b"coverage")
    seen = {rng.randint_below(4) for _ in range(200)}
    assert seen == {0, 1, 2, 3}


@given(bits=st.integers(min_value=2, max_value=256))
def test_rand_odd_has_exact_bit_length(bits):
    value = HmacDrbg(b"odd").rand_odd(bits)
    assert value.bit_length() == bits
    assert value % 2 == 1


def test_rand_odd_rejects_tiny():
    with pytest.raises(ValueError):
        HmacDrbg(b"s").rand_odd(1)


def test_byte_distribution_roughly_uniform():
    data = HmacDrbg(b"dist").generate(16384)
    counts = [0] * 256
    for byte in data:
        counts[byte] += 1
    mean = len(data) / 256
    assert all(mean * 0.4 < c < mean * 1.8 for c in counts)
