"""CENC subsample encryption: round trips, keystream continuity,
structural error handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bmff.boxes import SencEntry, SubsampleRange
from repro.bmff.cenc import (
    CencDecryptError,
    CencSample,
    decrypt_sample,
    encrypt_sample,
    iv_sequence,
)
from repro.crypto.modes import ctr_transform

_KEY = bytes(range(16))
_IV8 = bytes(range(8))
_IV16 = bytes(range(16))


class TestRoundTrip:
    @given(sample=st.binary(min_size=1, max_size=300))
    def test_full_sample_encryption(self, sample):
        enc = encrypt_sample(sample, _KEY, _IV8)
        assert decrypt_sample(enc, _KEY) == sample

    @given(
        sample=st.binary(min_size=40, max_size=300),
        clear=st.integers(min_value=0, max_value=40),
    )
    def test_subsample_encryption(self, sample, clear):
        enc = encrypt_sample(sample, _KEY, _IV8, clear_header=clear)
        assert decrypt_sample(enc, _KEY) == sample
        assert enc.data[:clear] == sample[:clear]

    def test_16_byte_iv(self):
        sample = bytes(100)
        enc = encrypt_sample(sample, _KEY, _IV16)
        assert decrypt_sample(enc, _KEY) == sample

    def test_clear_header_recorded_as_subsample(self):
        enc = encrypt_sample(bytes(100), _KEY, _IV8, clear_header=20)
        (sub,) = enc.entry.subsamples
        assert (sub.clear_bytes, sub.protected_bytes) == (20, 80)

    def test_no_clear_header_means_no_subsamples(self):
        enc = encrypt_sample(bytes(50), _KEY, _IV8)
        assert enc.entry.subsamples == []

    def test_clear_header_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            encrypt_sample(bytes(10), _KEY, _IV8, clear_header=11)
        with pytest.raises(ValueError, match="out of range"):
            encrypt_sample(bytes(10), _KEY, _IV8, clear_header=-1)


class TestKeystreamContinuity:
    def test_keystream_continuous_across_protected_ranges(self):
        """The CTR stream must run continuously over the protected
        ranges — the detail that distinguishes CENC from naive per-range
        encryption."""
        payload = bytes(range(256)) * 2
        entry = SencEntry(
            iv=_IV8,
            subsamples=[
                SubsampleRange(7, 100),
                SubsampleRange(13, 200),
                SubsampleRange(4, 188),
            ],
        )
        # Assemble the sample: clear parts zeroed, protected parts from payload.
        protected_total = 100 + 200 + 188
        protected_data = payload[:protected_total]
        sample = (
            bytes(7)
            + protected_data[:100]
            + bytes(13)
            + protected_data[100:300]
            + bytes(4)
            + protected_data[300:]
        )
        from repro.bmff.cenc import _transform

        encrypted = _transform(sample, _KEY, entry)
        # The concatenated protected ciphertext must equal a single
        # contiguous CTR pass over the concatenated protected plaintext.
        enc_protected = (
            encrypted[7 : 7 + 100]
            + encrypted[120 : 120 + 200]
            + encrypted[324 : 324 + 188]
        )
        assert enc_protected == ctr_transform(_KEY, _IV8, protected_data)

    def test_wrong_key_garbles(self):
        sample = bytes(64)
        enc = encrypt_sample(sample, _KEY, _IV8)
        assert decrypt_sample(enc, bytes(16)) != sample

    def test_wrong_iv_garbles(self):
        sample = bytes(64)
        enc = encrypt_sample(sample, _KEY, _IV8)
        enc.entry.iv = bytes(8)
        assert decrypt_sample(enc, _KEY) != sample


class TestStructuralErrors:
    def test_subsample_map_must_cover_sample(self):
        entry = SencEntry(iv=_IV8, subsamples=[SubsampleRange(10, 10)])
        sample = CencSample(data=bytes(30), entry=entry)
        with pytest.raises(CencDecryptError, match="covers 20 bytes"):
            decrypt_sample(sample, _KEY)

    def test_bad_iv_size_rejected(self):
        entry = SencEntry(iv=bytes(4))
        with pytest.raises(ValueError, match="8 or 16"):
            decrypt_sample(CencSample(data=bytes(16), entry=entry), _KEY)


class TestIvSequence:
    def test_deterministic(self):
        assert iv_sequence(b"seed", 5) == iv_sequence(b"seed", 5)

    def test_seed_separation(self):
        assert iv_sequence(b"seed-a", 3) != iv_sequence(b"seed-b", 3)

    def test_unique_within_sequence(self):
        ivs = iv_sequence(b"seed", 50)
        assert len(set(ivs)) == 50

    @pytest.mark.parametrize("size", [8, 16])
    def test_iv_size(self, size):
        assert all(len(iv) == size for iv in iv_sequence(b"s", 4, iv_size=size))

    def test_counter_wrap_8_byte_iv(self):
        # Near-max 64-bit counter half must wrap, not raise.
        iv = bytes([0xFF] * 8)
        sample = bytes(64)
        enc = encrypt_sample(sample, _KEY, iv)
        assert decrypt_sample(enc, _KEY) == sample
