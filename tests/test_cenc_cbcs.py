"""The 'cbcs' pattern-encryption scheme (ISO/IEC 23001-7 §9.6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bmff.boxes import SencEntry, SubsampleRange
from repro.bmff.cenc import (
    CencDecryptError,
    CencSample,
    DEFAULT_CBCS_PATTERN,
    decrypt_sample_cbcs,
    encrypt_sample_cbcs,
)
from repro.crypto.modes import cbc_encrypt

_KEY = bytes(range(16))
_IV = bytes(reversed(range(16)))


class TestRoundTrip:
    @given(sample=st.binary(min_size=0, max_size=600))
    def test_full_sample(self, sample):
        enc = encrypt_sample_cbcs(sample, _KEY, _IV)
        assert decrypt_sample_cbcs(enc, _KEY) == sample

    @settings(max_examples=40)
    @given(
        sample=st.binary(min_size=40, max_size=600),
        clear=st.integers(min_value=0, max_value=40),
        crypt=st.integers(min_value=1, max_value=3),
        skip=st.integers(min_value=0, max_value=9),
    )
    def test_any_pattern(self, sample, clear, crypt, skip):
        enc = encrypt_sample_cbcs(
            sample, _KEY, _IV, clear_header=clear, pattern=(crypt, skip)
        )
        assert (
            decrypt_sample_cbcs(enc, _KEY, pattern=(crypt, skip)) == sample
        )

    def test_header_stays_clear(self):
        sample = bytes(range(200)) + bytes(56)
        enc = encrypt_sample_cbcs(sample, _KEY, _IV, clear_header=32)
        assert enc.data[:32] == sample[:32]


class TestPatternStructure:
    def test_1_9_pattern_leaves_skip_blocks_clear(self):
        # 10 blocks of recognizable plaintext: with a 1:9 pattern only
        # block 0 changes; blocks 1..9 pass through untouched.
        sample = b"".join(bytes([i]) * 16 for i in range(10))
        enc = encrypt_sample_cbcs(sample, _KEY, _IV, pattern=(1, 9))
        assert enc.data[:16] != sample[:16]
        assert enc.data[16:] == sample[16:]

    def test_first_crypt_block_is_plain_cbc(self):
        sample = bytes(160)
        enc = encrypt_sample_cbcs(sample, _KEY, _IV, pattern=(1, 9))
        expected = cbc_encrypt(_KEY, _IV, sample[:16], pad=False)
        assert enc.data[:16] == expected

    def test_partial_trailing_block_clear(self):
        sample = bytes(16) + b"tail-seven"
        enc = encrypt_sample_cbcs(sample, _KEY, _IV, pattern=(1, 0))
        assert enc.data[16:] == b"tail-seven"

    def test_sub_block_sample_entirely_clear(self):
        sample = b"short"
        enc = encrypt_sample_cbcs(sample, _KEY, _IV)
        assert enc.data == sample

    def test_iv_resets_per_subsample(self):
        # Two identical protected subsamples must produce identical
        # ciphertext (constant IV, reset at each subsample).
        block = bytes(range(16)) * 2
        entry = SencEntry(
            iv=_IV,
            subsamples=[SubsampleRange(0, 32), SubsampleRange(0, 32)],
        )
        from repro.bmff.cenc import _apply_cbcs

        out = _apply_cbcs(block + block, _KEY, entry, (1, 0), encrypt=True)
        assert out[:32] == out[32:]

    def test_bad_pattern_rejected(self):
        with pytest.raises(ValueError, match="bad cbcs pattern"):
            encrypt_sample_cbcs(bytes(32), _KEY, _IV, pattern=(0, 9))

    def test_bad_iv_rejected(self):
        with pytest.raises(ValueError, match="16 bytes"):
            encrypt_sample_cbcs(bytes(32), _KEY, bytes(8))

    def test_subsample_map_validated(self):
        entry = SencEntry(iv=_IV, subsamples=[SubsampleRange(1, 1)])
        with pytest.raises(CencDecryptError):
            decrypt_sample_cbcs(CencSample(data=bytes(64), entry=entry), _KEY)


class TestThroughTheStack:
    def test_cbcs_decode_via_mediacodec(self, world):
        """A cbcs-protected sample decodes through MediaDrm/MediaCodec
        with CryptoInfo.mode='cbcs'."""
        from repro.android.mediacodec import CryptoInfo, MediaCodec
        from repro.android.mediacrypto import MediaCrypto
        from repro.android.mediadrm import MediaDrm
        from repro.bmff.builder import read_pssh_boxes
        from repro.bmff.pssh import WIDEVINE_SYSTEM_ID
        from repro.media.codecs import generate_sample, sample_header_length

        device = world.l1_device(serial="P6-CBCS")
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin="com.cbcs.app")
        client = device.new_http_client()
        request = drm.get_provision_request()
        response = client.post(
            f"https://{world.provisioning.hostname}/provision", request.data
        )
        drm.provide_provision_response(response.body)

        packaged = world.packaged
        init_url, _ = packaged.asset_urls["v540"]
        (pssh,) = read_pssh_boxes(client.get(init_url).body)
        session = drm.open_session()
        key_request = drm.get_key_request(session, pssh.data)
        license_response = client.post(
            f"https://{world.license_server.hostname}/license", key_request.data
        )
        drm.provide_key_response(session, license_response.body)

        # Encrypt a fresh sample under cbcs with the v540 content key.
        kid = packaged.kid_by_rep["v540"]
        key = packaged.content_keys[kid]
        clear = generate_sample("video", "cbcs/v", 0, 120)
        enc = encrypt_sample_cbcs(
            clear, key, _IV, clear_header=sample_header_length()
        )

        crypto = MediaCrypto(drm, session)
        codec = MediaCodec.create_decoder("video/mp4", secure=True)
        codec.configure(crypto)
        frame = codec.queue_secure_input_buffer(
            enc.data,
            CryptoInfo(
                key_id=kid,
                iv=enc.entry.iv,
                subsamples=tuple(
                    (s.clear_bytes, s.protected_bytes)
                    for s in enc.entry.subsamples
                ),
                mode="cbcs",
            ),
        )
        assert frame.valid

    def test_unknown_mode_rejected(self, world):
        from repro.android.mediadrm import MediaDrm
        from repro.bmff.pssh import WIDEVINE_SYSTEM_ID
        from repro.widevine.cdm import CdmError

        device = world.l1_device(serial="P6-MODE")
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device)
        session = drm.open_session()
        with pytest.raises(CdmError, match="unsupported protection scheme"):
            drm._cdm.decrypt(session, bytes(16), bytes(16), bytes(16), [], mode="cbc1")
