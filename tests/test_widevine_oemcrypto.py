"""OEMCrypto engine: sessions, the key ladder, decryption, generic API."""

import hashlib
import hmac as hmac_mod

import pytest

from repro.android.process import Process
from repro.bmff.cenc import encrypt_sample
from repro.crypto.kdf import derive_key, derive_session_keys
from repro.crypto.modes import cbc_encrypt
from repro.crypto.rng import derive_rng
from repro.crypto.rsa import generate_keypair, oaep_encrypt, pss_verify
from repro.license_server.protocol import (
    KeyControl,
    LicenseResponse,
    ProvisionResponse,
    WrappedKey,
)
from repro.widevine.keybox import issue_keybox
from repro.widevine.oemcrypto import (
    LABEL_PROV_MAC,
    LABEL_PROVISIONING,
    InsufficientSecurityError,
    InvalidSessionError,
    KeyNotLoadedError,
    NotProvisionedError,
    OemCrypto,
    OemCryptoError,
    SignatureFailureError,
)
from repro.widevine.storage import InProcessSecretStore, TeeSecretStore


def _engine(level="L3", serial="OC-T1") -> OemCrypto:
    if level == "L3":
        store = InProcessSecretStore(Process("mediadrmserver"))
    else:
        store = TeeSecretStore()
    store.install_keybox(issue_keybox(serial))
    oc = OemCrypto(store, serial=serial, cdm_version="15.0.0")
    oc._oecc01_initialize()
    return oc


def _rsa_for(serial="OC-T1"):
    return generate_keypair(1024, label=f"oemcrypto-test/{serial}")


def _provisioned_engine(level="L3", serial="OC-T1"):
    """Run the full provisioning path through the public API."""
    oc = _engine(level, serial)
    session = oc._oecc05_open_session()
    nonce = oc._oecc08_generate_nonce(session)
    keybox = issue_keybox(serial)
    rsa = _rsa_for(serial)
    prov_key = derive_key(keybox.device_key, LABEL_PROVISIONING, nonce, 128)
    iv = bytes(16)
    response = ProvisionResponse(
        device_id=keybox.device_id,
        iv=iv,
        wrapped_rsa_key=cbc_encrypt(prov_key, iv, rsa.export_secret()),
    )
    mac_key = derive_key(keybox.device_key, LABEL_PROV_MAC, keybox.device_id, 256)
    response.mac = hmac_mod.new(
        mac_key, response.signing_payload(), hashlib.sha256
    ).digest()
    blob = oc._oecc21_rewrap_device_rsa_key(session, response.serialize())
    oc._oecc22_load_device_rsa_key(blob)
    oc._oecc06_close_session(session)
    return oc, rsa


class TestSessions:
    def test_open_close(self):
        oc = _engine()
        session = oc._oecc05_open_session()
        oc._oecc06_close_session(session)
        with pytest.raises(InvalidSessionError):
            oc._oecc08_generate_nonce(session)

    def test_session_ids_unique(self):
        oc = _engine()
        assert oc._oecc05_open_session() != oc._oecc05_open_session()

    def test_close_unknown_session_is_noop(self):
        _engine()._oecc06_close_session(b"\xff\xff\xff\xff")

    def test_terminate_clears_sessions(self):
        oc = _engine()
        session = oc._oecc05_open_session()
        oc._oecc02_terminate()
        with pytest.raises(InvalidSessionError):
            oc._oecc08_generate_nonce(session)

    def test_device_id_matches_keybox(self):
        oc = _engine(serial="OC-ID")
        assert oc._oecc13_get_device_id() == issue_keybox("OC-ID").device_id


class TestKeyboxDerivation:
    def test_derived_signature_matches_kdf(self):
        oc = _engine(serial="OC-D1")
        session = oc._oecc05_open_session()
        oc._oecc07_generate_derived_keys(session, b"context")
        signature = oc._oecc09_generate_signature(session, b"message")
        keybox = issue_keybox("OC-D1")
        derived = derive_session_keys(keybox.device_key, b"context")
        expected = hmac_mod.new(derived.mac_client, b"message", hashlib.sha256)
        assert signature == expected.digest()

    def test_signature_requires_derived_keys(self):
        oc = _engine()
        session = oc._oecc05_open_session()
        with pytest.raises(OemCryptoError, match="no derived keys"):
            oc._oecc09_generate_signature(session, b"message")

    def test_nonces_unique_and_recorded(self):
        oc = _engine()
        session = oc._oecc05_open_session()
        nonces = {oc._oecc08_generate_nonce(session) for _ in range(5)}
        assert len(nonces) == 5


class TestProvisioning:
    def test_full_path_loads_rsa(self):
        oc, rsa = _provisioned_engine(serial="OC-P1")
        assert oc._oecc25_get_rsa_public_fingerprint() == rsa.public.fingerprint()

    def test_rsa_signature_after_provisioning(self):
        oc, rsa = _provisioned_engine(serial="OC-P2")
        session = oc._oecc05_open_session()
        signature = oc._oecc23_generate_rsa_signature(session, b"payload")
        assert pss_verify(rsa.public, b"payload", signature)

    def test_unprovisioned_operations_raise(self):
        oc = _engine()
        session = oc._oecc05_open_session()
        with pytest.raises(NotProvisionedError):
            oc._oecc25_get_rsa_public_fingerprint()
        with pytest.raises(NotProvisionedError):
            oc._oecc23_generate_rsa_signature(session, b"m")

    def test_rewrap_rejects_wrong_device(self):
        oc = _engine(serial="OC-P3")
        session = oc._oecc05_open_session()
        oc._oecc08_generate_nonce(session)
        response = ProvisionResponse(
            device_id=bytes(32), iv=bytes(16), wrapped_rsa_key=bytes(32),
            mac=bytes(32),
        )
        with pytest.raises(OemCryptoError, match="another device"):
            oc._oecc21_rewrap_device_rsa_key(session, response.serialize())

    def test_rewrap_rejects_bad_mac(self):
        oc = _engine(serial="OC-P4")
        session = oc._oecc05_open_session()
        oc._oecc08_generate_nonce(session)
        keybox = issue_keybox("OC-P4")
        response = ProvisionResponse(
            device_id=keybox.device_id,
            iv=bytes(16),
            wrapped_rsa_key=bytes(32),
            mac=bytes(32),
        )
        with pytest.raises(SignatureFailureError, match="MAC mismatch"):
            oc._oecc21_rewrap_device_rsa_key(session, response.serialize())

    def test_rewrap_requires_nonce(self):
        oc = _engine(serial="OC-P5")
        session = oc._oecc05_open_session()
        keybox = issue_keybox("OC-P5")
        response = ProvisionResponse(
            device_id=keybox.device_id, iv=bytes(16), wrapped_rsa_key=bytes(32)
        )
        mac_key = derive_key(
            keybox.device_key, LABEL_PROV_MAC, keybox.device_id, 256
        )
        response.mac = hmac_mod.new(
            mac_key, response.signing_payload(), hashlib.sha256
        ).digest()
        with pytest.raises(OemCryptoError, match="nonce"):
            oc._oecc21_rewrap_device_rsa_key(session, response.serialize())

    def test_load_rejects_garbage_blob(self):
        oc = _engine()
        with pytest.raises(OemCryptoError, match="bad RSA storage blob"):
            oc._oecc22_load_device_rsa_key(b"nonsense")


def _license_for(oc, rsa, session, keys, *, tamper_mac=False):
    """Build a license the way the license server does."""
    session_key = derive_rng("oc-test-session-key").generate(16)
    context = b"license-request-context"
    derived = derive_session_keys(session_key, context)
    wrapped = []
    for kid, (key, control) in keys.items():
        iv = bytes(16)
        wrapped.append(
            WrappedKey(
                key_id=kid,
                iv=iv,
                wrapped_key=cbc_encrypt(derived.encryption, iv, key),
                control=control,
            )
        )
    response = LicenseResponse(
        session_id=session,
        wrapped_session_key=oaep_encrypt(rsa.public, session_key),
        derivation_context=context,
        keys=wrapped,
    )
    response.mac = (
        bytes(32)
        if tamper_mac
        else hmac_mod.new(
            derived.mac_server, response.signing_payload(), hashlib.sha256
        ).digest()
    )
    return response.serialize()


class TestLicenseLoading:
    _KID = bytes([7]) * 16
    _KEY = bytes([9]) * 16

    def test_load_and_decrypt(self):
        oc, rsa = _provisioned_engine(serial="OC-L1")
        session = oc._oecc05_open_session()
        license_bytes = _license_for(
            oc, rsa, session, {self._KID: (self._KEY, KeyControl())}
        )
        loaded = oc._oecc10_load_keys(session, license_bytes)
        assert loaded == [self._KID]
        sample = encrypt_sample(b"A" * 64, self._KEY, bytes(8))
        oc._oecc11_select_key(session, self._KID)
        result = oc._oecc12_decrypt_ctr(session, sample.data, sample.entry.iv, [])
        assert result.data == b"A" * 64
        assert not result.secure

    def test_load_rejects_bad_mac(self):
        oc, rsa = _provisioned_engine(serial="OC-L2")
        session = oc._oecc05_open_session()
        license_bytes = _license_for(
            oc, rsa, session, {self._KID: (self._KEY, KeyControl())}, tamper_mac=True
        )
        with pytest.raises(SignatureFailureError, match="license MAC"):
            oc._oecc10_load_keys(session, license_bytes)

    def test_l3_skips_l1_only_keys(self):
        oc, rsa = _provisioned_engine(level="L3", serial="OC-L3")
        session = oc._oecc05_open_session()
        hd_kid = bytes([1]) * 16
        license_bytes = _license_for(
            oc,
            rsa,
            session,
            {
                self._KID: (self._KEY, KeyControl()),
                hd_kid: (bytes(16), KeyControl(require_security_level="L1")),
            },
        )
        loaded = oc._oecc10_load_keys(session, license_bytes)
        assert self._KID in loaded
        assert hd_kid not in loaded

    def test_l1_loads_l1_only_keys(self):
        oc, rsa = _provisioned_engine(level="L1", serial="OC-L4")
        session = oc._oecc05_open_session()
        hd_kid = bytes([1]) * 16
        license_bytes = _license_for(
            oc,
            rsa,
            session,
            {hd_kid: (bytes(16), KeyControl(require_security_level="L1"))},
        )
        assert oc._oecc10_load_keys(session, license_bytes) == [hd_kid]

    def test_select_unloaded_key_rejected(self):
        oc = _engine()
        session = oc._oecc05_open_session()
        with pytest.raises(KeyNotLoadedError):
            oc._oecc11_select_key(session, bytes(16))

    def test_decrypt_without_selection_rejected(self):
        oc = _engine()
        session = oc._oecc05_open_session()
        with pytest.raises(KeyNotLoadedError, match="no key selected"):
            oc._oecc12_decrypt_ctr(session, bytes(16), bytes(8), [])

    def test_l1_decrypt_returns_secure_handle(self):
        oc, rsa = _provisioned_engine(level="L1", serial="OC-L5")
        session = oc._oecc05_open_session()
        license_bytes = _license_for(
            oc, rsa, session, {self._KID: (self._KEY, KeyControl())}
        )
        oc._oecc10_load_keys(session, license_bytes)
        oc._oecc11_select_key(session, self._KID)
        sample = encrypt_sample(b"B" * 32, self._KEY, bytes(8))
        result = oc._oecc12_decrypt_ctr(session, sample.data, sample.entry.iv, [])
        assert result.secure
        assert result.data is None
        clear = oc.resolve_secure_handle(result.handle, requester="secure-decoder")
        assert clear == b"B" * 32

    def test_secure_handle_denied_to_others(self):
        oc, rsa = _provisioned_engine(level="L1", serial="OC-L6")
        session = oc._oecc05_open_session()
        license_bytes = _license_for(
            oc, rsa, session, {self._KID: (self._KEY, KeyControl())}
        )
        oc._oecc10_load_keys(session, license_bytes)
        oc._oecc11_select_key(session, self._KID)
        sample = encrypt_sample(b"C" * 32, self._KEY, bytes(8))
        result = oc._oecc12_decrypt_ctr(session, sample.data, sample.entry.iv, [])
        with pytest.raises(PermissionError):
            oc.resolve_secure_handle(result.handle, requester="frida")

    def test_secure_handle_single_use(self):
        oc, rsa = _provisioned_engine(level="L1", serial="OC-L7")
        session = oc._oecc05_open_session()
        license_bytes = _license_for(
            oc, rsa, session, {self._KID: (self._KEY, KeyControl())}
        )
        oc._oecc10_load_keys(session, license_bytes)
        oc._oecc11_select_key(session, self._KID)
        sample = encrypt_sample(b"D" * 32, self._KEY, bytes(8))
        result = oc._oecc12_decrypt_ctr(session, sample.data, sample.entry.iv, [])
        oc.resolve_secure_handle(result.handle, requester="secure-decoder")
        with pytest.raises(OemCryptoError, match="unknown secure buffer"):
            oc.resolve_secure_handle(result.handle, requester="secure-decoder")


class TestGenericCrypto:
    def _session_with_keys(self):
        oc = _engine(serial="OC-G1")
        session = oc._oecc05_open_session()
        oc._oecc07_generate_derived_keys(session, b"generic-context")
        return oc, session

    def test_encrypt_decrypt_round_trip(self):
        oc, session = self._session_with_keys()
        iv = bytes(16)
        ct = oc._oecc30_generic_encrypt(session, b"secret uris", iv)
        assert ct != b"secret uris"
        assert oc._oecc31_generic_decrypt(session, ct, iv) == b"secret uris"

    def test_sign_verify_round_trip(self):
        oc, session = self._session_with_keys()
        signature = oc._oecc32_generic_sign(session, b"data")
        assert oc._oecc33_generic_verify(session, b"data", signature)
        assert not oc._oecc33_generic_verify(session, b"other", signature)

    def test_decrypt_garbage_raises(self):
        oc, session = self._session_with_keys()
        with pytest.raises(OemCryptoError, match="generic decrypt failed"):
            oc._oecc31_generic_decrypt(session, bytes(16), bytes(16))


class TestIntrospection:
    def test_oecc_function_names(self):
        names = _engine().oecc_function_names()
        assert "_oecc05_open_session" in names
        assert "_oecc12_decrypt_ctr" in names
        assert all(n.startswith("_oecc") for n in names)

    def test_call_count_increments(self):
        oc = _engine()
        before = oc.call_count
        oc._oecc05_open_session()
        assert oc.call_count == before + 1

    def test_initialize_requires_keybox(self):
        store = TeeSecretStore()
        oc = OemCrypto(store, serial="X", cdm_version="15.0.0")
        with pytest.raises(RuntimeError, match="no keybox"):
            oc._oecc01_initialize()
