"""Command-line interface."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main

TRACE_FIXTURES = Path(__file__).parent / "fixtures" / "traces"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_audit_requires_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit"])


class TestCommands:
    def test_list_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        assert "Netflix" in out
        assert "custom DRM on L3" in out

    def test_audit_known_app(self, capsys):
        assert main(["audit", "Salto"]) == 0
        out = capsys.readouterr().out
        assert "Salto" in out
        assert "match" in out

    def test_audit_unknown_app(self, capsys):
        assert main(["audit", "Blockbuster"]) == 2
        err = capsys.readouterr().err
        assert "unknown app 'Blockbuster'" in err
        assert "Netflix" in err

    def test_attack_breaks_showtime(self, capsys):
        assert main(["attack", "Showtime"]) == 0
        out = capsys.readouterr().out
        assert "best 540p" in out

    def test_attack_resisted_by_disney(self, capsys):
        assert main(["attack", "Disney+"]) == 1
        out = capsys.readouterr().out
        assert "DRM-free recovery:    no" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Application -> MediaDRM Server: MediaDrm(UUID)" in out
        assert out.count("Decrypt()") == 1


class TestUnifiedAppErrors:
    """Every subcommand taking an app shares resolve_app(): exit 2 with
    one stderr line naming the valid apps."""

    CASES = [
        ["audit", "Blockbuster"],
        ["analyze", "Blockbuster"],
        ["attack", "Blockbuster"],
        ["profile", "--app", "Blockbuster"],
        ["trace", "--app", "Blockbuster"],
        ["fleet", "submit", "--apps", "Blockbuster"],
    ]

    @pytest.mark.parametrize("argv", CASES, ids=lambda argv: argv[0])
    def test_unknown_app_exits_2_naming_valid_apps(self, argv, capsys, tmp_path):
        if argv[0] == "fleet":
            argv = argv + ["--root", str(tmp_path / "fleet")]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one line, not a traceback
        assert "unknown app 'Blockbuster'" in err
        assert "Netflix" in err and "Salto" in err


class TestProfileAndTrace:

    @pytest.mark.parametrize("command", ["profile", "trace"])
    def test_bad_rate_exits_2(self, command, capsys):
        assert main([command, "--app", "Salto", "--rate", "2/3"]) == 2
        assert "sampling rate must be 1/N" in capsys.readouterr().err

    def test_profile_single_app_with_flame_graph(self, capsys, tmp_path):
        flame = tmp_path / "flame.txt"
        assert main(["profile", "--app", "Salto", "--flame", str(flame)]) == 0
        out = capsys.readouterr().out
        assert "critical path — Salto" in out
        assert "self%" in out
        assert "sampling 1/1" in out
        # Collapsed stacks: speedscope/flamegraph.pl-compatible lines.
        lines = flame.read_text().strip().split("\n")
        assert lines and all(" " in line for line in lines)
        assert any(line.startswith("study.app;") for line in lines)

    def test_trace_reports_sampling(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "--app",
                    "Salto",
                    "--out",
                    str(out_path),
                    "--rate",
                    "1/4",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sampling 1/4 (seed 1)" in out
        assert out_path.exists()

    def test_trace_diff_flags_the_slowdown_and_exits_nonzero(self, capsys):
        code = main(
            [
                "trace",
                "--diff",
                str(TRACE_FIXTURES / "baseline.jsonl"),
                str(TRACE_FIXTURES / "slowdown.jsonl"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "license.exchange" in out

    def test_trace_diff_identical_exits_zero(self, capsys):
        fixture = str(TRACE_FIXTURES / "baseline.jsonl")
        assert main(["trace", "--diff", fixture, fixture]) == 0
        assert "no span regressed" in capsys.readouterr().out

    def test_trace_diff_missing_file_exits_2(self, capsys):
        assert main(["trace", "--diff", "nope.jsonl", "nope2.jsonl"]) == 2
        assert "trace --diff" in capsys.readouterr().err
