"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_audit_requires_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit"])


class TestCommands:
    def test_list_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        assert "Netflix" in out
        assert "custom DRM on L3" in out

    def test_audit_known_app(self, capsys):
        assert main(["audit", "Salto"]) == 0
        out = capsys.readouterr().out
        assert "Salto" in out
        assert "match" in out

    def test_audit_unknown_app(self, capsys):
        assert main(["audit", "Blockbuster"]) == 2
        assert "no OTT profile" in capsys.readouterr().out

    def test_attack_breaks_showtime(self, capsys):
        assert main(["attack", "Showtime"]) == 0
        out = capsys.readouterr().out
        assert "best 540p" in out

    def test_attack_resisted_by_disney(self, capsys):
        assert main(["attack", "Disney+"]) == 1
        out = capsys.readouterr().out
        assert "DRM-free recovery:    no" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Application -> MediaDRM Server: MediaDrm(UUID)" in out
        assert out.count("Decrypt()") == 1
