"""Time-bounded licenses: the simulated clock and expiry enforcement."""

import pytest

from repro.android.clock import SimClock
from repro.android.device import pixel_6
from repro.android.mediadrm import MediaDrm
from repro.bmff.builder import read_pssh_boxes, read_track_info, read_samples
from repro.bmff.pssh import WIDEVINE_SYSTEM_ID
from repro.license_server.policy import AudioProtection
from repro.license_server.provisioning import KeyboxAuthority
from repro.net.network import Network
from repro.ott.backend import OttBackend
from repro.ott.profile import OttProfile
from repro.widevine.oemcrypto import KeysExpiredError


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(10)
        clock.advance(2.5)
        assert clock.now() == 12.5

    def test_no_time_travel(self):
        with pytest.raises(ValueError, match="forward"):
            SimClock().advance(-1)


def _bounded_world(duration_s: int | None):
    profile = OttProfile(
        name="ExpFlix",
        service=f"expf{duration_s or 0}",
        package="com.expflix.app",
        installs_millions=1,
        audio_protection=AudioProtection.SHARED_KEY,
        enforces_revocation=False,
    )
    network = Network()
    authority = KeyboxAuthority()
    backend = OttBackend(profile, network, authority)
    if duration_s is not None:
        # Rebuild the license server policy with a bounded duration.
        from dataclasses import replace

        backend.license_server.policy = replace(
            backend.license_server.policy, license_duration_s=duration_s
        )
    device = pixel_6(network, authority)
    device.rooted = True
    return profile, backend, device


def _licensed_session(profile, backend, device):
    drm = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin=profile.package)
    client = device.new_http_client()
    request = drm.get_provision_request()
    response = client.post(
        f"https://{profile.provisioning_host}/provision", request.data
    )
    drm.provide_provision_response(response.body)
    packaged = backend.packaged[next(iter(backend.catalog)).title_id]
    init_url, seg_urls = packaged.asset_urls["v540"]
    init = client.get(init_url).body
    (pssh,) = read_pssh_boxes(init)
    info = read_track_info(init)
    session = drm.open_session()
    key_request = drm.get_key_request(session, pssh.data)
    license_response = client.post(
        f"https://{profile.license_host}/license", key_request.data
    )
    drm.provide_key_response(session, license_response.body)
    segment = client.get(seg_urls[0]).body
    samples, __ = read_samples(segment, iv_size=info.iv_size)
    return drm, session, info, samples


class TestLicenseExpiry:
    def test_decrypt_works_within_duration(self):
        profile, backend, device = _bounded_world(3600)
        drm, session, info, samples = _licensed_session(profile, backend, device)
        device.clock.advance(3599)
        result = drm._cdm.decrypt(
            session,
            info.default_kid,
            samples[0].data,
            samples[0].entry.iv,
            [(s.clear_bytes, s.protected_bytes) for s in samples[0].entry.subsamples],
        )
        assert result.handle is not None or result.data is not None

    def test_decrypt_fails_after_expiry(self):
        profile, backend, device = _bounded_world(3600)
        drm, session, info, samples = _licensed_session(profile, backend, device)
        device.clock.advance(3601)
        with pytest.raises(KeysExpiredError, match="expired"):
            drm._cdm.decrypt(
                session,
                info.default_kid,
                samples[0].data,
                samples[0].entry.iv,
                [
                    (s.clear_bytes, s.protected_bytes)
                    for s in samples[0].entry.subsamples
                ],
            )

    def test_relicensing_resets_the_clock(self):
        profile, backend, device = _bounded_world(3600)
        drm, session, info, samples = _licensed_session(profile, backend, device)
        device.clock.advance(4000)
        # Fresh license on a fresh session: decrypt works again.
        drm2, session2, info2, samples2 = _licensed_session(
            profile, backend, device
        )
        result = drm2._cdm.decrypt(
            session2,
            info2.default_kid,
            samples2[0].data,
            samples2[0].entry.iv,
            [
                (s.clear_bytes, s.protected_bytes)
                for s in samples2[0].entry.subsamples
            ],
        )
        assert result is not None

    def test_unbounded_policy_never_expires(self):
        profile, backend, device = _bounded_world(None)
        drm, session, info, samples = _licensed_session(profile, backend, device)
        device.clock.advance(10**9)
        result = drm._cdm.decrypt(
            session,
            info.default_kid,
            samples[0].data,
            samples[0].entry.iv,
            [(s.clear_bytes, s.protected_bytes) for s in samples[0].entry.subsamples],
        )
        assert result is not None

    def test_duration_carried_in_license_control(self):
        profile, backend, device = _bounded_world(1234)
        drm, client = None, device.new_http_client()
        drm = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin=profile.package)
        request = drm.get_provision_request()
        response = client.post(
            f"https://{profile.provisioning_host}/provision", request.data
        )
        drm.provide_provision_response(response.body)
        packaged = backend.packaged[next(iter(backend.catalog)).title_id]
        init_url, _ = packaged.asset_urls["v540"]
        (pssh,) = read_pssh_boxes(client.get(init_url).body)
        session = drm.open_session()
        key_request = drm.get_key_request(session, pssh.data)
        license_response = client.post(
            f"https://{profile.license_host}/license", key_request.data
        )
        from repro.license_server.protocol import LicenseResponse

        parsed = LicenseResponse.parse(license_response.body)
        assert all(k.control.license_duration_s == 1234 for k in parsed.keys)
