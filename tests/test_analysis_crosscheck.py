"""Static-vs-dynamic reconciliation (§IV-B, the two prongs held together)."""

from __future__ import annotations

from repro.analysis.callgraph import DrmCallSite
from repro.analysis.crosscheck import (
    CONFIRMED,
    STATIC_ONLY,
    OECC_EVIDENCE,
    cross_check,
)
from repro.core.monitor import DrmApiObservation


def _observation(*functions: str) -> DrmApiObservation:
    return DrmApiObservation(
        widevine_used=True,
        security_level="L1",
        oecc_call_count=len(functions),
        functions_seen=tuple(sorted(functions)),
    )


def _site(callee: str, reachable: bool = True) -> DrmCallSite:
    return DrmCallSite("com.x.Player", "play", callee, reachable)


class TestClassification:
    def test_reachable_site_with_evidence_is_confirmed(self):
        result = cross_check(
            "com.x",
            [_site("android.media.MediaDrm.openSession")],
            _observation("_oecc05_open_session"),
        )
        assert [s.verdict for s in result.sites] == [CONFIRMED]
        assert result.counts() == {
            "confirmed": 1,
            "static_only": 0,
            "dead_code": 0,
            "dynamic_only": 0,
        }

    def test_dead_site_is_static_only_dead_code(self):
        result = cross_check(
            "com.x",
            [_site("android.media.MediaDrm.getPropertyString", reachable=False)],
            _observation("_oecc05_open_session"),
        )
        classified = result.sites[0]
        assert classified.verdict == STATIC_ONLY
        assert "dead code" in classified.note
        assert result.dead_code == 1
        # _oecc05 has no attributable site: it surfaces as dynamic-only.
        assert result.dynamic_only == ("_oecc05_open_session",)

    def test_reachable_but_unobserved_site_is_static_only(self):
        result = cross_check(
            "com.x",
            [_site("android.media.MediaDrm.queryKeyStatus")],
            _observation("_oecc05_open_session"),
        )
        classified = result.sites[0]
        assert classified.verdict == STATIC_ONLY
        assert "no OEMCrypto evidence" in classified.note
        assert result.static_only == 1
        assert result.dead_code == 0

    def test_dynamic_only_excludes_ambient_functions(self):
        result = cross_check(
            "com.x", [], _observation("_oecc01_initialize", "_oecc02_terminate")
        )
        assert result.dynamic_only == ()

    def test_dead_site_still_attributes_its_evidence(self):
        """A dead getPropertyString site keeps _oecc13 out of dynamic-only:
        the static prong *does* know code exists for it."""
        result = cross_check(
            "com.x",
            [_site("android.media.MediaDrm.getPropertyString", reachable=False)],
            _observation("_oecc13_get_device_id"),
        )
        assert result.dynamic_only == ()
        assert result.sites[0].verdict == STATIC_ONLY

    def test_secure_channel_shows_as_dynamic_only(self):
        """Netflix's worked example: generic crypto activity with no
        static CryptoSession site behind it."""
        result = cross_check(
            "com.x",
            [_site("android.media.MediaDrm.openSession")],
            _observation("_oecc05_open_session", "_oecc31_generic_decrypt"),
        )
        assert result.dynamic_only == ("_oecc31_generic_decrypt",)


class TestEvidenceMap:
    def test_every_evidence_function_is_an_oecc_export(self):
        for functions in OECC_EVIDENCE.values():
            for fn in functions:
                assert fn.startswith("_oecc"), fn

    def test_session_lifecycle_is_mapped(self):
        assert "android.media.MediaDrm.openSession" in OECC_EVIDENCE
        assert "android.media.MediaDrm.closeSession" in OECC_EVIDENCE
        assert "android.media.MediaDrm.provideKeyResponse" in OECC_EVIDENCE
