"""The repo invariant linter: clean on the shipped tree, loud on the
seeded-violation fixtures."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import (
    RULE_IDS,
    lint_file,
    lint_paths,
    lint_paths_report,
    lint_source,
    lint_source_report,
)

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "lint"

_FIXTURE_BY_RULE = {
    "REG001": FIXTURES / "reg001_unlocked_registry.py",
    "RNG002": FIXTURES / "rng002_process_rng.py",
    "CLK003": FIXTURES / "clk003_wall_clock.py",
    "LRU004": FIXTURES / "lru004_unlocked_cache.py",
}


class TestShippedTreeIsClean:
    def test_src_repro_has_zero_violations(self):
        violations = lint_paths([REPO / "src" / "repro"])
        assert violations == [], "\n".join(str(v) for v in violations)


class TestSeededFixtures:
    @pytest.mark.parametrize("rule", RULE_IDS)
    def test_each_rule_fires_on_its_fixture(self, rule):
        violations = lint_file(_FIXTURE_BY_RULE[rule])
        assert violations, f"{rule} fixture produced no violations"
        assert {v.rule for v in violations} == {rule}

    def test_reg001_points_at_the_unlocked_mutation(self):
        violations = lint_file(_FIXTURE_BY_RULE["REG001"])
        assert len(violations) == 1  # the locked mutation is not flagged
        assert "_REGISTRY" in violations[0].message

    def test_rng002_catches_each_forbidden_form(self):
        violations = lint_file(_FIXTURE_BY_RULE["RNG002"])
        messages = " ".join(v.message for v in violations)
        assert "os.urandom" in messages
        assert "random.random" in messages
        assert "unseeded random.Random()" in messages


class TestRuleSemantics:
    def test_mutation_under_lock_is_clean(self):
        source = (
            "import threading\n"
            "_R = {}\n"
            "_R_LOCK = threading.Lock()\n"
            "def put(k, v):\n"
            "    with _R_LOCK:\n"
            "        _R[k] = v\n"
        )
        assert lint_source(source) == []

    def test_registry_without_lock_is_not_reg001(self):
        """REG001 only governs scopes that declared a lock; a plain
        module-level dict is just a dict."""
        source = "_R = {}\ndef put(k, v):\n    _R[k] = v\n"
        assert [v.rule for v in lint_source(source)] == []

    def test_init_is_exempt(self):
        source = (
            "import threading\n"
            "from collections import OrderedDict\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cache = OrderedDict()\n"
            "        self._cache['warm'] = 1\n"
        )
        assert lint_source(source) == []

    def test_seeded_random_is_allowed(self):
        assert lint_source("import random\nr = random.Random(42)\n") == []

    def test_clock_module_itself_may_read_wall_clock(self):
        source = "import time\ndef now():\n    return time.time()\n"
        path = "src/repro/android/clock.py"
        assert lint_source(source, path=path) == []
        assert [v.rule for v in lint_source(source, path="src/repro/x.py")] == [
            "CLK003"
        ]

    def test_syntax_error_is_reported_not_raised(self):
        violations = lint_source("def broken(:\n")
        assert [v.rule for v in violations] == ["SYNTAX"]

    def test_violations_sorted_by_line(self):
        source = (
            "import time, os\n"
            "def a():\n"
            "    return os.urandom(4)\n"
            "def b():\n"
            "    return time.time()\n"
        )
        violations = lint_source(source)
        assert [v.rule for v in violations] == ["RNG002", "CLK003"]
        assert violations[0].line < violations[1].line


class TestSuppressions:
    """`# lint: allow(RULE123) <reason>` comments waive one rule on one
    line — and every waiver is recorded in the report."""

    CLOCK_LINE = "import time\ndef now():\n    return time.time()"

    def test_same_line_suppression(self):
        source = (
            "import time\n"
            "def now():\n"
            "    return time.time()  # lint: allow(CLK003) bench needs wall time\n"
        )
        report = lint_source_report(source)
        assert report.violations == []
        assert [s.suppression.rule for s in report.suppressed] == ["CLK003"]
        assert report.suppressed[0].suppression.reason == "bench needs wall time"

    def test_preceding_comment_line_suppression(self):
        source = (
            "import time\n"
            "def now():\n"
            "    # lint: allow(CLK003) bench needs wall time\n"
            "    return time.time()\n"
        )
        report = lint_source_report(source)
        assert report.violations == []
        assert len(report.suppressed) == 1

    def test_reason_is_mandatory(self):
        source = (
            "import time\n"
            "def now():\n"
            "    return time.time()  # lint: allow(CLK003)\n"
        )
        report = lint_source_report(source)
        assert [v.rule for v in report.violations] == ["CLK003"]
        assert report.suppressed == []

    def test_wrong_rule_does_not_suppress(self):
        source = (
            "import time\n"
            "def now():\n"
            "    return time.time()  # lint: allow(RNG002) wrong rule\n"
        )
        report = lint_source_report(source)
        assert [v.rule for v in report.violations] == ["CLK003"]

    def test_suppression_is_line_scoped(self):
        """A waiver on one line does not bless the rule elsewhere."""
        source = (
            "import time\n"
            "def a():\n"
            "    return time.time()  # lint: allow(CLK003) measured on purpose\n"
            "def b():\n"
            "    return time.time()\n"
        )
        report = lint_source_report(source)
        assert [v.rule for v in report.violations] == ["CLK003"]
        assert report.violations[0].line == 5
        assert len(report.suppressed) == 1

    def test_legacy_lint_source_filters_suppressed(self):
        source = (
            "import time\n"
            "def now():\n"
            "    return time.time()  # lint: allow(CLK003) justified\n"
        )
        assert lint_source(source) == []

    def test_shipped_tree_suppressions_are_recorded(self):
        """The bus's wall-clock read is waived in place, not invisible."""
        report = lint_paths_report([REPO / "src" / "repro"])
        assert report.violations == []
        waived = {
            (Path(s.violation.path).name, s.suppression.rule)
            for s in report.suppressed
        }
        assert ("bus.py", "CLK003") in waived

    def test_aliased_clock_reference_is_flagged(self):
        """CLK003 catches bare references too — aliasing the clock
        function dodges the rule as effectively as calling it."""
        source = "import time\nclock = time.perf_counter_ns\n"
        assert [v.rule for v in lint_source(source)] == ["CLK003"]


def apply_unified_patch(source: str, patch: str) -> str:
    """Apply a full-file unified diff the way ``patch -p1`` would."""
    lines = source.splitlines()
    result: list[str] = []
    cursor = 0
    for raw in patch.splitlines():
        if raw.startswith(("---", "+++")):
            continue
        if raw.startswith("@@"):
            start = int(raw.split()[1].lstrip("-").split(",")[0])
            result.extend(lines[cursor : start - 1])
            cursor = start - 1
        elif raw.startswith("+"):
            result.append(raw[1:])
        elif raw.startswith("-"):
            assert lines[cursor] == raw[1:], "patch context mismatch"
            cursor += 1
        elif raw.startswith(" ") or raw == "":
            assert lines[cursor] == raw[1:], "patch context mismatch"
            result.append(lines[cursor])
            cursor += 1
    result.extend(lines[cursor:])
    return "\n".join(result) + "\n"


class TestAutofixPatches:
    """REG001/LRU004 violations carry a ready-to-apply unified diff;
    applying it silences the violation."""

    def test_reg001_patch_wraps_the_mutation_and_relints_clean(self):
        source = _FIXTURE_BY_RULE["REG001"].read_text()
        path = str(_FIXTURE_BY_RULE["REG001"])
        violation = lint_source(source, path=path)[0]
        assert violation.patch is not None
        assert f"a/{path}" in violation.patch
        assert "with _REGISTRY_LOCK:" in violation.patch
        fixed = apply_unified_patch(source, violation.patch)
        assert lint_source(fixed, path=path) == []

    def test_lru004_patch_declares_the_lock_and_relints_clean(self):
        source = _FIXTURE_BY_RULE["LRU004"].read_text()
        path = str(_FIXTURE_BY_RULE["LRU004"])
        violation = lint_source(source, path=path)[0]
        assert violation.patch is not None
        assert "+import threading" in violation.patch
        assert "self._entries_lock = threading.Lock()" in violation.patch
        fixed = apply_unified_patch(source, violation.patch)
        assert lint_source(fixed, path=path) == []

    def test_lru004_patch_inserts_import_below_docstring_and_future(self):
        """Every module in this repo opens with a docstring and a
        ``from __future__ import annotations``; ``import threading``
        landing above either would be a SyntaxError (or demote the
        docstring)."""
        source = (
            '"""Module docstring."""\n'
            "from __future__ import annotations\n"
            "\n"
            "from collections import OrderedDict\n"
            "\n"
            "class C:\n"
            "    def boot(self):\n"
            "        self._cache = OrderedDict()\n"
        )
        violation = lint_source(source)[0]
        assert violation.rule == "LRU004"
        fixed = apply_unified_patch(source, violation.patch)
        compile(fixed, "<fixed>", "exec")  # patched module must parse
        lines = fixed.splitlines()
        assert lines.index("import threading") > lines.index(
            "from __future__ import annotations"
        )
        assert lint_source(fixed) == []

    def test_lru004_patch_joins_existing_imports_after_future_import(self):
        source = (
            "from __future__ import annotations\n"
            "from collections import OrderedDict\n"
            "_cache = OrderedDict()\n"
        )
        violation = lint_source(source)[0]
        assert violation.rule == "LRU004"
        fixed = apply_unified_patch(source, violation.patch)
        compile(fixed, "<fixed>", "exec")
        assert fixed.splitlines()[1] == "import threading"
        assert lint_source(fixed) == []

    def test_lru004_patch_skips_the_import_when_already_present(self):
        source = (
            "import threading\n"
            "from collections import OrderedDict\n"
            "class C:\n"
            "    def boot(self):\n"
            "        self._cache = OrderedDict()\n"
        )
        violation = lint_source(source)[0]
        assert violation.rule == "LRU004"
        assert "+import threading" not in violation.patch
        fixed = apply_unified_patch(source, violation.patch)
        assert lint_source(fixed) == []

    def test_reg001_multiline_mutation_is_wrapped_whole(self):
        source = (
            "import threading\n"
            "_R = {}\n"
            "_LOCK = threading.Lock()\n"
            "def put(k):\n"
            "    _R[k] = [\n"
            "        1,\n"
            "    ]\n"
        )
        violation = lint_source(source)[0]
        fixed = apply_unified_patch(source, violation.patch)
        assert "with _LOCK:" in fixed
        assert lint_source(fixed) == []

    def test_rules_without_a_known_fix_carry_no_patch(self):
        violations = lint_source("import time\nt = time.time()\n")
        assert [v.rule for v in violations] == ["CLK003"]
        assert violations[0].patch is None

    def test_cli_lint_fix_preview_echoes_the_patch(self, capsys):
        from repro.cli import main

        path = str(_FIXTURE_BY_RULE["REG001"])
        assert main(["lint", "--fix-preview", path]) == 1
        out = capsys.readouterr().out
        assert f"+++ b/{path}" in out
        assert "+    with _REGISTRY_LOCK:" in out

    def test_cli_lint_without_flag_stays_terse(self, capsys):
        from repro.cli import main

        assert main(["lint", str(_FIXTURE_BY_RULE["REG001"])]) == 1
        assert "+++" not in capsys.readouterr().out


class TestCliTool:
    def _run(self, *args: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, str(REPO / "tools" / "lint_repro.py"), *args],
            capture_output=True,
            text=True,
            cwd=REPO,
        )

    def test_exit_zero_on_shipped_tree(self):
        result = self._run("src/repro")
        assert result.returncode == 0, result.stdout + result.stderr

    @pytest.mark.parametrize("rule", RULE_IDS)
    def test_exit_nonzero_on_each_fixture(self, rule):
        result = self._run(str(_FIXTURE_BY_RULE[rule]))
        assert result.returncode == 1
        assert rule in result.stdout

    def test_exit_two_on_missing_path(self):
        result = self._run("does/not/exist")
        assert result.returncode == 2

    def test_fix_preview_flag_prints_patch_hunks(self):
        result = self._run("--fix-preview", str(_FIXTURE_BY_RULE["LRU004"]))
        assert result.returncode == 1
        assert "@@" in result.stdout
        assert "+        self._entries_lock = threading.Lock()" in result.stdout

    def test_suppressions_shown_in_clean_output(self, tmp_path):
        waived = tmp_path / "waived.py"
        waived.write_text(
            "import time\n"
            "def now():\n"
            "    return time.time()  # lint: allow(CLK003) timing harness\n"
        )
        result = self._run(str(waived))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "suppressed" in result.stdout
        assert "timing harness" in result.stdout
