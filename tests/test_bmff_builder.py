"""Fragmented-MP4 builder/reader and Widevine PSSH payloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bmff.boxes import BoxParseError
from repro.bmff.builder import (
    build_init_segment,
    build_media_segment,
    read_pssh_boxes,
    read_samples,
    read_track_info,
)
from repro.bmff.cenc import encrypt_sample, iv_sequence
from repro.bmff.pssh import (
    WIDEVINE_SYSTEM_ID,
    WidevinePsshData,
    build_widevine_pssh,
    parse_widevine_pssh,
)

_KEY = bytes(range(16))
_KID = bytes(reversed(range(16)))


class TestInitSegment:
    def test_clear_video(self):
        info = read_track_info(build_init_segment(kind="video", codec="synh264"))
        assert info.kind == "video"
        assert info.codec == "synh264"
        assert not info.protected
        assert info.default_kid is None

    def test_protected_audio(self):
        init = build_init_segment(kind="audio", codec="synaac", default_kid=_KID)
        info = read_track_info(init)
        assert info.kind == "audio"
        assert info.protected
        assert info.default_kid == _KID
        assert info.iv_size == 8

    def test_protected_with_16_byte_iv(self):
        init = build_init_segment(
            kind="video", codec="c", default_kid=_KID, iv_size=16
        )
        assert read_track_info(init).iv_size == 16

    def test_text_track(self):
        info = read_track_info(build_init_segment(kind="text", codec="wvtt"))
        assert info.kind == "text"

    def test_track_id_round_trip(self):
        init = build_init_segment(kind="video", codec="c", track_id=7)
        assert read_track_info(init).track_id == 7

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown track kind"):
            build_init_segment(kind="smellovision", codec="c")

    def test_pssh_embedding(self):
        pssh = build_widevine_pssh([_KID], provider="acme")
        init = build_init_segment(
            kind="video", codec="c", default_kid=_KID, pssh=[pssh]
        )
        boxes = read_pssh_boxes(init)
        assert len(boxes) == 1
        assert boxes[0].system_id == WIDEVINE_SYSTEM_ID

    def test_no_pssh_in_clear_init(self):
        assert read_pssh_boxes(build_init_segment(kind="video", codec="c")) == []

    def test_read_track_info_rejects_garbage(self):
        with pytest.raises((BoxParseError, ValueError)):
            read_track_info(b"not an mp4 at all")


class TestMediaSegment:
    def test_clear_round_trip(self):
        samples = [b"sample-%d" % i * 4 for i in range(3)]
        segment = build_media_segment(1, samples)
        parsed, protected = read_samples(segment)
        assert not protected
        assert [s.data for s in parsed] == samples

    def test_protected_round_trip(self):
        clear = [bytes([i]) * 50 for i in range(4)]
        ivs = iv_sequence(b"t", 4)
        enc = [encrypt_sample(s, _KEY, iv, clear_header=8) for s, iv in zip(clear, ivs)]
        segment = build_media_segment(2, enc)
        parsed, protected = read_samples(segment)
        assert protected
        assert len(parsed) == 4
        assert parsed[0].entry.subsamples[0].clear_bytes == 8
        assert [s.entry.iv for s in parsed] == ivs

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError, match="at least one sample"):
            build_media_segment(1, [])

    def test_mixing_clear_and_protected_rejected(self):
        enc = encrypt_sample(bytes(20), _KEY, bytes(8))
        with pytest.raises(TypeError, match="mix"):
            build_media_segment(1, [enc, b"clear"])
        with pytest.raises(TypeError, match="mix"):
            build_media_segment(1, [b"clear", enc])

    def test_read_samples_rejects_garbage(self):
        with pytest.raises((BoxParseError, ValueError)):
            read_samples(b"nonsense")

    def test_read_samples_rejects_missing_mdat(self):
        from repro.bmff.boxes import Box, serialize_boxes

        blob = serialize_boxes([Box(box_type=b"styp", payload=b"msdh")])
        with pytest.raises(BoxParseError, match="lacks trun or mdat"):
            read_samples(blob)

    @settings(max_examples=20)
    @given(
        samples=st.lists(
            st.binary(min_size=1, max_size=60), min_size=1, max_size=6
        )
    )
    def test_clear_property_round_trip(self, samples):
        parsed, _ = read_samples(build_media_segment(9, samples))
        assert [s.data for s in parsed] == samples


class TestWidevinePsshData:
    def test_round_trip(self):
        data = WidevinePsshData(
            key_ids=[_KID], provider="acme", content_id=b"tt001"
        )
        parsed = WidevinePsshData.parse(data.serialize())
        assert parsed.key_ids == [_KID]
        assert parsed.provider == "acme"
        assert parsed.content_id == b"tt001"
        assert parsed.protection_scheme == "cenc"

    def test_empty_fields(self):
        parsed = WidevinePsshData.parse(WidevinePsshData().serialize())
        assert parsed.key_ids == []
        assert parsed.provider == ""

    def test_multiple_key_ids(self):
        kids = [bytes([i]) * 16 for i in range(5)]
        parsed = WidevinePsshData.parse(WidevinePsshData(key_ids=kids).serialize())
        assert parsed.key_ids == kids

    def test_bad_key_id_rejected(self):
        with pytest.raises(ValueError, match="16 bytes"):
            WidevinePsshData(key_ids=[b"short"]).serialize()

    def test_truncated_tlv_rejected(self):
        blob = WidevinePsshData(key_ids=[_KID]).serialize()
        with pytest.raises(ValueError, match="truncated"):
            WidevinePsshData.parse(blob[:-3])

    def test_unknown_tags_skipped(self):
        import struct

        blob = struct.pack(">BH", 99, 4) + b"junk"
        blob += WidevinePsshData(provider="p").serialize()
        assert WidevinePsshData.parse(blob).provider == "p"

    def test_parse_widevine_pssh_rejects_other_system(self):
        from repro.bmff.boxes import PsshBox
        from repro.bmff.pssh import PLAYREADY_SYSTEM_ID

        box = PsshBox(box_type=b"pssh", system_id=PLAYREADY_SYSTEM_ID)
        with pytest.raises(ValueError, match="not a Widevine"):
            parse_widevine_pssh(box)

    def test_build_widevine_pssh_carries_kids_in_both_layers(self):
        box = build_widevine_pssh([_KID], provider="p", content_id=b"c")
        assert box.key_ids == [_KID]
        assert parse_widevine_pssh(box).key_ids == [_KID]
