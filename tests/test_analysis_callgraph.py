"""Call-graph reachability over the decompiled APK model."""

from __future__ import annotations

from repro.analysis.callgraph import CallGraph, DrmCallSite
from repro.android.packages import Apk, ApkMethod
from repro.ott.registry import ALL_PROFILES, profile_by_name


def fixture_apk() -> Apk:
    """Small app: entry -> Player -> MediaDrm, plus a dead shim."""
    apk = Apk(
        package="com.example.app",
        version="1.0",
        entry_points=("com.example.app.Main.onCreate",),
    )
    apk.add_class(
        "com.example.app.Main",
        methods=(ApkMethod("onCreate", calls=("com.example.app.Player.play",)),),
    )
    apk.add_class(
        "com.example.app.Player",
        methods=(
            ApkMethod(
                "play",
                calls=(
                    "android.media.MediaDrm.openSession",
                    "android.media.MediaDrm.provideKeyResponse",
                ),
            ),
        ),
    )
    # Shipped, never called: the over-approximation the paper measures.
    apk.add_class(
        "com.example.app.legacy.Shim",
        methods=(
            ApkMethod(
                "warmup", calls=("android.media.MediaDrm.getPropertyString",)
            ),
        ),
    )
    return apk


class TestReachability:
    def test_bfs_from_entry_points(self):
        graph = CallGraph.from_apk(fixture_apk())
        reachable = graph.reachable_methods()
        assert "com.example.app.Main.onCreate" in reachable
        assert "com.example.app.Player.play" in reachable
        assert "com.example.app.legacy.Shim.warmup" not in reachable

    def test_dead_methods(self):
        graph = CallGraph.from_apk(fixture_apk())
        assert graph.dead_methods() == ("com.example.app.legacy.Shim.warmup",)

    def test_no_entry_points_means_everything_dead(self):
        apk = fixture_apk()
        apk.entry_points = ()
        graph = CallGraph.from_apk(apk)
        assert graph.reachable_methods() == frozenset()


class TestDrmCallSites:
    def test_sites_classified_live_vs_dead(self):
        apk = fixture_apk()
        graph = CallGraph.from_apk(apk)
        sites = graph.drm_call_sites(apk)
        by_callee = {site.callee: site for site in sites}
        assert by_callee["android.media.MediaDrm.openSession"].reachable
        assert by_callee["android.media.MediaDrm.provideKeyResponse"].reachable
        assert not by_callee["android.media.MediaDrm.getPropertyString"].reachable

    def test_flat_method_refs_are_conservatively_dead(self):
        apk = fixture_apk()
        # A class a real decompiler only string-dumped (no bodies).
        apk.add_class(
            "com.example.app.Obfuscated",
            method_refs=("android.media.MediaCrypto.<init>",),
        )
        graph = CallGraph.from_apk(apk)
        sites = graph.drm_call_sites(apk)
        flat = [s for s in sites if s.caller_class == "com.example.app.Obfuscated"]
        assert len(flat) == 1
        assert not flat[0].reachable
        assert flat[0].caller == "com.example.app.Obfuscated"

    def test_duplicate_refs_deduped(self):
        apk = fixture_apk()
        # Same callee in both the body and the flat view: one site.
        apk.classes[1] = apk.classes[1].__class__(
            name=apk.classes[1].name,
            method_refs=("android.media.MediaDrm.openSession",),
            methods=apk.classes[1].methods,
        )
        graph = CallGraph.from_apk(apk)
        sites = graph.drm_call_sites(apk)
        open_sites = [
            s for s in sites if s.callee == "android.media.MediaDrm.openSession"
        ]
        assert len(open_sites) == 1
        assert open_sites[0].caller_method == "play"

    def test_caller_property(self):
        site = DrmCallSite("com.a.B", "run", "android.media.MediaDrm.x", True)
        assert site.caller == "com.a.B.run"


class TestProfileApks:
    def test_every_profile_ships_dead_drm_code(self):
        """Each OTT model carries a measurably dead DRM call site."""
        for profile in ALL_PROFILES:
            apk = profile.build_apk()
            graph = CallGraph.from_apk(apk)
            dead = [s for s in graph.drm_call_sites(apk) if not s.reachable]
            assert dead, profile.name
            assert any(
                "OldPlayerShim" in site.caller_class for site in dead
            ), profile.name

    def test_netflix_live_sites_cover_the_session_lifecycle(self):
        apk = profile_by_name("Netflix").build_apk()
        graph = CallGraph.from_apk(apk)
        live = {
            s.callee for s in graph.drm_call_sites(apk) if s.reachable
        }
        assert "android.media.MediaDrm.openSession" in live
        assert "android.media.MediaDrm.closeSession" in live
        assert "android.media.MediaDrm.provideKeyResponse" in live
        assert "android.media.MediaCrypto.<init>" in live
