"""A whole service packaged with 'cbcs' — playback and attack parity.

The study's services use 'cenc' (the DASH norm), but the substrate must
treat the scheme as a packaging detail: the same app plays it and the
same key-ladder attack recovers it.
"""

import pytest

from repro.android.device import nexus_5, pixel_6
from repro.bmff.builder import read_track_info
from repro.core.keyladder_attack import KeyLadderAttack
from repro.core.media_recovery import MediaRecoveryPipeline
from repro.dash.packager import TrackCrypto
from repro.license_server.policy import AudioProtection
from repro.license_server.provisioning import KeyboxAuthority
from repro.net.network import Network
from repro.ott.app import OttApp
from repro.ott.backend import OttBackend
from repro.ott.profile import OttProfile


@pytest.fixture
def cbcs_world():
    """A backend whose packaged assets use the cbcs scheme."""
    profile = OttProfile(
        name="CbcsFlix",
        service="cbcsflix",
        package="com.cbcsflix.app",
        installs_millions=1,
        audio_protection=AudioProtection.SHARED_KEY,
        enforces_revocation=False,
    )
    network = Network()
    authority = KeyboxAuthority()
    backend = OttBackend(profile, network, authority)

    # Re-package the catalog under cbcs (same keys, different scheme).
    from repro.dash.packager import Packager
    from repro.license_server.policy import assign_track_crypto

    packager = Packager(profile.service, backend.cdn, provider=profile.name)
    for title in backend.catalog:
        assignment = assign_track_crypto(backend.policy, title)
        cbcs_assignment = {
            rep_id: (
                TrackCrypto(
                    key_id=crypto.key_id, key=crypto.key, scheme="cbcs"
                )
                if crypto.protected
                else crypto
            )
            for rep_id, crypto in assignment.items()
        }
        packaged = packager.package(
            title,
            cbcs_assignment,
            base_path=f"/{profile.service}/cbcs/{title.title_id}",
        )
        backend.license_server.register_packaged_title(packaged, title)
        backend.packaged[title.title_id] = packaged
    return profile, network, authority, backend


class TestCbcsPackaging:
    def test_track_info_reports_scheme(self, cbcs_world):
        profile, network, authority, backend = cbcs_world
        packaged = backend.packaged[next(iter(backend.catalog)).title_id]
        init_url, _ = packaged.asset_urls["v540"]
        from repro.net.network import HttpClient

        init = HttpClient(network).get(init_url).body
        info = read_track_info(init)
        assert info.scheme == "cbcs"
        assert info.iv_size == 16

    def test_crypto_forces_16_byte_iv(self):
        crypto = TrackCrypto(key_id=bytes(16), key=bytes(16), scheme="cbcs")
        assert crypto.iv_size == 16

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unsupported protection scheme"):
            TrackCrypto(key_id=bytes(16), key=bytes(16), scheme="cbc1")


class TestCbcsPlayback:
    def test_l1_playback(self, cbcs_world):
        profile, network, authority, backend = cbcs_world
        device = pixel_6(network, authority)
        device.rooted = True
        result = OttApp(profile, device, backend).play()
        assert result.ok
        assert result.video_height == 1080

    def test_l3_playback(self, cbcs_world):
        profile, network, authority, backend = cbcs_world
        device = nexus_5(network, authority)
        device.rooted = True
        result = OttApp(profile, device, backend).play()
        assert result.ok
        assert result.video_height == 540


class TestCbcsAttack:
    def test_key_ladder_scheme_agnostic(self, cbcs_world):
        """The §IV-D attack does not care how the media was encrypted:
        keys are keys."""
        profile, network, authority, backend = cbcs_world
        device = nexus_5(network, authority)
        device.rooted = True
        app = OttApp(profile, device, backend)
        attack = KeyLadderAttack(device).run(app)
        assert attack.succeeded

        title_id = next(iter(backend.catalog)).title_id
        packaged = backend.packaged[title_id]
        mpd_url = f"https://{profile.cdn_host}{packaged.mpd_path}"
        recovered = MediaRecoveryPipeline(network).recover(
            profile.service, mpd_url, attack.content_keys
        )
        assert recovered.succeeded
        assert recovered.best_video_height == 540
