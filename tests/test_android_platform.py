"""Android platform: processes, devices, SafetyNet, APK model, traces."""

import pytest

from repro.android.device import DeviceSpec, nexus_5, pixel_6
from repro.android.packages import Apk, decompile
from repro.android.process import MemoryRegion, Process
from repro.android.safetynet import attest
from repro.android.trace import FlowTrace
from repro.license_server.provisioning import KeyboxAuthority
from repro.net.network import Network


@pytest.fixture
def net_auth():
    return Network(), KeyboxAuthority()


class TestProcess:
    def test_pids_unique(self):
        assert Process("a").pid != Process("b").pid

    def test_map_region(self):
        process = Process("p")
        region = process.map_region("mod:.data", 64)
        assert len(region.data) == 64
        assert region in process.regions

    def test_unmap_region(self):
        process = Process("p")
        region = process.map_region("r", 16)
        process.unmap_region(region)
        assert process.regions == []

    def test_region_write_read(self):
        region = MemoryRegion(name="r", data=bytearray(16))
        region.write(4, b"abcd")
        assert region.read(4, 4) == b"abcd"

    def test_region_write_bounds(self):
        region = MemoryRegion(name="r", data=bytearray(8))
        with pytest.raises(ValueError, match="outside region"):
            region.write(6, b"abcd")
        with pytest.raises(ValueError, match="outside region"):
            region.write(-1, b"a")

    def test_unreadable_region(self):
        region = MemoryRegion(name="r", data=bytearray(8), readable=False)
        with pytest.raises(PermissionError):
            region.read()
        process = Process("p")
        process.regions.append(region)
        assert process.readable_regions() == []

    def test_modules(self):
        process = Process("p")
        implementation = object()
        process.load_module("libx.so", implementation)
        assert process.module("libx.so") is implementation
        assert process.has_module("libx.so")
        with pytest.raises(ValueError, match="already loaded"):
            process.load_module("libx.so", object())
        with pytest.raises(LookupError, match="not loaded"):
            process.module("liby.so")


class TestDevice:
    def test_nexus5_profile(self, net_auth):
        device = nexus_5(*net_auth)
        assert device.spec.model == "Nexus 5"
        assert device.spec.discontinued
        assert not device.spec.has_tee
        assert device.widevine_security_level == "L3"
        assert device.spec.cdm_version == "3.1.0"
        # Android 6 → mediaserver, not mediadrmserver.
        assert device.drm_process.name == "mediaserver"

    def test_pixel6_profile(self, net_auth):
        device = pixel_6(*net_auth)
        assert not device.spec.discontinued
        assert device.widevine_security_level == "L1"
        assert device.drm_process.name == "mediadrmserver"

    def test_keybox_registered_with_authority(self, net_auth):
        net, authority = net_auth
        device = pixel_6(net, authority)
        assert authority.knows(device.keybox.device_id)

    def test_spawn_app_process(self, net_auth):
        device = pixel_6(*net_auth)
        process = device.spawn_app_process("com.app")
        assert device.find_process("com.app") is process
        with pytest.raises(LookupError):
            device.find_process("com.missing")

    def test_l1_modules(self, net_auth):
        device = pixel_6(*net_auth)
        assert device.drm_process.has_module("liboemcrypto.so")
        assert device.drm_process.has_module("libwvdrmengine.so")

    def test_l3_modules(self, net_auth):
        device = nexus_5(*net_auth)
        assert not device.drm_process.has_module("liboemcrypto.so")

    def test_discontinued_spec_boundary(self):
        old = DeviceSpec("X", "9", 28, "2019-12", True, "14.0.0")
        new = DeviceSpec("Y", "10", 29, "2020-01", True, "14.0.0")
        assert old.discontinued
        assert not new.discontinued


class TestSafetyNet:
    def test_clean_device_passes(self, net_auth):
        device = pixel_6(*net_auth)
        device.spawn_app_process("com.app")
        result = attest(device, "com.app")
        assert result.passed

    def test_rooted_device_fails_cts_only(self, net_auth):
        device = pixel_6(*net_auth)
        device.rooted = True
        device.spawn_app_process("com.app")
        result = attest(device, "com.app")
        assert result.basic_integrity
        assert not result.cts_profile_match
        assert not result.passed

    def test_instrumented_app_fails_basic(self, net_auth):
        device = pixel_6(*net_auth)
        process = device.spawn_app_process("com.app")
        process.attached_instruments.append("frida")
        assert not attest(device, "com.app").basic_integrity

    def test_instrumented_drm_process_invisible_to_app(self, net_auth):
        """§V-B: hooks on mediadrmserver are invisible to SafetyNet."""
        device = pixel_6(*net_auth)
        device.spawn_app_process("com.app")
        device.drm_process.attached_instruments.append("frida")
        assert attest(device, "com.app").basic_integrity


class TestApk:
    def test_decompile_returns_classes(self):
        apk = Apk(package="com.x", version="1")
        apk.add_class("com.x.Main", ("android.app.Activity.onCreate",))
        assert len(decompile(apk)) == 1

    def test_class_fields(self):
        apk = Apk(package="com.x", version="1")
        apk.add_class("com.x.Drm", ("android.media.MediaDrm.openSession",))
        cls = decompile(apk)[0]
        assert cls.name == "com.x.Drm"
        assert "android.media.MediaDrm.openSession" in cls.method_refs


class TestFlowTrace:
    def test_record_and_render(self):
        trace = FlowTrace()
        trace.record("A", "B", "hello()")
        assert trace.labels() == [("A", "B", "hello()")]
        assert "A -> B: hello()" in trace.render()

    def test_disabled_trace_records_nothing(self):
        trace = FlowTrace(enabled=False)
        trace.record("A", "B", "x")
        assert trace.events == []

    def test_clear(self):
        trace = FlowTrace()
        trace.record("A", "B", "x")
        trace.clear()
        assert trace.events == []
