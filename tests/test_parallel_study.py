"""Parallel study runner: determinism and shared-world thread safety.

The headline contract is byte-identity: fanning the per-app pipelines
out over worker threads must produce exactly the artifact the
sequential reference run produces. The remaining tests hammer the two
genuinely shared registries (:class:`~repro.net.network.Network` and
:class:`~repro.license_server.provisioning.KeyboxAuthority`) from many
threads at once.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.parallel import DeviceSession, ParallelStudyRunner
from repro.core.study import WideLeakStudy
from repro.license_server.provisioning import KeyboxAuthority
from repro.net.network import Network
from repro.net.server import VirtualServer
from repro.ott.registry import ALL_PROFILES
from repro.widevine.keybox import issue_keybox


# --- determinism: parallel == sequential, byte for byte -----------------------


def test_parallel_study_matches_sequential_byte_identical():
    """jobs=4 and the sequential reference emit identical artifacts."""
    sequential = WideLeakStudy.with_default_apps().run()
    parallel = ParallelStudyRunner(
        WideLeakStudy.with_default_apps(), jobs=4
    ).run()
    assert parallel.to_json() == sequential.to_json()
    assert parallel.table.render() == sequential.table.render()
    assert parallel.table.matches_paper


def test_parallel_attacks_match_sequential():
    """The §IV-D sweep recovers the same keys and media either way."""
    sequential = WideLeakStudy.with_default_apps().run_all_attacks()
    parallel = ParallelStudyRunner(
        WideLeakStudy.with_default_apps(), jobs=4
    ).run_all_attacks()
    assert set(parallel) == set(sequential)
    for name, seq in sequential.items():
        par = parallel[name]
        assert par.attack.keybox_recovered == seq.attack.keybox_recovered
        assert par.attack.rsa_recovered == seq.attack.rsa_recovered
        assert par.attack.content_keys == seq.attack.content_keys
        if seq.recovered is None:
            assert par.recovered is None
        else:
            assert par.recovered is not None
            assert par.recovered.succeeded == seq.recovered.succeeded
            assert (
                par.recovered.best_video_height
                == seq.recovered.best_video_height
            )


def test_jobs_one_delegates_to_sequential_run():
    runner = ParallelStudyRunner(WideLeakStudy.with_default_apps(), jobs=1)
    result = runner.run()
    assert len(result.table.rows) == len(ALL_PROFILES)
    assert result.table.matches_paper


def test_device_session_mirrors_shared_serials():
    """Per-worker sessions boot the same device identities as the
    study's shared pair, so the keybox authority resolves identically."""
    study = WideLeakStudy.with_default_apps()
    session = DeviceSession(study)
    assert session.l1_device.serial == study.l1_device.serial
    assert session.legacy_device.serial == study.legacy_device.serial
    assert session.l1_device.rooted and session.legacy_device.rooted


def test_runner_rejects_bad_arguments():
    with pytest.raises(ValueError):
        ParallelStudyRunner(jobs=0)
    with pytest.raises(ValueError):
        ParallelStudyRunner(
            WideLeakStudy.with_default_apps(), profiles=ALL_PROFILES[:1]
        )


# --- thread safety of the shared world ----------------------------------------


def test_network_concurrent_register_and_lookup():
    """Registration from many threads never corrupts the registry or
    lets a lookup observe a half-registered host."""
    network = Network()
    hosts = [f"host-{i}.example" for i in range(64)]

    def register_then_resolve(hostname: str) -> str:
        network.register(VirtualServer(hostname))
        # Resolve every host registered so far, from every thread.
        return network.server_for(hostname).hostname

    with ThreadPoolExecutor(max_workers=16) as pool:
        resolved = list(pool.map(register_then_resolve, hosts))

    assert resolved == hosts
    for hostname in hosts:
        assert network.server_for(hostname).hostname == hostname


def test_network_duplicate_registration_raced():
    """Exactly one of N racing registrations for the same host wins."""
    network = Network()
    server = VirtualServer("raced.example")

    def attempt(_: int) -> bool:
        try:
            network.register(VirtualServer("raced.example"))
            return True
        except ValueError:
            return False

    network.register(server)
    with ThreadPoolExecutor(max_workers=8) as pool:
        wins = list(pool.map(attempt, range(32)))
    assert not any(wins)
    assert network.server_for("raced.example") is server


def test_keybox_authority_concurrent_provisioning():
    """Concurrent registration + lookup across 64 distinct devices, plus
    re-registration of the same serial (the parallel runner's same-serial
    device sessions), never loses or mixes up an entry."""
    authority = KeyboxAuthority()
    serials = [f"DEV-{i:03d}" for i in range(64)]
    keyboxes = {serial: issue_keybox(serial) for serial in serials}

    def provision(serial: str) -> bytes:
        keybox = keyboxes[serial]
        level = "L1" if int(serial[4:]) % 2 == 0 else "L3"
        authority.register(keybox, security_level=level)
        # Re-register, as a second worker booting the same serial would.
        authority.register(keybox, security_level=level)
        assert authority.knows(keybox.device_id)
        return authority.device_key_for(keybox.device_id)

    with ThreadPoolExecutor(max_workers=16) as pool:
        device_keys = list(pool.map(provision, serials))

    for serial, device_key in zip(serials, device_keys):
        keybox = keyboxes[serial]
        assert device_key == keybox.device_key
        expected_level = "L1" if int(serial[4:]) % 2 == 0 else "L3"
        assert authority.attested_level_for(keybox.device_id) == expected_level


def test_keybox_authority_unknown_device_still_raises():
    authority = KeyboxAuthority()
    with pytest.raises(LookupError):
        authority.device_key_for(bytes(32))
    with pytest.raises(LookupError):
        authority.attested_level_for(bytes(32))


# --- CLI wiring ---------------------------------------------------------------


def test_cli_table1_accepts_jobs(capsys):
    from repro.cli import main

    assert main(["table1", "--jobs", "4"]) == 0
    out = capsys.readouterr().out
    assert "Cell-for-cell match" in out
