"""The observability bus: span nesting, ordering determinism, flow
fan-out, merging, and the zero-overhead disabled mode."""

from __future__ import annotations

import threading

import pytest

from repro.android.trace import FlowTrace
from repro.obs.bus import NULL_BUS, ObservabilityBus
from repro.obs.span import NULL_SPAN, structural_tree


class FakeClock:
    """Deterministic monotonic nanosecond clock for tests."""

    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        self.now += 1000
        return self.now


@pytest.fixture
def bus() -> ObservabilityBus:
    return ObservabilityBus(clock=FakeClock())


class TestSpanNesting:
    def test_children_link_to_the_enclosing_span(self, bus):
        with bus.span("study.app", app="Netflix") as root:
            with bus.span("license.exchange") as child:
                with bus.span("http.request") as grandchild:
                    pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id

    def test_current_span_tracks_the_stack(self, bus):
        assert bus.current_span() is None
        with bus.span("outer") as outer:
            assert bus.current_span() is outer
            with bus.span("inner") as inner:
                assert bus.current_span() is inner
            assert bus.current_span() is outer
        assert bus.current_span() is None

    def test_siblings_share_a_parent(self, bus):
        with bus.span("root") as root:
            with bus.span("a") as a:
                pass
            with bus.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert bus.trees() == [("root", (), (("a", (), ()), ("b", (), ())))]

    def test_exception_unwinds_and_still_closes(self, bus):
        with pytest.raises(RuntimeError):
            with bus.span("outer"):
                with bus.span("inner"):
                    raise RuntimeError("boom")
        assert bus.current_span() is None
        assert all(s.end_ns is not None for s in bus.spans)

    def test_root_span_track_comes_from_app_attr(self, bus):
        with bus.span("study.app", app="Hulu"):
            with bus.span("http.request") as child:
                pass
        assert bus.spans[0].track == "Hulu"
        assert child.track == "Hulu"

    def test_span_events_attach_to_their_span(self, bus):
        with bus.span("playback") as span:
            span.event("frame", n=1)
            bus.event("on-current-span")
        assert [p.name for p in bus.spans[0].points] == [
            "frame",
            "on-current-span",
        ]

    def test_root_event_without_open_span(self, bus):
        bus.event("orphan", reason="no span open")
        assert [e.name for e in bus.events] == ["orphan"]


class TestOrderingDeterminism:
    def _run_pipeline(self, bus):
        with bus.span("study.app", app="Netflix"):
            with bus.span("manifest.fetch") as m:
                m.event("dash.select_video", rep="v1080")
            with bus.span("license.exchange"):
                bus.count("license.issued")
            bus.observe("frames", 24)

    def test_identical_runs_record_identically(self):
        first = ObservabilityBus(clock=FakeClock())
        second = ObservabilityBus(clock=FakeClock())
        self._run_pipeline(first)
        self._run_pipeline(second)
        assert [s.to_dict() for s in first.spans] == [
            s.to_dict() for s in second.spans
        ]
        assert first.metrics.snapshot() == second.metrics.snapshot()

    def test_structure_is_clock_independent(self):
        wall = ObservabilityBus()  # real perf_counter_ns timestamps
        fake = ObservabilityBus(clock=FakeClock())
        self._run_pipeline(wall)
        self._run_pipeline(fake)
        assert wall.trees() == fake.trees()
        assert wall.span_names() == fake.span_names()

    def test_span_ids_are_dense_and_start_ordered(self, bus):
        self._run_pipeline(bus)
        assert [s.span_id for s in bus.spans] == [1, 2, 3]
        starts = [s.start_ns for s in bus.spans]
        assert starts == sorted(starts)


class TestFlowArrows:
    def test_flow_fans_out_to_consumers(self, bus):
        seen: list[tuple[str, str, str]] = []
        bus.add_flow_consumer(lambda s, t, label: seen.append((s, t, label)))
        bus.flow("Application", "CDM", "Decrypt()")
        assert seen == [("Application", "CDM", "Decrypt()")]
        assert bus.metrics.counters()["flow.arrows"] == 1

    def test_disabled_bus_still_delivers_flows(self):
        """The pre-bus FlowTrace contract: Figure 1 regeneration works
        with observation off."""
        disabled = ObservabilityBus(enabled=False)
        trace = FlowTrace()
        disabled.add_flow_consumer(trace.record)
        disabled.flow("Application", "CDM", "Decrypt()")
        assert trace.labels() == [("Application", "CDM", "Decrypt()")]
        assert disabled.events == []
        assert disabled.metrics.counters() == {}


class TestDisabledBusIsFree:
    def test_span_returns_the_shared_null_span(self):
        disabled = ObservabilityBus(enabled=False)
        assert disabled.span("anything", app="x") is NULL_SPAN
        assert NULL_BUS.span("anything") is NULL_SPAN

    def test_null_span_handle_is_inert(self):
        with NULL_BUS.span("x") as span:
            span.set(a=1).event("e", b=2)
        assert NULL_BUS.spans == []

    def test_nothing_is_recorded(self):
        disabled = ObservabilityBus(enabled=False)
        with disabled.span("s"):
            disabled.event("e")
            disabled.count("c")
            disabled.observe("h", 1.0)
        assert disabled.spans == []
        assert disabled.events == []
        assert disabled.metrics.snapshot() == {
            "counters": {},
            "histograms": {},
        }


class TestMergeAndLifecycle:
    def test_absorb_remaps_ids_and_keeps_trees(self):
        study = ObservabilityBus(clock=FakeClock())
        with study.span("study.setup"):
            pass
        worker_trees = []
        workers = []
        for app in ("Netflix", "Hulu"):
            worker = ObservabilityBus(clock=FakeClock())
            with worker.span("study.app", app=app):
                with worker.span("license.exchange"):
                    pass
            worker_trees.extend(worker.trees())
            workers.append(worker)
        for worker in workers:
            study.absorb(worker)
        assert study.trees() == [("study.setup", (), ())] + worker_trees
        ids = [s.span_id for s in study.spans]
        assert len(ids) == len(set(ids)) == 5
        assert study.metrics.histograms()["span.license.exchange"].count == 2
        study.absorb(study)  # self-absorb is a no-op
        assert len(study.spans) == 5

    def test_clear_drops_data_but_keeps_consumers(self, bus):
        seen: list[tuple[str, str, str]] = []
        bus.add_flow_consumer(lambda s, t, label: seen.append((s, t, label)))
        with bus.span("s"):
            bus.flow("a", "b", "c")
        bus.clear()
        assert bus.spans == []
        assert bus.events == []
        bus.flow("d", "e", "f")
        assert seen == [("a", "b", "c"), ("d", "e", "f")]


class TestFlowTraceLocking:
    def test_concurrent_records_are_all_kept(self):
        trace = FlowTrace()
        barrier = threading.Barrier(8)

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(100):
                trace.record(f"w{worker}", "sink", f"msg{i}")

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trace.labels()) == 800
        trace.clear()
        assert trace.labels() == []
