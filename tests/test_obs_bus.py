"""The observability bus: span nesting, ordering determinism, flow
fan-out, merging, and the zero-overhead disabled mode."""

from __future__ import annotations

import threading

import pytest

from repro.android.trace import FlowTrace
from repro.obs.bus import NULL_BUS, ObservabilityBus
from repro.obs.span import NULL_SPAN, structural_tree


class FakeClock:
    """Deterministic monotonic nanosecond clock for tests."""

    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        self.now += 1000
        return self.now


@pytest.fixture
def bus() -> ObservabilityBus:
    return ObservabilityBus(clock=FakeClock())


class TestSpanNesting:
    def test_children_link_to_the_enclosing_span(self, bus):
        with bus.span("study.app", app="Netflix") as root:
            with bus.span("license.exchange") as child:
                with bus.span("http.request") as grandchild:
                    pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id

    def test_current_span_tracks_the_stack(self, bus):
        assert bus.current_span() is None
        with bus.span("outer") as outer:
            assert bus.current_span() is outer
            with bus.span("inner") as inner:
                assert bus.current_span() is inner
            assert bus.current_span() is outer
        assert bus.current_span() is None

    def test_siblings_share_a_parent(self, bus):
        with bus.span("root") as root:
            with bus.span("a") as a:
                pass
            with bus.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert bus.trees() == [("root", (), (("a", (), ()), ("b", (), ())))]

    def test_exception_unwinds_and_still_closes(self, bus):
        with pytest.raises(RuntimeError):
            with bus.span("outer"):
                with bus.span("inner"):
                    raise RuntimeError("boom")
        assert bus.current_span() is None
        assert all(s.end_ns is not None for s in bus.spans)

    def test_root_span_track_comes_from_app_attr(self, bus):
        with bus.span("study.app", app="Hulu"):
            with bus.span("http.request") as child:
                pass
        assert bus.spans[0].track == "Hulu"
        assert child.track == "Hulu"

    def test_span_events_attach_to_their_span(self, bus):
        with bus.span("playback") as span:
            span.event("frame", n=1)
            bus.event("on-current-span")
        assert [p.name for p in bus.spans[0].points] == [
            "frame",
            "on-current-span",
        ]

    def test_root_event_without_open_span(self, bus):
        bus.event("orphan", reason="no span open")
        assert [e.name for e in bus.events] == ["orphan"]


class TestOrderingDeterminism:
    def _run_pipeline(self, bus):
        with bus.span("study.app", app="Netflix"):
            with bus.span("manifest.fetch") as m:
                m.event("dash.select_video", rep="v1080")
            with bus.span("license.exchange"):
                bus.count("license.issued")
            bus.observe("frames", 24)

    def test_identical_runs_record_identically(self):
        first = ObservabilityBus(clock=FakeClock())
        second = ObservabilityBus(clock=FakeClock())
        self._run_pipeline(first)
        self._run_pipeline(second)
        assert [s.to_dict() for s in first.spans] == [
            s.to_dict() for s in second.spans
        ]
        assert first.metrics.snapshot() == second.metrics.snapshot()

    def test_structure_is_clock_independent(self):
        wall = ObservabilityBus()  # real perf_counter_ns timestamps
        fake = ObservabilityBus(clock=FakeClock())
        self._run_pipeline(wall)
        self._run_pipeline(fake)
        assert wall.trees() == fake.trees()
        assert wall.span_names() == fake.span_names()

    def test_span_ids_are_dense_and_start_ordered(self, bus):
        self._run_pipeline(bus)
        assert [s.span_id for s in bus.spans] == [1, 2, 3]
        starts = [s.start_ns for s in bus.spans]
        assert starts == sorted(starts)


class TestFlowArrows:
    def test_flow_fans_out_to_consumers(self, bus):
        seen: list[tuple[str, str, str]] = []
        bus.add_flow_consumer(lambda s, t, label: seen.append((s, t, label)))
        bus.flow("Application", "CDM", "Decrypt()")
        assert seen == [("Application", "CDM", "Decrypt()")]
        assert bus.metrics.counters()["flow.arrows"] == 1

    def test_disabled_bus_still_delivers_flows(self):
        """The pre-bus FlowTrace contract: Figure 1 regeneration works
        with observation off."""
        disabled = ObservabilityBus(enabled=False)
        trace = FlowTrace()
        disabled.add_flow_consumer(trace.record)
        disabled.flow("Application", "CDM", "Decrypt()")
        assert trace.labels() == [("Application", "CDM", "Decrypt()")]
        assert disabled.events == []
        assert disabled.metrics.counters() == {}


class TestDisabledBusIsFree:
    def test_span_returns_the_shared_null_span(self):
        disabled = ObservabilityBus(enabled=False)
        assert disabled.span("anything", app="x") is NULL_SPAN
        assert NULL_BUS.span("anything") is NULL_SPAN

    def test_null_span_handle_is_inert(self):
        with NULL_BUS.span("x") as span:
            span.set(a=1).event("e", b=2)
        assert NULL_BUS.spans == []

    def test_nothing_is_recorded(self):
        disabled = ObservabilityBus(enabled=False)
        with disabled.span("s"):
            disabled.event("e")
            disabled.count("c")
            disabled.observe("h", 1.0)
        assert disabled.spans == []
        assert disabled.events == []
        assert disabled.metrics.snapshot() == {
            "counters": {},
            "histograms": {},
        }


class TestMergeAndLifecycle:
    def test_absorb_remaps_ids_and_keeps_trees(self):
        study = ObservabilityBus(clock=FakeClock())
        with study.span("study.setup"):
            pass
        worker_trees = []
        workers = []
        for app in ("Netflix", "Hulu"):
            worker = ObservabilityBus(clock=FakeClock())
            with worker.span("study.app", app=app):
                with worker.span("license.exchange"):
                    pass
            worker_trees.extend(worker.trees())
            workers.append(worker)
        for worker in workers:
            study.absorb(worker)
        assert study.trees() == [("study.setup", (), ())] + worker_trees
        ids = [s.span_id for s in study.spans]
        assert len(ids) == len(set(ids)) == 5
        assert study.metrics.histograms()["span.license.exchange"].count == 2
        study.absorb(study)  # self-absorb is a no-op
        assert len(study.spans) == 5

    def test_clear_drops_data_but_keeps_consumers(self, bus):
        seen: list[tuple[str, str, str]] = []
        bus.add_flow_consumer(lambda s, t, label: seen.append((s, t, label)))
        with bus.span("s"):
            bus.flow("a", "b", "c")
        bus.clear()
        assert bus.spans == []
        assert bus.events == []
        bus.flow("d", "e", "f")
        assert seen == [("a", "b", "c"), ("d", "e", "f")]


class TestAbsorbEdgeCases:
    def test_absorbing_an_empty_worker_bus_is_harmless(self):
        study = ObservabilityBus(clock=FakeClock())
        with study.span("study.setup"):
            pass
        before_trees = study.trees()
        before_metrics = study.metrics.snapshot()
        study.absorb(ObservabilityBus(clock=FakeClock()))
        assert study.trees() == before_trees
        assert study.metrics.snapshot() == before_metrics
        assert study.sampling_snapshot()["recorded_spans"] == 1

    def test_absorbing_a_disabled_worker_bus_is_harmless(self):
        study = ObservabilityBus(clock=FakeClock())
        with study.span("study.setup"):
            study.count("worlds.built")
        disabled = ObservabilityBus(enabled=False)
        with disabled.span("invisible"):
            disabled.count("never")
        study.absorb(disabled)
        assert study.span_names() == ["study.setup"]
        assert study.metrics.counters() == {"worlds.built": 1}
        # The id space stays intact for the next real worker merge.
        with study.span("study.next"):
            pass
        assert [s.span_id for s in study.spans] == [1, 2]

    def test_absorb_shifts_exemplars_with_the_span_ids(self):
        study = ObservabilityBus(clock=FakeClock())
        with study.span("study.setup"):
            pass
        worker = ObservabilityBus(clock=FakeClock())
        with worker.span("study.app", app="Hulu"):
            with worker.span("license.exchange"):
                pass
        study.absorb(worker)
        recorded_ids = {s.span_id for s in study.spans}
        for stat in study.metrics.histograms().values():
            for _, span_id in stat.exemplars.values():
                assert span_id in recorded_ids


class TestHistogramPercentiles:
    def test_percentiles_are_ordered_and_bounded(self):
        from repro.obs.metrics import HistogramStat

        stat = HistogramStat()
        for value in (1, 2, 3, 5, 8, 13, 100, 1000):
            stat.observe(value)
        p50, p95, p99 = (
            stat.percentile(50),
            stat.percentile(95),
            stat.percentile(99),
        )
        assert stat.minimum <= p50 <= p95 <= p99 <= stat.maximum
        assert p50 < 100  # half the stream sits at or below 5

    def test_merge_is_exact_and_order_independent(self):
        from repro.obs.metrics import HistogramStat

        def filled(values, base_id):
            stat = HistogramStat()
            for offset, value in enumerate(values):
                stat.observe(value, exemplar=base_id + offset)
            return stat

        left_values, right_values = [1, 50, 900, 3], [7, 7, 2048]
        ab = filled(left_values, 10)
        ab.merge(filled(right_values, 20))
        ba = filled(right_values, 20)
        ba.merge(filled(left_values, 10))
        assert ab.to_dict() == ba.to_dict()
        assert ab.buckets == ba.buckets
        assert ab.exemplars == ba.exemplars
        for q in (50, 95, 99):
            assert ab.percentile(q) == ba.percentile(q)

    def test_exemplar_tracks_the_bucket_maximum(self):
        from repro.obs.metrics import HistogramStat

        stat = HistogramStat()
        stat.observe(1000, exemplar=4)
        stat.observe(1500, exemplar=9)  # same bucket (1024, 2048]... no:
        # 1000 -> bucket (512, 1024], 1500 -> (1024, 2048]; the overall
        # max exemplar is the highest bucket's.
        assert stat.max_exemplar() == (1500, 9)
        stat.observe(1600, exemplar=2)
        assert stat.max_exemplar() == (1600, 2)

    def test_fixed_bucket_boundaries(self):
        from repro.obs.metrics import bucket_bounds, bucket_index

        assert bucket_index(0.5) == 0
        assert bucket_index(1) == 0
        assert bucket_index(2) == 1
        assert bucket_index(3) == 2
        assert bucket_index(1024) == 10
        assert bucket_index(1025) == 11
        assert bucket_bounds(10) == (512.0, 1024.0)


class TestFlowTraceLocking:
    def test_concurrent_records_are_all_kept(self):
        trace = FlowTrace()
        barrier = threading.Barrier(8)

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(100):
                trace.record(f"w{worker}", "sink", f"msg{i}")

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trace.labels()) == 800
        trace.clear()
        assert trace.labels() == []
