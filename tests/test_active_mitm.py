"""Active MITM: with TLS fully broken, the DRM protocol's own
cryptography is the last line — and it holds."""

import json

import pytest

from repro.android.device import pixel_6
from repro.core.monitor import bypass_app_protections
from repro.license_server.policy import AudioProtection
from repro.license_server.provisioning import KeyboxAuthority
from repro.net.http import HttpResponse
from repro.net.network import Network
from repro.net.proxy import InterceptingProxy
from repro.ott.app import OttApp
from repro.ott.backend import OttBackend
from repro.ott.profile import OttProfile


@pytest.fixture
def mitm_world():
    profile = OttProfile(
        name="MitmFlix",
        service="mitmflix",
        package="com.mitmflix.app",
        installs_millions=1,
        audio_protection=AudioProtection.SHARED_KEY,
        enforces_revocation=False,
    )
    network = Network()
    authority = KeyboxAuthority()
    backend = OttBackend(profile, network, authority)
    device = pixel_6(network, authority)
    device.rooted = True
    app = OttApp(profile, device, backend)
    proxy = InterceptingProxy(network)
    device.trust_store.add_issuer(InterceptingProxy.CA_NAME)
    bypass_app_protections(app)
    app.http.set_proxy(proxy)
    return profile, app, proxy


class TestActiveMitm:
    def test_passive_proxy_playback_unaffected(self, mitm_world):
        __, app, proxy = mitm_world
        assert app.play().ok
        assert proxy.flows

    def test_tampered_license_rejected_by_cdm(self, mitm_world):
        profile, app, proxy = mitm_world

        def corrupt_license(request, response):
            if request.parsed_url.path == "/license" and response.ok:
                message = json.loads(response.body.decode())
                message["keys"][0]["wrapped_key"] = "ab" * 32
                return HttpResponse(
                    status=200, body=json.dumps(message).encode()
                )
            return response

        proxy.response_hook = corrupt_license
        result = app.play()
        assert not result.ok
        assert "MAC mismatch" in result.error

    def test_mitm_cannot_inject_own_keys(self, mitm_world):
        """Key substitution: the attacker re-wraps different keys but
        cannot forge the HMAC without the session key."""
        profile, app, proxy = mitm_world

        def substitute_keys(request, response):
            if request.parsed_url.path == "/license" and response.ok:
                message = json.loads(response.body.decode())
                for entry in message["keys"]:
                    entry["wrapped_key"] = "00" * 32
                    entry["iv"] = "00" * 16
                return HttpResponse(
                    status=200, body=json.dumps(message).encode()
                )
            return response

        proxy.response_hook = substitute_keys
        result = app.play()
        assert not result.ok

    def test_tampered_segment_yields_invalid_frames(self, mitm_world):
        profile, app, proxy = mitm_world

        def corrupt_segments(request, response):
            if request.parsed_url.path.endswith(".m4s") and response.ok:
                body = bytearray(response.body)
                body[-10] ^= 0xFF
                return HttpResponse(status=200, body=bytes(body))
            return response

        proxy.response_hook = corrupt_segments
        result = app.play()
        assert not result.ok
        assert any(t.frames_valid < t.frames_total for t in result.tracks)

    def test_tampered_provisioning_rejected(self, mitm_world):
        profile, app, proxy = mitm_world

        def corrupt_provisioning(request, response):
            if request.parsed_url.path == "/provision" and response.ok:
                message = json.loads(response.body.decode())
                message["wrapped_rsa_key"] = "cd" * 64
                return HttpResponse(
                    status=200, body=json.dumps(message).encode()
                )
            return response

        proxy.response_hook = corrupt_provisioning
        result = app.play()
        assert not result.ok

    def test_provisioning_response_replay_rejected(self, mitm_world):
        """Each provisioning response is bound to the request nonce:
        replaying an old capture against a new request fails."""
        profile, app, proxy = mitm_world
        captured: dict[str, bytes] = {}

        def capture(request, response):
            if request.parsed_url.path == "/provision" and response.ok:
                captured["provision"] = response.body
            return response

        proxy.response_hook = capture
        assert app.play().ok
        assert "provision" in captured

        # A second device requests provisioning; the MITM replays the
        # captured response.
        from repro.android.mediadrm import DeniedByServerException, MediaDrm
        from repro.bmff.pssh import WIDEVINE_SYSTEM_ID

        device2 = pixel_6(app.device.network, KeyboxAuthority(), serial="P6-RPL")
        # Register device2's keybox with the real authority so the world
        # stays coherent; the replayed blob is still for device 1.
        drm2 = MediaDrm(WIDEVINE_SYSTEM_ID, device2, origin=profile.package)
        drm2.get_provision_request()
        with pytest.raises(DeniedByServerException):
            drm2.provide_provision_response(captured["provision"])
