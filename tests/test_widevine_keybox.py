"""Keybox structure, versions, and secret storage (L1 vs L3)."""

import pytest

from repro.android.process import Process
from repro.widevine.keybox import (
    KEYBOX_MAGIC,
    KEYBOX_SIZE,
    Keybox,
    issue_keybox,
)
from repro.widevine.storage import (
    WHITEBOX_TABLE_MAGIC,
    InProcessSecretStore,
    TeeSecretStore,
    apply_whitebox_mask,
)
from repro.widevine.versions import CDM_CURRENT, CDM_NEXUS5, CdmVersion


class TestKeybox:
    def test_serialized_size(self):
        assert len(issue_keybox("S1").serialize()) == KEYBOX_SIZE

    def test_magic_position(self):
        blob = issue_keybox("S1").serialize()
        assert blob[120:124] == KEYBOX_MAGIC

    def test_round_trip(self):
        keybox = issue_keybox("S1")
        assert Keybox.parse(keybox.serialize()) == keybox

    def test_issue_deterministic(self):
        assert issue_keybox("S1") == issue_keybox("S1")

    def test_issue_serial_separation(self):
        assert issue_keybox("S1").device_key != issue_keybox("S2").device_key

    def test_issue_root_seed_separation(self):
        a = issue_keybox("S1", root_seed=b"factory-a")
        b = issue_keybox("S1", root_seed=b"factory-b")
        assert a.device_key != b.device_key

    def test_parse_rejects_wrong_size(self):
        with pytest.raises(ValueError, match="128 bytes"):
            Keybox.parse(bytes(64))

    def test_parse_rejects_bad_magic(self):
        blob = bytearray(issue_keybox("S1").serialize())
        blob[120] ^= 0xFF
        with pytest.raises(ValueError, match="magic"):
            Keybox.parse(bytes(blob))

    def test_parse_rejects_bad_crc(self):
        blob = bytearray(issue_keybox("S1").serialize())
        blob[0] ^= 0xFF
        with pytest.raises(ValueError, match="CRC"):
            Keybox.parse(bytes(blob))

    def test_is_plausible(self):
        assert Keybox.is_plausible(issue_keybox("S1").serialize())
        assert not Keybox.is_plausible(bytes(KEYBOX_SIZE))

    def test_field_length_validation(self):
        with pytest.raises(ValueError):
            Keybox(device_id=bytes(8), device_key=bytes(16), key_data=bytes(72))
        with pytest.raises(ValueError):
            Keybox(device_id=bytes(32), device_key=bytes(8), key_data=bytes(72))
        with pytest.raises(ValueError):
            Keybox(device_id=bytes(32), device_key=bytes(16), key_data=bytes(8))


class TestCdmVersion:
    def test_parse(self):
        assert CdmVersion.parse("3.1.0") == CdmVersion(3, 1, 0)
        assert CdmVersion.parse("15.0") == CdmVersion(15, 0, 0)
        assert CdmVersion.parse("15") == CdmVersion(15)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            CdmVersion.parse("abc")
        with pytest.raises(ValueError):
            CdmVersion.parse("1.2.3.4")

    def test_ordering(self):
        assert CDM_NEXUS5 < CDM_CURRENT
        assert CdmVersion(14) <= CdmVersion(14, 0, 0)
        assert CdmVersion(3, 1) > CdmVersion(3, 0, 9)

    def test_str_round_trip(self):
        assert str(CdmVersion.parse("3.1.0")) == "3.1.0"


class TestWhiteboxMask:
    def test_involution(self):
        key = bytes(range(16))
        mask = bytes(reversed(range(16)))
        assert apply_whitebox_mask(apply_whitebox_mask(key, mask), mask) == key

    def test_bad_mask_length(self):
        with pytest.raises(ValueError, match="16 bytes"):
            apply_whitebox_mask(bytes(16), bytes(8))


class TestSecretStores:
    def test_l3_store_maps_keybox_into_process(self):
        process = Process("mediadrmserver")
        store = InProcessSecretStore(process)
        keybox = issue_keybox("L3-T1")
        store.install_keybox(keybox)
        blob = b"".join(bytes(r.data) for r in process.readable_regions())
        assert KEYBOX_MAGIC in blob
        assert WHITEBOX_TABLE_MAGIC in blob
        # The raw device key must NOT appear — only the masked form.
        assert keybox.device_key not in blob
        assert store.security_level == "L3"
        assert store.device_key() == keybox.device_key

    def test_l1_store_maps_nothing(self):
        process = Process("mediadrmserver")
        store = TeeSecretStore()
        keybox = issue_keybox("L1-T1")
        store.install_keybox(keybox)
        blob = b"".join(bytes(r.data) for r in process.readable_regions())
        assert KEYBOX_MAGIC not in blob
        assert store.security_level == "L1"
        assert store.keybox() == keybox

    def test_uninstalled_store_raises(self):
        with pytest.raises(RuntimeError, match="no keybox"):
            TeeSecretStore().keybox()
        with pytest.raises(RuntimeError, match="no keybox"):
            InProcessSecretStore(Process("p")).keybox()

    def test_masked_keybox_is_structurally_valid(self):
        """The in-memory masked keybox must still parse (magic + CRC)
        — that is precisely what the scanner keys on."""
        process = Process("mediadrmserver")
        store = InProcessSecretStore(process)
        store.install_keybox(issue_keybox("L3-T2"))
        region = next(r for r in process.regions if ".data" in r.name)
        blob = bytes(region.data)
        index = blob.find(KEYBOX_MAGIC)
        candidate = blob[index - 120 : index + 8]
        assert Keybox.is_plausible(candidate)
