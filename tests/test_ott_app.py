"""OTT app playback behaviour across devices, services and protections."""

import pytest

from repro.core.monitor import bypass_app_protections
from repro.license_server.policy import AudioProtection
from repro.license_server.provisioning import KeyboxAuthority
from repro.net.network import Network
from repro.net.proxy import InterceptingProxy
from repro.net.tls import TlsError
from repro.ott.app import AppProtectionError, OttApp
from repro.ott.backend import OttBackend
from repro.ott.profile import URI_SECURE_CHANNEL, OttProfile


class OttWorld:
    def __init__(self, **profile_overrides):
        defaults = dict(
            name="TestFlix",
            service="testflix",
            package="com.testflix.app",
            installs_millions=1,
            audio_protection=AudioProtection.SHARED_KEY,
            enforces_revocation=False,
        )
        defaults.update(profile_overrides)
        self.profile = OttProfile(**defaults)
        self.network = Network()
        self.authority = KeyboxAuthority()
        self.backend = OttBackend(self.profile, self.network, self.authority)

    def l1_app(self) -> OttApp:
        from repro.android.device import pixel_6

        device = pixel_6(self.network, self.authority)
        device.rooted = True
        return OttApp(self.profile, device, self.backend)

    def l3_app(self) -> OttApp:
        from repro.android.device import nexus_5

        device = nexus_5(self.network, self.authority)
        device.rooted = True
        return OttApp(self.profile, device, self.backend)


class TestBasicPlayback:
    def test_l1_plays_full_hd(self):
        app = OttWorld().l1_app()
        result = app.play()
        assert result.ok
        assert result.used_widevine
        assert result.video_height == 1080
        assert result.security_level == "L1"
        kinds = {t.kind for t in result.tracks}
        assert kinds == {"video", "audio"}
        assert result.subtitle_ok

    def test_l3_capped_at_qhd(self):
        app = OttWorld().l3_app()
        result = app.play()
        assert result.ok
        assert result.video_height == 540
        assert result.security_level == "L3"

    def test_audio_language_selection(self):
        app = OttWorld().l1_app()
        result = app.play(language="fr")
        audio = next(t for t in result.tracks if t.kind == "audio")
        assert audio.rep_id == "a-fr"

    def test_unknown_language_fails_gracefully(self):
        app = OttWorld().l1_app()
        result = app.play(language="de")
        assert not result.ok
        assert "no audio representation" in result.error

    def test_no_subtitles_requested(self):
        app = OttWorld().l1_app()
        result = app.play(subtitle_language=None)
        assert result.ok
        assert result.subtitle_ok is None

    def test_clear_audio_service(self):
        app = OttWorld(
            service="clearflix", audio_protection=AudioProtection.CLEAR
        ).l1_app()
        result = app.play()
        assert result.ok
        audio = next(t for t in result.tracks if t.kind == "audio")
        assert not audio.encrypted
        video = next(t for t in result.tracks if t.kind == "video")
        assert video.encrypted

    def test_playback_result_frame_counts(self):
        app = OttWorld().l1_app()
        result = app.play()
        for track in result.tracks:
            assert track.frames_total > 0
            assert track.frames_valid == track.frames_total

    def test_unknown_title(self):
        app = OttWorld().l1_app()
        result = app.play("does-not-exist")
        assert not result.ok


class TestProvisioningAndRevocation:
    def test_revoking_service_denies_legacy_device(self):
        world = OttWorld(service="strict", enforces_revocation=True)
        result = world.l3_app().play()
        assert not result.ok
        assert result.provisioning_failed
        assert "revoked" in result.error

    def test_revoking_service_allows_modern_device(self):
        world = OttWorld(service="strict2", enforces_revocation=True)
        assert world.l1_app().play().ok

    def test_provisioning_reused_across_plays(self):
        world = OttWorld()
        app = world.l1_app()
        assert app.play().ok
        provision_calls = [
            r
            for r in world.backend.provisioning.request_log
            if r.parsed_url.path == "/provision"
        ]
        assert len(provision_calls) == 1
        assert app.play().ok
        provision_calls = [
            r
            for r in world.backend.provisioning.request_log
            if r.parsed_url.path == "/provision"
        ]
        assert len(provision_calls) == 1  # still one: persisted


class TestSecureChannel:
    def test_netflix_style_playback(self):
        world = OttWorld(service="scflix", uri_protection=URI_SECURE_CHANNEL)
        result = world.l1_app().play()
        assert result.ok

    def test_manifest_not_in_plain_api_response(self):
        world = OttWorld(service="scflix2", uri_protection=URI_SECURE_CHANNEL)
        app = world.l1_app()
        assert app.play().ok
        playback_responses = [
            r for r in world.backend.api.request_log
            if r.parsed_url.path == "/playback"
        ]
        assert playback_responses  # and the body the server sent was encrypted:
        # replay the recorded request and inspect the response body.
        response = world.backend.api.handle(playback_responses[-1])
        assert b"mpd_url" not in response.body
        assert b"protected_manifest" in response.body


class TestCustomDrm:
    def test_custom_drm_on_l3_only(self):
        world = OttWorld(
            service="embed",
            custom_drm_on_l3=True,
            audio_protection=AudioProtection.DISTINCT_KEY,
        )
        l3 = world.l3_app().play()
        assert l3.ok
        assert l3.used_custom_drm
        assert not l3.used_widevine
        assert l3.video_height == 540

        l1 = world.l1_app().play()
        assert l1.ok
        assert l1.used_widevine
        assert not l1.used_custom_drm

    def test_custom_drm_never_touches_platform_cdm(self):
        world = OttWorld(service="embed2", custom_drm_on_l3=True)
        app = world.l3_app()
        oc = app.device.widevine_plugin.oemcrypto
        before = oc.call_count
        assert app.play().ok
        assert oc.call_count == before


class TestAppProtections:
    def test_instrumented_app_refuses_to_run(self):
        app = OttWorld().l1_app()
        app.process.attached_instruments.append("frida")
        with pytest.raises(AppProtectionError, match="instrumentation detected"):
            app.play()

    def test_bypass_restores_playback(self):
        app = OttWorld().l1_app()
        app.process.attached_instruments.append("frida")
        bypass_app_protections(app)
        assert app.play().ok

    def test_pinning_blocks_proxy_until_bypassed(self):
        world = OttWorld()
        app = world.l1_app()
        proxy = InterceptingProxy(world.network)
        app.device.trust_store.add_issuer(InterceptingProxy.CA_NAME)
        app.http.set_proxy(proxy)
        with pytest.raises(TlsError):
            app.play()
        bypass_app_protections(app)
        assert app.play().ok
        assert proxy.flows

    def test_safetynet_check_can_be_disabled_in_profile(self):
        world = OttWorld(
            service="soft", anti_debug=False, checks_safetynet=False
        )
        app = world.l1_app()
        app.process.attached_instruments.append("frida")
        assert app.play().ok  # nothing checked, nothing refused


class TestApkModel:
    def test_exoplayer_profile_classes(self):
        profile = OttWorld(uses_exoplayer=True).profile
        apk = profile.build_apk()
        names = {c.name for c in apk.classes}
        assert any("exoplayer2" in n for n in names)

    def test_custom_player_profile_classes(self):
        world = OttWorld(service="inhouse", uses_exoplayer=False)
        apk = world.profile.build_apk()
        names = {c.name for c in apk.classes}
        assert not any("exoplayer2" in n for n in names)
        refs = {r for c in apk.classes for r in c.all_refs()}
        assert any(r.startswith("android.media.MediaDrm") for r in refs)

    def test_pins_cover_all_hosts(self):
        profile = OttWorld().profile
        apk = profile.build_apk()
        assert set(apk.pinned_hosts) == set(profile.all_hosts())
