"""Study over profile subsets and custom profiles."""

import pytest

from repro.core.study import WideLeakStudy
from repro.ott.registry import profile_by_name


class TestSubsets:
    def test_single_app_study(self):
        study = WideLeakStudy(profiles=(profile_by_name("Salto"),))
        result = study.run()
        assert len(result.table.rows) == 1
        assert result.table.row_for("Salto").audio == "Clear"
        # Diff reports the nine un-evaluated apps as missing.
        diffs = result.table.diff_against_paper()
        assert len(diffs) == 9
        assert all("row missing" in d for d in diffs)

    def test_pair_study_and_attacks(self):
        study = WideLeakStudy(
            profiles=(profile_by_name("Showtime"), profile_by_name("Disney+"))
        )
        result = study.run()
        assert len(result.table.rows) == 2
        attacks = study.run_all_attacks()
        assert attacks["Showtime"].recovered.succeeded
        assert attacks["Disney+"].recovered is None

    def test_summary_on_subset(self):
        study = WideLeakStudy(
            profiles=(profile_by_name("Netflix"), profile_by_name("Hulu"))
        )
        summary = study.run().summary()
        assert summary["apps_evaluated"] == 2
        assert summary["apps_with_clear_audio"] == ["Netflix"]

    def test_custom_profile_outside_the_paper(self):
        """A hypothetical well-behaved service: recommended keys,
        revocation enforced — the row the paper wishes it had found."""
        from repro.license_server.policy import AudioProtection
        from repro.ott.profile import OttProfile

        paragon = OttProfile(
            name="Paragon",
            service="paragon",
            package="com.paragon.app",
            installs_millions=1,
            audio_protection=AudioProtection.DISTINCT_KEY,
            enforces_revocation=True,
        )
        study = WideLeakStudy(profiles=(paragon,))
        result = study.run()
        row = result.table.row_for("Paragon")
        assert row.video == "Encrypted"
        assert row.audio == "Encrypted"
        assert row.key_usage == "Recommended"
        assert row.legacy_playback == "◐"
        # And the attack gets nothing from it.
        attack = study.run_attack(paragon)
        assert not attack.attack.succeeded
