"""Frida analogue: attach/detach, hook records, memory scanning,
the OEMCrypto monitor and SSL repinning."""

import pytest

from repro.instrumentation.frida import FridaSession
from repro.instrumentation.hooks import OeccMonitor
from repro.instrumentation.memscan import (
    find_whitebox_mask,
    scan_for_keybox,
    scan_for_pattern,
)
from repro.widevine.keybox import Keybox


class TestFridaSession:
    def test_attach_requires_root(self, world):
        device = world.l1_device()
        device.rooted = False
        with pytest.raises(PermissionError, match="rooted"):
            FridaSession.attach(device, "mediadrmserver")

    def test_attach_unknown_process(self, world):
        device = world.l1_device()
        with pytest.raises(LookupError):
            FridaSession.attach(device, "nonexistent")

    def test_attach_marks_process(self, world):
        device = world.l1_device()
        session = FridaSession.attach(device, "mediadrmserver")
        assert "frida" in device.drm_process.attached_instruments
        session.detach()
        assert "frida" not in device.drm_process.attached_instruments

    def test_enumerate_oecc_functions(self, world):
        device = world.l1_device()
        with FridaSession.attach(device, "mediadrmserver") as session:
            functions = session.enumerate_module_functions("_oecc")
            assert functions
            modules = {m for m, _ in functions}
            assert any("liboemcrypto" in m for m in modules)

    def test_hook_records_call(self, world):
        device = world.l1_device()
        oc = device.widevine_plugin.oemcrypto
        with FridaSession.attach(device, "mediadrmserver") as session:
            session.hook_function("liboemcrypto.so", "_oecc05_open_session")
            oc._oecc05_open_session()
            assert len(session.records) == 1
            record = session.records[0]
            assert record.function == "_oecc05_open_session"
            assert record.retval is not None
            assert record.error is None

    def test_hook_records_exception(self, world):
        device = world.l1_device()
        oc = device.widevine_plugin.oemcrypto
        with FridaSession.attach(device, "mediadrmserver") as session:
            session.hook_function("liboemcrypto.so", "_oecc08_generate_nonce")
            with pytest.raises(Exception):
                oc._oecc08_generate_nonce(b"\xff\xff\xff\xff")
            assert session.records[0].error is not None

    def test_detach_restores_behaviour(self, world):
        device = world.l1_device()
        oc = device.widevine_plugin.oemcrypto
        session = FridaSession.attach(device, "mediadrmserver")
        session.hook_function("liboemcrypto.so", "_oecc05_open_session")
        session.detach()
        before = len(session.records)
        oc._oecc05_open_session()
        assert len(session.records) == before

    def test_hook_after_detach_rejected(self, world):
        device = world.l1_device()
        session = FridaSession.attach(device, "mediadrmserver")
        session.detach()
        with pytest.raises(RuntimeError, match="detached"):
            session.hook_function("liboemcrypto.so", "_oecc05_open_session")

    def test_on_enter_and_on_leave_callbacks(self, world):
        device = world.l1_device()
        oc = device.widevine_plugin.oemcrypto
        seen = []
        with FridaSession.attach(device, "mediadrmserver") as session:
            session.hook_function(
                "liboemcrypto.so",
                "_oecc05_open_session",
                on_enter=lambda r: seen.append("enter"),
                on_leave=lambda r: seen.append("leave"),
            )
            oc._oecc05_open_session()
        assert seen == ["enter", "leave"]

    def test_hook_pattern_covers_surface(self, world):
        device = world.l1_device()
        with FridaSession.attach(device, "mediadrmserver") as session:
            hooks = session.hook_pattern("_oecc")
            assert len(hooks) >= 15


class TestMemoryScan:
    def test_pattern_scan(self, world):
        device = world.l3_device()
        matches = scan_for_pattern(device.drm_process, b"kbox")
        assert matches

    def test_pattern_scan_rejects_empty(self, world):
        device = world.l3_device()
        with pytest.raises(ValueError, match="empty pattern"):
            scan_for_pattern(device.drm_process, b"")

    def test_keybox_scan_finds_structure_on_l3(self, world):
        device = world.l3_device()
        matches = scan_for_keybox(device.drm_process)
        assert len(matches) == 1
        keybox = Keybox.parse(matches[0].data)
        assert keybox.device_id == device.keybox.device_id
        # The scanned device key is the MASKED one, not the real key.
        assert keybox.device_key != device.keybox.device_key

    def test_keybox_scan_empty_on_l1(self, world):
        device = world.l1_device()
        assert scan_for_keybox(device.drm_process) == []

    def test_whitebox_mask_found_on_l3(self, world):
        device = world.l3_device()
        mask = find_whitebox_mask(device.drm_process)
        assert mask is not None
        assert len(mask) == 16

    def test_whitebox_mask_absent_on_l1(self, world):
        device = world.l1_device()
        assert find_whitebox_mask(device.drm_process) is None


class TestOeccMonitor:
    def test_classifies_l1(self, world):
        device = world.l1_device()
        with FridaSession.attach(device, "mediadrmserver") as session:
            monitor = OeccMonitor(session)
            monitor.install()
            device.widevine_plugin.oemcrypto._oecc05_open_session()
            assert monitor.widevine_active()
            assert monitor.observed_security_level() == "L1"

    def test_classifies_l3(self, world):
        device = world.l3_device()
        with FridaSession.attach(device, "mediaserver") as session:
            monitor = OeccMonitor(session)
            monitor.install()
            device.widevine_plugin.oemcrypto._oecc05_open_session()
            assert monitor.observed_security_level() == "L3"

    def test_no_calls_no_level(self, world):
        device = world.l1_device()
        with FridaSession.attach(device, "mediadrmserver") as session:
            monitor = OeccMonitor(session)
            monitor.install()
            assert not monitor.widevine_active()
            assert monitor.observed_security_level() is None

    def test_buffer_dumps(self, world):
        device = world.l1_device()
        oc = device.widevine_plugin.oemcrypto
        with FridaSession.attach(device, "mediadrmserver") as session:
            monitor = OeccMonitor(session)
            monitor.install()
            sid = oc._oecc05_open_session()
            oc._oecc07_generate_derived_keys(sid, b"the-derivation-context")
            dumps = monitor.dumps_for("_oecc07_generate_derived_keys", "in")
            assert dumps == [b"the-derivation-context"]

    def test_generic_decrypt_output_dumped(self, world):
        device = world.l1_device()
        oc = device.widevine_plugin.oemcrypto
        with FridaSession.attach(device, "mediadrmserver") as session:
            monitor = OeccMonitor(session)
            monitor.install()
            sid = oc._oecc05_open_session()
            oc._oecc07_generate_derived_keys(sid, b"ctx")
            iv = bytes(16)
            ct = oc._oecc30_generic_encrypt(sid, b"secret manifest", iv)
            clear = oc._oecc31_generic_decrypt(sid, ct, iv)
            assert clear == b"secret manifest"
            outs = monitor.dumps_for("_oecc31_generic_decrypt", "out")
            assert b"secret manifest" in outs

    def test_clear_resets_state(self, world):
        device = world.l1_device()
        oc = device.widevine_plugin.oemcrypto
        with FridaSession.attach(device, "mediadrmserver") as session:
            monitor = OeccMonitor(session)
            monitor.install()
            oc._oecc05_open_session()
            monitor.clear()
            assert not monitor.widevine_active()
            assert monitor.dumps == []
