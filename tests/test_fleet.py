"""The fleet layer: job model, result store, scheduler, incremental re-runs.

The headline contract (the ISSUE's acceptance criteria): a warm
resubmit of an unchanged campaign computes zero cells, and every
assembly path — cold, warm, multiprocess, killed-and-resumed — produces
a ``StudyResult.to_json()`` byte-identical to the cold sequential run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.study import WideLeakStudy
from repro.fleet import Campaign, FleetError, FleetScheduler, ResultStore
from repro.fleet.job import profile_fingerprint
from repro.ott.registry import ALL_PROFILES

REPO = Path(__file__).resolve().parent.parent

SMALL = ALL_PROFILES[:3]


def sequential_json(profiles) -> str:
    return WideLeakStudy(profiles=profiles).run().to_json()


# ---------------------------------------------------------------------------
# Job model
# ---------------------------------------------------------------------------


class TestJobModel:
    def test_cells_world_first_then_audits_in_profile_order(self):
        campaign = Campaign(profiles=SMALL)
        cells = campaign.cells()
        assert cells[0].cell_id == "world"
        assert [c.app for c in cells[1:]] == [p.name for p in SMALL]

    def test_attack_cells_included_on_request(self):
        ids = [c.cell_id for c in Campaign(profiles=SMALL, include_attacks=True).cells()]
        assert "attack-netflix" in ids

    def test_cache_keys_are_deterministic(self):
        a = {c.cell_id: c.key for c in Campaign(profiles=SMALL).cells()}
        b = {c.cell_id: c.key for c in Campaign(profiles=SMALL).cells()}
        assert a == b

    def test_profile_change_invalidates_exactly_that_apps_cells(self):
        base = {c.cell_id: c.key for c in Campaign(profiles=SMALL).cells()}
        bumped = (
            dataclasses.replace(
                SMALL[0], installs_millions=SMALL[0].installs_millions + 1
            ),
        ) + tuple(SMALL[1:])
        changed = {c.cell_id: c.key for c in Campaign(profiles=bumped).cells()}
        # The world key covers every fingerprint; the touched app's
        # audit key changes; the other audits stay warm.
        assert changed["world"] != base["world"]
        assert changed["audit-netflix"] != base["audit-netflix"]
        assert changed["audit-disneyplus"] == base["audit-disneyplus"]

    def test_seed_change_invalidates_everything(self):
        base = {c.cell_id: c.key for c in Campaign(profiles=SMALL).cells()}
        other = {c.cell_id: c.key for c in Campaign(profiles=SMALL, seed=1).cells()}
        assert all(base[cid] != other[cid] for cid in base)

    def test_fingerprint_sees_profile_internals(self):
        bumped = dataclasses.replace(
            SMALL[0], installs_millions=SMALL[0].installs_millions + 1
        )
        assert profile_fingerprint(SMALL[0]) != profile_fingerprint(bumped)

    def test_manifest_round_trip(self):
        campaign = Campaign(profiles=SMALL, seed=7, include_attacks=True)
        rebuilt = Campaign.from_manifest(campaign.to_manifest())
        assert rebuilt.campaign_id == campaign.campaign_id
        assert [c.key for c in rebuilt.cells()] == [c.key for c in campaign.cells()]


# ---------------------------------------------------------------------------
# Result store
# ---------------------------------------------------------------------------


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" * 32, {"x": 1})
        assert store.get("ab" * 32) == {"x": 1}
        assert store.contains("ab" * 32)
        assert store.get("cd" * 32) is None

    def test_delete_and_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("aa" * 32, {"x": 1})
        store.put("bb" * 32, {"y": 2})
        assert store.delete("aa" * 32)
        assert not store.delete("aa" * 32)
        assert store.keys() == ("bb" * 32,)

    def test_objects_survive_a_new_store_instance(self, tmp_path):
        ResultStore(tmp_path).put("aa" * 32, {"x": 1})
        assert ResultStore(tmp_path).get("aa" * 32) == {"x": 1}

    def test_manifest_rebuilt_from_objects_after_corruption(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("aa" * 32, {"x": 1})
        (tmp_path / "manifest.json").write_text("{not json")
        fresh = ResultStore(tmp_path)
        assert fresh.get("aa" * 32) == {"x": 1}
        assert fresh.stats()["objects"] == 1

    def test_lru_eviction_drops_least_recently_used(self, tmp_path):
        payload = {"blob": "x" * 100}
        size = len(json.dumps(payload, indent=2, sort_keys=True).encode())
        store = ResultStore(tmp_path, max_bytes=3 * size)
        for index in range(3):
            store.put(f"{index:02d}" * 32, payload)
        store.get("00" * 32)  # refresh: 01 becomes the LRU entry
        store.put("03" * 32, payload)
        assert store.contains("00" * 32)
        assert not store.contains("01" * 32)
        assert store.stats()["evictions"] == 1

    def test_gc_honours_explicit_bound(self, tmp_path):
        store = ResultStore(tmp_path)
        for index in range(4):
            store.put(f"{index:02d}" * 32, {"blob": "x" * 100})
        evicted = store.gc(max_bytes=0)
        assert evicted == 4
        assert store.keys() == ()

    def test_concurrent_writers_never_tear_an_object(self, tmp_path):
        """Hammer one key from many threads over two store instances —
        every read must see one writer's complete payload."""
        stores = [ResultStore(tmp_path), ResultStore(tmp_path)]
        key = "ee" * 32
        errors: list[Exception] = []

        def writer(worker: int) -> None:
            try:
                for i in range(20):
                    stores[worker % 2].put(
                        key, {"worker": worker, "i": i, "pad": "y" * 50}
                    )
                    seen = stores[(worker + 1) % 2].get(key)
                    assert seen is not None and set(seen) == {"worker", "i", "pad"}
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert set(ResultStore(tmp_path).get(key)) == {"worker", "i", "pad"}

    def test_concurrent_manifest_updates_lose_no_entries(self, tmp_path):
        """Distinct keys written through two store instances (the
        worker-process shape: each holds its own manifest lock fd) must
        all land in manifest.json without waiting for a reconcile —
        last-replace-wins on the index would silently drop some."""
        stores = [ResultStore(tmp_path), ResultStore(tmp_path)]

        def writer(worker: int) -> None:
            for i in range(20):
                key = f"{worker:02d}{i:02d}".ljust(64, "0")
                stores[worker].put(key, {"worker": worker, "i": i})

        threads = [threading.Thread(target=writer, args=(n,)) for n in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert len(manifest["entries"]) == 40


# ---------------------------------------------------------------------------
# Scheduler: cold / warm / invalidation
# ---------------------------------------------------------------------------


class TestIncrementalRuns:
    def test_cold_fleet_run_matches_sequential_byte_for_byte(self, tmp_path):
        outcome = FleetScheduler(tmp_path).submit(Campaign(profiles=SMALL))
        assert outcome.result.to_json() == sequential_json(SMALL)
        assert outcome.stats["computed"] == len(SMALL) + 1
        assert (outcome.campaign_dir / "result.json").is_file()

    def test_warm_resubmit_of_unchanged_campaign_computes_zero_cells(self, tmp_path):
        """The acceptance criterion, on the paper's full ten-app set."""
        scheduler = FleetScheduler(tmp_path)
        campaign = Campaign(profiles=ALL_PROFILES)
        cold = scheduler.submit(campaign)
        warm = scheduler.submit(Campaign(profiles=ALL_PROFILES))
        assert warm.stats["computed"] == 0
        assert warm.stats["cache_hits"] == len(ALL_PROFILES) + 1
        expected = sequential_json(ALL_PROFILES)
        assert cold.result.to_json() == expected
        assert warm.result.to_json() == expected

    def test_single_profile_invalidation_recomputes_only_its_cells(self, tmp_path):
        scheduler = FleetScheduler(tmp_path)
        scheduler.submit(Campaign(profiles=SMALL))
        bumped = (
            dataclasses.replace(
                SMALL[0], installs_millions=SMALL[0].installs_millions + 1
            ),
        ) + tuple(SMALL[1:])
        outcome = scheduler.submit(Campaign(profiles=bumped))
        # Exactly the world cell (covers all fingerprints) and the
        # touched app's audit recompute; the other audits stay warm.
        assert outcome.stats["computed"] == 2
        assert outcome.stats["cache_hits"] == len(SMALL) - 1
        assert outcome.result.to_json() == sequential_json(bumped)

    def test_multiprocess_run_is_byte_identical_and_steals(self, tmp_path):
        outcome = FleetScheduler(tmp_path).submit(
            Campaign(profiles=SMALL), jobs=2
        )
        assert outcome.result.to_json() == sequential_json(SMALL)
        assert outcome.stats["workers"] == 2

    def test_attack_cells_ride_along_without_touching_the_artifact(self, tmp_path):
        outcome = FleetScheduler(tmp_path).submit(
            Campaign(profiles=SMALL, include_attacks=True)
        )
        assert outcome.result.to_json() == sequential_json(SMALL)
        assert set(outcome.attacks) == {p.name for p in SMALL}
        assert outcome.attacks["Netflix"].device_model

    def test_fleet_telemetry_rides_a_separate_bus(self, tmp_path):
        outcome = FleetScheduler(tmp_path).submit(Campaign(profiles=SMALL))
        names = set(outcome.obs.span_names())
        assert {"fleet.campaign", "fleet.reconcile", "fleet.execute",
                "fleet.assemble"} <= names
        counters = outcome.obs.metrics.counters()
        assert counters["fleet.cells.total"] == len(SMALL) + 1
        # The artifact bus never carries fleet counters.
        artifact_counters = outcome.result.obs.metrics.counters()
        assert not any(name.startswith("fleet.") for name in artifact_counters)


# ---------------------------------------------------------------------------
# Scheduler: crash, retry, resume
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_injected_worker_death_retries_with_backoff_inline(self, tmp_path):
        campaign = Campaign(profiles=SMALL, faults={"audit-disneyplus": 1})
        outcome = FleetScheduler(tmp_path).submit(campaign)
        assert outcome.stats["retries"] == 1
        assert outcome.result.to_json() == sequential_json(SMALL)

    def test_injected_worker_death_retries_across_processes(self, tmp_path):
        campaign = Campaign(profiles=SMALL, faults={"audit-netflix": 1})
        outcome = FleetScheduler(tmp_path).submit(campaign, jobs=2)
        assert outcome.stats["retries"] >= 1
        assert outcome.result.to_json() == sequential_json(SMALL)

    def test_cell_out_of_retries_fails_the_campaign(self, tmp_path):
        campaign = Campaign(profiles=SMALL, faults={"audit-netflix": 99})
        with pytest.raises(FleetError, match="attempts"):
            FleetScheduler(tmp_path).submit(campaign)

    def test_kill_dash_nine_mid_campaign_then_resume_reaches_same_artifact(
        self, tmp_path
    ):
        """Hard-kill `repro fleet submit` mid-campaign from outside, then
        resume: the checkpoint log + store must carry it to an artifact
        byte-identical to the uninterrupted sequential run."""
        profiles = ALL_PROFILES[:5]
        root = tmp_path / "fleet"
        apps = [p.name for p in profiles]
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "fleet", "submit",
             "--root", str(root), "--apps", *apps],
            cwd=REPO,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            campaign_id = Campaign(profiles=profiles).campaign_id
            done_dir = root / "campaigns" / campaign_id / "done"
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if len(list(done_dir.glob("*.json"))) >= 1:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.005)
            else:
                pytest.fail("fleet submit never produced a done marker")
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL, (
            "campaign finished before the kill; widen the window"
        )
        scheduler = FleetScheduler(root)
        status = {row["campaign_id"]: row for row in scheduler.status()}
        assert status[campaign_id]["state"] == "interrupted"
        resumed = scheduler.resume(campaign_id)
        assert resumed.result.to_json() == sequential_json(profiles)
        # And the checkpoint now reads complete.
        status = {row["campaign_id"]: row for row in scheduler.status()}
        assert status[campaign_id]["state"] == "complete"

    def test_temp_file_debris_never_reaches_json_scans(self, tmp_path):
        """A kill -9 between temp write and os.replace leaves a temp
        file behind. It must not end in ``.json`` (every queue/claimed/
        done scan globs that — pathlib's glob matches dot-prefixed
        names too), and resume must sweep it rather than crash parsing
        its name as a ticket or cell id."""
        scheduler = FleetScheduler(tmp_path)
        campaign = Campaign(profiles=SMALL)
        scheduler.submit(campaign)
        campaign_dir = scheduler.campaign_dir(campaign)
        debris = [
            # Current naming: "<name>.tmp-<pid>-<n>" — no .json suffix.
            campaign_dir / "queue" / "w0" / "0007-audit-x.json.tmp-99-0",
            # Dot-prefixed naming of earlier revisions DID match
            # glob("*.json"); planted in every scanned directory, the
            # old reconcile died on int("tmp") / cell_by_id("tmp...").
            campaign_dir / "queue" / "w0" / ".tmp-99-0007-audit-x.json",
            campaign_dir / "claimed" / "w0" / ".tmp-99-audit-x.json",
            campaign_dir / "done" / ".tmp-99-world.json",
        ]
        for path in debris:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text("{half-written")
        outcome = scheduler.resume(campaign.campaign_id)
        assert outcome.result.to_json() == sequential_json(SMALL)
        assert outcome.stats["computed"] == 0  # debris is not work
        for path in debris:
            assert not path.exists(), f"{path.name} survived the sweep"

    def test_atomic_write_temp_names_are_invisible_to_json_globs(
        self, tmp_path
    ):
        from repro.fleet.scheduler import _write_json_atomic

        target = tmp_path / "lane" / "0001-cell.json"
        _write_json_atomic(target, {"ok": True})
        # The replace happened; had it been interrupted, the temp name
        # must not have matched the ticket scans.
        assert [p.name for p in target.parent.glob("*.json")] == [target.name]
        tmp_name = f"{target.name}.tmp-1234-0"
        (target.parent / tmp_name).write_text("{half")
        assert [p.name for p in target.parent.glob("*.json")] == [target.name]

    def test_resume_without_id_requires_an_interrupted_campaign(self, tmp_path):
        scheduler = FleetScheduler(tmp_path)
        with pytest.raises(FleetError, match="no interrupted campaign"):
            scheduler.resume()

    def test_store_too_small_to_hold_the_campaign_fails_loudly(self, tmp_path):
        scheduler = FleetScheduler(tmp_path, max_store_bytes=64)
        with pytest.raises(FleetError, match="evict"):
            scheduler.submit(Campaign(profiles=SMALL))

    def test_evicted_cell_is_recomputed_on_resubmit(self, tmp_path):
        scheduler = FleetScheduler(tmp_path)
        campaign = Campaign(profiles=SMALL)
        scheduler.submit(campaign)
        evicted_key = campaign.cells()[1].key  # audit-netflix
        assert scheduler.store.delete(evicted_key)
        outcome = scheduler.submit(Campaign(profiles=SMALL))
        assert outcome.stats["computed"] == 1
        assert outcome.result.to_json() == sequential_json(SMALL)


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------


class TestFleetCli:
    def test_submit_status_gc_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "fleet")
        apps = [p.name for p in SMALL]
        assert main(["fleet", "submit", "--root", root, "--apps", *apps]) == 0
        out = capsys.readouterr().out
        assert "4 cells" in out and "4 computed" in out
        assert "fleet.cells.total" in out

        assert main(["fleet", "submit", "--root", root, "--apps", *apps]) == 0
        out = capsys.readouterr().out
        assert "0 computed" in out and "4 cache hits" in out

        assert main(["fleet", "status", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "complete" in out and "Netflix" in out

        assert main(["fleet", "gc", "--root", root, "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "evicted 4 object(s)" in out

    def test_resume_of_complete_campaign_reassembles(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "fleet")
        apps = [p.name for p in SMALL]
        assert main(["fleet", "submit", "--root", root, "--apps", *apps]) == 0
        campaign_id = Campaign(profiles=SMALL).campaign_id
        capsys.readouterr()
        assert main(
            ["fleet", "resume", "--root", root, "--campaign", campaign_id]
        ) == 0
        assert "0 computed" in capsys.readouterr().out

    def test_resume_unknown_campaign_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["fleet", "resume", "--root", str(tmp_path), "--campaign", "nope"]
        )
        assert code == 2
        assert "fleet:" in capsys.readouterr().err
