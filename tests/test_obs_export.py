"""Exporters: JSON-lines archive, Chrome ``trace_event`` JSON and the
aggregate metrics table."""

from __future__ import annotations

import json

import pytest

from repro.obs.bus import ObservabilityBus
from repro.obs.export import (
    render_metrics_table,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        self.now += 1_000_000  # 1ms per tick
        return self.now


@pytest.fixture
def recorded_bus() -> ObservabilityBus:
    bus = ObservabilityBus(clock=FakeClock())
    with bus.span("study.app", app="Netflix") as root:
        root.event("oecc.dump", function="DecryptCENC", size=16)
        with bus.span("http.request", host="cdn.netflix.example") as req:
            req.set(status=200, digest=b"\x01\x02")
            bus.count("http.requests")
    with bus.span("study.app", app="Hulu"):
        bus.observe("frames", 24)
    bus.event("orphan")
    return bus


class TestJsonl:
    def test_every_line_is_json_and_typed(self, recorded_bus):
        lines = to_jsonl(recorded_bus).strip().split("\n")
        objs = [json.loads(line) for line in lines]
        assert [o["type"] for o in objs] == [
            "span",
            "span",
            "span",
            "event",
            "metrics",
            "sampling",
        ]

    def test_metrics_line_carries_the_snapshot(self, recorded_bus):
        metrics = json.loads(to_jsonl(recorded_bus).strip().split("\n")[-2])
        assert metrics["counters"]["http.requests"] == 1
        assert "span.http.request" in metrics["histograms"]
        stat = metrics["histograms"]["span.http.request"]
        # Fixed-bucket percentiles and the exemplar ride along.
        assert stat["p50"] <= stat["p95"] <= stat["p99"] <= stat["max"]
        assert stat["exemplar_span_id"] == 2

    def test_sampling_line_records_no_truncation(self, recorded_bus):
        sampling = json.loads(to_jsonl(recorded_bus).strip().split("\n")[-1])
        assert sampling["rate"] == "1/1"
        assert sampling["dropped_spans"] == 0
        assert sampling["recorded_spans"] == 3


class TestChromeTrace:
    def test_document_shape(self, recorded_bus):
        doc = to_chrome_trace(recorded_bus)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        # Round-trips through the JSON codec (chrome://tracing loads it).
        assert json.loads(json.dumps(doc)) == doc

    def test_metadata_names_process_and_tracks(self, recorded_bus):
        events = to_chrome_trace(recorded_bus)["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["name"] == "process_name"
        assert meta[0]["args"]["name"] == "wideleak-study"
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert thread_names == {"Netflix", "Hulu"}

    def test_complete_events_carry_timing_in_microseconds(self, recorded_bus):
        events = to_chrome_trace(recorded_bus)["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in complete] == [
            "study.app",
            "http.request",
            "study.app",
        ]
        for e in complete:
            assert {"cat", "pid", "tid", "ts", "dur", "args"} <= set(e)
            assert e["dur"] > 0
        # FakeClock ticks 1ms apart; ts is in microseconds.
        assert complete[0]["ts"] == 1000.0

    def test_spans_of_one_tree_share_a_tid(self, recorded_bus):
        events = to_chrome_trace(recorded_bus)["traceEvents"]
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        netflix_root = next(
            e
            for e in events
            if e["ph"] == "X" and e["args"].get("app") == "Netflix"
        )
        assert by_name["http.request"]["tid"] == netflix_root["tid"]

    def test_points_become_instant_events(self, recorded_bus):
        events = to_chrome_trace(recorded_bus)["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["oecc.dump"]
        assert instants[0]["s"] == "t"

    def test_bytes_attrs_are_hexed_not_dropped(self, recorded_bus):
        doc = to_chrome_trace(recorded_bus)
        request = next(
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "http.request"
        )
        assert request["args"]["digest"] == "0102"

    def test_write_chrome_trace_produces_a_loadable_file(
        self, recorded_bus, tmp_path
    ):
        path = write_chrome_trace(recorded_bus, tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert loaded == to_chrome_trace(recorded_bus)


class TestMetricsTable:
    def test_lists_counters_and_histograms(self, recorded_bus):
        table = render_metrics_table(recorded_bus)
        assert "http.requests" in table
        assert "span.http.request" in table
        assert "ms" in table  # span durations rendered in milliseconds

    def test_percentile_columns_and_exemplars(self, recorded_bus):
        table = render_metrics_table(recorded_bus)
        for column in ("p50", "p95", "p99", "exemplar"):
            assert column in table
        # The http.request span (id 2) is the stream's only — and
        # therefore worst — observation; its id links into the trace.
        assert "span:2" in table

    def test_empty_bus_renders_placeholder(self):
        assert render_metrics_table(ObservabilityBus()) == "(no metrics recorded)"

    def test_chrome_trace_carries_the_sampling_record(self, recorded_bus):
        events = to_chrome_trace(recorded_bus)["traceEvents"]
        sampling = next(
            e for e in events if e["ph"] == "M" and e["name"] == "sampling"
        )
        assert sampling["args"]["dropped_spans"] == 0
        assert sampling["args"]["rate"] == "1/1"
