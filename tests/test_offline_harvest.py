"""Offline-license harvesting: one keybox break unlocks everything a
user ever downloaded — no live playback required."""

import pytest

from repro.android.device import nexus_5
from repro.android.mediadrm import KEY_TYPE_OFFLINE, MediaDrm
from repro.bmff.builder import read_pssh_boxes
from repro.bmff.pssh import WIDEVINE_SYSTEM_ID
from repro.core.keyladder_attack import KeyLadderAttack
from repro.license_server.policy import AudioProtection
from repro.license_server.provisioning import KeyboxAuthority
from repro.net.network import Network
from repro.ott.backend import OttBackend
from repro.ott.profile import OttProfile


@pytest.fixture
def downloaded_world():
    """A user who downloaded a title for offline viewing, then left."""
    profile = OttProfile(
        name="DlFlix",
        service="dlflix",
        package="com.dlflix.app",
        installs_millions=1,
        audio_protection=AudioProtection.SHARED_KEY,
        enforces_revocation=False,
        title_count=2,
    )
    network = Network()
    authority = KeyboxAuthority()
    backend = OttBackend(profile, network, authority)
    device = nexus_5(network, authority)
    device.rooted = True

    drm = MediaDrm(WIDEVINE_SYSTEM_ID, device, origin=profile.package)
    client = device.new_http_client()
    request = drm.get_provision_request()
    response = client.post(
        f"https://{profile.provisioning_host}/provision", request.data
    )
    drm.provide_provision_response(response.body)

    downloaded_kids = set()
    for title in backend.catalog:
        packaged = backend.packaged[title.title_id]
        init_url, _ = packaged.asset_urls["v540"]
        (pssh,) = read_pssh_boxes(client.get(init_url).body)
        session = drm.open_session()
        key_request = drm.get_key_request(
            session, pssh.data, key_type=KEY_TYPE_OFFLINE
        )
        license_response = client.post(
            f"https://{profile.license_host}/license", key_request.data
        )
        loaded = drm.provide_key_response(session, license_response.body)
        downloaded_kids.update(loaded)
        drm.close_session(session)
    return profile, backend, device, downloaded_kids


class TestOfflineHarvest:
    def test_all_downloaded_titles_fall_at_once(self, downloaded_world):
        profile, backend, device, downloaded_kids = downloaded_world
        attack = KeyLadderAttack(device)
        keybox = attack.recover_keybox()
        rsa = attack.recover_device_rsa_key(keybox, profile.package)
        assert rsa is not None

        harvested = attack.harvest_offline_licenses(rsa, profile.package)
        assert set(harvested) == downloaded_kids
        assert len(harvested) >= 2  # one sub-HD video key per title

        # Keys match the services' ground truth.
        truth = {}
        for packaged in backend.packaged.values():
            truth.update(packaged.content_keys)
        for kid, key in harvested.items():
            assert truth[kid] == key

    def test_harvest_without_any_playback_session(self, downloaded_world):
        """No hooks, no monitoring, no live license: persistent storage
        plus the keybox suffice."""
        profile, __, device, __ = downloaded_world
        attack = KeyLadderAttack(device)
        keybox = attack.recover_keybox()
        rsa = attack.recover_device_rsa_key(keybox, profile.package)
        harvested = attack.harvest_offline_licenses(rsa, profile.package)
        assert harvested

    def test_other_origin_yields_nothing(self, downloaded_world):
        profile, __, device, __ = downloaded_world
        attack = KeyLadderAttack(device)
        keybox = attack.recover_keybox()
        rsa = attack.recover_device_rsa_key(keybox, profile.package)
        assert attack.harvest_offline_licenses(rsa, "com.other.app") == {}
