"""Network substrate: HTTP model, TLS pinning matrix, proxy, CDN."""

import pytest

from repro.net.cdn import CdnServer
from repro.net.http import HttpRequest, HttpResponse, parse_url
from repro.net.network import HttpClient, Network
from repro.net.proxy import InterceptingProxy
from repro.net.server import VirtualServer
from repro.net.tls import (
    Certificate,
    PinSet,
    TlsError,
    TrustStore,
    issue_certificate,
)


class TestHttp:
    def test_parse_url(self):
        url = parse_url("https://host.example/path/to?x=1&y=2")
        assert url.host == "host.example"
        assert url.path == "/path/to"
        assert url.query == {"x": "1", "y": "2"}

    def test_parse_url_defaults(self):
        url = parse_url("https://host.example")
        assert url.path == "/"
        assert url.query == {}

    def test_parse_url_rejects_relative(self):
        with pytest.raises(ValueError, match="no host"):
            parse_url("/just/a/path")

    def test_url_str_round_trip(self):
        url = parse_url("https://h.example/p?a=1")
        assert str(url) == "https://h.example/p?a=1"

    def test_response_helpers(self):
        assert HttpResponse(status=204).ok
        assert not HttpResponse.not_found().ok
        assert HttpResponse.forbidden().status == 403
        assert HttpResponse.bad_request().status == 400


class TestTls:
    def test_issue_deterministic(self):
        a = issue_certificate("h.example", "CA", seed=b"s")
        b = issue_certificate("h.example", "CA", seed=b"s")
        assert a.spki_fingerprint() == b.spki_fingerprint()

    def test_trust_store_accepts_known_issuer(self):
        cert = issue_certificate("h.example", "GlobalRootCA", seed=b"s")
        TrustStore().verify(cert, "h.example")

    def test_trust_store_rejects_unknown_issuer(self):
        cert = issue_certificate("h.example", "EvilCA", seed=b"s")
        with pytest.raises(TlsError, match="untrusted issuer"):
            TrustStore().verify(cert, "h.example")

    def test_trust_store_rejects_hostname_mismatch(self):
        cert = issue_certificate("other.example", "GlobalRootCA", seed=b"s")
        with pytest.raises(TlsError, match="hostname"):
            TrustStore().verify(cert, "h.example")

    def test_added_issuer_trusted(self):
        store = TrustStore()
        store.add_issuer("ProxyCA")
        cert = issue_certificate("h.example", "ProxyCA", seed=b"s")
        store.verify(cert, "h.example")

    def test_pin_match(self):
        cert = issue_certificate("h.example", "CA", seed=b"s")
        pins = PinSet()
        pins.pin("h.example", cert)
        pins.verify("h.example", cert)

    def test_pin_mismatch(self):
        real = issue_certificate("h.example", "CA", seed=b"real")
        fake = issue_certificate("h.example", "CA", seed=b"fake")
        pins = PinSet()
        pins.pin("h.example", real)
        with pytest.raises(TlsError, match="pin mismatch"):
            pins.verify("h.example", fake)

    def test_unpinned_host_accepted(self):
        cert = issue_certificate("other.example", "CA", seed=b"s")
        pins = PinSet()
        pins.pin("h.example", cert)
        pins.verify("other.example", cert)

    def test_disabled_pins_accept_anything(self):
        real = issue_certificate("h.example", "CA", seed=b"real")
        fake = issue_certificate("h.example", "CA", seed=b"fake")
        pins = PinSet()
        pins.pin("h.example", real)
        pins.enabled = False
        pins.verify("h.example", fake)


class TestServerRouting:
    def test_longest_prefix_wins(self):
        server = VirtualServer("s.example")
        server.route("/a/", lambda r: HttpResponse(status=200, body=b"short"))
        server.route("/a/b/", lambda r: HttpResponse(status=200, body=b"long"))
        response = server.handle(HttpRequest("GET", "https://s.example/a/b/c"))
        assert response.body == b"long"

    def test_no_route_404(self):
        server = VirtualServer("s.example")
        assert server.handle(HttpRequest("GET", "https://s.example/x")).status == 404

    def test_route_must_be_absolute(self):
        with pytest.raises(ValueError, match="start with"):
            VirtualServer("s.example").route("relative", lambda r: None)

    def test_request_log(self):
        server = VirtualServer("s.example")
        server.handle(HttpRequest("GET", "https://s.example/x"))
        assert len(server.request_log) == 1


class TestNetwork:
    def test_register_and_deliver(self):
        net = Network()
        server = VirtualServer("s.example")
        server.route("/", lambda r: HttpResponse(status=200, body=b"hi"))
        net.register(server)
        response = net.deliver(HttpRequest("GET", "https://s.example/"))
        assert response.body == b"hi"

    def test_duplicate_host_rejected(self):
        net = Network()
        net.register(VirtualServer("s.example"))
        with pytest.raises(ValueError, match="already registered"):
            net.register(VirtualServer("s.example"))

    def test_unknown_host(self):
        with pytest.raises(LookupError, match="unknown host"):
            Network().deliver(HttpRequest("GET", "https://nope.example/"))

    def test_client_happy_path(self):
        net = Network()
        server = VirtualServer("s.example")
        server.route("/", lambda r: HttpResponse(status=200, body=b"ok"))
        net.register(server)
        assert HttpClient(net).get("https://s.example/").body == b"ok"

    def test_client_post(self):
        net = Network()
        server = VirtualServer("s.example")
        server.route("/", lambda r: HttpResponse(status=200, body=r.body))
        net.register(server)
        assert HttpClient(net).post("https://s.example/", b"echo").body == b"echo"


class TestProxyInterception:
    def _world(self):
        net = Network()
        server = VirtualServer("s.example")
        server.route("/", lambda r: HttpResponse(status=200, body=b"payload"))
        net.register(server)
        client = HttpClient(net)
        client.pin_set.pin("s.example", server.certificate)
        proxy = InterceptingProxy(net)
        return net, server, client, proxy

    def test_proxy_blocked_without_trusted_ca(self):
        __, __, client, proxy = self._world()
        client.set_proxy(proxy)
        with pytest.raises(TlsError, match="untrusted issuer"):
            client.get("https://s.example/")
        assert proxy.flows == []

    def test_proxy_blocked_by_pinning(self):
        __, __, client, proxy = self._world()
        client.set_proxy(proxy)
        client.trust_store.add_issuer(InterceptingProxy.CA_NAME)
        with pytest.raises(TlsError, match="pin mismatch"):
            client.get("https://s.example/")

    def test_proxy_works_after_repinning(self):
        from repro.instrumentation.hooks import disable_ssl_pinning

        __, __, client, proxy = self._world()
        client.set_proxy(proxy)
        client.trust_store.add_issuer(InterceptingProxy.CA_NAME)
        disable_ssl_pinning(client)
        response = client.get("https://s.example/")
        assert response.body == b"payload"
        assert len(proxy.flows) == 1
        assert proxy.flows[0].host == "s.example"

    def test_flows_for_filter(self):
        __, __, client, proxy = self._world()
        client.set_proxy(proxy)
        client.trust_store.add_issuer(InterceptingProxy.CA_NAME)
        client.pin_set.enabled = False
        client.get("https://s.example/")
        assert len(proxy.flows_for("s.exa")) == 1
        assert proxy.flows_for("other") == []

    def test_proxy_clear(self):
        __, __, client, proxy = self._world()
        client.set_proxy(proxy)
        client.trust_store.add_issuer(InterceptingProxy.CA_NAME)
        client.pin_set.enabled = False
        client.get("https://s.example/")
        proxy.clear()
        assert proxy.flows == []


class TestCdn:
    def test_put_and_fetch(self):
        net = Network()
        cdn = CdnServer("cdn.example")
        net.register(cdn)
        url = cdn.put("/a/b.bin", b"blob")
        assert HttpClient(net).get(url).body == b"blob"

    def test_missing_asset_404(self):
        net = Network()
        cdn = CdnServer("cdn.example")
        net.register(cdn)
        assert HttpClient(net).get("https://cdn.example/nope").status == 404

    def test_path_must_be_absolute(self):
        with pytest.raises(ValueError, match="start with"):
            CdnServer("cdn.example").put("relative", b"x")

    def test_token_enforcement(self):
        net = Network()
        cdn = CdnServer("cdn.example", require_token=True)
        net.register(cdn)
        cdn.put("/x.bin", b"data")
        client = HttpClient(net)
        assert client.get("https://cdn.example/x.bin").status == 403
        assert client.get(cdn.url_for("/x.bin")).body == b"data"

    def test_url_for_unknown_asset(self):
        with pytest.raises(KeyError):
            CdnServer("cdn.example").url_for("/missing")
