"""ClearKey: a second DRM system through the same Android HAL."""

import pytest

from repro.android.mediacodec import CryptoInfo, MediaCodec
from repro.android.mediacrypto import MediaCrypto
from repro.android.mediadrm import MediaDrm, UnsupportedSchemeException
from repro.bmff.builder import (
    build_init_segment,
    build_media_segment,
    read_samples,
    read_track_info,
)
from repro.bmff.cenc import encrypt_sample, iv_sequence
from repro.bmff.pssh import WIDEVINE_SYSTEM_ID, WidevinePsshData
from repro.clearkey import (
    CLEARKEY_SYSTEM_ID,
    ClearKeyCdm,
    ClearKeyHalPlugin,
    jwk_key_set,
)
from repro.media.codecs import generate_sample, sample_header_length

_KID = bytes([0xC1]) * 16
_KEY = bytes([0xC2]) * 16


@pytest.fixture
def device(world):
    device = world.l1_device()
    device.install_drm_plugin(ClearKeyHalPlugin())
    return device


def _protected_content():
    samples = [generate_sample("video", "ck/v", i, 60) for i in range(3)]
    ivs = iv_sequence(b"ck", len(samples))
    enc = [
        encrypt_sample(s, _KEY, iv, clear_header=sample_header_length())
        for s, iv in zip(samples, ivs)
    ]
    init = build_init_segment(kind="video", codec="synh264", default_kid=_KID)
    return init, build_media_segment(1, enc)


class TestCdm:
    def test_session_lifecycle(self):
        cdm = ClearKeyCdm()
        session = cdm.open_session("com.app")
        assert cdm.is_provisioned("com.app")
        cdm.close_session(session)
        with pytest.raises(ValueError, match="unknown ClearKey session"):
            cdm.get_key_request(session, b"")

    def test_key_request_lists_kids(self):
        import json

        cdm = ClearKeyCdm()
        session = cdm.open_session("com.app")
        init_data = WidevinePsshData(key_ids=[_KID]).serialize()
        request = json.loads(cdm.get_key_request(session, init_data))
        assert len(request["kids"]) == 1

    def test_jwk_round_trip(self):
        cdm = ClearKeyCdm()
        session = cdm.open_session("com.app")
        loaded = cdm.provide_key_response(session, jwk_key_set({_KID: _KEY}))
        assert loaded == [_KID]

    def test_bad_jwk_rejected(self):
        cdm = ClearKeyCdm()
        session = cdm.open_session("com.app")
        with pytest.raises(ValueError, match="bad JWK set"):
            cdm.provide_key_response(session, b"not json")

    def test_short_key_rejected(self):
        cdm = ClearKeyCdm()
        session = cdm.open_session("com.app")
        with pytest.raises(ValueError, match="16 bytes"):
            cdm.provide_key_response(session, jwk_key_set({_KID: b"short" * 2}))

    def test_decrypt(self):
        cdm = ClearKeyCdm()
        session = cdm.open_session("com.app")
        cdm.provide_key_response(session, jwk_key_set({_KID: _KEY}))
        sample = encrypt_sample(b"Z" * 48, _KEY, bytes(8))
        result = cdm.decrypt(session, _KID, sample.data, sample.entry.iv, [])
        assert result.data == b"Z" * 48
        assert not result.secure


class TestThroughTheHal:
    def test_both_schemes_supported(self, device):
        assert MediaDrm.is_crypto_scheme_supported(WIDEVINE_SYSTEM_ID, device)
        assert MediaDrm.is_crypto_scheme_supported(CLEARKEY_SYSTEM_ID, device)

    def test_unregistered_device_rejects_clearkey(self, world):
        fresh = world.l3_device(serial="N5-CK")
        with pytest.raises(UnsupportedSchemeException):
            MediaDrm(CLEARKEY_SYSTEM_ID, fresh)

    def test_properties(self, device):
        drm = MediaDrm(CLEARKEY_SYSTEM_ID, device)
        assert drm.get_property_string("vendor") == "W3C"
        assert drm.get_property_string("securityLevel") == "L3"

    def test_full_decode_path(self, device):
        init, segment = _protected_content()
        info = read_track_info(init)
        drm = MediaDrm(CLEARKEY_SYSTEM_ID, device, origin="com.tunebox")
        session = drm.open_session()
        init_data = WidevinePsshData(key_ids=[_KID]).serialize()
        request = drm.get_key_request(session, init_data)
        assert b"kids" in request.data
        # The "license server" is trivial: anyone with the keys replies.
        drm.provide_key_response(session, jwk_key_set({_KID: _KEY}))

        crypto = MediaCrypto(drm, session)
        assert not crypto.requires_secure_decoder_component("video/mp4")
        codec = MediaCodec.create_decoder("video/mp4")
        codec.configure(crypto)
        samples, protected = read_samples(segment, iv_size=info.iv_size)
        assert protected
        for sample in samples:
            frame = codec.queue_secure_input_buffer(
                sample.data,
                CryptoInfo(
                    key_id=_KID,
                    iv=sample.entry.iv,
                    subsamples=tuple(
                        (s.clear_bytes, s.protected_bytes)
                        for s in sample.entry.subsamples
                    ),
                ),
            )
            assert frame.valid

    def test_clearkey_playback_invisible_to_widevine_monitor(self, device):
        """A ClearKey playback is the Q1 true negative: the DRM
        framework is busy, the _oecc monitor sees nothing."""
        from repro.core.monitor import DrmApiMonitor

        init, segment = _protected_content()
        info = read_track_info(init)
        monitor = DrmApiMonitor(device)
        with monitor.attached():
            drm = MediaDrm(CLEARKEY_SYSTEM_ID, device, origin="com.tunebox")
            session = drm.open_session()
            drm.provide_key_response(session, jwk_key_set({_KID: _KEY}))
            crypto = MediaCrypto(drm, session)
            codec = MediaCodec.create_decoder("video/mp4")
            codec.configure(crypto)
            samples, __ = read_samples(segment, iv_size=info.iv_size)
            codec.queue_secure_input_buffer(
                samples[0].data,
                CryptoInfo(
                    key_id=_KID,
                    iv=samples[0].entry.iv,
                    subsamples=tuple(
                        (s.clear_bytes, s.protected_bytes)
                        for s in samples[0].entry.subsamples
                    ),
                ),
            )
            observation = monitor.observation()
        assert not observation.widevine_used
        assert observation.security_level is None
