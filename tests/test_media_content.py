"""Content model: titles, representations, adaptation ladders."""

import pytest

from repro.media.codecs import validate_sample
from repro.media.content import (
    HD_1080,
    QHD,
    Representation,
    Resolution,
    Title,
    TrackKind,
    make_title,
)


class TestResolution:
    def test_ordering(self):
        assert QHD < HD_1080

    def test_str(self):
        assert str(QHD) == "960x540"

    def test_hd_flag(self):
        assert HD_1080.is_hd
        assert not QHD.is_hd


class TestRepresentation:
    def test_video_requires_resolution(self):
        with pytest.raises(ValueError, match="resolution"):
            Representation(
                rep_id="v", kind=TrackKind.VIDEO, codec="c", bitrate_kbps=1
            )

    def test_audio_requires_language(self):
        with pytest.raises(ValueError, match="language"):
            Representation(
                rep_id="a", kind=TrackKind.AUDIO, codec="c", bitrate_kbps=1
            )

    def test_label(self):
        rep = Representation(
            rep_id="v540",
            kind=TrackKind.VIDEO,
            codec="c",
            bitrate_kbps=1,
            resolution=QHD,
        )
        assert rep.label("tt01") == "tt01/v540"


class TestTitle:
    @pytest.fixture
    def title(self) -> Title:
        return make_title("tt01", "Feature")

    def test_default_ladder(self, title):
        assert [r.resolution.height for r in title.videos()] == [540, 720, 1080]
        assert {r.language for r in title.audios()} == {"en", "fr"}
        assert {r.language for r in title.subtitles()} == {"en", "fr"}

    def test_segment_count(self, title):
        assert title.segment_count == 6  # 24s / 4s

    def test_segment_count_rounds_up(self):
        title = make_title("tt02", "F", duration_s=25, segment_duration_s=4)
        assert title.segment_count == 7

    def test_audio_language_filter(self, title):
        assert len(title.audios("fr")) == 1
        assert title.audios("de") == []

    def test_languages(self, title):
        assert title.languages() == ["en", "fr"]

    def test_representation_lookup(self, title):
        assert title.representation("v540").resolution == QHD
        with pytest.raises(KeyError):
            title.representation("nope")

    def test_samples_deterministic(self, title):
        rep = title.videos()[0]
        assert title.samples_for_segment(rep, 0) == title.samples_for_segment(rep, 0)

    def test_samples_valid(self, title):
        rep = title.videos()[0]
        for sample in title.samples_for_segment(rep, 1):
            result = validate_sample(sample)
            assert result.valid
            assert result.label == "tt01/v540"

    def test_samples_differ_across_segments(self, title):
        rep = title.videos()[0]
        assert title.samples_for_segment(rep, 0) != title.samples_for_segment(rep, 1)

    def test_segment_index_bounds(self, title):
        rep = title.videos()[0]
        with pytest.raises(IndexError):
            title.samples_for_segment(rep, title.segment_count)
        with pytest.raises(IndexError):
            title.samples_for_segment(rep, -1)

    def test_higher_bitrate_bigger_samples(self, title):
        v540 = title.samples_for_segment(title.representation("v540"), 0)[0]
        v1080 = title.samples_for_segment(title.representation("v1080"), 0)[0]
        assert len(v1080) > len(v540)

    def test_custom_ladder(self):
        title = make_title(
            "tt03",
            "Custom",
            video_resolutions=(QHD,),
            audio_languages=("de",),
            subtitle_languages=(),
        )
        assert len(title.videos()) == 1
        assert title.subtitles() == []
        assert title.languages() == ["de"]
