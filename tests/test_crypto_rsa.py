"""RSA keygen, OAEP and PSS: round trips, tamper rejection, determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.rng import derive_rng
from repro.crypto.rsa import (
    RsaPrivateKey,
    generate_keypair,
    oaep_decrypt,
    oaep_encrypt,
    pss_sign,
    pss_verify,
)


@pytest.fixture(scope="module")
def key() -> RsaPrivateKey:
    return generate_keypair(1024, label="test-suite-1024")


@pytest.fixture(scope="module")
def key2048() -> RsaPrivateKey:
    return generate_keypair(2048, label="test-suite-2048")


class TestKeygen:
    def test_modulus_bit_length(self, key, key2048):
        assert key.n.bit_length() == 1024
        assert key2048.n.bit_length() == 2048

    def test_deterministic_by_label(self):
        a = generate_keypair(1024, label="det-check")
        b = generate_keypair(1024, label="det-check")
        assert a.n == b.n

    def test_label_separation(self):
        a = generate_keypair(1024, label="label-a")
        b = generate_keypair(1024, label="label-b")
        assert a.n != b.n

    def test_cache_returns_same_object(self):
        assert generate_keypair(1024, label="cache-check") is generate_keypair(
            1024, label="cache-check"
        )

    def test_private_public_consistency(self, key):
        message = 0x1234567890ABCDEF
        assert key.raw_decrypt(key.public.raw_encrypt(message)) == message

    def test_explicit_rng_bypasses_cache(self):
        a = generate_keypair(1024, rng=derive_rng("explicit-a"))
        b = generate_keypair(1024, rng=derive_rng("explicit-b"))
        assert a.n != b.n

    def test_public_fingerprint_is_32_bytes(self, key):
        assert len(key.public.fingerprint()) == 32

    def test_export_import_round_trip(self, key):
        blob = key.export_secret()
        restored = RsaPrivateKey.import_secret(blob)
        assert restored == key

    def test_import_rejects_garbage(self):
        with pytest.raises(ValueError, match="not an exported RSA key"):
            RsaPrivateKey.import_secret(b"nonsense")

    def test_raw_ops_range_checks(self, key):
        with pytest.raises(ValueError):
            key.public.raw_encrypt(key.n)
        with pytest.raises(ValueError):
            key.raw_decrypt(key.n + 5)


class TestOaep:
    def test_round_trip(self, key):
        ct = oaep_encrypt(key.public, b"the session key!")
        assert oaep_decrypt(key, ct) == b"the session key!"

    def test_round_trip_empty_message(self, key):
        assert oaep_decrypt(key, oaep_encrypt(key.public, b"")) == b""

    def test_ciphertext_length_is_modulus_length(self, key):
        assert len(oaep_encrypt(key.public, b"x")) == key.byte_length

    def test_message_too_long_rejected(self, key):
        limit = key.byte_length - 2 * 32 - 2
        with pytest.raises(ValueError, match="too long"):
            oaep_encrypt(key.public, bytes(limit + 1))

    def test_max_length_message_fits(self, key):
        limit = key.byte_length - 2 * 32 - 2
        message = bytes(limit)
        assert oaep_decrypt(key, oaep_encrypt(key.public, message)) == message

    def test_tampered_ciphertext_rejected(self, key):
        ct = bytearray(oaep_encrypt(key.public, b"secret"))
        ct[-1] ^= 1
        with pytest.raises(ValueError, match="OAEP"):
            oaep_decrypt(key, bytes(ct))

    def test_wrong_length_ciphertext_rejected(self, key):
        with pytest.raises(ValueError, match="wrong length"):
            oaep_decrypt(key, b"short")

    def test_label_mismatch_rejected(self, key):
        ct = oaep_encrypt(key.public, b"secret", label=b"label-1")
        with pytest.raises(ValueError, match="OAEP"):
            oaep_decrypt(key, ct, label=b"label-2")

    def test_label_match_accepted(self, key):
        ct = oaep_encrypt(key.public, b"secret", label=b"label-1")
        assert oaep_decrypt(key, ct, label=b"label-1") == b"secret"

    def test_wrong_key_rejected(self, key):
        other = generate_keypair(1024, label="oaep-other")
        ct = oaep_encrypt(key.public, b"secret")
        with pytest.raises(ValueError):
            oaep_decrypt(other, ct)

    @settings(max_examples=10, deadline=None)
    @given(message=st.binary(max_size=32))
    def test_round_trip_property(self, key, message):
        assert oaep_decrypt(key, oaep_encrypt(key.public, message)) == message


class TestPss:
    def test_sign_verify(self, key):
        sig = pss_sign(key, b"license request")
        assert pss_verify(key.public, b"license request", sig)

    def test_verify_rejects_other_message(self, key):
        sig = pss_sign(key, b"license request")
        assert not pss_verify(key.public, b"other request", sig)

    def test_verify_rejects_tampered_signature(self, key):
        sig = bytearray(pss_sign(key, b"msg"))
        sig[0] ^= 1
        assert not pss_verify(key.public, b"msg", bytes(sig))

    def test_verify_rejects_wrong_length(self, key):
        assert not pss_verify(key.public, b"msg", b"short")

    def test_verify_rejects_wrong_key(self, key):
        other = generate_keypair(1024, label="pss-other")
        sig = pss_sign(key, b"msg")
        assert not pss_verify(other.public, b"msg", sig)

    def test_2048_bit_operation(self, key2048):
        sig = pss_sign(key2048, b"big-key message")
        assert pss_verify(key2048.public, b"big-key message", sig)

    def test_empty_message(self, key):
        sig = pss_sign(key, b"")
        assert pss_verify(key.public, b"", sig)

    @settings(max_examples=10, deadline=None)
    @given(message=st.binary(max_size=64))
    def test_sign_verify_property(self, key, message):
        assert pss_verify(key.public, message, pss_sign(key, message))
